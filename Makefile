# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet lint lint-json invariants check check-full cover bench bench-smoke bench-compare loadtest load-compare fleettest updatetest update-compare scale-smoke querytest tools examples experiments clean

all: build vet test

# What CI runs: vet, build, the project analyzers (text + the JSON
# artifact the lint job archives), the full test suite under the race
# detector (the RPC fault-handling tests are concurrency-heavy), and
# the suite again with runtime invariants compiled in.
check:
	go vet ./...
	go build ./...
	go run ./cmd/drlint ./...
	$(MAKE) lint-json
	go test -race ./...
	go test -tags=invariants ./...

# check plus the end-to-end serving smoke — slower, optional locally,
# what CI's serve-smoke job runs on top of check.
check-full: check loadtest

build:
	go build ./...

vet:
	go vet ./...

# Project-specific analyzers (internal/lint): the determinism suite
# (mapdet, lockheld, errsink, atomichygiene) plus the serving-tier
# concurrency suite (copylocks, tornload, goleak, wgmisuse, ackorder).
# `go vet` runs first as a stdlib cross-check (its copylocks overlaps
# ours); drlint remains the gate with the //lint:ignore waiver
# discipline.
lint:
	go vet ./...
	go run ./cmd/drlint ./...

# Machine-readable findings for CI artifact diffing: exits nonzero on
# any non-waived finding, leaving drlint.json behind either way.
lint-json:
	go run ./cmd/drlint -json ./... > drlint.json

# Full suite with the build-tagged runtime invariants compiled in.
invariants:
	go test -tags=invariants ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem

# One-iteration benchmark pass — catches bit-rot in the bench harness
# without paying for real measurements (CI's bench-smoke job).
bench-smoke:
	go test -run=NONE -bench=Table6 -benchtime=1x .

# Diff two drbench -json records and fail on a regression of the
# deterministic wire-volume metrics (messages, bytes_remote). Defaults
# to the committed before/after pair of the wire-format v2 change;
# override OLD/NEW to gate a fresh run against the newest baseline, as
# CI's bench-smoke job does.
OLD ?= BENCH_table6-tiny-p8-1785921086.json
NEW ?= BENCH_table6-tiny-p8-1785925046.json
bench-compare:
	go run ./cmd/benchcompare $(OLD) $(NEW)

# End-to-end serving smoke: drgen -> drlabel -> drserve under a drload
# burst with answer verification and a graceful-shutdown check, then
# the flat-vs-slice layout gate (CI's serve-smoke job).
loadtest:
	./scripts/serve_smoke.sh

# End-to-end fleet smoke: 3 drserve replicas behind drrouter in
# sharded mode — verified drload bursts, kill -9 + readmission,
# fleet-wide zero-downtime reload with an epoch check on every
# replica, reload-under-load, drain/readmit, graceful shutdown (CI's
# fleet-smoke job). Exits nonzero on any failed request or wrong
# answer.
fleettest:
	./scripts/fleet_smoke.sh

# End-to-end scale-path smoke: generate a ~1.2M-edge graph streamed
# and in-RAM (binary v2 files byte-identical via cmp), label it from a
# copy load and an mmap load (index files byte-identical via cmp),
# then run drbench -exp scale twice and gate every deterministic
# output with benchcompare (CI's scale-smoke job). No timings gated.
scale-smoke:
	./scripts/scale_smoke.sh

# End-to-end rich-query smoke: drserve with witness paths enabled
# (-idx + -graph), verified drload bursts at /reach/path, /reach/count,
# and /reach/join, curl spot checks of the refusal paths, then the
# deterministic query-workload record regenerated and gated exactly
# against the committed BENCH_query-citation-*.json baseline (CI's
# query-smoke job). No timings gated.
querytest:
	./scripts/query_smoke.sh

# End-to-end update smoke: drserve in update mode (-graph/-wal) —
# POST /edges point checks with epoch-acknowledged reads, a drload
# burst with concurrent writers, kill -9 + WAL replay verifying no
# acked write is lost, and a graceful-shutdown check (CI's
# update-smoke job).
updatetest:
	./scripts/update_smoke.sh

# Diff the committed static-serving baseline against the serve-while-
# updating record (drserve update mode under drload -writers): query
# p50 and QPS with the WAL refresher live may not regress more than
# -qtolerance relative to read-only serving. Override UPD_OLD/UPD_NEW
# for fresh runs.
UPD_OLD ?= BENCH_load-citation-serve1-1786166619.json
UPD_NEW ?= BENCH_update-citation-serve1-1786171084.json
update-compare:
	go run ./cmd/benchcompare -queries -qtolerance 0.10 $(UPD_OLD) $(UPD_NEW)

# Diff the committed flat-vs-slice serving records (drload -mode
# inproc on the citation graph, uniform traffic): the flat layout's
# query p50 and QPS may not regress past -qtolerance relative to the
# pre-flat slice baseline. Override LOAD_OLD/LOAD_NEW for fresh runs.
LOAD_OLD ?= BENCH_load-citation-uni-layout-slice-1785927060.json
LOAD_NEW ?= BENCH_load-citation-uni-layout-flat-1785927062.json
load-compare:
	go run ./cmd/benchcompare -queries $(LOAD_OLD) $(LOAD_NEW)

tools:
	go build -o bin/ ./cmd/...

examples:
	@for ex in examples/*/; do echo "== $$ex"; go run ./$$ex || exit 1; done

# Regenerates every table/figure (see results/runall.sh for the exact
# configuration used in EXPERIMENTS.md).
experiments: tools
	cd results && ./runall.sh

clean:
	rm -rf bin drlint.json

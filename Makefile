# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet check cover bench bench-smoke tools examples experiments clean

all: build vet test

# What CI runs: vet, build, and the full test suite under the race
# detector (the RPC fault-handling tests are concurrency-heavy).
check:
	go vet ./...
	go build ./...
	go test -race ./...

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem

# One-iteration benchmark pass — catches bit-rot in the bench harness
# without paying for real measurements (CI's bench-smoke job).
bench-smoke:
	go test -run=NONE -bench=Table6 -benchtime=1x .

tools:
	go build -o bin/ ./cmd/...

examples:
	@for ex in examples/*/; do echo "== $$ex"; go run ./$$ex || exit 1; done

# Regenerates every table/figure (see results/runall.sh for the exact
# configuration used in EXPERIMENTS.md).
experiments: tools
	cd results && ./runall.sh

clean:
	rm -rf bin

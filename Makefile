# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet lint invariants check cover bench bench-smoke tools examples experiments clean

all: build vet test

# What CI runs: vet, build, the project analyzers, the full test suite
# under the race detector (the RPC fault-handling tests are
# concurrency-heavy), and the suite again with runtime invariants
# compiled in.
check:
	go vet ./...
	go build ./...
	go run ./cmd/drlint ./...
	go test -race ./...
	go test -tags=invariants ./...

build:
	go build ./...

vet:
	go vet ./...

# Project-specific analyzers (internal/lint) guarding the determinism
# contract: mapdet, lockheld, errsink, atomichygiene.
lint:
	go run ./cmd/drlint ./...

# Full suite with the build-tagged runtime invariants compiled in.
invariants:
	go test -tags=invariants ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem

# One-iteration benchmark pass — catches bit-rot in the bench harness
# without paying for real measurements (CI's bench-smoke job).
bench-smoke:
	go test -run=NONE -bench=Table6 -benchtime=1x .

tools:
	go build -o bin/ ./cmd/...

examples:
	@for ex in examples/*/; do echo "== $$ex"; go run ./$$ex || exit 1; done

# Regenerates every table/figure (see results/runall.sh for the exact
# configuration used in EXPERIMENTS.md).
experiments: tools
	cd results && ./runall.sh

clean:
	rm -rf bin

package reachlab

// testing.B benchmarks, one family per table/figure of §VI. They run
// the same code paths as cmd/drbench on the tiny dataset suite so
// `go test -bench=.` stays tractable; the full-scale numbers in
// EXPERIMENTS.md come from `drbench -suite medium` / `-suite all`.
//
//	BenchmarkTable5…  dataset inventory statistics
//	BenchmarkTable6…  index time per algorithm + query time
//	BenchmarkFig5…    communication/computation split (DRL⁻, DRL, DRL_b)
//	BenchmarkFig6…    worker-count sweep (speedup)
//	BenchmarkFig7…    edge-prefix scalability
//	BenchmarkFig8…    initial batch size b
//	BenchmarkFig9…    increment factor k

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bfl"
	"repro/internal/drl"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/order"
	"repro/internal/tol"
)

// benchGraph is the WEBW stand-in at tiny scale, built once.
var benchGraph = sync.OnceValue(func() *graph.Digraph {
	g, err := gen.Generate(gen.Params{Family: gen.Web, N: 4000, AvgDegree: 2.4, Seed: 101})
	if err != nil {
		panic(err)
	}
	return g
})

var benchOrder = sync.OnceValue(func() *order.Ordering {
	return order.Compute(benchGraph())
})

var benchIndex = sync.OnceValue(func() *label.Index {
	return tol.Build(benchGraph(), benchOrder())
})

var benchNet = netsim.Model{BarrierLatency: 20 * time.Microsecond, BytesPerSecond: 1 << 30}

func reportIndexBytes(b *testing.B, idx *label.Index) {
	b.Helper()
	if idx != nil {
		b.ReportMetric(float64(idx.SizeBytes()), "index-bytes")
	}
}

// BenchmarkTable5Stats regenerates the Table V statistics.
func BenchmarkTable5Stats(b *testing.B) {
	g := benchGraph()
	for i := 0; i < b.N; i++ {
		_ = graph.ComputeStats(g)
	}
}

// BenchmarkTable6Index covers the Index Time columns of Table VI.
func BenchmarkTable6Index(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	b.Run("TOL", func(b *testing.B) {
		var idx *label.Index
		for i := 0; i < b.N; i++ {
			idx = tol.Build(g, ord)
		}
		reportIndexBytes(b, idx)
	})
	b.Run("BFL_C", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bfl.Build(g, bfl.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BFL_D", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bfl.BuildDistributed(g, bfl.Options{}, bfl.DistOptions{Workers: 4, Net: benchNet}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DRL_b", func(b *testing.B) {
		var idx *label.Index
		for i := 0; i < b.N; i++ {
			var err error
			idx, _, err = drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
				drl.DistOptions{Workers: 4, Net: benchNet})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportIndexBytes(b, idx)
	})
	b.Run("DRL_b_M", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drl.BuildBatch(g, ord, drl.DefaultBatchParams(), drl.Options{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable6Query covers the Query Time columns of Table VI.
func BenchmarkTable6Query(b *testing.B) {
	g := benchGraph()
	idx := benchIndex()
	bx, err := bfl.Build(g, bfl.Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.Run("IndexOnly", func(b *testing.B) { // TOL = DRL_b = DRL_b^M
		for i := 0; i < b.N; i++ {
			s := graph.VertexID(i % n)
			t := graph.VertexID((i * 7919) % n)
			idx.Reachable(s, t)
		}
	})
	b.Run("BFL_C", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := graph.VertexID(i % n)
			t := graph.VertexID((i * 7919) % n)
			bx.Reachable(g, s, t)
		}
	})
	b.Run("BFL_D", func(b *testing.B) {
		var sim time.Duration
		for i := 0; i < b.N; i++ {
			s := graph.VertexID(i % n)
			t := graph.VertexID((i * 7919) % n)
			_, d := bx.ReachableDistributed(g, s, t, 4, benchNet)
			sim += d
		}
		b.ReportMetric(sim.Seconds()/float64(b.N), "sim-sec/op")
	})
}

// BenchmarkFig5CommSplit covers Exp 4: the three proposed algorithms
// with their communication/computation split reported as metrics.
func BenchmarkFig5CommSplit(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	run := func(b *testing.B, build func() (interface {
		Total() time.Duration
		TotalComm() time.Duration
	}, error)) {
		var comm, comp float64
		for i := 0; i < b.N; i++ {
			met, err := build()
			if err != nil {
				b.Fatal(err)
			}
			comm += met.TotalComm().Seconds()
			comp += (met.Total() - met.TotalComm()).Seconds()
		}
		b.ReportMetric(comm/float64(b.N), "comm-sec/op")
		b.ReportMetric(comp/float64(b.N), "comp-sec/op")
	}
	b.Run("DRLMinus", func(b *testing.B) {
		run(b, func() (interface {
			Total() time.Duration
			TotalComm() time.Duration
		}, error) {
			_, met, err := drl.BuildDistributedBasic(g, ord, drl.DistOptions{Workers: 4, Net: benchNet})
			return &met, err
		})
	})
	b.Run("DRL", func(b *testing.B) {
		run(b, func() (interface {
			Total() time.Duration
			TotalComm() time.Duration
		}, error) {
			_, met, err := drl.BuildDistributed(g, ord, drl.DistOptions{Workers: 4, Net: benchNet})
			return &met, err
		})
	})
	b.Run("DRLb", func(b *testing.B) {
		run(b, func() (interface {
			Total() time.Duration
			TotalComm() time.Duration
		}, error) {
			_, met, err := drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
				drl.DistOptions{Workers: 4, Net: benchNet})
			return &met, err
		})
	})
}

// BenchmarkFig6Workers covers Exp 5: DRL_b across node counts.
func BenchmarkFig6Workers(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	for _, p := range bench.Fig6WorkerCounts {
		b.Run(fmt.Sprintf("DRLb_P%d", p), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				_, met, err := drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
					drl.DistOptions{Workers: p, Net: benchNet})
				if err != nil {
					b.Fatal(err)
				}
				makespan += met.Total().Seconds()
			}
			// The simulated cluster index time (what Fig. 6's speedup
			// is computed from); wall ns/op measures the host instead.
			b.ReportMetric(makespan/float64(b.N), "cluster-sec/op")
		})
	}
}

// BenchmarkFig7Scalability covers Exp 6: growing edge prefixes.
func BenchmarkFig7Scalability(b *testing.B) {
	edges, err := gen.Edges(gen.Params{Family: gen.Web, N: 4000, AvgDegree: 2.4, Seed: 101})
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range bench.Fig7Fractions {
		g := graph.FromEdges(4000, graph.EdgePrefix(edges, frac))
		ord := order.Compute(g)
		b.Run(fmt.Sprintf("DRLb_%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
					drl.DistOptions{Workers: 4, Net: benchNet}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8BatchSize covers Exp 7: the initial batch size b.
func BenchmarkFig8BatchSize(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	for _, size := range bench.Fig8Sizes {
		b.Run(fmt.Sprintf("b%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := drl.BuildDistributedBatch(g, ord,
					drl.BatchParams{InitialSize: size, Factor: 2},
					drl.DistOptions{Workers: 4, Net: benchNet}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Factor covers Exp 8: the increment factor k. k = 1 is
// included (the paper's pathological case) but at a reduced graph to
// keep the suite bounded.
func BenchmarkFig9Factor(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	small, err := gen.Generate(gen.Params{Family: gen.Web, N: 800, AvgDegree: 2.4, Seed: 101})
	if err != nil {
		b.Fatal(err)
	}
	smallOrd := order.Compute(small)
	for _, k := range bench.Fig9Factors {
		gk, ok := g, ord
		if k == 1 {
			gk, ok = small, smallOrd
		}
		b.Run(fmt.Sprintf("k%.1f", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := drl.BuildDistributedBatch(gk, ok,
					drl.BatchParams{InitialSize: 2, Factor: k},
					drl.DistOptions{Workers: 4, Net: benchNet}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrder sweeps the total-order strategies (the §II-B
// design choice: "degree product is cheap and works well").
func BenchmarkAblationOrder(b *testing.B) {
	g := benchGraph()
	for _, strat := range order.Strategies() {
		ord, err := order.ComputeStrategy(g, strat)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(strat), func(b *testing.B) {
			var idx *label.Index
			for i := 0; i < b.N; i++ {
				var err error
				idx, _, err = drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
					drl.DistOptions{Workers: 4, Net: benchNet})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportIndexBytes(b, idx)
		})
	}
}

// BenchmarkAblationCondense compares labeling the raw cyclic graph
// against labeling its SCC condensation (the §II-C design choice).
func BenchmarkAblationCondense(b *testing.B) {
	g := benchGraph()
	b.Run("raw", func(b *testing.B) {
		ord := order.Compute(g)
		var idx *label.Index
		for i := 0; i < b.N; i++ {
			var err error
			idx, _, err = drl.BuildDistributedBatch(g, ord, drl.DefaultBatchParams(),
				drl.DistOptions{Workers: 4, Net: benchNet})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportIndexBytes(b, idx)
	})
	b.Run("condensed", func(b *testing.B) {
		var idx *label.Index
		for i := 0; i < b.N; i++ {
			cond, _ := graph.Condense(g)
			ord := order.Compute(cond)
			var err error
			idx, _, err = drl.BuildDistributedBatch(cond, ord, drl.DefaultBatchParams(),
				drl.DistOptions{Workers: 4, Net: benchNet})
			if err != nil {
				b.Fatal(err)
			}
		}
		reportIndexBytes(b, idx)
	})
}

// BenchmarkDynamicUpdate measures incremental index maintenance
// against the rebuild alternative, on the citation DAG where updates
// stay localized (on giant-SCC graphs the maintainer falls back to a
// rebuild by design).
func BenchmarkDynamicUpdate(b *testing.B) {
	g, err := gen.Generate(gen.Params{Family: gen.Citation, N: 4000, AvgDegree: 2.3, Seed: 103})
	if err != nil {
		b.Fatal(err)
	}
	d := tol.NewDynamic(g)
	n := g.NumVertices()
	b.Run("InsertDelete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := graph.VertexID((i * 31) % n)
			v := graph.VertexID((i * 173) % n)
			if err := d.InsertEdge(u, v); err != nil {
				b.Fatal(err)
			}
			if err := d.DeleteEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	ord := order.Compute(g)
	b.Run("RebuildBaseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tol.Build(g, ord)
		}
	})
}

// BenchmarkTrimmedBFS measures the core filtering primitive
// (Algorithm 2) in isolation.
func BenchmarkTrimmedBFS(b *testing.B) {
	g, ord := benchGraph(), benchOrder()
	s := label.NewScratch(g.NumVertices())
	var low, hig []graph.VertexID
	for i := 0; i < b.N; i++ {
		v := graph.VertexID(i % g.NumVertices())
		low, hig = label.TrimmedBFS(g, ord, v, s, low[:0], hig[:0])
	}
}

// BenchmarkOrderCompute measures the total-order computation.
func BenchmarkOrderCompute(b *testing.B) {
	g := benchGraph()
	for i := 0; i < b.N; i++ {
		_ = order.Compute(g)
	}
}

package reachlab

import (
	"bytes"
	"context"
	"testing"
)

// TestLabelBudgetOption pins the public memory-bounded mode: answers
// stay exact for any budget, stats report the cap and overflow, and
// the index refuses serialization (it retains the graph).
func TestLabelBudgetOption(t *testing.T) {
	g, err := GenerateGraph("social", 300, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(context.Background(), g, Options{Method: MethodTOL})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 4, 1 << 20} {
		idx, err := Build(context.Background(), g, Options{LabelBudget: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		st := idx.Stats()
		if st.LabelBudget != budget {
			t.Fatalf("Stats().LabelBudget = %d, want %d", st.LabelBudget, budget)
		}
		if st.MaxLabelSize > budget {
			t.Fatalf("MaxLabelSize = %d exceeds budget %d", st.MaxLabelSize, budget)
		}
		if budget == 1<<20 && (st.OverflowedIn != 0 || st.OverflowedOut != 0) {
			t.Fatalf("unbounded budget overflowed: %+v", st)
		}
		if budget == 1 && st.OverflowedIn == 0 && st.OverflowedOut == 0 {
			t.Fatal("budget 1 on a social graph should overflow somewhere")
		}
		// Exactness: spot-check every pair of a vertex sample against
		// the full index (itself BFS-verified elsewhere).
		sample := []VertexID{0, 1, 7, 50, 123, 299}
		var pairs []Pair
		for _, s := range sample {
			for _, u := range sample {
				if got, want := idx.Reachable(s, u), full.Reachable(s, u); got != want {
					t.Fatalf("budget %d: q(%d,%d) = %v, want %v", budget, s, u, got, want)
				}
				pairs = append(pairs, Pair{S: s, T: u})
			}
		}
		batch := idx.ReachableBatch(pairs)
		for i, p := range pairs {
			if want := full.Reachable(p.S, p.T); batch[i] != want {
				t.Fatalf("budget %d: batch q(%d,%d) = %v, want %v", budget, p.S, p.T, batch[i], want)
			}
		}
		if _, err := idx.WriteTo(&bytes.Buffer{}); err == nil {
			t.Fatal("budgeted index serialized without error")
		}
	}
}

func TestLabelBudgetRequiresTOL(t *testing.T) {
	g, err := GenerateGraph("citation", 50, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(context.Background(), g, Options{LabelBudget: 4, Method: MethodDRLBatch}); err == nil {
		t.Fatal("LabelBudget with a distributed method should be rejected")
	}
	if _, err := Build(context.Background(), g, Options{LabelBudget: 4, Method: MethodTOL}); err != nil {
		t.Fatalf("LabelBudget with explicit MethodTOL: %v", err)
	}
}

func TestLabelBudgetWithCondenseSCC(t *testing.T) {
	g, err := GenerateGraph("social", 120, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(context.Background(), g, Options{LabelBudget: 2, CondenseSCC: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := VertexID(0); int(s) < g.NumVertices(); s += 7 {
		for u := VertexID(0); int(u) < g.NumVertices(); u += 11 {
			if got, want := idx.Reachable(s, u), g.ReachableBFS(s, u); got != want {
				t.Fatalf("q(%d,%d) = %v, want %v", s, u, got, want)
			}
		}
	}
}

func TestGenerateGraphStreamedMatches(t *testing.T) {
	for _, family := range []string{"web", "citation", "social", "knowledge", "biology", "synthetic"} {
		a, err := GenerateGraph(family, 2000, 4, 42)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		b, err := GenerateGraphStreamed(family, 2000, 4, 42)
		if err != nil {
			t.Fatalf("%s streamed: %v", family, err)
		}
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: shape differs: %d/%d vs %d/%d", family,
				a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
		}
		for v := VertexID(0); int(v) < a.NumVertices(); v++ {
			ao, bo := a.OutNeighbors(v), b.OutNeighbors(v)
			if len(ao) != len(bo) {
				t.Fatalf("%s: v%d out-degree differs", family, v)
			}
			for i := range ao {
				if ao[i] != bo[i] {
					t.Fatalf("%s: v%d adjacency differs", family, v)
				}
			}
		}
	}
}

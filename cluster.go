package reachlab

import (
	"fmt"
	"time"

	"repro/internal/drl"
	"repro/internal/label"
	"repro/internal/pregel"
)

type indexAlias = label.Index

// Genuinely distributed construction: worker processes connected over
// TCP (net/rpc) instead of simulated nodes inside one process. Each
// worker owns the vertices v with v mod P == workerID and loads the
// graph from shared storage itself. cmd/drworker and cmd/drcluster
// wrap these entry points; examples/distributed drives them
// in-process.

// ClusterOptions tunes the fault handling of cluster builds: per-call
// deadlines and retry bounds, and how often worker state is
// checkpointed for crash recovery. The zero value uses the defaults.
type ClusterOptions = drl.ClusterOptions

// RetryPolicy bounds per-call deadlines and retries for cluster
// builds (see ClusterOptions.Retry).
type RetryPolicy = pregel.RetryPolicy

// ServeWorker hosts one labeling cluster worker on addr (use
// "host:0" for an ephemeral port). The bound address is sent on ready
// if non-nil; the call then blocks serving requests.
func ServeWorker(addr string, ready chan<- string) error {
	return pregel.ServeWorker(addr, ready)
}

// BuildOverCluster constructs the index on a cluster of running
// workers with default fault handling. graphPath must be readable by
// the master and every worker (the paper's shared-storage
// deployment). Only MethodDRL and MethodDRLBatch run over the cluster
// transport.
func BuildOverCluster(addrs []string, graphPath string, opts Options) (*Index, error) {
	return BuildOverClusterOpts(addrs, graphPath, opts, ClusterOptions{})
}

// BuildOverClusterOpts is BuildOverCluster with explicit
// fault-handling configuration.
func BuildOverClusterOpts(addrs []string, graphPath string, opts Options, copt ClusterOptions) (*Index, error) {
	start := time.Now()
	var (
		idx *indexAlias
		met pregel.Metrics
		err error
	)
	switch m := opts.method(); m {
	case MethodDRL:
		idx, met, err = drl.BuildOverRPCOpts(addrs, graphPath, copt)
	case MethodDRLBatch:
		idx, met, err = drl.BuildBatchOverRPCOpts(addrs, graphPath, opts.batchParams(), copt)
	default:
		return nil, fmt.Errorf("reachlab: method %q does not support cluster deployment (use %q or %q)",
			m, MethodDRL, MethodDRLBatch)
	}
	if err != nil {
		return nil, fmt.Errorf("reachlab: building over cluster: %w", err)
	}
	return &Index{
		idx: idx,
		stats: BuildStats{
			Method:        opts.method(),
			Workers:       len(addrs),
			WallTime:      time.Since(start),
			Compute:       met.ComputeTime,
			Communication: met.TotalComm(),
			Supersteps:    met.Supersteps,
			Messages:      met.Messages,
			BytesRemote:   met.BytesRemote,

			Retries:            met.Retries,
			Recoveries:         met.Recoveries,
			Checkpoints:        met.Checkpoints,
			LastCheckpointStep: met.LastCheckpointStep,
		},
	}, nil
}

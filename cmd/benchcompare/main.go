// Command benchcompare diffs two drbench -json records (BENCH_*.json)
// and fails when the newer run regressed the deterministic
// communication-volume metrics — wire messages or remote bytes — of
// any (dataset, algorithm) build present in both records.
//
// Usage:
//
//	benchcompare [-tolerance 0.05] OLD.json NEW.json
//	benchcompare -queries [-qtolerance 0.25] OLD.json NEW.json
//
// Timing fields are machine noise and are reported but never gated by
// default; messages and bytes_remote are fully determined by the code
// and the dataset, so any increase beyond the tolerance is a codec or
// algorithm regression. CI's bench-smoke job runs this against the
// committed baseline record (see Makefile bench-compare).
//
// With -queries the serving metrics are gated too: query p50 latency
// may not rise, and achieved QPS may not fall, beyond -qtolerance for
// any (dataset, algo) present in both records. These ARE timing
// numbers, so the tolerance is meant to be generous — the gate exists
// to catch gross serving regressions (an accidentally quadratic merge,
// a lost cache), not single-digit jitter. drload writes records in
// this shape (see Makefile loadtest).
//
// Records written by drbench -exp scale are detected automatically and
// compared field by field instead: every structural output of the
// build path (edge count, file bytes, index entries/bytes, max label,
// overflow counts) is fully determined by the generator parameters and
// the code, so it must match EXACTLY — no tolerance. Phase timings are
// printed side by side but never gated (medians over a noisy host).
// Both records must come from the same parameters; comparing different
// configurations is a usage error, not a regression.
//
// Records written by drbench -exp query get the same treatment: the
// rich-query workload's aggregate counts (reachable pairs, total
// witness-path hops, set-size sums, join cardinality) are pure
// functions of the generator parameters and the code, so they must
// match exactly; phase timings are informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	tol := flag.Float64("tolerance", 0, "allowed fractional increase before failing (0 = any increase fails)")
	gateQ := flag.Bool("queries", false, "also gate query p50 latency and QPS")
	qtol := flag.Float64("qtolerance", 0.25, "allowed fractional query-latency/QPS regression with -queries")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-tolerance F] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	// Scale records carry no per-dataset builds; diff them with the
	// dedicated exact-match comparator and skip the message table.
	if oldRec.Scale != nil || newRec.Scale != nil {
		if oldRec.Scale == nil || newRec.Scale == nil {
			fmt.Fprintln(os.Stderr, "benchcompare: only one record is a scale record; compare like with like")
			os.Exit(2)
		}
		regressions, err := compareScale(oldRec.Scale, newRec.Scale)
		if err != nil {
			fatal(err)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchcompare: %d scale regression(s):\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Println("\nbenchcompare: scale outputs identical")
		return
	}

	// Query-workload records (drbench -exp query) are likewise diffed
	// with an exact-match comparator: every aggregate count is a pure
	// function of the generator parameters and the code.
	if oldRec.QueryWorkload != nil || newRec.QueryWorkload != nil {
		if oldRec.QueryWorkload == nil || newRec.QueryWorkload == nil {
			fmt.Fprintln(os.Stderr, "benchcompare: only one record is a query-workload record; compare like with like")
			os.Exit(2)
		}
		regressions, err := compareQueryWorkload(oldRec.QueryWorkload, newRec.QueryWorkload)
		if err != nil {
			fatal(err)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchcompare: %d query-workload regression(s):\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Println("\nbenchcompare: query-workload outputs identical")
		return
	}

	oldBuilds := index(oldRec)
	var regressions []string
	var totOldMsgs, totNewMsgs, totOldBytes, totNewBytes int64
	fmt.Printf("%-6s %-6s %12s %12s %8s %14s %14s %8s\n",
		"DATA", "ALGO", "MSGS(old)", "MSGS(new)", "Δ%", "BYTES(old)", "BYTES(new)", "Δ%")
	for _, d := range newRec.Datasets {
		for _, nb := range d.Builds {
			ob, ok := oldBuilds[key{d.Name, nb.Algo}]
			if !ok {
				continue
			}
			if nb.Error != "" && ob.Error == "" {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: new run errored: %s", d.Name, nb.Algo, nb.Error))
				continue
			}
			if nb.TimedOut && !ob.TimedOut {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: new run timed out", d.Name, nb.Algo))
				continue
			}
			if ob.Messages == 0 && ob.BytesRemote == 0 && nb.Messages == 0 && nb.BytesRemote == 0 {
				continue // single-machine build, nothing on the wire
			}
			fmt.Printf("%-6s %-6s %12d %12d %7.1f%% %14d %14d %7.1f%%\n",
				d.Name, nb.Algo,
				ob.Messages, nb.Messages, pct(ob.Messages, nb.Messages),
				ob.BytesRemote, nb.BytesRemote, pct(ob.BytesRemote, nb.BytesRemote))
			totOldMsgs += ob.Messages
			totNewMsgs += nb.Messages
			totOldBytes += ob.BytesRemote
			totNewBytes += nb.BytesRemote
			if exceeds(ob.Messages, nb.Messages, *tol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: messages regressed %d -> %d", d.Name, nb.Algo, ob.Messages, nb.Messages))
			}
			if exceeds(ob.BytesRemote, nb.BytesRemote, *tol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: bytes_remote regressed %d -> %d", d.Name, nb.Algo, ob.BytesRemote, nb.BytesRemote))
			}
		}
	}
	fmt.Printf("%-6s %-6s %12d %12d %7.1f%% %14d %14d %7.1f%%\n",
		"TOTAL", "", totOldMsgs, totNewMsgs, pct(totOldMsgs, totNewMsgs),
		totOldBytes, totNewBytes, pct(totOldBytes, totNewBytes))

	if *gateQ {
		regressions = append(regressions, compareQueries(oldBuilds, newRec, *qtol)...)
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcompare: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchcompare: no message-volume regressions")
}

// compareQueries diffs the serving metrics — query p50 latency and
// achieved QPS — of every matched (dataset, algo) build and returns
// the regressions beyond qtol.
func compareQueries(oldBuilds map[key]bench.BuildRecord, newRec *bench.RunRecord, qtol float64) []string {
	var regressions []string
	fmt.Printf("\n%-10s %-14s %12s %12s %8s %12s %12s %8s\n",
		"DATA", "ALGO", "P50ns(old)", "P50ns(new)", "Δ%", "QPS(old)", "QPS(new)", "Δ%")
	for _, d := range newRec.Datasets {
		for _, nb := range d.Builds {
			ob, ok := oldBuilds[key{d.Name, nb.Algo}]
			if !ok || ob.Query == nil || nb.Query == nil {
				continue
			}
			fmt.Printf("%-10s %-14s %12d %12d %7.1f%% %12.0f %12.0f %7.1f%%\n",
				d.Name, nb.Algo,
				ob.Query.P50Nanos, nb.Query.P50Nanos, pct(ob.Query.P50Nanos, nb.Query.P50Nanos),
				ob.QPS, nb.QPS, pctF(ob.QPS, nb.QPS))
			if float64(nb.Query.P50Nanos) > float64(ob.Query.P50Nanos)*(1+qtol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: query p50 regressed %dns -> %dns", d.Name, nb.Algo, ob.Query.P50Nanos, nb.Query.P50Nanos))
			}
			if ob.QPS > 0 && nb.QPS > 0 && nb.QPS < ob.QPS/(1+qtol) {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: QPS regressed %.0f -> %.0f", d.Name, nb.Algo, ob.QPS, nb.QPS))
			}
		}
	}
	return regressions
}

// compareScale diffs two drbench -exp scale records. The structural
// outputs are deterministic functions of the parameters, so they are
// gated exactly; phase timings are shown for context only. A parameter
// mismatch is an error (incomparable records), not a regression.
func compareScale(o, n *bench.ScaleRecord) ([]string, error) {
	if o.Family != n.Family || o.N != n.N || o.AvgDegree != n.AvgDegree ||
		o.Seed != n.Seed || o.Budget != n.Budget {
		return nil, fmt.Errorf(
			"scale parameters differ (old %s n=%d deg=%g seed=%d budget=%d, new %s n=%d deg=%g seed=%d budget=%d); records are not comparable",
			o.Family, o.N, o.AvgDegree, o.Seed, o.Budget,
			n.Family, n.N, n.AvgDegree, n.Seed, n.Budget)
	}
	fmt.Printf("scale %s n=%d deg=%g seed=%d budget=%d\n", n.Family, n.N, n.AvgDegree, n.Seed, n.Budget)
	var regressions []string
	fmt.Printf("%-16s %14s %14s\n", "FIELD", "OLD", "NEW")
	gate := func(name string, ov, nv int64) {
		fmt.Printf("%-16s %14d %14d\n", name, ov, nv)
		if ov != nv {
			regressions = append(regressions, fmt.Sprintf("%s changed %d -> %d", name, ov, nv))
		}
	}
	gate("edges", o.Edges, n.Edges)
	gate("file_bytes", o.FileBytes, n.FileBytes)
	gate("index_entries", o.IndexEntries, n.IndexEntries)
	gate("index_bytes", o.IndexBytes, n.IndexBytes)
	gate("max_label", int64(o.MaxLabel), int64(n.MaxLabel))
	gate("overflowed_in", int64(o.OverflowedIn), int64(n.OverflowedIn))
	gate("overflowed_out", int64(o.OverflowedOut), int64(n.OverflowedOut))

	oldPhases := map[string]bench.ScalePhase{}
	for _, ph := range o.Phases {
		oldPhases[ph.Phase] = ph
	}
	fmt.Printf("\n%-16s %12s %12s %8s   (informational)\n", "PHASE", "MED(old)", "MED(new)", "Δ%")
	for _, nph := range n.Phases {
		oph, ok := oldPhases[nph.Phase]
		if !ok {
			continue
		}
		fmt.Printf("%-16s %12.3f %12.3f %7.1f%%\n",
			nph.Phase, oph.MedianSeconds, nph.MedianSeconds, pctF(oph.MedianSeconds, nph.MedianSeconds))
	}
	return regressions, nil
}

// compareQueryWorkload diffs two drbench -exp query records. Like the
// scale comparator: the aggregate counts are deterministic functions
// of the parameters, gated exactly; phase timings are shown for
// context only. A parameter mismatch is an error, not a regression.
func compareQueryWorkload(o, n *bench.QueryWorkloadRecord) ([]string, error) {
	if o.Family != n.Family || o.N != n.N || o.AvgDegree != n.AvgDegree || o.Seed != n.Seed ||
		o.PairSamples != n.PairSamples || o.CountSources != n.CountSources {
		return nil, fmt.Errorf(
			"query-workload parameters differ (old %s n=%d deg=%g seed=%d pairs=%d, new %s n=%d deg=%g seed=%d pairs=%d); records are not comparable",
			o.Family, o.N, o.AvgDegree, o.Seed, o.PairSamples,
			n.Family, n.N, n.AvgDegree, n.Seed, n.PairSamples)
	}
	fmt.Printf("query %s n=%d deg=%g seed=%d pairs=%d\n", n.Family, n.N, n.AvgDegree, n.Seed, n.PairSamples)
	var regressions []string
	fmt.Printf("%-16s %14s %14s\n", "FIELD", "OLD", "NEW")
	gate := func(name string, ov, nv int64) {
		fmt.Printf("%-16s %14d %14d\n", name, ov, nv)
		if ov != nv {
			regressions = append(regressions, fmt.Sprintf("%s changed %d -> %d", name, ov, nv))
		}
	}
	gate("edges", o.Edges, n.Edges)
	gate("reachable_pairs", int64(o.ReachablePairs), int64(n.ReachablePairs))
	gate("path_hops", o.PathHops, n.PathHops)
	gate("reachable_sum", o.ReachableSum, n.ReachableSum)
	gate("join_sources", int64(o.JoinSources), int64(n.JoinSources))
	gate("join_targets", int64(o.JoinTargets), int64(n.JoinTargets))
	gate("join_pairs", int64(o.JoinPairs), int64(n.JoinPairs))

	oldPhases := map[string]bench.ScalePhase{}
	for _, ph := range o.Phases {
		oldPhases[ph.Phase] = ph
	}
	fmt.Printf("\n%-16s %12s %12s %8s   (informational)\n", "PHASE", "SEC(old)", "SEC(new)", "Δ%")
	for _, nph := range n.Phases {
		oph, ok := oldPhases[nph.Phase]
		if !ok {
			continue
		}
		fmt.Printf("%-16s %12.3f %12.3f %7.1f%%\n",
			nph.Phase, oph.MedianSeconds, nph.MedianSeconds, pctF(oph.MedianSeconds, nph.MedianSeconds))
	}
	return regressions, nil
}

type key struct{ dataset, algo string }

func index(r *bench.RunRecord) map[key]bench.BuildRecord {
	m := map[key]bench.BuildRecord{}
	for _, d := range r.Datasets {
		for _, b := range d.Builds {
			m[key{d.Name, b.Algo}] = b
		}
	}
	return m
}

func load(path string) (*bench.RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rec bench.RunRecord
	if err := json.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

func pct(old, new int64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return 100 * (float64(new) - float64(old)) / float64(old)
}

func pctF(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return 100 * (new - old) / old
}

func exceeds(old, new int64, tol float64) bool {
	return float64(new) > float64(old)*(1+tol)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}

// Command drbench regenerates the paper's evaluation artifacts
// (Table V, Table VI, and Figures 5-9 of §VI) against the synthetic
// dataset suite.
//
// Usage:
//
//	drbench -exp table6 -suite medium -workers 8 -cutoff 60s
//	drbench -exp all    -suite tiny
//	drbench -suite tiny -json
//
// Experiments: table5, table6, fig5, fig6, fig7, fig8, fig9, all.
// Suites: tiny, medium, large, all (see internal/bench).
//
// -exp scale instead measures the single-machine 10⁸-edge build path
// (parallel CSR build, streamed build, binary v2 save, copy load,
// mmap load, budgeted labeling) on one generated graph:
//
//	drbench -exp scale -scale-n 10000000 -scale-budget 32 -runs 5 -json
//
// -exp query runs the rich-query workload (witness paths, one-source
// sweeps, set sizes, a reachability join — DESIGN.md §15) over one
// generated graph, reusing the -scale-* generator flags. Every
// aggregate count in the record is deterministic and benchcompare
// gates it exactly; the phase timings are informational:
//
//	drbench -exp query -scale-n 20000 -scale-seed 1 -json
//
// -json additionally runs a profiling pass (TOL, DRL_b^M, DRL, DRL_b
// per dataset) and writes a machine-readable
// BENCH_<exp>-<suite>-p<P>-<unix>.json record with build times,
// superstep and message volume, and query-latency percentiles.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

func main() {
	var (
		exp     = flag.String("exp", "table6", "experiment: table5, table6, fig5, fig6, fig7, fig8, fig9, ablation-order, ablation-condense, scale, all")
		suite   = flag.String("suite", "medium", "dataset suite: tiny, medium, large, all")
		workers = flag.Int("workers", 8, "simulated computation nodes P")
		cutoff  = flag.Duration("cutoff", 60*time.Second, "per-build cut-off (0 = none); timed-out builds print INF")
		queries = flag.Int("queries", 20000, "sampled queries per query-time figure")
		latency = flag.Duration("latency", 100*time.Microsecond, "simulated per-superstep barrier latency")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		asJSON  = flag.Bool("json", false, "also write a machine-readable BENCH_*.json record")
		jsonDir = flag.String("json-dir", ".", "directory for BENCH_*.json records")

		scaleFamily = flag.String("scale-family", "citation", "scale experiment: generator family")
		scaleN      = flag.Int("scale-n", 1_000_000, "scale experiment: vertex count")
		scaleDeg    = flag.Float64("scale-deg", 4, "scale experiment: target average out-degree")
		scaleSeed   = flag.Int64("scale-seed", 1, "scale experiment: generator seed")
		scaleBudget = flag.Int("scale-budget", 32, "scale experiment: label budget (0 skips labeling)")
		runs        = flag.Int("runs", 5, "scale experiment: timing repetitions per build/IO phase (median reported)")
	)
	flag.Parse()

	progressEarly := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progressEarly = nil
	}

	// The scale experiment measures one parameterized build, not the
	// dataset suites, so it short-circuits the suite plumbing.
	if *exp == "scale" {
		fmt.Printf("\n===== scale (family %s, n=%d, deg=%.1f, budget=%d, runs=%d) =====\n",
			*scaleFamily, *scaleN, *scaleDeg, *scaleBudget, *runs)
		rec, err := bench.RunScale(bench.ScaleParams{
			Family:    *scaleFamily,
			N:         *scaleN,
			AvgDegree: *scaleDeg,
			Seed:      *scaleSeed,
			Budget:    *scaleBudget,
			Runs:      *runs,
		}, progressEarly)
		if err != nil {
			fatal(err)
		}
		bench.PrintScale(os.Stdout, rec)
		if *asJSON {
			if err := writeScaleRecord(rec, *jsonDir); err != nil {
				fatal(err)
			}
		}
		return
	}

	// The query experiment likewise measures one parameterized graph:
	// generate, full build, then the deterministic rich-query workload.
	if *exp == "query" {
		fmt.Printf("\n===== query (family %s, n=%d, deg=%.1f, seed=%d) =====\n",
			*scaleFamily, *scaleN, *scaleDeg, *scaleSeed)
		rec, err := runQueryWorkload(*scaleFamily, *scaleN, *scaleDeg, *scaleSeed, progressEarly)
		if err != nil {
			fatal(err)
		}
		bench.PrintQueryWorkload(os.Stdout, rec)
		if *asJSON {
			if err := writeQueryRecord(rec, *jsonDir); err != nil {
				fatal(err)
			}
		}
		return
	}

	ds, err := bench.Suite(*suite)
	if err != nil {
		fatal(err)
	}
	r := bench.NewRunner()
	r.Workers = *workers
	r.Cutoff = *cutoff
	r.Queries = *queries
	r.Net = netsim.Model{BarrierLatency: *latency, BytesPerSecond: netsim.Commodity().BytesPerSecond}

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}

	run := func(name string) error {
		fmt.Printf("\n===== %s (suite %s, P=%d) =====\n", name, *suite, r.Workers)
		switch name {
		case "table5":
			rows, err := r.Table5(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintTable5(os.Stdout, rows)
		case "table6":
			rows, err := r.Table6(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintTable6(os.Stdout, rows)
		case "fig5":
			rows, err := r.Fig5(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintFig5(os.Stdout, rows)
		case "fig6":
			rows, err := r.Fig6(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintFig6(os.Stdout, rows)
		case "fig7":
			rows, err := r.Fig7(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintFig7(os.Stdout, rows)
		case "fig8":
			rows, err := r.Fig8(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintFig8(os.Stdout, rows)
		case "fig9":
			rows, err := r.Fig9(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintFig9(os.Stdout, rows)
		case "ablation-order":
			rows, err := r.AblationOrder(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintAblationOrder(os.Stdout, rows)
		case "ablation-condense":
			rows, err := r.AblationCondense(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintAblationCondense(os.Stdout, rows)
		case "extras":
			rows, err := r.Extras(ds, progress)
			if err != nil {
				return err
			}
			bench.PrintExtras(os.Stdout, rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp == "all" {
		for _, name := range []string{"table5", "table6", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation-order", "ablation-condense"} {
			if err := run(name); err != nil {
				fatal(err)
			}
		}
	} else if err := run(*exp); err != nil {
		fatal(err)
	}

	if *asJSON {
		if err := writeRecord(r, ds, *exp, *suite, *jsonDir, progress); err != nil {
			fatal(err)
		}
	}
}

// writeRecord runs the profiling pass and serializes it to
// BENCH_<exp>-<suite>-p<P>-<unix>.json under dir.
func writeRecord(r *bench.Runner, ds []bench.Dataset, exp, suite, dir string, progress func(string)) error {
	recs, err := r.Profile(ds, progress)
	if err != nil {
		return err
	}
	now := time.Now().Unix()
	rec := bench.RunRecord{
		Experiment: exp,
		Suite:      suite,
		Workers:    r.Workers,
		Queries:    r.Queries,
		UnixTime:   now,
		Datasets:   recs,
	}
	name := fmt.Sprintf("%s/BENCH_%s-%s-p%d-%d.json", dir, exp, suite, r.Workers, now)
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

// runQueryWorkload generates the graph, runs a full (graph-retaining)
// index build, and drives the deterministic rich-query workload over
// it. The build method does not matter for the record — every method
// produces the identical index, and the workload's counts are graph
// properties — so the default build is used.
func runQueryWorkload(family string, n int, deg float64, seed int64, progress func(string)) (*bench.QueryWorkloadRecord, error) {
	gd, err := gen.Generate(gen.Params{Family: gen.Family(family), N: n, AvgDegree: deg, Seed: seed})
	if err != nil {
		return nil, err
	}
	edges := make([]reachlab.Edge, 0, gd.NumEdges())
	for v := 0; v < gd.NumVertices(); v++ {
		for _, w := range gd.OutNeighbors(graph.VertexID(v)) {
			edges = append(edges, reachlab.Edge{From: graph.VertexID(v), To: w})
		}
	}
	g := reachlab.NewGraph(gd.NumVertices(), edges)
	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{})
	if err != nil {
		return nil, err
	}
	return bench.RunQueryWorkload(bench.QueryWorkloadParams{
		Family: family, N: n, AvgDegree: deg, Seed: seed,
	}, bench.QueryWorkloadOps{
		Vertices:  idx.NumVertices(),
		Edges:     gd.NumEdges(),
		Reachable: idx.Reachable,
		Path:      idx.WitnessPath,
		SetSize:   idx.ReachableSetSize,
		Sweep:     idx.ReachableFrom,
	}, progress)
}

// writeQueryRecord serializes a query-workload run to
// BENCH_query-<family>-n<N>-<unix>.json under dir.
func writeQueryRecord(qw *bench.QueryWorkloadRecord, dir string) error {
	now := time.Now().Unix()
	rec := bench.RunRecord{
		Experiment:    "query",
		Suite:         qw.Family,
		UnixTime:      now,
		QueryWorkload: qw,
	}
	name := fmt.Sprintf("%s/BENCH_query-%s-n%d-%d.json", dir, qw.Family, qw.N, now)
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

// writeScaleRecord serializes a scale run to
// BENCH_scale-<family>-n<N>-b<budget>-<unix>.json under dir.
func writeScaleRecord(sc *bench.ScaleRecord, dir string) error {
	now := time.Now().Unix()
	rec := bench.RunRecord{
		Experiment: "scale",
		Suite:      sc.Family,
		UnixTime:   now,
		Scale:      sc,
	}
	name := fmt.Sprintf("%s/BENCH_scale-%s-n%d-b%d-%d.json", dir, sc.Family, sc.N, sc.Budget, now)
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drbench:", err)
	os.Exit(1)
}

// Command drcluster is the master of the distributed labeling
// cluster: it drives DRL or DRL_b across drworker processes and
// writes the collected index.
//
// Against already-running workers:
//
//	drcluster -i graph.bin -o graph.idx -workers 127.0.0.1:7101,127.0.0.1:7102
//
// Or self-contained — it spawns local drworker processes, runs the
// job, and shuts them down (drworker must be on $PATH or next to the
// drcluster binary):
//
//	drcluster -i graph.bin -o graph.idx -spawn 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/pregel"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph file, readable by every worker (required)")
		out     = flag.String("o", "", "output index path (required)")
		workers = flag.String("workers", "", "comma-separated worker addresses")
		spawn   = flag.Int("spawn", 0, "spawn this many local drworker processes instead")
		method  = flag.String("method", "drl-batch", "drl or drl-batch")
		b       = flag.Int("b", 2, "DRL_b initial batch size")
		k       = flag.Float64("k", 2, "DRL_b batch increment factor")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("both -i and -o are required"))
	}

	var addrs []string
	if *spawn > 0 {
		var cleanup func()
		var err error
		addrs, cleanup, err = spawnWorkers(*spawn)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
	} else if *workers != "" {
		addrs = strings.Split(*workers, ",")
	} else {
		fatal(fmt.Errorf("provide -workers addresses or -spawn N"))
	}

	var (
		idx *label.Index
		met pregel.Metrics
		err error
	)
	start := time.Now()
	switch *method {
	case "drl":
		idx, met, err = drl.BuildOverRPC(addrs, *in)
	case "drl-batch":
		idx, met, err = drl.BuildBatchOverRPC(addrs, *in, drl.BatchParams{InitialSize: *b, Factor: *k})
	default:
		err = fmt.Errorf("unknown method %q (want drl or drl-batch)", *method)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built over %d workers in %v (%d supersteps, %.2f MB remote traffic)\n",
		len(addrs), time.Since(start).Round(time.Millisecond),
		met.Supersteps, float64(met.BytesRemote)/(1<<20))

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.2f MB)\n", *out, float64(idx.SizeBytes())/(1<<20))
	_ = graph.VertexID(0)
}

// spawnWorkers launches local drworker processes on ephemeral ports
// and parses the bound addresses from their stdout.
func spawnWorkers(n int) ([]string, func(), error) {
	bin, err := exec.LookPath("drworker")
	if err != nil {
		// Try next to this binary.
		self, serr := os.Executable()
		if serr != nil {
			return nil, nil, fmt.Errorf("drworker not found: %w", err)
		}
		bin = filepath.Join(filepath.Dir(self), "drworker")
		if _, serr := os.Stat(bin); serr != nil {
			return nil, nil, fmt.Errorf("drworker not found on $PATH or next to drcluster: %w", err)
		}
	}
	var procs []*exec.Cmd
	cleanup := func() {
		for _, c := range procs {
			if c.Process != nil {
				c.Process.Kill()
			}
		}
		for _, c := range procs {
			c.Wait()
		}
	}
	var addrs []string
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, err
		}
		procs = append(procs, cmd)
		var addr string
		if _, err := fmt.Fscanf(stdout, "drworker listening on %s\n", &addr); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("reading worker %d address: %w", i, err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, cleanup, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drcluster:", err)
	os.Exit(1)
}

// Command drcluster is the master of the distributed labeling
// cluster: it drives DRL or DRL_b across drworker processes and
// writes the collected index.
//
// Against already-running workers:
//
//	drcluster -i graph.bin -o graph.idx -workers 127.0.0.1:7101,127.0.0.1:7102
//
// Or self-contained — it spawns local drworker processes, runs the
// job, and shuts them down (drworker must be on $PATH or next to the
// drcluster binary):
//
//	drcluster -i graph.bin -o graph.idx -spawn 4
//
// Fault handling is tunable: -timeout, -retries, and -backoff bound
// the per-call retry policy, and -checkpoint k snapshots worker state
// every k supersteps so a crashed worker can be re-dialed and resumed
// from the last barrier. In spawn mode a dead worker process is
// respawned on the same port automatically; -flaky N makes the first
// spawned worker kill itself after N supersteps to demonstrate the
// recovery path end to end.
//
// Observability: -obs addr serves /metrics (Prometheus text), /trace
// (superstep trace JSON), and /debug/pprof on addr while the build
// runs; -trace file writes the collected superstep trace to a file
// afterwards. Master-side counters aggregate the per-worker step
// replies, so message and byte volume cover the whole cluster.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/pregel"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph file, readable by every worker (required)")
		out     = flag.String("o", "", "output index path (required)")
		workers = flag.String("workers", "", "comma-separated worker addresses")
		spawn   = flag.Int("spawn", 0, "spawn this many local drworker processes instead")
		method  = flag.String("method", "drl-batch", "drl or drl-batch")
		b       = flag.Int("b", 2, "DRL_b initial batch size")
		k       = flag.Float64("k", 2, "DRL_b batch increment factor")

		timeout = flag.Duration("timeout", 0, "per-call deadline (0 = default 30s, negative = none)")
		retries = flag.Int("retries", 0, "attempts per call (0 = default 4, negative = single attempt)")
		backoff = flag.Duration("backoff", 0, "base retry backoff (0 = default 50ms)")
		ckpt    = flag.Int("checkpoint", 0, "checkpoint worker state every k supersteps (0 = run boundaries only)")
		flaky   = flag.Int("flaky", 0, "spawn mode: first worker crashes after N supersteps (fault demo)")

		obsAddr  = flag.String("obs", "", "serve /metrics, /trace, and /debug/pprof on this address during the build")
		traceOut = flag.String("trace", "", "write the superstep trace JSON to this file after the build")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("both -i and -o are required"))
	}

	reg := obs.Default
	if *obsAddr != "" {
		//lint:ignore goleak metrics sidecar serves for the process lifetime; the OS reclaims it at exit
		go func() {
			if err := http.ListenAndServe(*obsAddr, obs.Handler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "drcluster: obs endpoint:", err)
			}
		}()
	}

	copt := drl.ClusterOptions{
		Retry: pregel.RetryPolicy{
			CallTimeout: *timeout,
			MaxAttempts: *retries,
			BaseBackoff: *backoff,
		},
		CheckpointEvery: *ckpt,
		Obs:             reg,
	}

	var addrs []string
	if *spawn > 0 {
		sp, err := newSpawner()
		if err != nil {
			fatal(err)
		}
		defer sp.cleanup()
		addrs, err = sp.start(*spawn, *flaky)
		if err != nil {
			fatal(err)
		}
		// Re-dials after a worker crash respawn the process first.
		copt.Dial = sp.dial
	} else if *workers != "" {
		addrs = strings.Split(*workers, ",")
	} else {
		fatal(fmt.Errorf("provide -workers addresses or -spawn N"))
	}

	var (
		idx *label.Index
		met pregel.Metrics
		err error
	)
	start := time.Now()
	switch *method {
	case "drl":
		idx, met, err = drl.BuildOverRPCOpts(addrs, *in, copt)
	case "drl-batch":
		idx, met, err = drl.BuildBatchOverRPCOpts(addrs, *in, drl.BatchParams{InitialSize: *b, Factor: *k}, copt)
	default:
		err = fmt.Errorf("unknown method %q (want drl or drl-batch)", *method)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built over %d workers in %v (%d supersteps, %.2f MB remote traffic)\n",
		len(addrs), time.Since(start).Round(time.Millisecond),
		met.Supersteps, float64(met.BytesRemote)/(1<<20))
	if met.Retries > 0 || met.Recoveries > 0 || met.Checkpoints > 0 {
		fmt.Printf("fault handling: %d retried calls, %d recoveries, %d checkpoints (%.2f MB, last at superstep %d)\n",
			met.Retries, met.Recoveries, met.Checkpoints,
			float64(met.CheckpointBytes)/(1<<20), met.LastCheckpointStep)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, reg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote superstep trace to %s\n", *traceOut)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.2f MB)\n", *out, float64(idx.SizeBytes())/(1<<20))
	_ = graph.VertexID(0)
}

// spawner manages local drworker processes: the initial fleet, plus
// respawns on the same port when the master re-dials a dead worker.
type spawner struct {
	bin string

	mu    sync.Mutex
	procs []*exec.Cmd
}

func newSpawner() (*spawner, error) {
	bin, err := exec.LookPath("drworker")
	if err != nil {
		// Try next to this binary.
		self, serr := os.Executable()
		if serr != nil {
			return nil, fmt.Errorf("drworker not found: %w", err)
		}
		bin = filepath.Join(filepath.Dir(self), "drworker")
		if _, serr := os.Stat(bin); serr != nil {
			return nil, fmt.Errorf("drworker not found on $PATH or next to drcluster: %w", err)
		}
	}
	return &spawner{bin: bin}, nil
}

// start launches n workers on ephemeral ports. If flaky > 0, the
// first worker gets -crash-after so it dies mid-run.
func (s *spawner) start(n, flaky int) ([]string, error) {
	var addrs []string
	for i := 0; i < n; i++ {
		args := []string{"-listen", "127.0.0.1:0"}
		if i == 0 && flaky > 0 {
			args = append(args, "-crash-after", strconv.Itoa(flaky))
		}
		addr, err := s.launch(args)
		if err != nil {
			s.cleanup()
			return nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, nil
}

// launch starts one drworker and parses its bound address.
func (s *spawner) launch(args []string) (string, error) {
	cmd := exec.Command(s.bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.procs = append(s.procs, cmd)
	s.mu.Unlock()
	var addr string
	if _, err := fmt.Fscanf(stdout, "drworker listening on %s\n", &addr); err != nil {
		return "", fmt.Errorf("reading worker address: %w", err)
	}
	return addr, nil
}

// dial is the master's Dialer in spawn mode: if the address no longer
// answers (the process died), respawn a worker bound to the same port
// and dial again — the master then re-Inits and restores it from the
// last checkpoint.
func (s *spawner) dial(addr string) (pregel.Transport, error) {
	t, err := pregel.DialRPC(addr)
	if err == nil {
		return t, nil
	}
	if _, rerr := s.launch([]string{"-listen", addr}); rerr != nil {
		return nil, errors.Join(err, fmt.Errorf("respawning worker at %s: %w", addr, rerr))
	}
	return pregel.DialRPC(addr)
}

func (s *spawner) cleanup() {
	s.mu.Lock()
	procs := s.procs
	s.procs = nil
	s.mu.Unlock()
	for _, c := range procs {
		if c.Process != nil {
			c.Process.Kill()
		}
	}
	for _, c := range procs {
		c.Wait()
	}
}

// writeTrace dumps the per-superstep trace rows collected during the
// build as indented JSON.
func writeTrace(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.TraceSnapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drcluster:", err)
	os.Exit(1)
}

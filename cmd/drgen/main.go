// Command drgen generates synthetic benchmark graphs from the dataset
// families of Table V.
//
// Usage:
//
//	drgen -family web -n 100000 -deg 4 -seed 1 -o web.bin
//	drgen -dataset WEBW -o webw.bin          # a registry dataset
//	drgen -family citation -n 1000 -text -o cite.el
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		family  = flag.String("family", "web", "graph family: web, citation, social, knowledge, biology, synthetic")
		dataset = flag.String("dataset", "", "generate a registry dataset (WEBW, DBPE, ...) instead of raw parameters")
		n       = flag.Int("n", 10000, "number of vertices")
		deg     = flag.Float64("deg", 4, "target average out-degree")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (required)")
		text    = flag.Bool("text", false, "write a text edge list instead of the binary format")
		stream  = flag.Bool("stream", false, "build the CSR by streaming the generator twice instead of materializing the edge slice (lower peak memory, identical output)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("missing -o output path"))
	}

	params := gen.Params{Family: gen.Family(*family), N: *n, AvgDegree: *deg, Seed: *seed}
	if *dataset != "" {
		d, err := bench.Lookup(*dataset)
		if err != nil {
			fatal(err)
		}
		params = d.Params
	}
	generate := gen.Generate
	if *stream {
		generate = gen.GenerateStreamed
	}
	g, err := generate(params)
	if err != nil {
		fatal(err)
	}
	if err := graph.SaveFile(*out, g, !*text); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s\n", *out, graph.ComputeStats(g))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drgen:", err)
	os.Exit(1)
}

// Command drlabel builds a reachability index for a graph file and
// writes it to disk.
//
// Usage:
//
//	drlabel -i graph.bin -o graph.idx                    # DRL_b, 4 workers
//	drlabel -i graph.el -method tol -o graph.idx
//	drlabel -i graph.bin -method drl -workers 8 -o graph.idx
//
// Methods: tol, drl-basic, drl, drl-batch (default), drl-shared.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph (text edge list or drgen binary; required)")
		out     = flag.String("o", "", "output index path (required)")
		method  = flag.String("method", string(reachlab.MethodDRLBatch), "construction method")
		workers = flag.Int("workers", 4, "computation nodes / threads")
		b       = flag.Int("b", 2, "DRL_b initial batch size")
		k       = flag.Float64("k", 2, "DRL_b batch increment factor")
		latency = flag.Duration("latency", 0, "simulated network latency per superstep (0 = off)")
		timeout = flag.Duration("timeout", 0, "abort the build after this long (0 = none)")
		mmap    = flag.Bool("mmap", false, "memory-map the input (binary v2 files only) instead of reading it into RAM")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("both -i and -o are required"))
	}

	var g *reachlab.Graph
	var err error
	if *mmap {
		var unmap func() error
		g, unmap, err = reachlab.MapGraph(*in)
		if err == nil {
			defer unmap()
		}
	} else {
		g, err = reachlab.LoadGraph(*in)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %s\n", *in, g.Stats())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	idx, err := reachlab.Build(ctx, g, reachlab.Options{
		Method:         reachlab.Method(*method),
		Workers:        *workers,
		BatchSize:      *b,
		BatchFactor:    *k,
		NetworkLatency: *latency,
	})
	if err != nil {
		fatal(err)
	}
	bs := idx.BuildStats()
	st := idx.Stats()
	fmt.Printf("built with %s in %v (compute %v, communication %v, %d supersteps, %d messages)\n",
		bs.Method, time.Since(start).Round(time.Millisecond),
		bs.Compute.Round(time.Millisecond), bs.Communication.Round(time.Millisecond),
		bs.Supersteps, bs.Messages)
	fmt.Printf("index: %d entries, %.2f MB, max label %d, avg label %.2f\n",
		st.Entries, float64(st.Bytes)/(1<<20), st.MaxLabelSize, st.AvgLabelSize)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drlabel:", err)
	os.Exit(1)
}

// drlint runs the repo's project-specific static analyzers (see
// internal/lint) over the module:
//
//	drlint [-only mapdet,lockheld] [-json] [-v] [packages]
//
// Package patterns are directories relative to the module root, with
// the usual /... recursion; the default is ./... . The tool locates
// the enclosing module from the working directory, so it can be run
// from any subdirectory.
//
// Exit status: 0 clean, 1 findings, 2 usage error, load failure, or a
// malformed //lint:ignore directive anywhere in the tree (a waiver
// that does not parse silences nothing, and must never look like a
// routine finding that a waiver could in turn silence).
//
// With -json, findings are emitted to stdout as a JSON array of
// {file, line, col, analyzer, message} objects — file paths
// module-root-relative with forward slashes — for CI to archive and
// diff across runs. A clean run emits []. Type-check errors appear
// under the pseudo-analyzer "typecheck".
//
// Findings are waived in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or alone on the line above. The catalogue:
//
//	mapdet        order-sensitive effect inside a map iteration
//	lockheld      mutex held across a blocking call
//	errsink       discarded error from a Write/Encode/Flush call
//	atomichygiene mixed sync/atomic and plain access to one variable
//	copylocks     sync.Mutex/WaitGroup (or atomic box) copied by value
//	tornload      same atomic.Pointer/Value loaded twice in one function
//	goleak        goroutine with no join path back to its spawner
//	wgmisuse      WaitGroup.Add inside the goroutine, or Done without Add
//	ackorder      HTTP response or channel ack before the WAL Sync/Flush
package main

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (CI artifact form)")
	verbose := flag.Bool("v", false, "report progress per package")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drlint [-only names] [-json] [-v] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The stdlib source importer resolves module-internal imports
	// relative to the working directory.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	pkgs, err := loader.LoadModule(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var all []lint.Diagnostic
	malformed := false
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "drlint: %s (%d files)\n", pkg.PkgPath, len(pkg.Files))
		}
		// Analysis still ran on partial information, but a tree that
		// does not type-check must never pass as clean.
		for _, terr := range pkg.TypeErrors {
			all = append(all, typeErrorDiagnostic(pkg, terr))
		}
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			// A malformed //lint:ignore is a broken safety interlock,
			// not a finding: report it, then exit 2 rather than 1.
			if d.Analyzer == "drlint" && strings.Contains(d.Message, "malformed") {
				malformed = true
			}
		}
		all = append(all, diags...)
	}

	if *jsonOut {
		data, err := lint.MarshalJSONDiagnostics(root, all)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			// A half-written artifact must not pass for a clean run.
			fmt.Fprintln(os.Stderr, "drlint: writing artifact:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	switch {
	case malformed:
		fmt.Fprintf(os.Stderr, "drlint: %d finding(s), including an unparseable //lint:ignore directive\n", len(all))
		os.Exit(2)
	case len(all) > 0:
		fmt.Fprintf(os.Stderr, "drlint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// typeErrorDiagnostic folds a type-check failure into the diagnostic
// stream under the pseudo-analyzer "typecheck", with the real
// file:line:col when the error carries one.
func typeErrorDiagnostic(pkg *lint.Package, err error) lint.Diagnostic {
	d := lint.Diagnostic{Analyzer: "typecheck", Message: err.Error()}
	if te, ok := err.(types.Error); ok {
		d.Pos = te.Fset.Position(te.Pos)
		d.Message = te.Msg
	} else {
		d.Message = fmt.Sprintf("%s: %v", pkg.PkgPath, err)
	}
	return d
}

// drlint runs the repo's project-specific static analyzers (see
// internal/lint) over the module:
//
//	drlint [-only mapdet,lockheld] [-v] [packages]
//
// Package patterns are directories relative to the module root, with
// the usual /... recursion; the default is ./... . The tool locates
// the enclosing module from the working directory, so it can be run
// from any subdirectory. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
//
// Findings are waived in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or alone on the line above. The catalogue:
//
//	mapdet        order-sensitive effect inside a map iteration
//	lockheld      mutex held across a blocking call
//	errsink       discarded error from a Write/Encode/Flush call
//	atomichygiene mixed sync/atomic and plain access to one variable
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	verbose := flag.Bool("v", false, "report progress per package")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drlint [-only names] [-v] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The stdlib source importer resolves module-internal imports
	// relative to the working directory.
	if err := os.Chdir(root); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	pkgs, err := loader.LoadModule(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "drlint: %s (%d files)\n", pkg.PkgPath, len(pkg.Files))
		}
		if len(pkg.TypeErrors) > 0 {
			// Analysis still ran on partial information, but a tree
			// that does not type-check must never pass as clean.
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "drlint: %s: type error: %v\n", pkg.PkgPath, terr)
			}
			found += len(pkg.TypeErrors)
		}
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		found += len(diags)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "drlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

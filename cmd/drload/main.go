// Command drload is the load generator and soak harness for the query
// serving layer: N concurrent clients firing zipfian (s, t) pair
// traffic, reporting achieved QPS and latency percentiles in the same
// BENCH_*.json shape drbench writes, so benchcompare can gate serving
// regressions exactly like build regressions.
//
// Two modes:
//
//	# Hammer a live drserve over HTTP (single queries or batches):
//	drload -addr 127.0.0.1:8080 -clients 8 -duration 10s -batch 16
//	drload -addr 127.0.0.1:8080 -requests 20000 -verify-idx web.idx
//
//	# Hammer a fleet (replicas directly, or one/more drrouters) with
//	# per-endpoint error accounting, reloading the index under load:
//	drload -addrs 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -batch 16
//	drload -addrs 127.0.0.1:8080 -reload-every 500ms -duration 10s
//
//	# Profile the index in-process, flat vs. pre-flat slice layout:
//	drload -mode inproc -idx web.idx -layout flat  -json
//	drload -mode inproc -idx web.idx -layout slice -json
//
//	# Hammer the rich read endpoints (DESIGN.md §15): witness paths,
//	# set sizes, and streaming joins, each verified against the index:
//	drload -mode path  -addr 127.0.0.1:8080 -verify-idx web.idx -verify-graph web.bin
//	drload -mode count -addr 127.0.0.1:8080 -verify-idx web.idx
//	drload -mode join  -addr 127.0.0.1:8080 -batch 16 -verify-idx web.idx
//
// The rich modes reuse the serve-mode plumbing: path answers one
// GET /reach/path per sampled pair (a server without the graph
// attached answers 501, which counts as an error — run drserve with
// -graph), count answers one GET /reach/count per sampled source, and
// join POSTs each batch's sources×targets cross-product to
// /reach/join and consumes the NDJSON stream. With -verify-idx a path
// answer's reachable bit, a count's set size, and a join's exact pair
// set are all checked against the local index; -verify-graph
// additionally checks that every witness-path hop is a real edge.
//
// With -verify-idx the HTTP answers are checked against a locally
// loaded copy of the index and any mismatch counts as an error; the
// exit status is nonzero whenever errors occurred, which is what CI's
// serve-smoke and fleet-smoke jobs gate on. With several -addrs the
// per-endpoint request/error tallies are printed, so a fleet run's
// failures point at the replica that produced them. -reload-every
// POSTs /admin/reload to the endpoints round-robin while the clients
// fire (a drrouter endpoint fans the reload across its replicas), so
// the run proves the zero-downtime swap: reload failures are counted
// separately and also exit nonzero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/graph"
)

func main() {
	var (
		mode      = flag.String("mode", "serve", "serve (HTTP loadgen), path, count, join (rich-endpoint loadgen), or inproc (layout profiling)")
		addr      = flag.String("addr", "127.0.0.1:8080", "serve mode: host:port of a running drserve or drrouter")
		addrs     = flag.String("addrs", "", "serve mode: comma-separated endpoints; overrides -addr and reports per-endpoint errors")
		reloadEv  = flag.Duration("reload-every", 0, "serve mode: POST /admin/reload to the endpoints (round-robin) at this period during the run")
		writers   = flag.Int("writers", 0, "serve mode: concurrent writer loops POSTing /edges mutations (update mix; target must run drserve -graph/-wal)")
		writeWin  = flag.Int("write-window", 0, "serve mode: restrict writer edges to the newest N vertex IDs (citation-growth regime; 0 = whole ID space)")
		writeEv   = flag.Duration("write-every", 0, "serve mode: throttle each writer to one mutation per period (0 = back-to-back)")
		reloadRef = flag.String("reload-ref", "", "serve mode: index ref sent with -reload-every reloads (default: the endpoint's own default source)")
		idxPath   = flag.String("idx", "", "inproc mode: index file to profile (required)")
		layout    = flag.String("layout", "flat", "inproc mode: flat (CSR index) or slice (pre-flat per-vertex lists)")
		verifyIdx = flag.String("verify-idx", "", "serve/path/count/join modes: index file to check HTTP answers against")
		verifyG   = flag.String("verify-graph", "", "path mode: edge list to check witness-path hops against (needs -verify-idx)")
		clients   = flag.Int("clients", 8, "concurrent client loops")
		requests  = flag.Int("requests", 10000, "total requests (serve mode, ignored with -duration)")
		duration  = flag.Duration("duration", 0, "soak: run until this deadline instead of a request count")
		batch     = flag.Int("batch", 1, "pairs per request: 1 = GET /reach, >1 = POST /reach/batch")
		queries   = flag.Int("queries", 200000, "inproc mode: sampled query pairs")
		zipfS     = flag.Float64("zipf", 1.1, "zipf skew of the pair distribution (<=1 = uniform)")
		seed      = flag.Int64("seed", 1, "traffic seed (client i uses seed+i)")
		name      = flag.String("name", "", "dataset name in the record (default: index file base, else \"serve\")")
		asJSON    = flag.Bool("json", false, "write a machine-readable BENCH_*.json record")
		jsonDir   = flag.String("json-dir", ".", "directory for BENCH_*.json records")
	)
	flag.Parse()

	switch *mode {
	case "serve", "path", "count", "join":
		list := *addrs
		if list == "" {
			list = *addr
		}
		endpoints := splitAddrs(list)
		if len(endpoints) == 0 {
			fatal(fmt.Errorf("no endpoints in -addr/-addrs"))
		}
		runServe(*mode, endpoints, *verifyIdx, *verifyG, *reloadEv, *reloadRef, *writers, *writeEv, *writeWin, *clients, *requests, *duration, *batch, *zipfS, *seed, *name, *asJSON, *jsonDir)
	case "inproc":
		runInproc(*idxPath, *layout, *queries, *zipfS, *seed, *name, *asJSON, *jsonDir)
	default:
		fatal(fmt.Errorf("unknown mode %q (serve, path, count, join, or inproc)", *mode))
	}
}

// splitAddrs parses a comma-separated endpoint list into base URLs.
func splitAddrs(list string) []string {
	var bases []string
	for _, a := range strings.Split(list, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		bases = append(bases, strings.TrimSuffix(a, "/"))
	}
	return bases
}

// runServe drives one or more live endpoints and exits nonzero on any
// request, verification, or reload error.
func runServe(workload string, bases []string, verifyIdx, verifyGraph string, reloadEvery time.Duration, reloadRef string, writers int, writeEvery time.Duration, writeWindow, clients, requests int, duration time.Duration, batch int, zipfS float64, seed int64, name string, asJSON bool, jsonDir string) {
	vertices := serverVertices(bases[0])
	var oracle *reachlab.Index
	if verifyIdx != "" {
		if writers > 0 {
			fatal(fmt.Errorf("-verify-idx and -writers are incompatible: a static oracle cannot check a mutating graph (the soak test covers that)"))
		}
		oracle = loadIndex(verifyIdx)
		if oracle.NumVertices() != vertices {
			fatal(fmt.Errorf("-verify-idx covers %d vertices, server reports %d", oracle.NumVertices(), vertices))
		}
	}
	var pathGraph *reachlab.Graph
	if verifyGraph != "" {
		if workload != "path" {
			fatal(fmt.Errorf("-verify-graph only applies to -mode path"))
		}
		if oracle == nil {
			fatal(fmt.Errorf("-verify-graph needs -verify-idx (the graph checks hops, the index checks the bit)"))
		}
		g, err := reachlab.LoadGraph(verifyGraph)
		if err != nil {
			fatal(err)
		}
		if g.NumVertices() != vertices {
			fatal(fmt.Errorf("-verify-graph covers %d vertices, server reports %d", g.NumVertices(), vertices))
		}
		pathGraph = g
	}
	httpc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        clients * 2 * len(bases),
			MaxIdleConnsPerHost: clients * 2,
		},
	}
	endpoints := make([]bench.Client, len(bases))
	var algo string
	switch workload {
	case "path":
		algo, batch = "http-path", 1
		for i, base := range bases {
			endpoints[i] = pathClient(httpc, base, oracle, pathGraph)
		}
	case "count":
		algo, batch = "http-count", 1
		for i, base := range bases {
			endpoints[i] = countClient(httpc, base, oracle)
		}
	case "join":
		if batch < 1 {
			batch = 1
		}
		algo = fmt.Sprintf("http-join%d", batch)
		for i, base := range bases {
			endpoints[i] = joinClient(httpc, base, oracle)
		}
	default:
		algo = "http-single"
		if batch > 1 {
			algo = fmt.Sprintf("http-batch%d", batch)
			for i, base := range bases {
				endpoints[i] = batchClient(httpc, base, oracle)
			}
		} else {
			batch = 1
			for i, base := range bases {
				endpoints[i] = singleClient(httpc, base, oracle)
			}
		}
	}

	opts := bench.LoadgenOptions{
		Clients:   clients,
		Requests:  requests,
		Duration:  duration,
		BatchSize: batch,
		Vertices:  vertices,
		ZipfS:     zipfS,
		Seed:      seed,
	}
	if reloadEvery > 0 {
		opts.DisruptEvery = reloadEvery
		opts.Disrupt = func(k int) error {
			return postReload(httpc, bases[k%len(bases)], reloadRef)
		}
	}
	if writers > 0 {
		opts.Writers = writers
		opts.WriteEvery = writeEvery
		opts.WriteWindow = writeWindow
		opts.Write = func(w, k int, insert bool, u, v graph.VertexID) error {
			return postEdge(httpc, bases[w%len(bases)], insert, u, v)
		}
	}
	res, perEnd := bench.RunLoadgenEndpoints(opts, endpoints)

	if name == "" {
		name = "serve"
	}
	report(name, algo, clients, res)
	if len(bases) > 1 {
		for i, e := range perEnd {
			fmt.Printf("  endpoint %-28s %8d requests  %d errors\n", bases[i], e.Requests, e.Errors)
		}
	}
	if res.Disruptions > 0 {
		fmt.Printf("  reloads fired: %d (%d failed)\n", res.Disruptions, res.DisruptErrors)
	}
	if res.Writes > 0 {
		fmt.Printf("  updates: %d writes (%d failed), %.0f updates/s sustained\n", res.Writes, res.WriteErrors, res.UPS)
	}
	if asJSON {
		prefix := "load"
		if writers > 0 {
			prefix = "update"
		}
		writeRecord(jsonDir, prefix, name, algo, clients, res)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "drload: %d of %d requests failed\n", res.Errors, res.Requests)
		os.Exit(1)
	}
	if res.DisruptErrors > 0 {
		fmt.Fprintf(os.Stderr, "drload: %d of %d reloads failed\n", res.DisruptErrors, res.Disruptions)
		os.Exit(1)
	}
	if res.WriteErrors > 0 {
		fmt.Fprintf(os.Stderr, "drload: %d of %d writes failed\n", res.WriteErrors, res.Writes)
		os.Exit(1)
	}
}

// postEdge sends one durable edge mutation to an endpoint (a drserve
// replica in update mode, or a drrouter which fans it to the fleet).
func postEdge(httpc *http.Client, base string, insert bool, u, v graph.VertexID) error {
	op := "delete"
	if insert {
		op = "insert"
	}
	raw, err := json.Marshal(struct {
		Op string `json:"op"`
		U  int64  `json:"u"`
		V  int64  `json:"v"`
	}{Op: op, U: int64(u), V: int64(v)})
	if err != nil {
		return err
	}
	resp, err := httpc.Post(base+"/edges", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("edge %s(%d,%d) status %d", op, u, v, resp.StatusCode)
	}
	return nil
}

// postReload triggers one index reload on an endpoint (a drserve
// replica, or a drrouter which fans it across the fleet).
func postReload(httpc *http.Client, base, ref string) error {
	body := "{}"
	if ref != "" {
		raw, err := json.Marshal(struct {
			Ref string `json:"ref"`
		}{Ref: ref})
		if err != nil {
			return err
		}
		body = string(raw)
	}
	resp, err := httpc.Post(base+"/admin/reload", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload status %d", resp.StatusCode)
	}
	return nil
}

// runInproc profiles the index's query kernel without a network in
// the chosen layout — the flat CSR arrays or the pre-flat per-vertex
// slice lists — so the two layouts' BENCH records are directly
// comparable (`benchcompare -queries slice.json flat.json`).
func runInproc(idxPath, layout string, queries int, zipfS float64, seed int64, name string, asJSON bool, jsonDir string) {
	if idxPath == "" {
		fatal(fmt.Errorf("inproc mode requires -idx"))
	}
	idx := loadIndex(idxPath)
	lab := idx.LabelIndex()
	var reach func(s, t graph.VertexID) bool
	switch layout {
	case "flat":
		reach = lab.Reachable
	case "slice":
		reach = lab.Thaw().Reachable
	default:
		fatal(fmt.Errorf("unknown layout %q (flat or slice)", layout))
	}
	pairs := bench.ZipfPairs(lab.NumVertices(), queries, zipfS, seed)
	qs, total := bench.ProfileQueries(reach, pairs)
	res := bench.LoadgenResult{
		Requests: int64(queries),
		Pairs:    int64(queries),
		Elapsed:  total,
		QPS:      float64(queries) / total.Seconds(),
		Latency:  qs,
	}
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(idxPath), filepath.Ext(idxPath))
	}
	algo := "query-inproc"
	report(name+"/"+layout, algo, 1, res)
	if asJSON {
		writeRecord(jsonDir, "load", name, algo, 1, res, "layout-"+layout)
	}
}

// serverVertices asks /stats for the vertex-ID space.
func serverVertices(base string) int {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		fatal(fmt.Errorf("querying %s/stats: %w", base, err))
	}
	defer resp.Body.Close()
	var stats struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fatal(fmt.Errorf("decoding /stats: %w", err))
	}
	if stats.Vertices <= 0 {
		fatal(fmt.Errorf("server reports %d vertices", stats.Vertices))
	}
	return stats.Vertices
}

// singleClient answers one pair per request via GET /reach.
func singleClient(httpc *http.Client, base string, oracle *reachlab.Index) bench.Client {
	return func(pairs []graph.Edge) error {
		p := pairs[0]
		resp, err := httpc.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", base, p.U, p.V))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var body struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if oracle != nil && body.Reachable != oracle.Reachable(p.U, p.V) {
			return fmt.Errorf("reach(%d,%d): server says %v, index says %v", p.U, p.V, body.Reachable, !body.Reachable)
		}
		return nil
	}
}

// batchClient answers a batch per request via POST /reach/batch.
func batchClient(httpc *http.Client, base string, oracle *reachlab.Index) bench.Client {
	return func(pairs []graph.Edge) error {
		req := struct {
			Pairs [][2]int64 `json:"pairs"`
		}{Pairs: make([][2]int64, len(pairs))}
		for i, p := range pairs {
			req.Pairs[i] = [2]int64{int64(p.U), int64(p.V)}
		}
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := httpc.Post(base+"/reach/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var body struct {
			Count   int    `json:"count"`
			Results []bool `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if body.Count != len(pairs) || len(body.Results) != len(pairs) {
			return fmt.Errorf("batch of %d pairs got %d answers", len(pairs), len(body.Results))
		}
		if oracle != nil {
			for i, p := range pairs {
				if body.Results[i] != oracle.Reachable(p.U, p.V) {
					return fmt.Errorf("batch reach(%d,%d): server says %v", p.U, p.V, body.Results[i])
				}
			}
		}
		return nil
	}
}

// pathClient answers one witness-path request per pair via
// GET /reach/path. The reachable bit is checked against the oracle
// index and, when -verify-graph supplied the edge list, every hop of
// the returned path is checked to be a real edge with the right
// endpoints.
func pathClient(httpc *http.Client, base string, oracle *reachlab.Index, g *reachlab.Graph) bench.Client {
	return func(pairs []graph.Edge) error {
		p := pairs[0]
		resp, err := httpc.Get(fmt.Sprintf("%s/reach/path?s=%d&t=%d", base, p.U, p.V))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("path status %d", resp.StatusCode)
		}
		var body struct {
			Reachable bool    `json:"reachable"`
			Path      []int64 `json:"path"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if body.Reachable != (len(body.Path) > 0) {
			return fmt.Errorf("path(%d,%d): reachable=%v but %d path vertices", p.U, p.V, body.Reachable, len(body.Path))
		}
		if oracle != nil && body.Reachable != oracle.Reachable(p.U, p.V) {
			return fmt.Errorf("path(%d,%d): server says reachable=%v, index disagrees", p.U, p.V, body.Reachable)
		}
		if body.Reachable {
			if body.Path[0] != int64(p.U) || body.Path[len(body.Path)-1] != int64(p.V) {
				return fmt.Errorf("path(%d,%d): endpoints %d..%d", p.U, p.V, body.Path[0], body.Path[len(body.Path)-1])
			}
			if g != nil {
				for i := 0; i+1 < len(body.Path); i++ {
					u, v := graph.VertexID(body.Path[i]), graph.VertexID(body.Path[i+1])
					if !hasEdge(g, u, v) {
						return fmt.Errorf("path(%d,%d): hop %d->%d is not an edge", p.U, p.V, u, v)
					}
				}
			}
		}
		return nil
	}
}

// hasEdge reports whether u->v is an edge of g.
func hasEdge(g *reachlab.Graph, u, v graph.VertexID) bool {
	for _, w := range g.OutNeighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// countClient answers one reachable-set-size request per sampled
// source (the pair's s side) via GET /reach/count.
func countClient(httpc *http.Client, base string, oracle *reachlab.Index) bench.Client {
	return func(pairs []graph.Edge) error {
		s := pairs[0].U
		resp, err := httpc.Get(fmt.Sprintf("%s/reach/count?s=%d", base, s))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("count status %d", resp.StatusCode)
		}
		var body struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if oracle != nil {
			if want := oracle.ReachableSetSize(s); body.Count != want {
				return fmt.Errorf("count(%d): server says %d, index says %d", s, body.Count, want)
			}
		}
		return nil
	}
}

// joinClient POSTs each batch's deduplicated sources×targets
// cross-product to /reach/join and consumes the NDJSON stream. The
// protocol itself is always checked — strictly ascending (s, t)
// pairs, a terminal done line whose count matches the pairs received,
// a scanned tally equal to the cross product — and with an oracle the
// result set is checked to be exactly the reachable subset.
func joinClient(httpc *http.Client, base string, oracle *reachlab.Index) bench.Client {
	return func(pairs []graph.Edge) error {
		sources := make([]int64, 0, len(pairs))
		targets := make([]int64, 0, len(pairs))
		for _, p := range pairs {
			sources = append(sources, int64(p.U))
			targets = append(targets, int64(p.V))
		}
		sources, targets = dedupSort(sources), dedupSort(targets)
		raw, err := json.Marshal(struct {
			Sources []int64 `json:"sources"`
			Targets []int64 `json:"targets"`
		}{Sources: sources, Targets: targets})
		if err != nil {
			return err
		}
		resp, err := httpc.Post(base+"/reach/join", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("join status %d", resp.StatusCode)
		}
		var (
			sc        = bufio.NewScanner(resp.Body)
			got       = 0
			lastS     = int64(-1)
			lastT     = int64(-1)
			done      = false
			doneCount = 0
			doneScan  = 0
		)
		for sc.Scan() {
			if done {
				return fmt.Errorf("join: line after the done line")
			}
			var line struct {
				S       *int64 `json:"s"`
				T       *int64 `json:"t"`
				Done    bool   `json:"done"`
				Count   int    `json:"count"`
				Scanned int    `json:"scanned"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return fmt.Errorf("join: bad line %q: %w", sc.Text(), err)
			}
			if line.Done {
				done, doneCount, doneScan = true, line.Count, line.Scanned
				continue
			}
			if line.S == nil || line.T == nil {
				return fmt.Errorf("join: line %q is neither a pair nor done", sc.Text())
			}
			if *line.S < lastS || (*line.S == lastS && *line.T <= lastT) {
				return fmt.Errorf("join: pair (%d,%d) not in ascending order after (%d,%d)", *line.S, *line.T, lastS, lastT)
			}
			lastS, lastT = *line.S, *line.T
			if oracle != nil && !oracle.Reachable(graph.VertexID(*line.S), graph.VertexID(*line.T)) {
				return fmt.Errorf("join: pair (%d,%d) is not reachable in the index", *line.S, *line.T)
			}
			got++
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if !done {
			return fmt.Errorf("join: stream ended without a done line (%d pairs in)", got)
		}
		if doneCount != got {
			return fmt.Errorf("join: done line says %d pairs, stream carried %d", doneCount, got)
		}
		if doneScan != len(sources)*len(targets) {
			return fmt.Errorf("join: scanned %d, cross product is %d×%d", doneScan, len(sources), len(targets))
		}
		if oracle != nil {
			want := 0
			for _, s := range sources {
				tv := make([]graph.VertexID, len(targets))
				for i, t := range targets {
					tv[i] = graph.VertexID(t)
				}
				for _, ok := range oracle.ReachableFrom(graph.VertexID(s), tv) {
					if ok {
						want++
					}
				}
			}
			// Every streamed pair is reachable and distinct (ascending
			// order), so matching cardinality means matching sets.
			if got != want {
				return fmt.Errorf("join: %d pairs streamed, index says the join has %d", got, want)
			}
		}
		return nil
	}
}

// dedupSort sorts vs ascending and removes duplicates.
func dedupSort(vs []int64) []int64 {
	slices.Sort(vs)
	return slices.Compact(vs)
}

func loadIndex(path string) *reachlab.Index {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	idx, err := reachlab.ReadIndex(f)
	if err != nil {
		fatal(err)
	}
	return idx
}

func report(name, algo string, clients int, res bench.LoadgenResult) {
	fmt.Printf("%s %s: %d requests (%d pairs, %d errors) in %v, %d clients\n",
		name, algo, res.Requests, res.Pairs, res.Errors, res.Elapsed.Round(time.Millisecond), clients)
	fmt.Printf("  %.0f pairs/s   latency mean %v  p50 %v  p90 %v  p99 %v\n",
		res.QPS, res.Latency.Mean, res.Latency.P50, res.Latency.P90, res.Latency.P99)
}

// writeRecord serializes the run in the drbench RunRecord shape so
// benchcompare -queries can diff serving runs. prefix distinguishes
// query-only records (BENCH_load-*) from update-mix ones
// (BENCH_update-*); both carry the same dataset/algo key so
// benchcompare matches them against each other.
func writeRecord(dir, prefix, name, algo string, clients int, res bench.LoadgenResult, tags ...string) {
	rec := bench.RunRecord{
		Experiment: "loadgen",
		Suite:      name,
		Workers:    clients,
		Queries:    int(res.Pairs),
		UnixTime:   time.Now().Unix(),
		Datasets: []bench.DatasetRecord{{
			Name: name,
			Builds: []bench.BuildRecord{{
				Algo:        algo,
				Seconds:     res.Elapsed.Seconds(),
				QPS:         res.QPS,
				Errors:      res.Errors,
				UPS:         res.UPS,
				Writes:      res.Writes,
				WriteErrors: res.WriteErrors,
				Query: &bench.QueryRecord{
					MeanNanos: res.Latency.Mean.Nanoseconds(),
					P50Nanos:  res.Latency.P50.Nanoseconds(),
					P90Nanos:  res.Latency.P90.Nanoseconds(),
					P99Nanos:  res.Latency.P99.Nanoseconds(),
				},
			}},
		}},
	}
	suffix := ""
	if len(tags) > 0 {
		suffix = "-" + strings.Join(tags, "-")
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s-%s%s-%d.json", prefix, name, suffix, rec.UnixTime))
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drload:", err)
	os.Exit(1)
}

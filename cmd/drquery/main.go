// Command drquery answers reachability queries from a serialized
// index — no graph access needed, which is the point of the
// index-only approach.
//
// Usage:
//
//	drquery -idx graph.idx 3 17 5 99        # pairs on the command line
//	echo "3 17" | drquery -idx graph.idx -  # pairs from stdin
//	drquery -idx graph.idx -bench 1000000   # mean random-query latency
//
// Rich verbs: -count reports reachable-set sizes for single vertices,
// and -path reconstructs a witness path per pair — paths walk real
// edges, so -path additionally needs the -graph edge list the index
// was built from:
//
//	drquery -idx graph.idx -count 3 17
//	drquery -idx graph.idx -graph graph.txt -path 3 17
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"repro"
)

func main() {
	var (
		idxPath   = flag.String("idx", "", "index file written by drlabel (required)")
		graphPath = flag.String("graph", "", "edge list the index was built from (required by -path)")
		bench     = flag.Int("bench", 0, "run this many random queries and report the mean latency")
		seed      = flag.Int64("seed", 1, "random query seed for -bench")
		doCount   = flag.Bool("count", false, "treat each argument as one source and report its reachable-set size")
		doPath    = flag.Bool("path", false, "reconstruct a witness path per pair (needs -graph)")
	)
	flag.Parse()
	if *idxPath == "" {
		fatal(fmt.Errorf("missing -idx"))
	}
	if *doCount && *doPath {
		fatal(fmt.Errorf("-count and -path are mutually exclusive"))
	}
	f, err := os.Open(*idxPath)
	if err != nil {
		fatal(err)
	}
	idx, err := reachlab.ReadIndex(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *graphPath != "" {
		g, err := reachlab.LoadGraph(*graphPath)
		if err != nil {
			fatal(err)
		}
		if err := idx.AttachGraph(g); err != nil {
			fatal(err)
		}
	}
	if *doPath && !idx.HasGraph() {
		fatal(fmt.Errorf("-path needs the edge list: pass -graph"))
	}
	n := idx.NumVertices()
	fmt.Fprintf(os.Stderr, "index covers %d vertices\n", n)
	if n == 0 {
		fatal(fmt.Errorf("index is empty"))
	}

	if *doCount {
		if len(flag.Args()) == 0 {
			fatal(fmt.Errorf("-count needs source vertices"))
		}
		for _, a := range flag.Args() {
			s, err := strconv.Atoi(a)
			if err != nil {
				fatal(err)
			}
			if s < 0 || s >= n {
				fmt.Printf("|reach(%d)| = out of range\n", s)
				continue
			}
			fmt.Printf("|reach(%d)| = %d\n", s, idx.ReachableSetSize(reachlab.VertexID(s)))
		}
		return
	}

	if *bench > 0 {
		rng := rand.New(rand.NewSource(*seed))
		pairs := make([][2]reachlab.VertexID, *bench)
		for i := range pairs {
			pairs[i] = [2]reachlab.VertexID{
				reachlab.VertexID(rng.Intn(n)),
				reachlab.VertexID(rng.Intn(n)),
			}
		}
		reachable := 0
		start := time.Now()
		for _, p := range pairs {
			if idx.Reachable(p[0], p[1]) {
				reachable++
			}
		}
		dur := time.Since(start)
		fmt.Printf("%d queries in %v (%.2E s/query), %d reachable\n",
			*bench, dur.Round(time.Millisecond),
			dur.Seconds()/float64(*bench), reachable)
		return
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "-" {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			var s, t int
			if _, err := fmt.Sscan(sc.Text(), &s, &t); err != nil {
				fatal(fmt.Errorf("bad query line %q: %w", sc.Text(), err))
			}
			answer(idx, s, t, n, *doPath)
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		return
	}
	if len(args) == 0 || len(args)%2 != 0 {
		fatal(fmt.Errorf("provide s t vertex pairs (or '-' for stdin)"))
	}
	for i := 0; i < len(args); i += 2 {
		s, err := strconv.Atoi(args[i])
		if err != nil {
			fatal(err)
		}
		t, err := strconv.Atoi(args[i+1])
		if err != nil {
			fatal(err)
		}
		answer(idx, s, t, n, *doPath)
	}
}

func answer(idx *reachlab.Index, s, t, n int, withPath bool) {
	if s < 0 || s >= n || t < 0 || t >= n {
		fmt.Printf("q(%d,%d) = out of range\n", s, t)
		return
	}
	if withPath {
		path, err := idx.WitnessPath(reachlab.VertexID(s), reachlab.VertexID(t))
		if err != nil {
			fatal(err)
		}
		if path == nil {
			fmt.Printf("path(%d,%d) = unreachable\n", s, t)
			return
		}
		fmt.Printf("path(%d,%d) =", s, t)
		for _, v := range path {
			fmt.Printf(" %d", v)
		}
		fmt.Printf("  (%d hops)\n", len(path)-1)
		return
	}
	fmt.Printf("q(%d,%d) = %v\n", s, t, idx.Reachable(reachlab.VertexID(s), reachlab.VertexID(t)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drquery:", err)
	os.Exit(1)
}

// Command drrouter is the fleet frontend: it fans /reach and
// /reach/batch queries across N drserve replicas, either replicated
// (any replica answers; least-outstanding wins) or sharded by source
// rank (shard(s) = s mod K; batches split per shard and merged back
// into caller order), with periodic health checks, automatic
// removal/readmission of misbehaving replicas, graceful drain, and a
// fleet-wide index reload that swaps every replica to a new epoch
// with zero downtime (DESIGN.md §11).
//
// Usage:
//
//	drserve -idx graph.idx -listen 127.0.0.1:9001 &
//	drserve -idx graph.idx -listen 127.0.0.1:9002 &
//	drserve -idx graph.idx -listen 127.0.0.1:9003 &
//	drrouter -replicas 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 -mode sharded
//
//	curl 'localhost:8080/reach?s=3&t=17'                  # same API as drserve
//	curl -d '{"pairs":[[3,17],[5,9]]}' 'localhost:8080/reach/batch'
//	curl 'localhost:8080/stats'                           # per-replica state + epochs
//	curl -X POST 'localhost:8080/admin/drain?replica=127.0.0.1:9002'
//	curl -X POST 'localhost:8080/admin/readmit?replica=127.0.0.1:9002'
//	curl -X POST 'localhost:8080/admin/reload'            # swap every replica's index
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	var (
		replicas  = flag.String("replicas", "", "comma-separated replica addresses (host:port, required)")
		mode      = flag.String("mode", "replicated", "routing mode: replicated or sharded")
		listen    = flag.String("listen", "127.0.0.1:8080", "address to listen on")
		check     = flag.Duration("check-every", 500*time.Millisecond, "health-probe interval")
		downAfter = flag.Int("down-after", 2, "consecutive probe failures before a replica is marked down")
		upAfter   = flag.Int("up-after", 2, "consecutive probe successes before a down replica is readmitted")
		attempts  = flag.Int("max-attempts", 0, "per-query forwarding budget (0 = 4 × replicas)")
		backoff   = flag.Duration("retry-backoff", 25*time.Millisecond, "pause between retry rounds")
		maxBatch  = flag.Int("max-batch", 8192, "maximum pairs per /reach/batch request")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight queries")
	)
	flag.Parse()
	addrs := strings.Split(*replicas, ",")
	f, err := fleet.New(addrs, fleet.Options{
		Mode:          fleet.Mode(*mode),
		CheckInterval: *check,
		DownAfter:     *downAfter,
		UpAfter:       *upAfter,
		MaxAttempts:   *attempts,
		RetryBackoff:  *backoff,
		MaxBatch:      *maxBatch,
		Obs:           obs.Default,
	})
	if err != nil {
		fatal(err)
	}
	f.Start()
	defer f.Close()
	fmt.Printf("routing %s across %d replicas on %s (replica state at /stats)\n",
		*mode, f.NumReplicas(), *listen)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           f,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "drrouter: signal received, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "drrouter: drained, exiting")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drrouter:", err)
	os.Exit(1)
}

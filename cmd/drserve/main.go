// Command drserve serves reachability queries from a serialized index
// over HTTP — one replica of the paper's deployment model. It fronts
// the index with a sharded hot-pair answer cache and a batch endpoint,
// hot-reloads the index with zero downtime (POST /admin/reload or
// SIGHUP swap the frozen index and its cache atomically under live
// traffic), and shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight queries before exiting. cmd/drrouter fans traffic across
// several of these.
//
// Usage:
//
//	drserve -idx graph.idx -listen :8080
//	curl 'localhost:8080/reach?s=3&t=17'
//	curl -d '{"pairs":[[3,17],[5,9]]}' 'localhost:8080/reach/batch'
//	curl 'localhost:8080/stats'
//
// Rich queries (DESIGN.md §15): /reach/count and /reach/from amortize
// one out-label scan across many targets, /reach/join streams the
// reachable pairs of sources×targets as NDJSON, and /reach/path
// reconstructs a concrete witness path — the latter needs the edge
// list, so pass -graph alongside -idx to enable it:
//
//	drserve -idx graph.idx -graph graph.txt
//	curl 'localhost:8080/reach/path?s=3&t=17'
//	curl 'localhost:8080/reach/count?s=3'
//	curl -d '{"s":3,"targets":[17,41,99]}' 'localhost:8080/reach/from'
//	curl -d '{"sources":[3,5],"targets":[17,41]}' 'localhost:8080/reach/join'
//
//	# Rebuild the index elsewhere, then swap it in without dropping
//	# a query (epoch advances; confirm via /stats index_epoch):
//	curl -X POST 'localhost:8080/admin/reload'                 # re-read -idx
//	curl -X POST -d '{"ref":"new.idx"}' 'localhost:8080/admin/reload'
//	kill -HUP <pid>                                            # same as empty reload
//
// Update mode (DESIGN.md §12) serves a *mutable* graph: -graph + -wal
// replace -idx, POST /edges appends durable edge mutations to the
// write-ahead log, and a background refresher drains them in batches
// into the next served epoch. A restart replays the log, so every
// acknowledged write survives a crash:
//
//	drserve -graph graph.txt -wal edges.wal -refresh-every 2s
//	curl -d '{"op":"insert","u":3,"v":17}' 'localhost:8080/edges'
//	# → {"op":"insert","u":3,"v":17,"seq":1,"epoch":2}
//
// Budgeted mode serves graphs whose full index would not fit in
// memory: -graph + -budget builds a memory-bounded index (at most
// -budget label entries per vertex per direction; overflowing queries
// fall back to a label-pruned BFS) and serves it statically. Add
// -mmap to page the graph's adjacency from a binary v2 file on
// demand instead of loading it:
//
//	drserve -graph big.bin -mmap -budget 32
//
// Observability (see DESIGN.md §7):
//
//	curl 'localhost:8080/metrics'                          # Prometheus text
//	curl 'localhost:8080/trace'                            # superstep traces
//	go tool pprof 'localhost:8080/debug/pprof/profile?seconds=10'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/wal"
)

func main() {
	var (
		idxPath  = flag.String("idx", "", "index file written by drlabel (required unless -graph; also the default /admin/reload and SIGHUP source)")
		listen   = flag.String("listen", "127.0.0.1:8080", "address to listen on")
		cache    = flag.Int("cache", 1<<20, "hot-pair cache capacity in entries (0 disables)")
		shards   = flag.Int("cache-shards", 64, "hot-pair cache shard count")
		maxBatch = flag.Int("max-batch", reachlab.DefaultMaxBatch, "maximum pairs per /reach/batch request and entries per /reach/from and /reach/join list")
		maxJoin  = flag.Int("max-join", reachlab.DefaultMaxJoin, "maximum scanned cross product |sources|×|targets| per /reach/join request")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight queries")

		graphPath    = flag.String("graph", "", "text edge list: with -wal, update mode; with -budget, bounded static mode; with -idx, enables /reach/path witness paths")
		walPath      = flag.String("wal", "", "write-ahead edge log path (update mode; created if missing, replayed if present)")
		refreshEvery = flag.Duration("refresh-every", reachlab.DefaultRefreshEvery, "update mode: interval between refresh swaps")
		refreshBatch = flag.Int("refresh-batch", reachlab.DefaultRefreshBatch, "update mode: max log records applied per refresh swap")

		budget   = flag.Int("budget", 0, "with -graph and no -wal: build a memory-bounded index capped at this many label entries per vertex per direction and serve it")
		mmapFlag = flag.Bool("mmap", false, "budgeted mode: memory-map the graph (binary v2 files only) instead of reading it into RAM")
	)
	flag.Parse()

	var (
		handler *reachlab.QueryHandler
		updater *reachlab.Updater
		edgeLog *wal.Log
	)
	switch {
	case *graphPath != "" && *budget > 0:
		// Budgeted static mode: build a memory-bounded index over the
		// graph and serve it. The graph stays resident (the fallback
		// query path walks it), so -mmap lets the kernel page its
		// adjacency in and out instead of committing RAM up front.
		if *walPath != "" {
			fatal(fmt.Errorf("-budget serves a static bounded index; it cannot be combined with -wal update mode"))
		}
		if *idxPath != "" {
			fatal(fmt.Errorf("-budget builds its index from -graph; it cannot be combined with -idx"))
		}
		var g *reachlab.Graph
		var err error
		if *mmapFlag {
			g, _, err = reachlab.MapGraph(*graphPath)
		} else {
			g, err = reachlab.LoadGraph(*graphPath)
		}
		if err != nil {
			fatal(err)
		}
		idx, err := reachlab.Build(context.Background(), g, reachlab.Options{LabelBudget: *budget})
		if err != nil {
			fatal(err)
		}
		st := idx.Stats()
		fmt.Printf("serving %d vertices with label budget %d (%.2f MB labels, %d/%d vertices overflowed in/out) on %s\n",
			idx.NumVertices(), st.LabelBudget, float64(st.Bytes)/(1<<20), st.OverflowedIn, st.OverflowedOut, *listen)
		handler = reachlab.NewQueryHandlerOpts(idx, reachlab.ServeOptions{
			Obs:         reachlab.DefaultMetrics(),
			CachePairs:  *cache,
			CacheShards: *shards,
			MaxBatch:    *maxBatch,
			MaxJoin:     *maxJoin,
		})

	case *graphPath != "" && *walPath != "":
		if *idxPath != "" {
			fatal(fmt.Errorf("-wal and -idx are mutually exclusive (update mode serves the maintained snapshot)"))
		}
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := reachlab.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		edgeLog, err = wal.Open(*walPath)
		if err != nil {
			fatal(err)
		}
		updater, err = reachlab.NewUpdater(g, edgeLog, reachlab.UpdaterOptions{
			RefreshEvery: *refreshEvery,
			RefreshBatch: *refreshBatch,
			Obs:          reachlab.DefaultMetrics(),
		})
		if err != nil {
			fatal(err)
		}
		idx := updater.Snapshot()
		fmt.Printf("serving %d vertices in update mode (%d log records replayed, refresh every %s, batch %d) on %s\n",
			idx.NumVertices(), edgeLog.Count(), *refreshEvery, *refreshBatch, *listen)
		// No Loader: in update mode the updater owns every epoch
		// advance — /admin/reload answers 501, SIGHUP warns.
		handler = reachlab.NewQueryHandlerOpts(idx, reachlab.ServeOptions{
			Obs:         reachlab.DefaultMetrics(),
			CachePairs:  *cache,
			CacheShards: *shards,
			MaxBatch:    *maxBatch,
			MaxJoin:     *maxJoin,
		})
		handler.EnableUpdates(updater)
		updater.Start(handler)

	case *idxPath != "":
		// Optional -graph alongside -idx attaches the edge list the
		// index was built from, enabling /reach/path (witness paths
		// need edges to walk; the serialized index carries only labels).
		var pathGraph *reachlab.Graph
		if *graphPath != "" {
			g, err := reachlab.LoadGraph(*graphPath)
			if err != nil {
				fatal(err)
			}
			pathGraph = g
		}
		loader := func(ref string) (*reachlab.Index, error) {
			path := ref
			if path == "" {
				path = *idxPath
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			idx, err := reachlab.ReadIndex(f)
			if err != nil {
				return nil, err
			}
			if pathGraph != nil {
				if err := idx.AttachGraph(pathGraph); err != nil {
					return nil, fmt.Errorf("attaching -graph to %s: %w", path, err)
				}
			}
			return idx, nil
		}
		idx, err := loader("")
		if err != nil {
			fatal(err)
		}
		st := idx.Stats()
		paths := "disabled (no -graph)"
		if idx.HasGraph() {
			paths = "enabled"
		}
		fmt.Printf("serving %d vertices (%.2f MB index, %d cache slots, witness paths %s) on %s (metrics at /metrics, profiles at /debug/pprof/)\n",
			idx.NumVertices(), float64(st.Bytes)/(1<<20), *cache, paths, *listen)
		handler = reachlab.NewQueryHandlerOpts(idx, reachlab.ServeOptions{
			Obs:         reachlab.DefaultMetrics(),
			CachePairs:  *cache,
			CacheShards: *shards,
			MaxBatch:    *maxBatch,
			MaxJoin:     *maxJoin,
			Loader:      loader,
		})

	case *graphPath != "":
		fatal(fmt.Errorf("-graph alone is ambiguous: add -wal (update mode), -budget (bounded static mode), or -idx (witness paths over a static index)"))

	default:
		fatal(fmt.Errorf("missing -idx (static mode) or -graph/-wal (update mode)"))
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	// SIGHUP = reload the default index source under live traffic
	// (static mode only; update-mode epochs belong to the refresher).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if updater != nil {
				fmt.Fprintln(os.Stderr, "drserve: SIGHUP ignored in update mode (epochs advance via the refresher)")
				continue
			}
			epoch, vertices, err := handler.Reload("")
			if err != nil {
				fmt.Fprintln(os.Stderr, "drserve: SIGHUP reload failed:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "drserve: SIGHUP reload done: epoch %d, %d vertices\n", epoch, vertices)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		// ListenAndServe never returns nil; any return here is a bind
		// or accept failure, not a shutdown.
		fatal(err)
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "drserve: signal received, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		if updater != nil {
			// Unapplied log records are durable; the next start
			// replays them. Only stop the refresher and sync the log.
			updater.Close()
			if err := edgeLog.Close(); err != nil {
				fatal(fmt.Errorf("closing wal: %w", err))
			}
		}
		fmt.Fprintln(os.Stderr, "drserve: drained, exiting")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drserve:", err)
	os.Exit(1)
}

// Command drserve serves reachability queries from a serialized index
// over HTTP — the single query machine of the paper's deployment
// model.
//
// Usage:
//
//	drserve -idx graph.idx -listen :8080
//	curl 'localhost:8080/reach?s=3&t=17'
//	curl 'localhost:8080/stats'
//
// Observability (see DESIGN.md §7):
//
//	curl 'localhost:8080/metrics'                          # Prometheus text
//	curl 'localhost:8080/trace'                            # superstep traces
//	go tool pprof 'localhost:8080/debug/pprof/profile?seconds=10'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro"
)

func main() {
	var (
		idxPath = flag.String("idx", "", "index file written by drlabel (required)")
		listen  = flag.String("listen", "127.0.0.1:8080", "address to listen on")
	)
	flag.Parse()
	if *idxPath == "" {
		fatal(fmt.Errorf("missing -idx"))
	}
	f, err := os.Open(*idxPath)
	if err != nil {
		fatal(err)
	}
	idx, err := reachlab.ReadIndex(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("serving %d vertices (%.2f MB index) on %s (metrics at /metrics, profiles at /debug/pprof/)\n",
		idx.NumVertices(), float64(st.Bytes)/(1<<20), *listen)
	if err := http.ListenAndServe(*listen, reachlab.NewQueryHandler(idx)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drserve:", err)
	os.Exit(1)
}

// Command drworker hosts one computation node of the distributed
// labeling cluster: a net/rpc service that owns a graph partition and
// executes the vertex-centric programs (DRL, DRL_b) driven by a
// master (cmd/drcluster).
//
// Usage:
//
//	drworker -listen 127.0.0.1:7101
//
// The worker loads the graph itself when the master initializes the
// job, so the graph file must be readable at the same path on every
// node (shared storage, as in the paper's cluster).
//
// For fault-tolerance experiments, -crash-after N kills the process
// after N executed supersteps; the master re-dials the address and
// restores the replacement from the last checkpoint.
//
// -obs addr serves the worker's own /metrics and /debug/pprof on addr
// (per-step compute time and message counts for this node; the master
// aggregates cluster-wide volume).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/obs"
	"repro/internal/pregel"

	_ "repro/internal/drl" // registers the drl and drl-batch programs
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	crashAfter := flag.Int("crash-after", 0, "exit abruptly after N executed supersteps (fault injection; 0 = never)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/pprof on this address")
	flag.Parse()

	var opts pregel.WorkerOptions
	opts.Obs = obs.Default
	if *obsAddr != "" {
		//lint:ignore goleak metrics sidecar serves for the process lifetime; the OS reclaims it at exit
		go func() {
			if err := http.ListenAndServe(*obsAddr, obs.Handler(obs.Default)); err != nil {
				fmt.Fprintln(os.Stderr, "drworker: obs endpoint:", err)
			}
		}()
	}
	if *crashAfter > 0 {
		n := *crashAfter
		opts.StepHook = func(completed int) {
			if completed >= n {
				fmt.Fprintf(os.Stderr, "drworker: injected crash after %d supersteps\n", completed)
				os.Exit(3)
			}
		}
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- pregel.ServeWorkerOpts(*listen, ready, opts) }()
	select {
	case addr := <-ready:
		fmt.Printf("drworker listening on %s\n", addr)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "drworker:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil {
		fmt.Fprintln(os.Stderr, "drworker:", err)
		os.Exit(1)
	}
}

// Package reachlab answers reachability queries on directed graphs —
// including graphs partitioned across many computation nodes — from a
// compact offline index, reproducing "Reachability Labeling for
// Distributed Graphs" (ICDE 2022).
//
// The index is the Total Order Labeling (TOL) 2-hop index: each
// vertex stores a small in-label and out-label set, and q(s, t) is a
// merge of L_out(s) and L_in(t), typically well under a microsecond.
// TOL's classic construction is inherently serial; this library
// implements the paper's filtering-and-refinement algorithms (DRL,
// DRL_b), which build the exact same index in parallel on a
// vertex-centric system.
//
// Quick start:
//
//	g := reachlab.NewGraph(4, []reachlab.Edge{{0, 1}, {1, 2}, {2, 3}})
//	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{})
//	if err != nil { ... }
//	idx.Reachable(0, 3) // true
//
// Options.Method selects the construction algorithm; the default,
// MethodDRLBatch, is the paper's best (DRL_b: batched labeling on the
// simulated cluster). All methods produce bit-identical indexes, so
// the choice only affects build cost. See the examples directory for
// realistic workloads and cmd/drbench for the paper's full
// evaluation.
package reachlab

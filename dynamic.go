package reachlab

import (
	"errors"

	"repro/internal/tol"
)

// DynamicIndex is a reachability index that stays correct under edge
// insertions and deletions. Updates repair only the affected label
// region (falling back to a rebuild when an update touches most of
// the graph); queries are the same label-merge as Index.
//
// The vertex order is frozen at construction, as in the original TOL:
// updates never change which vertex ranks where, so label sizes can
// drift from the degree heuristic's optimum over long update
// sequences — reconstruct via Snapshot+Build when that matters.
// Distributed dynamic maintenance is the paper's stated future work;
// this maintainer is centralized.
type DynamicIndex struct {
	d *tol.DynamicIndex
}

// NewDynamicIndex builds a maintainable index over g.
func NewDynamicIndex(g *Graph) (*DynamicIndex, error) {
	if g == nil {
		return nil, errors.New("reachlab: nil graph")
	}
	return &DynamicIndex{d: tol.NewDynamic(g.d)}, nil
}

// Reachable answers q(s, t) against the current graph.
func (x *DynamicIndex) Reachable(s, t VertexID) bool { return x.d.Reachable(s, t) }

// InsertEdge adds the edge (u, v) and repairs the index. Inserting an
// existing edge is a no-op.
func (x *DynamicIndex) InsertEdge(u, v VertexID) error { return x.d.InsertEdge(u, v) }

// DeleteEdge removes the edge (u, v) and repairs the index. Deleting
// a missing edge is a no-op.
func (x *DynamicIndex) DeleteEdge(u, v VertexID) error { return x.d.DeleteEdge(u, v) }

// Graph materializes the current graph. The maintainer keeps
// adjacency incrementally, so this costs a full copy — call it for
// inspection, not per update.
func (x *DynamicIndex) Graph() *Graph { return &Graph{d: x.d.Graph()} }

// UpdateStats reports how updates were absorbed so far.
type UpdateStats struct {
	// Repairs counts updates absorbed by the localized incremental
	// sweep; Rebuilds counts updates whose affected region covered
	// most of the graph, triggering the full-rebuild fallback.
	Repairs  int64
	Rebuilds int64
}

// UpdateStats returns the repair/rebuild tally. No-op updates
// (inserting a present edge, deleting a missing one) count in
// neither.
func (x *DynamicIndex) UpdateStats() UpdateStats {
	s := x.d.UpdateStats()
	return UpdateStats{Repairs: s.Repairs, Rebuilds: s.Rebuilds}
}

// Snapshot freezes the current labels into an immutable, serializable
// Index.
func (x *DynamicIndex) Snapshot() *Index {
	return &Index{idx: x.d.Snapshot()}
}

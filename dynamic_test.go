package reachlab

import (
	"bytes"
	"testing"
)

func TestDynamicIndexPublicAPI(t *testing.T) {
	g := NewGraph(11, testEdges())
	d, err := NewDynamicIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reachable(1, 6) || d.Reachable(9, 0) {
		t.Fatal("initial answers wrong")
	}
	if err := d.InsertEdge(9, 0); err != nil { // v10 → v1
		t.Fatal(err)
	}
	if !d.Reachable(9, 8) { // v10 → v1 → v8 → v9
		t.Error("insert not reflected")
	}
	if err := d.DeleteEdge(9, 0); err != nil {
		t.Fatal(err)
	}
	if d.Reachable(9, 0) {
		t.Error("delete not reflected")
	}
	cur := d.Graph()
	for s := VertexID(0); s < 11; s++ {
		for x := VertexID(0); x < 11; x++ {
			if d.Reachable(s, x) != cur.ReachableBFS(s, x) {
				t.Fatalf("divergence at (%d,%d)", s, x)
			}
		}
	}
	// Snapshot serializes like a static index.
	snap := d.Snapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Reachable(9, 0) != d.Reachable(9, 0) {
		t.Error("snapshot round trip diverged")
	}
	if _, err := NewDynamicIndex(nil); err == nil {
		t.Error("nil graph should fail")
	}
}

// Citations: transitive citation analysis over a patent/paper-style
// citation DAG — "does work A build (transitively) on work B?" —
// comparing index queries against online BFS, the trade-off that
// motivates index-only reachability (§I of the paper).
//
//	go run ./examples/citations
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const n = 50000
	g, err := reachlab.GenerateGraph("citation", n, 4, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("citation graph:", g.Stats())

	start := time.Now()
	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v (%.2f KB, avg label %.2f)\n",
		time.Since(start).Round(time.Millisecond),
		float64(idx.Stats().Bytes)/1024, idx.Stats().AvgLabelSize)

	// Sample some "does A build on B" questions. Newer works have
	// higher IDs, so query new → old.
	rng := rand.New(rand.NewSource(7))
	type query struct{ a, b reachlab.VertexID }
	queries := make([]query, 200000)
	for i := range queries {
		a := reachlab.VertexID(n/2 + rng.Intn(n/2)) // a newer work
		b := reachlab.VertexID(rng.Intn(n / 2))     // an older work
		queries[i] = query{a, b}
	}

	start = time.Now()
	hits := 0
	for _, q := range queries {
		if idx.Reachable(q.a, q.b) {
			hits++
		}
	}
	perIdx := time.Since(start) / time.Duration(len(queries))
	fmt.Printf("index:  %d/%d pairs transitively connected, %v per query\n",
		hits, len(queries), perIdx)

	// The same questions by online BFS (index-free baseline), on a
	// small sample — each BFS may touch the whole graph.
	sample := queries[:200]
	start = time.Now()
	bfsHits := 0
	for _, q := range sample {
		if g.ReachableBFS(q.a, q.b) {
			bfsHits++
		}
	}
	perBFS := time.Since(start) / time.Duration(len(sample))
	fmt.Printf("BFS:    %v per query (%.0fx slower)\n", perBFS, float64(perBFS)/float64(perIdx))

	// Cross-check the two on the sample.
	for _, q := range sample {
		if idx.Reachable(q.a, q.b) != g.ReachableBFS(q.a, q.b) {
			log.Fatalf("index and BFS disagree on (%d,%d)", q.a, q.b)
		}
	}
	fmt.Println("index agrees with BFS on the sampled queries")
}

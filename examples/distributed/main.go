// Distributed: an actual multi-worker labeling cluster over TCP.
// Three worker services (the same code cmd/drworker hosts) are
// started in-process on ephemeral ports; the master drives DRL_b
// across them over net/rpc and collects the index — which is
// bit-identical to a single-machine build.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	// Generate and persist the graph: in the paper's deployment every
	// worker reads its partition from shared storage.
	const n = 20000
	g, err := reachlab.GenerateGraph("web", n, 3, 123)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "drlcluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	graphPath := filepath.Join(dir, "graph.bin")
	if err := reachlab.SaveGraph(graphPath, g, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g.Stats())

	// Start three workers. Each owns the vertices v with v mod 3 == id.
	const workers = 3
	addrs := make([]string, workers)
	for i := 0; i < workers; i++ {
		ready := make(chan string, 1)
		//lint:ignore goleak example worker serves until the process exits; ready (sent inside the RPC server) is the only handshake
		go func() {
			if err := reachlab.ServeWorker("127.0.0.1:0", ready); err != nil {
				log.Fatal(err)
			}
		}()
		addrs[i] = <-ready
		fmt.Printf("worker %d listening on %s\n", i, addrs[i])
	}

	// The master drives the batched labeling across the cluster.
	start := time.Now()
	idx, err := reachlab.BuildOverCluster(addrs, graphPath, reachlab.Options{
		Method: reachlab.MethodDRLBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	bs := idx.BuildStats()
	fmt.Printf("cluster build: %v wall, %d supersteps, %.2f MB crossed the wire\n",
		time.Since(start).Round(time.Millisecond), bs.Supersteps,
		float64(bs.BytesRemote)/(1<<20))

	// The same index built locally, for comparison.
	local, err := reachlab.Build(context.Background(), g, reachlab.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := idx.WriteTo(&a); err != nil {
		log.Fatal(err)
	}
	if _, err := local.WriteTo(&b); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		log.Fatal("cluster index differs from local index")
	}
	fmt.Println("cluster index is bit-identical to the local build")

	fmt.Printf("q(0, %d) = %v\n", n-1, idx.Reachable(0, n-1))
	fmt.Printf("q(%d, 0) = %v\n", n/2, idx.Reachable(reachlab.VertexID(n/2), 0))
}

// Evolving: reachability on a graph under live edge updates — a
// dependency graph where edges appear and disappear while queries
// keep flowing. The dynamic maintainer repairs only the affected
// label region per update; the index stays exactly what a full
// rebuild would produce.
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	// A service dependency graph: services cite (depend on) earlier
	// services, DAG-shaped like a build graph.
	const n = 5000
	g, err := reachlab.GenerateGraph("citation", n, 2.5, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dependency graph:", g.Stats())

	start := time.Now()
	idx, err := reachlab.NewDynamicIndex(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic index ready in %v\n", time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(4))
	var inserted [][2]reachlab.VertexID
	updates, queries := 0, 0
	qStart := time.Now()
	for round := 0; round < 200; round++ {
		// Mutate: mostly add new dependencies, sometimes retire one.
		if len(inserted) > 0 && rng.Intn(3) == 0 {
			e := inserted[rng.Intn(len(inserted))]
			if err := idx.DeleteEdge(e[0], e[1]); err != nil {
				log.Fatal(err)
			}
		} else {
			u := reachlab.VertexID(rng.Intn(n))
			v := reachlab.VertexID(rng.Intn(n))
			if err := idx.InsertEdge(u, v); err != nil {
				log.Fatal(err)
			}
			inserted = append(inserted, [2]reachlab.VertexID{u, v})
		}
		updates++
		// Query between mutations: "would service A be affected if
		// service B failed?" = can A transitively depend on B.
		for i := 0; i < 50; i++ {
			a := reachlab.VertexID(rng.Intn(n))
			b := reachlab.VertexID(rng.Intn(n))
			idx.Reachable(a, b)
			queries++
		}
	}
	fmt.Printf("%d updates and %d queries in %v\n",
		updates, queries, time.Since(qStart).Round(time.Millisecond))

	// Verify the final state against the live graph.
	final := idx.Graph()
	for i := 0; i < 400; i++ {
		a := reachlab.VertexID(rng.Intn(n))
		b := reachlab.VertexID(rng.Intn(n))
		if idx.Reachable(a, b) != final.ReachableBFS(a, b) {
			log.Fatalf("maintained index diverged on (%d,%d)", a, b)
		}
	}
	fmt.Println("maintained index agrees with the evolved graph")

	// Freeze and persist the current state like any static index.
	snap := idx.Snapshot()
	fmt.Printf("snapshot: %d entries, %.2f KB\n",
		snap.Stats().Entries, float64(snap.Stats().Bytes)/1024)
}

// Quickstart: build a reachability index for a small directed graph
// and answer queries from the index alone.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's running example (Fig. 1), 0-based: v1 = 0 ... v11 = 10.
	g := reachlab.NewGraph(11, []reachlab.Edge{
		{From: 0, To: 4}, {From: 0, To: 7},
		{From: 1, To: 0}, {From: 1, To: 2}, {From: 1, To: 3}, {From: 1, To: 4},
		{From: 2, To: 0}, {From: 2, To: 3}, {From: 2, To: 9},
		{From: 3, To: 5}, {From: 3, To: 10},
		{From: 4, To: 6},
		{From: 5, To: 1},
		{From: 6, To: 0},
		{From: 7, To: 8},
	})
	fmt.Println("graph:", g.Stats())

	// Build the TOL index with the paper's best algorithm (DRL_b) on
	// four simulated computation nodes. Every method produces the
	// exact same index; only build cost differs.
	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{
		Method:  reachlab.MethodDRLBatch,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index: %d entries, %d bytes, max label size %d\n",
		st.Entries, st.Bytes, st.MaxLabelSize)

	// Queries touch only the index, never the graph.
	for _, q := range [][2]reachlab.VertexID{
		{1, 6},  // v2 → v7: true (via v5)
		{7, 8},  // v8 → v9: true
		{9, 0},  // v10 → v1: false
		{4, 4},  // v5 → v5: trivially true
		{10, 1}, // v11 → v2: false
	} {
		fmt.Printf("q(v%d, v%d) = %v\n", q[0]+1, q[1]+1, idx.Reachable(q[0], q[1]))
	}
}

// Socialnetwork: influence reachability on a follower graph — "can a
// post by A propagate to B through re-shares?" — built on the
// simulated distributed cluster, showing the construction cost split
// the paper reports in Fig. 5 (computation vs communication).
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const n = 30000
	g, err := reachlab.GenerateGraph("social", n, 3, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("follower graph:", g.Stats())

	// Compare the three construction methods of the paper on the same
	// simulated 8-node cluster with a 100µs-latency interconnect.
	for _, m := range []reachlab.Method{
		reachlab.MethodDRL,      // Algorithm 3
		reachlab.MethodDRLBatch, // Algorithm 4, the paper's best
	} {
		idx, err := reachlab.Build(context.Background(), g, reachlab.Options{
			Method:         m,
			Workers:        8,
			NetworkLatency: 100 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		bs := idx.BuildStats()
		fmt.Printf("%-10s compute %-10v communication %-10v supersteps %-5d messages %d\n",
			m, bs.Compute.Round(time.Millisecond), bs.Communication.Round(time.Millisecond),
			bs.Supersteps, bs.Messages)
	}

	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	// Influence queries: pick a few accounts and measure the share of
	// the network their posts can reach.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		src := reachlab.VertexID(rng.Intn(n))
		reached := 0
		const sample = 2000
		for j := 0; j < sample; j++ {
			if idx.Reachable(src, reachlab.VertexID(rng.Intn(n))) {
				reached++
			}
		}
		fmt.Printf("account %5d can influence ~%4.1f%% of the network\n",
			src, 100*float64(reached)/sample)
	}
}

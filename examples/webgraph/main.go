// Webgraph: crawl reachability with a persisted index — build once
// offline, serialize, and serve queries from the index file alone.
// This is the paper's deployment model: the distributed graph stays
// in the data centers, while the compact index answers queries on a
// single machine (§I).
//
//	go run ./examples/webgraph
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	const n = 40000
	g, err := reachlab.GenerateGraph("web", n, 4, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("web graph:", g.Stats())

	idx, err := reachlab.Build(context.Background(), g, reachlab.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %.2f KB for %d pages (%.4f%% of an all-pairs matrix)\n",
		float64(idx.Stats().Bytes)/1024, n,
		100*float64(idx.Stats().Bytes*8)/(float64(n)*float64(n)))

	// Persist the index; the graph is no longer needed for queries.
	dir, err := os.MkdirTemp("", "webgraph")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "crawl.idx")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// A "query server" loads only the index file.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	served, err := reachlab.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Can a crawler starting at page A reach page B by links?
	rng := rand.New(rand.NewSource(13))
	const q = 500000
	reachable := 0
	start := time.Now()
	for i := 0; i < q; i++ {
		if served.Reachable(reachlab.VertexID(rng.Intn(n)), reachlab.VertexID(rng.Intn(n))) {
			reachable++
		}
	}
	dur := time.Since(start)
	fmt.Printf("served %d crawl-reachability queries in %v (%.2E s each), %.1f%% reachable\n",
		q, dur.Round(time.Millisecond), dur.Seconds()/q, 100*float64(reachable)/q)

	// Spot-check against the live graph.
	for i := 0; i < 300; i++ {
		s := reachlab.VertexID(rng.Intn(n))
		t := reachlab.VertexID(rng.Intn(n))
		if served.Reachable(s, t) != g.ReachableBFS(s, t) {
			log.Fatalf("loaded index disagrees with BFS on (%d,%d)", s, t)
		}
	}
	fmt.Println("loaded index agrees with the live graph")
}

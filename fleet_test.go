package reachlab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/graph"
)

// The in-process fleet fixture: K real QueryHandlers (each serving
// the same built index behind its own cache and metrics registry) on
// httptest listeners, fronted by a started fleet router — the whole
// multi-process serving topology inside one test binary, so the
// reload-under-load and fault soaks run under -race in CI.

type fleetFixture struct {
	g        *Graph
	idx      *Index
	handlers []*QueryHandler
	servers  []*httptest.Server
	chaos    []*fleet.Chaos
	fleet    *fleet.Fleet
	router   *httptest.Server

	reloads atomic.Int64 // loader invocations across all replicas
}

type fleetFixtureOptions struct {
	replicas int
	mode     fleet.Mode
	chaos    *fleet.ChaosOptions // applied per replica with seed+i
	// loader, when set, is installed on every replica so
	// /admin/reload works; it receives the fixture for bookkeeping.
	loader func(fx *fleetFixture, ref string) (*Index, error)
}

func newFleetFixture(t *testing.T, opts fleetFixtureOptions) *fleetFixture {
	t.Helper()
	fx := &fleetFixture{}
	fx.g = randomCyclicGraph(80, 260, 17)
	idx, err := Build(context.Background(), fx.g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx.idx = idx

	addrs := make([]string, opts.replicas)
	for i := 0; i < opts.replicas; i++ {
		var loader func(ref string) (*Index, error)
		if opts.loader != nil {
			loader = func(ref string) (*Index, error) { return opts.loader(fx, ref) }
		}
		h := NewQueryHandlerOpts(idx, ServeOptions{
			Obs:        NewMetricsRegistry(),
			CachePairs: 1024,
			Loader:     loader,
		})
		fx.handlers = append(fx.handlers, h)
		var hh http.Handler = h
		if opts.chaos != nil {
			co := *opts.chaos
			co.Seed += int64(i)
			c := fleet.NewChaos(hh, co)
			fx.chaos = append(fx.chaos, c)
			hh = c
		}
		srv := httptest.NewServer(hh)
		t.Cleanup(srv.Close)
		fx.servers = append(fx.servers, srv)
		addrs[i] = strings.TrimPrefix(srv.URL, "http://")
	}

	f, err := fleet.New(addrs, fleet.Options{
		Mode:          opts.mode,
		CheckInterval: 20 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       2,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)
	fx.fleet = f
	fx.router = httptest.NewServer(f)
	t.Cleanup(fx.router.Close)

	deadline := time.Now().Add(5 * time.Second)
	for len(f.Snapshot()) > 0 {
		up := 0
		for _, s := range f.Snapshot() {
			if s.State == "up" {
				up++
			}
		}
		if up == opts.replicas {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never became healthy: %+v", f.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fx
}

// verifyingBatchClient returns a bench.Client POSTing batches to the
// router and checking every answer against the BFS oracle.
func (fx *fleetFixture) verifyingBatchClient(httpc *http.Client) bench.Client {
	return func(pairs []graph.Edge) error {
		req := struct {
			Pairs [][2]int64 `json:"pairs"`
		}{Pairs: make([][2]int64, len(pairs))}
		for i, p := range pairs {
			req.Pairs[i] = [2]int64{int64(p.U), int64(p.V)}
		}
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := httpc.Post(fx.router.URL+"/reach/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var body struct {
			Count   int    `json:"count"`
			Results []bool `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if body.Count != len(pairs) || len(body.Results) != len(pairs) {
			return fmt.Errorf("%d answers for %d pairs", len(body.Results), len(pairs))
		}
		for i, p := range pairs {
			if body.Results[i] != fx.g.ReachableBFS(p.U, p.V) {
				return fmt.Errorf("reach(%d,%d): fleet says %v, oracle disagrees", p.U, p.V, body.Results[i])
			}
		}
		return nil
	}
}

// TestFleetModesOracle drives both routing modes over real indexes:
// every single and batch answer through the router must match the
// BFS oracle, and in sharded mode the epoch header must survive the
// split/merge.
func TestFleetModesOracle(t *testing.T) {
	for _, mode := range []fleet.Mode{fleet.Replicated, fleet.Sharded} {
		t.Run(string(mode), func(t *testing.T) {
			fx := newFleetFixture(t, fleetFixtureOptions{replicas: 3, mode: mode})
			n := fx.g.NumVertices()
			client := fx.router.Client()

			for i := 0; i < 60; i++ {
				s, u := (i*7)%n, (i*13+3)%n
				resp, err := client.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", fx.router.URL, s, u))
				if err != nil {
					t.Fatal(err)
				}
				var body struct {
					Reachable bool `json:"reachable"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				epoch := resp.Header.Get(EpochHeader)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if want := fx.g.ReachableBFS(VertexID(s), VertexID(u)); body.Reachable != want {
					t.Fatalf("reach(%d,%d) = %v, oracle says %v", s, u, body.Reachable, want)
				}
				if epoch != "1" {
					t.Fatalf("epoch header %q, want 1", epoch)
				}
			}

			bc := fx.verifyingBatchClient(client)
			pairs := make([]graph.Edge, 40)
			for i := range pairs {
				pairs[i] = graph.Edge{U: VertexID((i * 3) % n), V: VertexID((i*11 + 1) % n)}
			}
			// Duplicates on purpose: merge must restore caller order.
			pairs = append(pairs, pairs[:10]...)
			if err := bc(pairs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFleetChaosSoak wraps every replica in the seeded fault injector
// (drops, delays, 5xx bursts — health exempted so replicas stay in
// rotation and the router's retries do the work) and soaks verified
// batch traffic through the router: zero failed requests, zero wrong
// answers.
func TestFleetChaosSoak(t *testing.T) {
	fx := newFleetFixture(t, fleetFixtureOptions{
		replicas: 3,
		mode:     fleet.Sharded,
		chaos: &fleet.ChaosOptions{
			Seed:         400,
			DropRate:     0.05,
			DelayRate:    0.10,
			Delay:        2 * time.Millisecond,
			ErrorRate:    0.03,
			BurstLen:     2,
			ExemptHealth: true,
		},
	})
	res := bench.RunLoadgen(bench.LoadgenOptions{
		Clients:   6,
		Duration:  400 * time.Millisecond,
		BatchSize: 8,
		Vertices:  fx.g.NumVertices(),
		ZipfS:     1.2,
		Seed:      12,
	}, fx.verifyingBatchClient(fx.router.Client()))

	if res.Errors != 0 {
		t.Fatalf("%d of %d requests failed under chaos", res.Errors, res.Requests)
	}
	if res.Requests == 0 {
		t.Fatal("soak sent no traffic")
	}
	var injected int64
	for _, c := range fx.chaos {
		d, _, e := c.Counts()
		injected += d + e
	}
	if injected == 0 {
		t.Fatal("chaos injected nothing; the soak proved nothing")
	}
}

// TestFleetReloadUnderLoadSoak is the tentpole gate: verified batch
// traffic flows through the sharded router while every replica's
// index is hot-swapped over and over via the fleet-wide
// /admin/reload. Across ≥3 epoch swaps there must be zero failed
// requests and zero answers disagreeing with the BFS oracle, and
// every replica must land on the same final epoch.
func TestFleetReloadUnderLoadSoak(t *testing.T) {
	fx := newFleetFixture(t, fleetFixtureOptions{
		replicas: 3,
		mode:     fleet.Sharded,
		loader: func(fx *fleetFixture, ref string) (*Index, error) {
			// A "new build" of the same graph: round-trip the index
			// through its serialized form so every swap installs a
			// distinct, freshly allocated Index answering identically.
			fx.reloads.Add(1)
			var buf bytes.Buffer
			if _, err := fx.idx.WriteTo(&buf); err != nil {
				return nil, err
			}
			return ReadIndex(&buf)
		},
	})

	httpc := fx.router.Client()
	const wantSwaps = 4
	var swaps atomic.Int64
	res := bench.RunLoadgen(bench.LoadgenOptions{
		Clients:      6,
		Duration:     900 * time.Millisecond,
		BatchSize:    8,
		Vertices:     fx.g.NumVertices(),
		ZipfS:        1.2,
		Seed:         21,
		DisruptEvery: 150 * time.Millisecond,
		Disrupt: func(k int) error {
			resp, err := httpc.Post(fx.router.URL+"/admin/reload", "application/json", strings.NewReader("{}"))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("fleet reload status %d", resp.StatusCode)
			}
			swaps.Add(1)
			return nil
		},
	}, fx.verifyingBatchClient(httpc))

	if res.Errors != 0 {
		t.Fatalf("%d of %d requests failed across reloads", res.Errors, res.Requests)
	}
	if res.DisruptErrors != 0 {
		t.Fatalf("%d of %d reloads failed", res.DisruptErrors, res.Disruptions)
	}
	if swaps.Load() < 3 {
		// The soak is time-paced; make the ≥3-swap guarantee explicit
		// by topping up rather than flaking on a slow runner.
		for swaps.Load() < wantSwaps {
			resp, err := httpc.Post(fx.router.URL+"/admin/reload", "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("top-up reload status %d", resp.StatusCode)
			}
			swaps.Add(1)
		}
		// And verify traffic still flows after the late swaps.
		if err := fx.verifyingBatchClient(httpc)([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}); err != nil {
			t.Fatal(err)
		}
	}

	// Every replica advanced once per swap, in lockstep.
	wantEpoch := uint64(swaps.Load()) + 1
	for i, h := range fx.handlers {
		if e := h.Epoch(); e != wantEpoch {
			t.Errorf("replica %d at epoch %d after %d swaps, want %d", i, e, swaps.Load(), wantEpoch)
		}
	}
	if fx.reloads.Load() < 3*3 {
		t.Errorf("loader ran %d times, want ≥9 (3 replicas × ≥3 swaps)", fx.reloads.Load())
	}

	// The router's view agrees (reload fan-out records epochs).
	for _, s := range fx.fleet.Snapshot() {
		if s.Epoch != wantEpoch {
			t.Errorf("router sees replica %s at epoch %d, want %d", s.Addr, s.Epoch, wantEpoch)
		}
	}
}

// TestFleetDrainKillReadmitUnderLoad exercises the full replica
// lifecycle under verified load: drain one replica, kill it mid-
// drain (chaos Kill: every request including probes aborts), keep
// traffic flowing, revive it, readmit it, and see it serve again —
// all with zero client-visible failures.
func TestFleetDrainKillReadmitUnderLoad(t *testing.T) {
	fx := newFleetFixture(t, fleetFixtureOptions{
		replicas: 3,
		mode:     fleet.Replicated,
		chaos:    &fleet.ChaosOptions{Seed: 50}, // all rates zero: a pure kill switch
	})
	httpc := fx.router.Client()
	victim := strings.TrimPrefix(fx.servers[1].URL, "http://")

	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	bc := fx.verifyingBatchClient(httpc)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := fx.g.NumVertices()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pairs := []graph.Edge{
					{U: VertexID((w + i) % n), V: VertexID((w*3 + i*7) % n)},
					{U: VertexID((i * 5) % n), V: VertexID((w + i*11) % n)},
				}
				if err := bc(pairs); err != nil {
					failures.Add(1)
				}
			}
		}(w)
	}

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, s := range fx.fleet.Snapshot() {
				if s.Addr == victim && s.State == want {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("replica %s never reached state %s: %+v", victim, want, fx.fleet.Snapshot())
	}

	// Drain.
	resp, err := httpc.Post(fx.router.URL+"/admin/drain?replica="+victim, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState("drained")

	// Kill while out of rotation.
	fx.chaos[1].Kill(true)

	// Readmitting a corpse must park it at down, not up.
	resp, err = httpc.Post(fx.router.URL+"/admin/readmit?replica="+victim, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState("down")

	// Revive; the health loop readmits it.
	fx.chaos[1].Kill(false)
	waitState("up")

	// It serves traffic again.
	reg := fx.handlers[1]
	h0, m0 := reg.CacheStats()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, m := reg.CacheStats()
		if h+m > h0+m0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readmitted replica never served a query")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d client-visible failures across drain/kill/readmit", failures.Load())
	}
}

package reachlab

import (
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/graph"
)

// VertexID identifies a vertex: graphs with n vertices use IDs 0..n-1.
type VertexID = graph.VertexID

// Edge is a directed edge.
type Edge struct {
	From, To VertexID
}

// Graph is an immutable directed graph.
type Graph struct {
	d *graph.Digraph
}

// NewGraph builds a graph with numVertices vertices from an edge
// list. Duplicate edges are removed; self-loops are allowed. It
// panics if an edge references a vertex outside [0, numVertices).
func NewGraph(numVertices int, edges []Edge) *Graph {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{U: e.From, V: e.To}
	}
	return &Graph{d: graph.FromEdges(numVertices, es)}
}

// LoadGraph reads a graph from a file in either the text edge-list
// format ("u v" per line, '#' comments) or the binary format written
// by SaveGraph/cmd/drgen.
func LoadGraph(path string) (*Graph, error) {
	d, err := graph.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{d: d}, nil
}

// ReadGraph parses a text edge list from r.
func ReadGraph(r io.Reader) (*Graph, error) {
	d, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{d: d}, nil
}

// SaveGraph writes the graph to path, in binary format when binary is
// true and as a text edge list otherwise.
func SaveGraph(path string, g *Graph, binary bool) error {
	return graph.SaveFile(path, g.d, binary)
}

// MapGraph memory-maps a binary graph file (the v2 format written by
// SaveGraph and cmd/drgen) and serves its CSR arrays zero-copy out of
// the page cache — the loading path for graphs near physical memory.
// The returned close function unmaps the file; the graph (and any
// index built from it that retains it) must not be used afterwards.
// On platforms without mmap the graph is read into memory and close
// is a no-op.
func MapGraph(path string) (*Graph, func() error, error) {
	m, err := graph.MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	return &Graph{d: m.Digraph}, m.Close, nil
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.d.NumVertices() }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int64 { return g.d.NumEdges() }

// OutNeighbors returns N_out(v) as a read-only slice.
func (g *Graph) OutNeighbors(v VertexID) []VertexID { return g.d.OutNeighbors(v) }

// InNeighbors returns N_in(v) as a read-only slice.
func (g *Graph) InNeighbors(v VertexID) []VertexID { return g.d.InNeighbors(v) }

// ReachableBFS answers q(s, t) by an online BFS — the index-free
// ground truth, linear in the graph size per query.
func (g *Graph) ReachableBFS(s, t VertexID) bool {
	return graph.Reachable(g.d, s, t)
}

// Stats returns a one-line structural summary (degrees, SCCs, ...).
func (g *Graph) Stats() string {
	return graph.ComputeStats(g.d).String()
}

// GenerateGraph produces a seeded synthetic graph from one of the
// structural families used by the evaluation suite: "web",
// "citation", "social", "knowledge", "biology", or "synthetic"
// (RMAT). Deterministic in (family, n, avgDegree, seed).
func GenerateGraph(family string, n int, avgDegree float64, seed int64) (*Graph, error) {
	d, err := gen.Generate(gen.Params{
		Family:    gen.Family(family),
		N:         n,
		AvgDegree: avgDegree,
		Seed:      seed,
	})
	if err != nil {
		return nil, fmt.Errorf("reachlab: %w", err)
	}
	return &Graph{d: d}, nil
}

// GenerateGraphStreamed is GenerateGraph without the intermediate
// edge slice: the generator streams its edges twice (count pass,
// placement pass) and peak memory is the finished CSR plus the
// generator's attachment pools. The result is byte-identical to
// GenerateGraph with the same parameters.
func GenerateGraphStreamed(family string, n int, avgDegree float64, seed int64) (*Graph, error) {
	d, err := gen.GenerateStreamed(gen.Params{
		Family:    gen.Family(family),
		N:         n,
		AvgDegree: avgDegree,
		Seed:      seed,
	})
	if err != nil {
		return nil, fmt.Errorf("reachlab: %w", err)
	}
	return &Graph{d: d}, nil
}

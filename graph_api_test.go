package reachlab

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReadGraphText(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# demo\n0 1\n1 2\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.ReachableBFS(0, 2) || !g.ReachableBFS(2, 1) {
		t.Error("cycle reachability wrong")
	}
	if _, err := ReadGraph(strings.NewReader("bad line")); err == nil {
		t.Error("expected parse error")
	}
}

func TestSaveLoadGraph(t *testing.T) {
	g := NewGraph(11, testEdges())
	dir := t.TempDir()
	for _, binary := range []bool{true, false} {
		path := filepath.Join(dir, "g")
		if err := SaveGraph(path, g, binary); err != nil {
			t.Fatal(err)
		}
		got, err := LoadGraph(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != 11 || got.NumEdges() != 15 {
			t.Fatalf("binary=%v: round trip changed shape", binary)
		}
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestGenerateGraphDeterministic(t *testing.T) {
	a, err := GenerateGraph("social", 300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateGraph("social", 300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Error("generator is not deterministic")
	}
	c, err := GenerateGraph("social", 300, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() == c.NumEdges() && a.Stats() == c.Stats() {
		t.Error("seed appears to have no effect")
	}
}

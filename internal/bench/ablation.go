package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/order"
)

// Ablations beyond the paper's figures: the design choices DESIGN.md
// calls out.
//
//   - Ordering ablation: §II-B says the degree-product order "is cheap
//     to calculate and works well in practice". This sweep quantifies
//     it against degree-sum, out-degree, ID, and random orders.
//   - Condensation ablation: §II-C argues for labeling the raw cyclic
//     graph because distributed SCC merging is expensive. This sweep
//     shows what a (centralized) condensation would buy in index size
//     and build time.

// AblationOrderRow holds, for one dataset and one order strategy, the
// DRL_b index time and size.
type AblationOrderRow struct {
	Dataset  string
	Strategy order.Strategy
	Result   BuildResult
}

// AblationOrder sweeps the order strategies with DRL_b.
func (r *Runner) AblationOrder(ds []Dataset, progress func(string)) ([]AblationOrderRow, error) {
	var rows []AblationOrderRow
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		for _, strat := range order.Strategies() {
			ord, err := order.ComputeStrategy(g, strat)
			if err != nil {
				return nil, err
			}
			res := r.RunDRLbParams(g, ord, drl.DefaultBatchParams(), r.Workers)
			rows = append(rows, AblationOrderRow{Dataset: d.Name, Strategy: strat, Result: res})
			report(progress, "ablation-order %s %s: %s", d.Name, strat, fmtBuild(res.Total, res.TimedOut))
		}
	}
	return rows, nil
}

// PrintAblationOrder renders the ordering sweep.
func PrintAblationOrder(w io.Writer, rows []AblationOrderRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Dataset\tOrder\tIndex Time (s)\tIndex Size (MB)\tEntries")
	for _, row := range rows {
		entries := int64(0)
		if row.Result.Index != nil {
			entries = row.Result.Index.Entries()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n",
			row.Dataset, row.Strategy,
			secs(row.Result.Total, row.Result.INF()),
			mb(row.Result.Bytes, row.Result.INF()),
			entries)
	}
	flushTab(tw)
}

// AblationCondenseRow compares raw-graph labeling against labeling
// the SCC condensation for one dataset.
type AblationCondenseRow struct {
	Dataset      string
	RawVertices  int
	CondVertices int
	CondenseTime time.Duration // time to compute the condensation
	Raw          BuildResult
	Condensed    BuildResult
}

// AblationCondense runs the condensation sweep with DRL_b.
func (r *Runner) AblationCondense(ds []Dataset, progress func(string)) ([]AblationCondenseRow, error) {
	var rows []AblationCondenseRow
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		row := AblationCondenseRow{Dataset: d.Name, RawVertices: g.NumVertices()}
		ord := order.Compute(g)
		row.Raw = r.RunDRLbParams(g, ord, drl.DefaultBatchParams(), r.Workers)

		start := time.Now()
		cond, _ := graph.Condense(g)
		row.CondenseTime = time.Since(start)
		row.CondVertices = cond.NumVertices()
		condOrd := order.Compute(cond)
		row.Condensed = r.RunDRLbParams(cond, condOrd, drl.DefaultBatchParams(), r.Workers)

		rows = append(rows, row)
		report(progress, "ablation-condense %s: raw %s, condensed %s (+%v SCC)",
			d.Name, fmtBuild(row.Raw.Total, row.Raw.INF()),
			fmtBuild(row.Condensed.Total, row.Condensed.INF()), row.CondenseTime.Round(time.Millisecond))
	}
	return rows, nil
}

// PrintAblationCondense renders the condensation sweep.
func PrintAblationCondense(w io.Writer, rows []AblationCondenseRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, strings.Join([]string{
		"Dataset", "|V| raw", "|V| cond", "SCC time (s)",
		"Index time raw (s)", "Index time cond (s)",
		"Index size raw (MB)", "Index size cond (MB)",
	}, "\t"))
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%s\t%s\t%s\t%s\n",
			row.Dataset, row.RawVertices, row.CondVertices,
			row.CondenseTime.Seconds(),
			secs(row.Raw.Total, row.Raw.INF()),
			secs(row.Condensed.Total, row.Condensed.INF()),
			mb(row.Raw.Bytes, row.Raw.INF()),
			mb(row.Condensed.Bytes, row.Condensed.INF()))
	}
	flushTab(tw)
}

package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

// tinyRunner is a fast configuration for the test suite.
func tinyRunner() *Runner {
	return &Runner{
		Workers: 3,
		Cutoff:  30 * time.Second,
		Net:     netsim.Model{BarrierLatency: 10 * time.Microsecond, BytesPerSecond: 1 << 30},
		Queries: 500,
	}
}

func tinySuite(t *testing.T) []Dataset {
	t.Helper()
	ds, err := Suite("tiny")
	if err != nil {
		t.Fatal(err)
	}
	return ds[:2] // WEBW + DBPE keep the test quick
}

func TestSuites(t *testing.T) {
	for name, want := range map[string]int{"tiny": 6, "medium": 6, "large": 12, "all": 18} {
		ds, err := Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != want {
			t.Errorf("suite %s has %d datasets, want %d", name, len(ds), want)
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := Lookup("WEBW"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestTable5(t *testing.T) {
	r := tinyRunner()
	rows, err := r.Table5(tinySuite(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Stats.Vertices == 0 {
		t.Fatalf("bad rows: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "WEBW") {
		t.Error("table should mention WEBW")
	}
}

func TestTable6(t *testing.T) {
	r := tinyRunner()
	var progress []string
	rows, err := r.Table6(tinySuite(t), func(s string) { progress = append(progress, s) })
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.TOL.INF() || row.DRLb.INF() {
			t.Fatalf("%s: tiny build should not time out", row.Dataset)
		}
		if row.TOL.Bytes != row.DRLb.Bytes {
			t.Errorf("%s: TOL and DRL_b must have identical index size", row.Dataset)
		}
		if row.QueryIdx <= 0 || row.QueryBFLD <= 0 {
			t.Errorf("%s: missing query times", row.Dataset)
		}
		if row.QueryBFLD < row.QueryIdx {
			t.Errorf("%s: BFL^D queries should be slower than index-only", row.Dataset)
		}
		if row.BFLD.Total < row.DRLb.Total {
			t.Errorf("%s: distributed DFS should cost more than DRL_b (%v vs %v)",
				row.Dataset, row.BFLD.Total, row.DRLb.Total)
		}
	}
	if len(progress) == 0 {
		t.Error("no progress lines")
	}
	var buf bytes.Buffer
	PrintTable6(&buf, rows)
	for _, section := range []string{"Index Time", "Index Size", "Query Time"} {
		if !strings.Contains(buf.String(), section) {
			t.Errorf("missing section %s", section)
		}
	}
}

func TestFig5(t *testing.T) {
	r := tinyRunner()
	rows, err := r.Fig5(tinySuite(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.DRLb.INF() {
			t.Errorf("%s: DRL_b should finish at tiny scale", row.Dataset)
		}
		if !row.DRL.INF() && row.DRL.Comm <= 0 {
			t.Errorf("%s: DRL should report communication time", row.Dataset)
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "DRLb") {
		t.Error("fig5 output incomplete")
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	r := tinyRunner()
	rows, err := r.Fig6(tinySuite(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	var drlb *Fig6Row
	for i := range rows {
		if rows[i].Algo == "DRLb" {
			drlb = &rows[i]
		}
	}
	if drlb == nil {
		t.Fatal("no DRLb row")
	}
	if s := drlb.Speedup(0); s != 1 {
		t.Errorf("speedup at p=1 should be 1, got %f", s)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if !strings.Contains(buf.String(), "p=32") {
		t.Error("fig6 output incomplete")
	}
}

func TestFig7(t *testing.T) {
	r := tinyRunner()
	rows, err := r.Fig7(tinySuite(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if len(row.Times) != len(Fig7Fractions) {
			t.Fatalf("row %s/%s incomplete", row.Dataset, row.Algo)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	if !strings.Contains(buf.String(), "100%") {
		t.Error("fig7 output incomplete")
	}
}

func TestFig8AndFig9(t *testing.T) {
	r := tinyRunner()
	ds := tinySuite(t)[:1]
	rows8, err := r.Fig8(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 1 || len(rows8[0].Times) != len(Fig8Sizes) {
		t.Fatalf("fig8 incomplete: %+v", rows8)
	}
	rows9, err := r.Fig9(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != 1 || len(rows9[0].Times) != len(Fig9Factors) {
		t.Fatalf("fig9 incomplete: %+v", rows9)
	}
	// The paper's Exp 8 finding: k = 1 is dramatically slower than
	// k = 2 (every batch pays a full engine run).
	k1 := rows9[0].Times[0]
	k2 := rows9[0].Times[2]
	if !k1.INF() && !k2.INF() && k1.Total < k2.Total {
		t.Errorf("k=1 (%v) should be slower than k=2 (%v)", k1.Total, k2.Total)
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows8)
	PrintFig9(&buf, rows9)
	if !strings.Contains(buf.String(), "b=128") || !strings.Contains(buf.String(), "k=4.0") {
		t.Error("fig8/fig9 output incomplete")
	}
}

func TestAblations(t *testing.T) {
	r := tinyRunner()
	ds := tinySuite(t)[:1]
	orows, err := r.AblationOrder(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(orows) != 5 {
		t.Fatalf("expected 5 strategies, got %d", len(orows))
	}
	var degEntries, randEntries int64
	for _, row := range orows {
		if row.Result.Index == nil {
			t.Fatalf("%s/%s failed", row.Dataset, row.Strategy)
		}
		switch row.Strategy {
		case "degree-product":
			degEntries = row.Result.Index.Entries()
		case "random":
			randEntries = row.Result.Index.Entries()
		}
	}
	if degEntries > randEntries {
		t.Errorf("degree-product (%d) should beat random order (%d)", degEntries, randEntries)
	}
	var buf bytes.Buffer
	PrintAblationOrder(&buf, orows)
	if !strings.Contains(buf.String(), "degree-product") {
		t.Error("ablation-order output incomplete")
	}

	crows, err := r.AblationCondense(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(crows) != 1 || crows[0].CondVertices >= crows[0].RawVertices {
		t.Fatalf("condensation should shrink the web graph: %+v", crows)
	}
	buf.Reset()
	PrintAblationCondense(&buf, crows)
	if !strings.Contains(buf.String(), "Index size") {
		t.Error("ablation-condense output incomplete")
	}
}

func TestExtras(t *testing.T) {
	r := tinyRunner()
	rows, err := r.Extras(tinySuite(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.GrailBytes <= 0 || row.BFLBytes <= 0 || row.TOLBytes <= 0 {
		t.Errorf("missing sizes: %+v", row)
	}
	if row.GrailQuery <= 0 || row.BFLQuery <= 0 || row.TOLQuery <= 0 {
		t.Errorf("missing query times: %+v", row)
	}
	var buf bytes.Buffer
	PrintExtras(&buf, rows)
	if !strings.Contains(buf.String(), "GRAIL") {
		t.Error("extras output incomplete")
	}
}

func TestBuildResultHelpers(t *testing.T) {
	r := BuildResult{TimedOut: true}
	if !r.INF() {
		t.Error("INF should reflect TimedOut")
	}
	if fmtBuild(time.Second, true) != "INF" {
		t.Error("fmtBuild INF")
	}
	if fmtBuild(1500*time.Millisecond, false) != "1.5s" {
		t.Errorf("fmtBuild = %s", fmtBuild(1500*time.Millisecond, false))
	}
}

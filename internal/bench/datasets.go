// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§VI) against the synthetic
// dataset suite. cmd/drbench is the CLI front end; the root
// bench_test.go exposes the same experiments as testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset is one entry of the Table V inventory: a paper dataset name
// bound to the synthetic generator parameters that stand in for it.
// Scale factors are reduced uniformly (the originals reach 3.7B
// edges); the Medium flag marks the six graphs used by Exps 4-8.
type Dataset struct {
	// Name is the paper's dataset code (WEBW, DBPE, …).
	Name string
	// Paper documents the original graph this one stands in for.
	Paper string
	// Params drive the generator.
	Params gen.Params
	// Medium marks the six medium-sized graphs of Fig. 5-9.
	Medium bool
}

// Build generates the dataset's graph.
func (d Dataset) Build() (*graph.Digraph, error) {
	return gen.Generate(d.Params)
}

// genEdgesParams exposes the raw edge stream of a dataset (Fig. 7
// takes prefixes of it).
func genEdgesParams(d Dataset) ([]graph.Edge, error) {
	return gen.Edges(d.Params)
}

// scale multiplies all dataset sizes; the suites below are defined at
// scale 1. The harness exposes it so CI can run tiny versions.
func registry(scale float64) []Dataset {
	sz := func(n int) int {
		v := int(float64(n) * scale)
		if v < 16 {
			v = 16
		}
		return v
	}
	return []Dataset{
		// The six medium graphs (Exp 4-8 set).
		{Name: "WEBW", Paper: "Web-wikipedia (1.9M/4.5M)", Medium: true,
			Params: gen.Params{Family: gen.Web, N: sz(20000), AvgDegree: 2.4, Seed: 101}},
		{Name: "DBPE", Paper: "Dbpedia (3.4M/8.0M)", Medium: true,
			Params: gen.Params{Family: gen.Knowledge, N: sz(24000), AvgDegree: 2.4, Seed: 102}},
		{Name: "CITE", Paper: "Citeseerx (6.5M/15.0M)", Medium: true,
			Params: gen.Params{Family: gen.Citation, N: sz(30000), AvgDegree: 2.3, Seed: 103}},
		{Name: "CITP", Paper: "Cit-patent (3.8M/16.5M)", Medium: true,
			Params: gen.Params{Family: gen.Citation, N: sz(22000), AvgDegree: 4.4, Seed: 104}},
		{Name: "TW", Paper: "Twitter (18.1M/18.4M)", Medium: true,
			Params: gen.Params{Family: gen.Social, N: sz(36000), AvgDegree: 1.0, Seed: 105}},
		{Name: "GO", Paper: "Go-uniprot (7.0M/34.8M)", Medium: true,
			Params: gen.Params{Family: gen.Biology, N: sz(26000), AvgDegree: 5.0, Seed: 106}},

		// The large graphs (Table VI only; stand-ins for the
		// billion-edge set).
		{Name: "SINA", Paper: "Soc-sinaweibo (58.7M/261.3M)",
			Params: gen.Params{Family: gen.Social, N: sz(60000), AvgDegree: 4.5, Seed: 107}},
		{Name: "LINK", Paper: "Wikipedia-link (13.6M/437.2M)",
			Params: gen.Params{Family: gen.Web, N: sz(40000), AvgDegree: 16, Seed: 108}},
		{Name: "WEBB", Paper: "Webbase-2001 (118.1M/1.02B)",
			Params: gen.Params{Family: gen.Web, N: sz(90000), AvgDegree: 8.6, Seed: 109}},
		{Name: "GRPH", Paper: "Graph500 (17.0M/1.05B)",
			Params: gen.Params{Family: gen.Synthetic, N: sz(36000), AvgDegree: 30, Seed: 110}},
		{Name: "TWIT", Paper: "Twitter-2010 (41.7M/1.47B)",
			Params: gen.Params{Family: gen.Social, N: sz(60000), AvgDegree: 17, Seed: 111}},
		{Name: "HOST", Paper: "Host-linkage (57.4M/1.64B)",
			Params: gen.Params{Family: gen.Web, N: sz(66000), AvgDegree: 14, Seed: 112}},
		{Name: "GSH", Paper: "Gsh-2015-host (68.7M/1.80B)",
			Params: gen.Params{Family: gen.Web, N: sz(70000), AvgDegree: 13, Seed: 113}},
		{Name: "SK", Paper: "Sk-2005 (50.6M/1.95B)",
			Params: gen.Params{Family: gen.Web, N: sz(60000), AvgDegree: 19, Seed: 114}},
		{Name: "TWIM", Paper: "Twitter-mpi (52.6M/1.96B)",
			Params: gen.Params{Family: gen.Social, N: sz(62000), AvgDegree: 18, Seed: 115}},
		{Name: "FRIE", Paper: "Friendster (68.3M/2.59B)",
			Params: gen.Params{Family: gen.Social, N: sz(72000), AvgDegree: 18, Seed: 116}},
		{Name: "UK", Paper: "Uk-2006-05 (77.7M/2.97B)",
			Params: gen.Params{Family: gen.Web, N: sz(78000), AvgDegree: 19, Seed: 117}},
		{Name: "WEBS", Paper: "Webspam-uk (105.9M/3.74B)",
			Params: gen.Params{Family: gen.Web, N: sz(96000), AvgDegree: 17, Seed: 118}},
	}
}

// Suite returns the named dataset suite:
//
//	tiny    the six medium graphs at 1/20 scale (CI, unit benches)
//	medium  the six medium graphs (Exps 4-8)
//	large   the twelve large graphs
//	all     the full Table V inventory
func Suite(name string) ([]Dataset, error) {
	switch name {
	case "tiny":
		var out []Dataset
		for _, d := range registry(0.05) {
			if d.Medium {
				out = append(out, d)
			}
		}
		return out, nil
	case "medium":
		var out []Dataset
		for _, d := range registry(1) {
			if d.Medium {
				out = append(out, d)
			}
		}
		return out, nil
	case "large":
		var out []Dataset
		for _, d := range registry(1) {
			if !d.Medium {
				out = append(out, d)
			}
		}
		return out, nil
	case "all":
		return registry(1), nil
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (want tiny, medium, large, or all)", name)
	}
}

// Lookup returns the dataset with the given name at scale 1.
func Lookup(name string) (Dataset, error) {
	for _, d := range registry(1) {
		if d.Name == name {
			return d, nil
		}
	}
	var names []string
	for _, d := range registry(1) {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("bench: unknown dataset %q (have %v)", name, names)
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/order"
)

// This file implements one function per artifact of §VI. Each returns
// structured rows; print.go renders them the way the paper lays the
// artifact out. The progress callback (may be nil) receives one line
// per completed measurement.

// Table5Row is one line of the dataset inventory.
type Table5Row struct {
	Dataset Dataset
	Stats   graph.Stats
}

// Table5 generates every dataset in the suite and gathers its
// statistics.
func (r *Runner) Table5(ds []Dataset, progress func(string)) ([]Table5Row, error) {
	rows := make([]Table5Row, 0, len(ds))
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		rows = append(rows, Table5Row{Dataset: d, Stats: graph.ComputeStats(g)})
		report(progress, "table5 %s: %s", d.Name, rows[len(rows)-1].Stats)
	}
	return rows, nil
}

// Table6Row is one line of the headline comparison (Exps 1-3): index
// time, index size, and query time for BFL^C, BFL^D, TOL, DRL_b, and
// DRL_b^M.
type Table6Row struct {
	Dataset string
	BFLC    BFLResult
	BFLD    BFLResult
	TOL     BuildResult
	DRLb    BuildResult
	DRLbM   BuildResult

	QueryBFLC time.Duration
	QueryBFLD time.Duration
	QueryIdx  time.Duration // TOL = DRL_b = DRL_b^M: same index
}

// Table6 runs the full competitor comparison. When both TOL and DRL_b
// complete, their indexes are verified identical — the reproduction's
// standing invariant.
func (r *Runner) Table6(ds []Dataset, progress func(string)) ([]Table6Row, error) {
	rows := make([]Table6Row, 0, len(ds))
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		row := Table6Row{Dataset: d.Name}

		row.BFLC = r.RunBFLC(g)
		report(progress, "table6 %s BFL^C: %s", d.Name, fmtBuild(row.BFLC.Total, row.BFLC.TimedOut))
		row.BFLD = r.RunBFLD(g)
		report(progress, "table6 %s BFL^D: %s", d.Name, fmtBuild(row.BFLD.Total, row.BFLD.TimedOut))
		row.TOL = r.RunTOL(g, ord)
		report(progress, "table6 %s TOL: %s", d.Name, fmtBuild(row.TOL.Total, row.TOL.TimedOut))
		row.DRLb = r.RunDRLb(g, ord)
		report(progress, "table6 %s DRL_b: %s", d.Name, fmtBuild(row.DRLb.Total, row.DRLb.TimedOut))
		row.DRLbM = r.RunDRLbM(g, ord)
		report(progress, "table6 %s DRL_b^M: %s", d.Name, fmtBuild(row.DRLbM.Total, row.DRLbM.TimedOut))

		if row.TOL.Index != nil && row.DRLb.Index != nil && !row.TOL.Index.Equal(row.DRLb.Index) {
			return nil, fmt.Errorf("bench: %s: DRL_b index differs from TOL: %s",
				d.Name, row.TOL.Index.Diff(row.DRLb.Index))
		}

		if row.BFLC.Index != nil {
			row.QueryBFLC = r.QueryBFLC(g, row.BFLC.Index)
		}
		if row.BFLD.Index != nil {
			row.QueryBFLD = r.QueryBFLD(g, row.BFLD.Index)
		}
		if idx := firstIndex(row.DRLb, row.DRLbM, row.TOL); idx != nil {
			row.QueryIdx = r.QueryIndex(idx.Index)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func firstIndex(rs ...BuildResult) *BuildResult {
	for i := range rs {
		if rs[i].Index != nil {
			return &rs[i]
		}
	}
	return nil
}

// Fig5Row holds the communication/computation split of Exp 4 for one
// dataset.
type Fig5Row struct {
	Dataset  string
	DRLMinus BuildResult
	DRL      BuildResult
	DRLb     BuildResult
}

// Fig5 measures DRL⁻, DRL, and DRL_b on the medium graphs, splitting
// index time into computation and communication.
func (r *Runner) Fig5(ds []Dataset, progress func(string)) ([]Fig5Row, error) {
	rows := make([]Fig5Row, 0, len(ds))
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		row := Fig5Row{Dataset: d.Name}
		row.DRLMinus = r.RunDRLMinus(g, ord)
		report(progress, "fig5 %s DRL-: %s", d.Name, fmtBuild(row.DRLMinus.Total, row.DRLMinus.TimedOut))
		row.DRL = r.RunDRL(g, ord)
		report(progress, "fig5 %s DRL: %s", d.Name, fmtBuild(row.DRL.Total, row.DRL.TimedOut))
		row.DRLb = r.RunDRLb(g, ord)
		report(progress, "fig5 %s DRLb: %s", d.Name, fmtBuild(row.DRLb.Total, row.DRLb.TimedOut))
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6WorkerCounts is the node-count sweep of Exp 5.
var Fig6WorkerCounts = []int{1, 2, 4, 8, 16, 32}

// Fig6Row holds the index times of one algorithm on one dataset
// across worker counts; Speedup derives the paper's ratio.
type Fig6Row struct {
	Dataset string
	Algo    string
	Workers []int
	Times   []BuildResult
}

// Speedup returns time(1 node)/time(p nodes), or 0 when either run
// timed out.
func (f Fig6Row) Speedup(i int) float64 {
	if len(f.Times) == 0 || f.Times[0].TimedOut || f.Times[i].TimedOut {
		return 0
	}
	if f.Times[i].Total <= 0 {
		return 0
	}
	return float64(f.Times[0].Total) / float64(f.Times[i].Total)
}

// Fig6 sweeps the worker count for the three proposed algorithms.
func (r *Runner) Fig6(ds []Dataset, progress func(string)) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		algos := []struct {
			name string
			run  func(p int) BuildResult
		}{
			{"DRL-", func(p int) BuildResult { return r.RunDRLMinusWorkers(g, ord, p) }},
			{"DRL", func(p int) BuildResult { return r.RunDRLWorkers(g, ord, p) }},
			{"DRLb", func(p int) BuildResult { return r.RunDRLbParams(g, ord, drl.DefaultBatchParams(), p) }},
		}
		for _, a := range algos {
			row := Fig6Row{Dataset: d.Name, Algo: a.name, Workers: Fig6WorkerCounts}
			for _, p := range Fig6WorkerCounts {
				res := a.run(p)
				row.Times = append(row.Times, res)
				report(progress, "fig6 %s %s p=%d: %s", d.Name, a.name, p, fmtBuild(res.Total, res.TimedOut))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig7Fractions is the edge-prefix sweep of Exp 6.
var Fig7Fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Fig7Row holds one algorithm's index times over growing edge
// prefixes of one dataset.
type Fig7Row struct {
	Dataset   string
	Algo      string
	Fractions []float64
	Times     []BuildResult
}

// Fig7 runs the scalability sweep: the i-th test graph holds the
// first i/5 of the dataset's edge stream.
func (r *Runner) Fig7(ds []Dataset, progress func(string)) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, d := range ds {
		edges, err := genEdges(d)
		if err != nil {
			return nil, err
		}
		algos := []struct {
			name string
			run  func(g *graph.Digraph, ord *order.Ordering) BuildResult
		}{
			{"DRL-", r.RunDRLMinus},
			{"DRL", r.RunDRL},
			{"DRLb", r.RunDRLb},
		}
		for _, a := range algos {
			row := Fig7Row{Dataset: d.Name, Algo: a.name, Fractions: Fig7Fractions}
			for _, frac := range Fig7Fractions {
				g := graph.FromEdges(d.Params.N, graph.EdgePrefix(edges, frac))
				ord := order.Compute(g)
				res := a.run(g, ord)
				row.Times = append(row.Times, res)
				report(progress, "fig7 %s %s %.0f%%: %s", d.Name, a.name, frac*100, fmtBuild(res.Total, res.TimedOut))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8Sizes is the initial-batch-size sweep of Exp 7.
var Fig8Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig8Row holds DRL_b index times across initial batch sizes b.
type Fig8Row struct {
	Dataset string
	Sizes   []int
	Times   []BuildResult
}

// Fig8 sweeps the initial batch size b with k = 2.
func (r *Runner) Fig8(ds []Dataset, progress func(string)) ([]Fig8Row, error) {
	return r.sweepBatch(ds, progress, "fig8", Fig8Sizes, nil)
}

// Fig9Factors is the increment-factor sweep of Exp 8.
var Fig9Factors = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}

// Fig9Row holds DRL_b index times across increment factors k.
type Fig9Row struct {
	Dataset string
	Factors []float64
	Times   []BuildResult
}

// Fig9 sweeps the increment factor k with b = 2.
func (r *Runner) Fig9(ds []Dataset, progress func(string)) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		row := Fig9Row{Dataset: d.Name, Factors: Fig9Factors}
		for _, k := range Fig9Factors {
			res := r.RunDRLbParams(g, ord, drl.BatchParams{InitialSize: 2, Factor: k}, r.Workers)
			row.Times = append(row.Times, res)
			report(progress, "fig9 %s k=%.1f: %s", d.Name, k, fmtBuild(res.Total, res.TimedOut))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (r *Runner) sweepBatch(ds []Dataset, progress func(string), tag string, sizes []int, _ []float64) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		row := Fig8Row{Dataset: d.Name, Sizes: sizes}
		for _, b := range sizes {
			res := r.RunDRLbParams(g, ord, drl.BatchParams{InitialSize: b, Factor: 2}, r.Workers)
			row.Times = append(row.Times, res)
			report(progress, "%s %s b=%d: %s", tag, d.Name, b, fmtBuild(res.Total, res.TimedOut))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func genEdges(d Dataset) ([]graph.Edge, error) {
	edges, err := genEdgesParams(d)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", d.Name, err)
	}
	return edges, nil
}

func report(progress func(string), format string, args ...any) {
	if progress != nil {
		progress(fmt.Sprintf(format, args...))
	}
}

func fmtBuild(d time.Duration, inf bool) string {
	if inf {
		return "INF"
	}
	return d.Round(time.Millisecond).String()
}

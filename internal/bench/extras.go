package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/grail"
	"repro/internal/order"
)

// Extras: a cross-family index comparison beyond the paper's own
// baselines — interval labeling (GRAIL, related work [7]) against the
// Bloom-filter labeling (BFL^C) and the index-only TOL/DRL_b index.
// The shape to expect: GRAIL builds fastest and smallest, BFL next,
// both at the cost of fallback graph searches; the TOL index is the
// only one that never touches the graph at query time.

// ExtrasRow compares the three index families on one dataset.
type ExtrasRow struct {
	Dataset string

	GrailBuild time.Duration
	GrailBytes int64
	GrailQuery time.Duration

	BFLBuild time.Duration
	BFLBytes int64
	BFLQuery time.Duration

	TOLBuild time.Duration
	TOLBytes int64
	TOLQuery time.Duration
}

// Extras runs the cross-family comparison.
func (r *Runner) Extras(ds []Dataset, progress func(string)) ([]ExtrasRow, error) {
	var rows []ExtrasRow
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		row := ExtrasRow{Dataset: d.Name}
		pairs := queryPairs(g.NumVertices(), min(r.Queries, 5000), 7)

		start := time.Now()
		gx, err := grail.Build(g, grail.Options{Seed: 7})
		if err != nil {
			return nil, err
		}
		row.GrailBuild = time.Since(start)
		row.GrailBytes = gx.SizeBytes()
		start = time.Now()
		for _, p := range pairs {
			gx.Reachable(p.U, p.V)
		}
		row.GrailQuery = time.Since(start) / time.Duration(len(pairs))
		report(progress, "extras %s GRAIL: build %v", d.Name, row.GrailBuild.Round(time.Millisecond))

		bres := r.RunBFLC(g)
		row.BFLBuild = bres.Total
		row.BFLBytes = bres.Bytes
		if bres.Index != nil {
			start = time.Now()
			for _, p := range pairs {
				bres.Index.Reachable(g, p.U, p.V)
			}
			row.BFLQuery = time.Since(start) / time.Duration(len(pairs))
		}
		report(progress, "extras %s BFL^C: build %v", d.Name, row.BFLBuild.Round(time.Millisecond))

		ord := order.Compute(g)
		tres := r.RunDRLbM(g, ord)
		row.TOLBuild = tres.Total
		row.TOLBytes = tres.Bytes
		if tres.Index != nil {
			start = time.Now()
			for _, p := range pairs {
				tres.Index.Reachable(p.U, p.V)
			}
			row.TOLQuery = time.Since(start) / time.Duration(len(pairs))
		}
		report(progress, "extras %s TOL-index: build %v", d.Name, row.TOLBuild.Round(time.Millisecond))

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintExtras renders the cross-family comparison.
func PrintExtras(w io.Writer, rows []ExtrasRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Dataset\tGRAIL build\tBFL build\tTOL-idx build\tGRAIL MB\tBFL MB\tTOL MB\tGRAIL q(s)\tBFL q(s)\tTOL q(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Dataset,
			r.GrailBuild.Seconds(), r.BFLBuild.Seconds(), r.TOLBuild.Seconds(),
			mb(r.GrailBytes, false), mb(r.BFLBytes, false), mb(r.TOLBytes, false),
			sci(r.GrailQuery, r.GrailQuery == 0),
			sci(r.BFLQuery, r.BFLQuery == 0),
			sci(r.TOLQuery, r.TOLQuery == 0))
	}
	flushTab(tw)
}

package bench

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Loadgen: the serving-layer companion to the build benchmarks. Where
// Runner measures index construction, the load generator measures the
// query machine under concurrent fire — N clients, zipfian pair
// traffic, per-request latency percentiles, achieved QPS — through a
// transport-agnostic Client so the same harness drives a live HTTP
// server (cmd/drload), the in-process index (tests), or anything else
// that answers pair batches.

// Client answers one batch of (s, t) pairs, returning an error when
// the request failed (transport error, bad status, or — with
// verification enabled — a wrong answer). Clients must be safe for
// concurrent use.
type Client func(pairs []graph.Edge) error

// LoadgenOptions configures RunLoadgen.
type LoadgenOptions struct {
	// Clients is the number of concurrent request loops (default 4).
	Clients int
	// Requests is the total request budget across clients. Ignored
	// when Duration is set.
	Requests int
	// Duration switches to soak mode: clients fire until the deadline
	// instead of until a request count.
	Duration time.Duration
	// BatchSize is the number of pairs per request (default 1).
	BatchSize int
	// Vertices is the vertex-ID space pairs are drawn from (required).
	Vertices int
	// ZipfS is the zipf skew of the pair distribution; values <= 1
	// fall back to uniform sampling (rand.Zipf requires s > 1).
	ZipfS float64
	// Seed makes the traffic deterministic per client (client i uses
	// Seed+i).
	Seed int64
	// Disrupt, when set with DisruptEvery, is fired from its own
	// goroutine every DisruptEvery for the duration of the run — the
	// during-reload mode: drload points it at POST /admin/reload so
	// epoch swaps land while the clients are firing. Disrupt errors
	// are counted separately from request errors.
	Disrupt func(k int) error
	// DisruptEvery is the period between Disrupt calls (required for
	// Disrupt to fire; the first call lands one period into the run).
	DisruptEvery time.Duration
	// Write, with Writers > 0, turns the run into an update mix:
	// Writers extra goroutines call it with deterministic edge
	// mutations (k-th call of writer w gets the writer's own seeded
	// edge and alternating insert/delete) while the query clients
	// keep firing. drload points it at POST /edges. Write errors are
	// counted separately from query errors.
	Write func(writer, k int, insert bool, u, v graph.VertexID) error
	// Writers is the number of concurrent writer loops.
	Writers int
	// WriteEvery throttles each writer to one mutation per period
	// (default: write back-to-back).
	WriteEvery time.Duration
	// WriteWindow restricts writer edge endpoints to the newest
	// WriteWindow vertex IDs ([Vertices-WriteWindow, Vertices)) — the
	// citation-growth regime, where new edges attach among recent
	// vertices and dynamic repair stays localized. 0 (or >= Vertices)
	// draws from the whole ID space.
	WriteWindow int
}

func (o LoadgenOptions) clients() int {
	if o.Clients <= 0 {
		return 4
	}
	return o.Clients
}

func (o LoadgenOptions) batch() int {
	if o.BatchSize <= 0 {
		return 1
	}
	return o.BatchSize
}

// LoadgenResult is the measured outcome of one load run.
type LoadgenResult struct {
	Requests      int64         // requests attempted
	Pairs         int64         // pairs asked (Requests × batch size)
	Errors        int64         // failed requests
	Disruptions   int64         // Disrupt calls fired during the run
	DisruptErrors int64         // Disrupt calls that returned an error
	Writes        int64         // edge mutations sent (update mix)
	WriteErrors   int64         // edge mutations that failed
	UPS           float64       // achieved writes per second
	Elapsed       time.Duration // wall time of the whole run
	QPS           float64       // achieved pairs per second
	Latency       QueryStats    // per-request latency distribution
}

// EndpointResult is one endpoint's share of a multi-endpoint run.
type EndpointResult struct {
	Requests int64
	Errors   int64
}

// pairSampler draws (s, t) pairs, zipfian when skew permits.
type pairSampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newPairSampler(n int, zipfS float64, seed int64) *pairSampler {
	ps := &pairSampler{rng: rand.New(rand.NewSource(seed)), n: n}
	if zipfS > 1 && n > 1 {
		ps.zipf = rand.NewZipf(ps.rng, zipfS, 1, uint64(n-1))
	}
	return ps
}

func (ps *pairSampler) vertex() graph.VertexID {
	if ps.zipf != nil {
		return graph.VertexID(ps.zipf.Uint64())
	}
	return graph.VertexID(ps.rng.Intn(ps.n))
}

func (ps *pairSampler) fill(pairs []graph.Edge) {
	for i := range pairs {
		pairs[i] = graph.Edge{U: ps.vertex(), V: ps.vertex()}
	}
}

// ZipfPairs samples q deterministic zipf-distributed (s, t) pairs —
// the offline analogue of the load generator's traffic, used for
// layout profiling.
func ZipfPairs(n, q int, zipfS float64, seed int64) []graph.Edge {
	pairs := make([]graph.Edge, q)
	newPairSampler(n, zipfS, seed).fill(pairs)
	return pairs
}

// RunLoadgen drives client from opts.Clients concurrent loops and
// aggregates latency and error statistics. Each client samples its
// own deterministic zipfian pair stream, so a fixed seed reproduces
// the exact traffic regardless of scheduling.
func RunLoadgen(opts LoadgenOptions, client Client) LoadgenResult {
	res, _ := RunLoadgenEndpoints(opts, []Client{client})
	return res
}

// RunLoadgenEndpoints is RunLoadgen over several endpoints at once:
// request i of client c goes to clients[(c+i) mod len(clients)], so
// traffic spreads evenly and deterministically, and each endpoint's
// request and error counts come back separately — when a fleet run
// reports errors, the per-endpoint tallies say which replica (or
// router) produced them.
func RunLoadgenEndpoints(opts LoadgenOptions, clients []Client) (LoadgenResult, []EndpointResult) {
	nc := opts.clients()
	ne := len(clients)
	if ne == 0 {
		return LoadgenResult{}, nil
	}
	batch := opts.batch()
	perClient := 0
	if opts.Duration <= 0 {
		perClient = opts.Requests / nc
		if perClient == 0 {
			perClient = 1
		}
	}
	type endpointCounters struct {
		requests atomic.Int64
		errors   atomic.Int64
	}
	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		errors   atomic.Int64
		perEnd   = make([]endpointCounters, ne)
		lats     = make([][]time.Duration, nc)
	)
	start := time.Now()
	deadline := start.Add(opts.Duration)
	stop := make(chan struct{})
	for c := 0; c < nc; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sampler := newPairSampler(opts.Vertices, opts.ZipfS, opts.Seed+int64(id))
			pairs := make([]graph.Edge, batch)
			var mine []time.Duration
			for i := 0; ; i++ {
				if opts.Duration > 0 {
					if time.Now().After(deadline) {
						break
					}
				} else if i >= perClient {
					break
				}
				sampler.fill(pairs)
				e := (id + i) % ne
				t0 := time.Now()
				err := clients[e](pairs)
				mine = append(mine, time.Since(t0))
				requests.Add(1)
				perEnd[e].requests.Add(1)
				if err != nil {
					errors.Add(1)
					perEnd[e].errors.Add(1)
				}
			}
			lats[id] = mine
		}(c)
	}

	// Writers run beside the query clients until they finish — the
	// update mix: each writer inserts a fresh seeded edge then deletes
	// it on the next call, so sustained load leaves the graph close to
	// its base state while every mutation is a real (non-no-op) update.
	var writes, writeErrs atomic.Int64
	var wwg sync.WaitGroup
	if opts.Write != nil && opts.Writers > 0 {
		for w := 0; w < opts.Writers; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + 1_000_003*int64(w+1)))
				lo := 0
				if opts.WriteWindow > 0 && opts.WriteWindow < opts.Vertices {
					lo = opts.Vertices - opts.WriteWindow
				}
				span := opts.Vertices - lo
				var tick *time.Ticker
				if opts.WriteEvery > 0 {
					tick = time.NewTicker(opts.WriteEvery)
					defer tick.Stop()
				}
				var u, v graph.VertexID
				for k := 0; ; k++ {
					select {
					case <-stop:
						return
					default:
					}
					if tick != nil {
						select {
						case <-stop:
							return
						case <-tick.C:
						}
					}
					insert := k%2 == 0
					if insert {
						u = graph.VertexID(lo + rng.Intn(span))
						v = graph.VertexID(lo + rng.Intn(span))
					}
					writes.Add(1)
					if err := opts.Write(w, k, insert, u, v); err != nil {
						writeErrs.Add(1)
					}
				}
			}(w)
		}
	}

	// The disruptor runs beside the clients until they finish — the
	// "during-reload" mode: every DisruptEvery it fires the hook
	// (index swap, replica kill, whatever the caller injects) while
	// traffic keeps flowing.
	var disruptions, disruptErrs atomic.Int64
	var dwg sync.WaitGroup
	if opts.Disrupt != nil && opts.DisruptEvery > 0 {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			t := time.NewTicker(opts.DisruptEvery)
			defer t.Stop()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				case <-t.C:
					disruptions.Add(1)
					if err := opts.Disrupt(k); err != nil {
						disruptErrs.Add(1)
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	dwg.Wait()
	wwg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	res := LoadgenResult{
		Requests:      requests.Load(),
		Pairs:         requests.Load() * int64(batch),
		Errors:        errors.Load(),
		Disruptions:   disruptions.Load(),
		DisruptErrors: disruptErrs.Load(),
		Writes:        writes.Load(),
		WriteErrors:   writeErrs.Load(),
		Elapsed:       elapsed,
		Latency:       latencyStats(all),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Pairs) / elapsed.Seconds()
		res.UPS = float64(res.Writes) / elapsed.Seconds()
	}
	ends := make([]EndpointResult, ne)
	for i := range perEnd {
		ends[i] = EndpointResult{
			Requests: perEnd[i].requests.Load(),
			Errors:   perEnd[i].errors.Load(),
		}
	}
	return res, ends
}

// latencyStats computes exact mean and percentiles over raw latencies.
func latencyStats(lats []time.Duration) QueryStats {
	if len(lats) == 0 {
		return QueryStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(lats)-1) + 0.5)
		return lats[i]
	}
	return QueryStats{
		Mean: total / time.Duration(len(lats)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}
}

// ProfileQueries measures the latency distribution of reach over the
// given pairs. Single queries run in tens of nanoseconds, below timer
// resolution, so latencies are sampled per chunk and the percentiles
// are taken over per-query chunk means (the same scheme as
// Runner.QueryProfile). It returns the distribution and the total
// wall time of the sweep.
func ProfileQueries(reach func(s, t graph.VertexID) bool, pairs []graph.Edge) (QueryStats, time.Duration) {
	if len(pairs) == 0 {
		return QueryStats{}, 0
	}
	const chunk = 64
	lats := make([]time.Duration, 0, (len(pairs)+chunk-1)/chunk)
	var total time.Duration
	for lo := 0; lo < len(pairs); lo += chunk {
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		start := time.Now()
		for _, p := range pairs[lo:hi] {
			reach(p.U, p.V)
		}
		d := time.Since(start)
		total += d
		lats = append(lats, d/time.Duration(hi-lo))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(lats)-1) + 0.5)
		return lats[i]
	}
	return QueryStats{
		Mean: total / time.Duration(len(pairs)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}, total
}

package bench

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestRunLoadgenEndpointsSpread: with E endpoints, request i of
// client c goes to clients[(c+i) mod E] — every endpoint gets
// traffic, the per-endpoint tallies sum to the totals, and errors are
// attributed to the endpoint that produced them.
func TestRunLoadgenEndpointsSpread(t *testing.T) {
	const perClient = 30
	var calls [3]atomic.Int64
	mk := func(i int, fail bool) Client {
		return func(pairs []graph.Edge) error {
			calls[i].Add(1)
			if fail {
				return errors.New("injected")
			}
			return nil
		}
	}
	res, ends := RunLoadgenEndpoints(LoadgenOptions{
		Clients:  2,
		Requests: 2 * perClient,
		Vertices: 10,
		Seed:     1,
	}, []Client{mk(0, false), mk(1, true), mk(2, false)})

	if res.Requests != 2*perClient {
		t.Fatalf("requests %d, want %d", res.Requests, 2*perClient)
	}
	if len(ends) != 3 {
		t.Fatalf("%d endpoint tallies, want 3", len(ends))
	}
	var sumReq, sumErr int64
	for i, e := range ends {
		if e.Requests == 0 {
			t.Fatalf("endpoint %d got no traffic", i)
		}
		if e.Requests != calls[i].Load() {
			t.Fatalf("endpoint %d tally %d but client saw %d calls", i, e.Requests, calls[i].Load())
		}
		sumReq += e.Requests
		sumErr += e.Errors
	}
	if sumReq != res.Requests {
		t.Fatalf("endpoint requests sum %d != total %d", sumReq, res.Requests)
	}
	if sumErr != res.Errors {
		t.Fatalf("endpoint errors sum %d != total %d", sumErr, res.Errors)
	}
	// Only endpoint 1 fails, and every one of its requests fails.
	if ends[0].Errors != 0 || ends[2].Errors != 0 {
		t.Fatalf("healthy endpoints charged with errors: %+v", ends)
	}
	if ends[1].Errors != ends[1].Requests {
		t.Fatalf("failing endpoint: %d errors for %d requests", ends[1].Errors, ends[1].Requests)
	}
}

// TestRunLoadgenDisrupt: the disruptor fires on its period while the
// clients run, its calls and errors are tallied separately from
// request errors, and it stops with the run.
func TestRunLoadgenDisrupt(t *testing.T) {
	var fired atomic.Int64
	res := RunLoadgen(LoadgenOptions{
		Clients:      2,
		Duration:     120 * time.Millisecond,
		Vertices:     10,
		Seed:         2,
		DisruptEvery: 25 * time.Millisecond,
		Disrupt: func(k int) error {
			fired.Add(1)
			if k == 0 {
				return errors.New("first swap failed")
			}
			return nil
		},
	}, func(pairs []graph.Edge) error {
		time.Sleep(time.Millisecond)
		return nil
	})

	if res.Errors != 0 {
		t.Fatalf("disruptor errors leaked into request errors: %d", res.Errors)
	}
	if res.Disruptions == 0 {
		t.Fatal("disruptor never fired")
	}
	if res.Disruptions != fired.Load() {
		t.Fatalf("tallied %d disruptions, hook saw %d", res.Disruptions, fired.Load())
	}
	if res.DisruptErrors != 1 {
		t.Fatalf("disrupt errors %d, want exactly 1", res.DisruptErrors)
	}
	// The hook must not fire after the run returns.
	after := fired.Load()
	time.Sleep(60 * time.Millisecond)
	if fired.Load() != after {
		t.Fatal("disruptor kept firing after RunLoadgen returned")
	}
}

// TestRunLoadgenSingleEndpointCompat: RunLoadgen over one client must
// behave exactly as before the multi-endpoint split.
func TestRunLoadgenSingleEndpointCompat(t *testing.T) {
	var n atomic.Int64
	res := RunLoadgen(LoadgenOptions{
		Clients:   3,
		Requests:  30,
		BatchSize: 4,
		Vertices:  10,
		Seed:      3,
	}, func(pairs []graph.Edge) error {
		if len(pairs) != 4 {
			t.Errorf("batch size %d, want 4", len(pairs))
		}
		n.Add(1)
		return nil
	})
	if res.Requests != n.Load() {
		t.Fatalf("result says %d requests, client saw %d", res.Requests, n.Load())
	}
	if res.Pairs != res.Requests*4 {
		t.Fatalf("pairs %d for %d requests of 4", res.Pairs, res.Requests)
	}
	if res.Errors != 0 || res.Disruptions != 0 {
		t.Fatalf("unexpected errors/disruptions: %+v", res)
	}
}

package bench

import (
	"fmt"
	"io"
	"log"
	"strings"
	"text/tabwriter"
	"time"
)

// Text renderers producing the paper's artifacts as aligned tables.

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// flushTab flushes a report table. The printers have no error channel
// — reports are best-effort console output — but a failing underlying
// writer must not vanish silently (errsink), so it is logged.
func flushTab(tw *tabwriter.Writer) {
	if err := tw.Flush(); err != nil {
		log.Printf("bench: flushing table: %v", err)
	}
}

func secs(d time.Duration, inf bool) string {
	if inf {
		return "INF"
	}
	return fmt.Sprintf("%.2f", d.Seconds())
}

func mb(b int64, inf bool) string {
	if inf {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

func sci(d time.Duration, missing bool) string {
	if missing {
		return "-"
	}
	return fmt.Sprintf("%.2E", d.Seconds())
}

// PrintTable5 renders the dataset inventory.
func PrintTable5(w io.Writer, rows []Table5Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Name\tStands for\t|V|\t|E|\tType\tSCCs\tLargest SCC\tAcyclic")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%d\t%d\t%v\n",
			r.Dataset.Name, r.Dataset.Paper, r.Stats.Vertices, r.Stats.Edges,
			r.Dataset.Params.Family, r.Stats.Components, r.Stats.LargestSCC, r.Stats.Acyclic)
	}
	flushTab(tw)
}

// PrintTable6 renders the competitor comparison in the paper's three
// blocks: index time (s), index size (MB), query time (s).
func PrintTable6(w io.Writer, rows []Table6Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "== Index Time (sec) ==")
	fmt.Fprintln(tw, "Name\tBFL^C\tBFL^D\tTOL\tDRL_b\tDRL_b^M")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Dataset,
			secs(r.BFLC.Total, r.BFLC.INF()),
			secs(r.BFLD.Total, r.BFLD.INF()),
			secs(r.TOL.Total, r.TOL.INF()),
			secs(r.DRLb.Total, r.DRLb.INF()),
			secs(r.DRLbM.Total, r.DRLbM.INF()))
	}
	fmt.Fprintln(tw, "\n== Index Size (MB) ==")
	fmt.Fprintln(tw, "Name\tBFL^C\tBFL^D\tTOL\tDRL_b\tDRL_b^M")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Dataset,
			mb(r.BFLC.Bytes, r.BFLC.INF()),
			mb(r.BFLD.Bytes, r.BFLD.INF()),
			mb(r.TOL.Bytes, r.TOL.INF()),
			mb(r.DRLb.Bytes, r.DRLb.INF()),
			mb(r.DRLbM.Bytes, r.DRLbM.INF()))
	}
	fmt.Fprintln(tw, "\n== Query Time (sec) ==")
	fmt.Fprintln(tw, "Name\tBFL^C\tBFL^D\tTOL\tDRL_b\tDRL_b^M")
	for _, r := range rows {
		idx := sci(r.QueryIdx, r.QueryIdx == 0)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Dataset,
			sci(r.QueryBFLC, r.BFLC.Index == nil),
			sci(r.QueryBFLD, r.BFLD.Index == nil),
			idx, idx, idx)
	}
	flushTab(tw)
}

// PrintFig5 renders the communication/computation split.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Dataset\tAlgo\tComputation (s)\tCommunication (s)\tTotal (s)")
	for _, r := range rows {
		for _, e := range []BuildResult{r.DRLMinus, r.DRL, r.DRLb} {
			if e.INF() {
				fmt.Fprintf(tw, "%s\t%s\tINF\tINF\tINF\n", r.Dataset, e.Algo)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\n",
				r.Dataset, e.Algo, e.Comp.Seconds(), e.Comm.Seconds(), e.Total.Seconds())
		}
	}
	flushTab(tw)
}

// PrintFig6 renders speedup ratios per worker count.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	tw := newTab(w)
	header := []string{"Dataset", "Algo"}
	if len(rows) > 0 {
		for _, p := range rows[0].Workers {
			header = append(header, fmt.Sprintf("p=%d", p))
		}
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		cols := []string{r.Dataset, r.Algo}
		for i := range r.Workers {
			if s := r.Speedup(i); s > 0 {
				cols = append(cols, fmt.Sprintf("%.2fx", s))
			} else {
				cols = append(cols, "INF")
			}
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	flushTab(tw)
}

// PrintFig7 renders index time against edge-prefix fraction.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	tw := newTab(w)
	header := []string{"Dataset", "Algo"}
	if len(rows) > 0 {
		for _, f := range rows[0].Fractions {
			header = append(header, fmt.Sprintf("%.0f%%", f*100))
		}
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		cols := []string{r.Dataset, r.Algo}
		for _, t := range r.Times {
			cols = append(cols, secs(t.Total, t.INF()))
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	flushTab(tw)
}

// PrintFig8 renders index time against the initial batch size b.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	tw := newTab(w)
	header := []string{"Dataset"}
	if len(rows) > 0 {
		for _, b := range rows[0].Sizes {
			header = append(header, fmt.Sprintf("b=%d", b))
		}
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		cols := []string{r.Dataset}
		for _, t := range r.Times {
			cols = append(cols, secs(t.Total, t.INF()))
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	flushTab(tw)
}

// PrintFig9 renders index time against the increment factor k.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	tw := newTab(w)
	header := []string{"Dataset"}
	if len(rows) > 0 {
		for _, k := range rows[0].Factors {
			header = append(header, fmt.Sprintf("k=%.1f", k))
		}
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		cols := []string{r.Dataset}
		for _, t := range r.Times {
			cols = append(cols, secs(t.Total, t.INF()))
		}
		fmt.Fprintln(tw, strings.Join(cols, "\t"))
	}
	flushTab(tw)
}

// PrintScale renders one scale-experiment record: the deterministic
// build outputs first (what benchcompare gates), then the per-phase
// median timings.
func PrintScale(w io.Writer, rec *ScaleRecord) {
	fmt.Fprintf(w, "family=%s n=%d deg=%.1f seed=%d budget=%d runs=%d\n",
		rec.Family, rec.N, rec.AvgDegree, rec.Seed, rec.Budget, rec.Runs)
	fmt.Fprintf(w, "edges=%d file_bytes=%d", rec.Edges, rec.FileBytes)
	if rec.Budget > 0 {
		fmt.Fprintf(w, " index_entries=%d index_bytes=%d max_label=%d overflowed_in=%d overflowed_out=%d",
			rec.IndexEntries, rec.IndexBytes, rec.MaxLabel, rec.OverflowedIn, rec.OverflowedOut)
	}
	fmt.Fprintln(w)
	tw := newTab(w)
	fmt.Fprintln(tw, "Phase\tMedian(s)\tRuns(s)")
	for _, ph := range rec.Phases {
		runs := make([]string, len(ph.RunSeconds))
		for i, s := range ph.RunSeconds {
			runs[i] = fmt.Sprintf("%.3f", s)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%s\n", ph.Phase, ph.MedianSeconds, strings.Join(runs, " "))
	}
	flushTab(tw)
}

// PrintQueryWorkload renders a drbench -exp query record: the
// deterministic aggregates benchcompare gates, then the informational
// phase timings.
func PrintQueryWorkload(w io.Writer, rec *QueryWorkloadRecord) {
	fmt.Fprintf(w, "family=%s n=%d deg=%.1f seed=%d edges=%d\n",
		rec.Family, rec.N, rec.AvgDegree, rec.Seed, rec.Edges)
	fmt.Fprintf(w, "path:  %d/%d pairs reachable, %d total hops\n",
		rec.ReachablePairs, rec.PairSamples, rec.PathHops)
	fmt.Fprintf(w, "count: %d sources, %d reachable vertices total\n",
		rec.CountSources, rec.ReachableSum)
	fmt.Fprintf(w, "join:  %d×%d cross-product, %d reachable pairs\n",
		rec.JoinSources, rec.JoinTargets, rec.JoinPairs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Phase\tSeconds")
	for _, ph := range rec.Phases {
		fmt.Fprintf(tw, "%s\t%.3f\n", ph.Phase, ph.MedianSeconds)
	}
	flushTab(tw)
}

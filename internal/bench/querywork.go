package bench

import (
	"fmt"

	"repro/internal/graph"
)

// The query workload measures the rich read path on a frozen index —
// witness paths, one-source sweeps, set cardinalities, and a
// reachability join — over a deterministically generated graph. Every
// answer is a pure function of (family, n, deg, seed) and the code, so
// the aggregate counts are gated exactly by benchcompare; only the
// phase timings are informational (this bench host sees double-digit
// CPU steal). The workload also cross-checks itself: a witness path
// that contradicts the boolean answer, or a sweep row that disagrees
// with per-pair queries, fails the run instead of producing a record.

// QueryWorkloadParams configures RunQueryWorkload. The generator
// parameters identify the graph; the sample sizes shape the workload.
type QueryWorkloadParams struct {
	Family    string
	N         int
	AvgDegree float64
	Seed      int64
	// PairSamples is the number of zipf-sampled (s, t) pairs answered
	// with a witness path (default 20000).
	PairSamples int
	// CountSources is the number of sources whose reachable-set size
	// is summed (default 256).
	CountSources int
	// JoinSources × JoinTargets is the join cross-product (defaults
	// 64 × 64).
	JoinSources int
	JoinTargets int
}

// QueryWorkloadOps are the index operations the workload drives,
// passed as function values so this package stays independent of the
// public index type (the root package's white-box tests import bench,
// so bench importing the root back would cycle).
type QueryWorkloadOps struct {
	Vertices  int
	Edges     int64
	Reachable func(s, t graph.VertexID) bool
	Path      func(s, t graph.VertexID) ([]graph.VertexID, error)
	SetSize   func(s graph.VertexID) int
	Sweep     func(s graph.VertexID, targets []graph.VertexID) []bool
}

// QueryWorkloadRecord is the serializable result of one query
// workload. Everything above Phases is fully determined by the
// parameters and the code — benchcompare fails when any of it moves.
// PathHops is deterministic because witness paths are shortest paths
// (the guided BFS prunes branches, never reorders levels), so each
// pair contributes exactly its BFS distance.
type QueryWorkloadRecord struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	AvgDegree float64 `json:"avg_degree"`
	Seed      int64   `json:"seed"`

	Edges          int64 `json:"edges"`
	PairSamples    int   `json:"pair_samples"`
	ReachablePairs int   `json:"reachable_pairs"`
	PathHops       int64 `json:"path_hops"`
	CountSources   int   `json:"count_sources"`
	ReachableSum   int64 `json:"reachable_sum"`
	JoinSources    int   `json:"join_sources"`
	JoinTargets    int   `json:"join_targets"`
	JoinPairs      int   `json:"join_pairs"`

	Phases []ScalePhase `json:"phases"`
}

// RunQueryWorkload drives the three rich-query workloads and returns
// their aggregate counts. It returns an error (rather than a record)
// when any cross-check fails — that is a correctness bug in the index,
// not a measurement.
func RunQueryWorkload(p QueryWorkloadParams, ops QueryWorkloadOps, progress func(string)) (*QueryWorkloadRecord, error) {
	if ops.Vertices <= 0 {
		return nil, fmt.Errorf("bench: query workload needs a non-empty index")
	}
	if p.PairSamples <= 0 {
		p.PairSamples = 20000
	}
	if p.CountSources <= 0 {
		p.CountSources = 256
	}
	if p.JoinSources <= 0 {
		p.JoinSources = 64
	}
	if p.JoinTargets <= 0 {
		p.JoinTargets = 64
	}
	rec := &QueryWorkloadRecord{
		Family: p.Family, N: p.N, AvgDegree: p.AvgDegree, Seed: p.Seed,
		Edges:        ops.Edges,
		PairSamples:  p.PairSamples,
		CountSources: p.CountSources,
		JoinSources:  p.JoinSources,
		JoinTargets:  p.JoinTargets,
	}
	pairs := ZipfPairs(ops.Vertices, p.PairSamples, 1.1, p.Seed)

	// Witness paths: every sampled pair, boolean answer cross-checked
	// against the path's existence.
	phase, err := timed("path", 1, func() error {
		rec.ReachablePairs, rec.PathHops = 0, 0
		for _, pr := range pairs {
			want := ops.Reachable(pr.U, pr.V)
			path, err := ops.Path(pr.U, pr.V)
			if err != nil {
				return fmt.Errorf("bench: path(%d,%d): %w", pr.U, pr.V, err)
			}
			if (path != nil) != want {
				return fmt.Errorf("bench: path(%d,%d) is %v but reachable=%v", pr.U, pr.V, path, want)
			}
			if want {
				rec.ReachablePairs++
				rec.PathHops += int64(len(path) - 1)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	report(progress, "query path: %d/%d pairs reachable, %d total hops, %.3fs",
		rec.ReachablePairs, p.PairSamples, rec.PathHops, phase.MedianSeconds)

	// Set sizes: the first CountSources sampled sources, with every
	// 16th size cross-checked against a full-row sweep popcount.
	all := make([]graph.VertexID, ops.Vertices)
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	phase, err = timed("count", 1, func() error {
		rec.ReachableSum = 0
		for i := 0; i < p.CountSources; i++ {
			s := pairs[i%len(pairs)].U
			size := ops.SetSize(s)
			if i%16 == 0 {
				pop := 0
				for _, ok := range ops.Sweep(s, all) {
					if ok {
						pop++
					}
				}
				if pop != size {
					return fmt.Errorf("bench: |reach(%d)| = %d but the full sweep says %d", s, size, pop)
				}
			}
			rec.ReachableSum += int64(size)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	report(progress, "query count: %d sources sum to %d reachable vertices, %.3fs",
		p.CountSources, rec.ReachableSum, phase.MedianSeconds)

	// Join: the sampled sources × sampled targets cross-product via
	// per-source sweeps, cross-checked pair by pair.
	sources := distinctFirst(pairs, p.JoinSources, func(e graph.Edge) graph.VertexID { return e.U })
	targets := distinctFirst(pairs, p.JoinTargets, func(e graph.Edge) graph.VertexID { return e.V })
	rec.JoinSources, rec.JoinTargets = len(sources), len(targets)
	phase, err = timed("join", 1, func() error {
		rec.JoinPairs = 0
		for _, s := range sources {
			row := ops.Sweep(s, targets)
			for i, ok := range row {
				if ok != ops.Reachable(s, targets[i]) {
					return fmt.Errorf("bench: join sweep(%d,%d) = %v but Reachable disagrees", s, targets[i], ok)
				}
				if ok {
					rec.JoinPairs++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	report(progress, "query join: %d×%d cross-product has %d reachable pairs, %.3fs",
		len(sources), len(targets), rec.JoinPairs, phase.MedianSeconds)
	return rec, nil
}

// distinctFirst returns the first k distinct vertices pick() yields
// over pairs, in first-seen order — deterministic for a fixed sample.
func distinctFirst(pairs []graph.Edge, k int, pick func(graph.Edge) graph.VertexID) []graph.VertexID {
	seen := make(map[graph.VertexID]bool, k)
	out := make([]graph.VertexID, 0, k)
	for _, e := range pairs {
		v := pick(e)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
		if len(out) == k {
			break
		}
	}
	return out
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/label"
	"repro/internal/order"
)

// Machine-readable benchmark records: drbench -json serializes one
// RunRecord per invocation (a BENCH_*.json file) so dashboards and
// regression checks can consume the numbers without scraping tables.

// RunRecord is the top-level envelope of one drbench run.
type RunRecord struct {
	Experiment string          `json:"experiment"`
	Suite      string          `json:"suite"`
	Workers    int             `json:"workers"`
	Queries    int             `json:"queries"`
	UnixTime   int64           `json:"unix_time,omitempty"`
	Datasets   []DatasetRecord `json:"datasets"`
	// Scale is set by drbench -exp scale runs (one build-path
	// measurement instead of per-dataset algorithm profiles).
	Scale *ScaleRecord `json:"scale,omitempty"`
	// QueryWorkload is set by drbench -exp query runs (the rich-query
	// workload's deterministic aggregates, gated exactly).
	QueryWorkload *QueryWorkloadRecord `json:"query_workload,omitempty"`
}

// DatasetRecord collects the per-algorithm measurements of one graph.
type DatasetRecord struct {
	Name   string        `json:"name"`
	Builds []BuildRecord `json:"builds"`
}

// BuildRecord is one (dataset, algorithm) measurement in serializable
// form.
type BuildRecord struct {
	Algo           string       `json:"algo"`
	Seconds        float64      `json:"seconds"`
	ComputeSeconds float64      `json:"compute_seconds"`
	CommSeconds    float64      `json:"comm_seconds"`
	Supersteps     int          `json:"supersteps,omitempty"`
	Messages       int64        `json:"messages,omitempty"`
	BytesRemote    int64        `json:"bytes_remote,omitempty"`
	IndexBytes     int64        `json:"index_bytes,omitempty"`
	TimedOut       bool         `json:"timed_out,omitempty"`
	Error          string       `json:"error,omitempty"`
	Query          *QueryRecord `json:"query,omitempty"`

	// Serving-side measurements (cmd/drload records; zero for build
	// benchmarks).
	QPS    float64 `json:"qps,omitempty"`
	Errors int64   `json:"errors,omitempty"`

	// Update-mix measurements (drload -writers; zero for query-only
	// runs): sustained mutations/sec beside the query traffic.
	UPS         float64 `json:"ups,omitempty"`
	Writes      int64   `json:"writes,omitempty"`
	WriteErrors int64   `json:"write_errors,omitempty"`
}

// QueryRecord is the query-latency distribution of an index.
type QueryRecord struct {
	MeanNanos int64 `json:"mean_ns"`
	P50Nanos  int64 `json:"p50_ns"`
	P90Nanos  int64 `json:"p90_ns"`
	P99Nanos  int64 `json:"p99_ns"`
}

func buildRecord(res BuildResult) BuildRecord {
	rec := BuildRecord{
		Algo:           res.Algo,
		Seconds:        res.Total.Seconds(),
		ComputeSeconds: res.Comp.Seconds(),
		CommSeconds:    res.Comm.Seconds(),
		Supersteps:     res.Supersteps,
		Messages:       res.Messages,
		BytesRemote:    res.BytesRemote,
		IndexBytes:     res.Bytes,
		TimedOut:       res.TimedOut,
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
	}
	return rec
}

// QueryStats is the measured query-latency distribution.
type QueryStats struct {
	Mean, P50, P90, P99 time.Duration
}

// QueryProfile measures the query-latency distribution of idx. Single
// queries run in tens of nanoseconds, below timer resolution, so
// latencies are sampled per chunk of queries and the percentiles are
// taken over the per-query chunk means.
func (r *Runner) QueryProfile(idx *label.Index) QueryStats {
	if idx == nil || idx.NumVertices() == 0 {
		return QueryStats{}
	}
	pairs := queryPairs(idx.NumVertices(), r.Queries, 7)
	qs, _ := ProfileQueries(idx.Reachable, pairs)
	return qs
}

// Profile runs TOL, DRL_b^M, DRL, and DRL_b over every dataset and
// returns serializable records including build cost, BSP volume, and
// query-latency percentiles — the payload of drbench -json.
func (r *Runner) Profile(ds []Dataset, progress func(string)) ([]DatasetRecord, error) {
	recs := make([]DatasetRecord, 0, len(ds))
	for _, d := range ds {
		g, err := d.Build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", d.Name, err)
		}
		ord := order.Compute(g)
		rec := DatasetRecord{Name: d.Name}
		for _, res := range []BuildResult{
			r.RunTOL(g, ord),
			r.RunDRLbM(g, ord),
			r.RunDRL(g, ord),
			r.RunDRLb(g, ord),
		} {
			br := buildRecord(res)
			if res.Index != nil {
				qs := r.QueryProfile(res.Index)
				br.Query = &QueryRecord{
					MeanNanos: qs.Mean.Nanoseconds(),
					P50Nanos:  qs.P50.Nanoseconds(),
					P90Nanos:  qs.P90.Nanoseconds(),
					P99Nanos:  qs.P99.Nanoseconds(),
				}
			}
			rec.Builds = append(rec.Builds, br)
			report(progress, "profile %s %s: %s", d.Name, res.Algo, fmtBuild(res.Total, res.TimedOut))
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

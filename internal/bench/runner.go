package bench

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/bfl"
	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/order"
	"repro/internal/pregel"
	"repro/internal/tol"
)

// Runner holds the shared experiment configuration: the simulated
// cluster size, the interconnect model, the cut-off, and the query
// sample size. The zero value is not usable; call NewRunner.
type Runner struct {
	// Workers is the number of computation nodes P for the
	// distributed algorithms (the paper uses 32).
	Workers int
	// Cutoff marks a build INF when exceeded (the paper uses 2h; the
	// harness default is scaled down with the graphs).
	Cutoff time.Duration
	// Net is the simulated interconnect.
	Net netsim.Model
	// Queries is the number of sampled reachability queries per
	// query-time measurement.
	Queries int
}

// NewRunner returns a Runner with the defaults used throughout
// EXPERIMENTS.md: 8 workers, 60s cut-off, commodity network, 20 000
// queries.
func NewRunner() *Runner {
	return &Runner{
		Workers: 8,
		Cutoff:  60 * time.Second,
		Net:     netsim.Commodity(),
		Queries: 20000,
	}
}

// BuildResult is one (dataset, algorithm) measurement.
type BuildResult struct {
	Algo string
	// Index is nil when the build timed out.
	Index *label.Index
	// Total is the modeled index time: measured compute plus measured
	// and simulated communication.
	Total time.Duration
	// Comp and Comm split Total for the distributed algorithms
	// (Fig. 5); Comm includes the simulated wire time.
	Comp, Comm time.Duration
	// Bytes is the index footprint (label indexes only; BFL results
	// report through BFLResult).
	Bytes    int64
	TimedOut bool
	Err      error

	// Supersteps, Messages, and BytesRemote describe the BSP run of the
	// distributed algorithms (zero for TOL and DRL_b^M, which exchange
	// no messages).
	Supersteps  int
	Messages    int64
	BytesRemote int64
}

// INF reports whether the result should print as "INF" (cut-off hit).
func (r BuildResult) INF() bool { return r.TimedOut }

// cutoffChan returns a channel that closes at the cut-off, plus a stop
// function.
func (r *Runner) cutoffChan() (<-chan struct{}, func()) {
	if r.Cutoff <= 0 {
		return nil, func() {}
	}
	ch := make(chan struct{})
	t := time.AfterFunc(r.Cutoff, func() { close(ch) })
	return ch, func() { t.Stop() }
}

func isCancel(err error) bool {
	return errors.Is(err, drl.ErrCanceled) ||
		errors.Is(err, pregel.ErrCanceled) ||
		errors.Is(err, tol.ErrCanceled) ||
		errors.Is(err, bfl.ErrCanceled)
}

// RunTOL measures the serial TOL baseline (wall time on one node).
func (r *Runner) RunTOL(g *graph.Digraph, ord *order.Ordering) BuildResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	start := time.Now()
	idx, err := tol.BuildCancelable(g, ord, cancel)
	dur := time.Since(start)
	res := BuildResult{Algo: "TOL", Total: dur, Comp: dur}
	if err != nil {
		res.TimedOut = isCancel(err)
		res.Err = err
		return res
	}
	res.Index = idx
	res.Bytes = idx.SizeBytes()
	return res
}

// RunDRLbM measures the shared-memory multi-core DRL_b^M with the
// runner's worker count as the thread count.
func (r *Runner) RunDRLbM(g *graph.Digraph, ord *order.Ordering) BuildResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	start := time.Now()
	idx, err := drl.BuildBatch(g, ord, drl.DefaultBatchParams(), drl.Options{
		Workers: r.Workers,
		Cancel:  cancel,
	})
	dur := time.Since(start)
	res := BuildResult{Algo: "DRLbM", Total: dur, Comp: dur}
	if err != nil {
		res.TimedOut = isCancel(err)
		res.Err = err
		return res
	}
	res.Index = idx
	res.Bytes = idx.SizeBytes()
	return res
}

// distResult converts a distributed build into a BuildResult.
func distResult(algo string, idx *label.Index, met pregel.Metrics, err error) BuildResult {
	res := BuildResult{
		Algo:        algo,
		Total:       met.Total(),
		Comp:        met.ComputeTime,
		Comm:        met.TotalComm(),
		Supersteps:  met.Supersteps,
		Messages:    met.Messages,
		BytesRemote: met.BytesRemote,
	}
	if err != nil {
		res.TimedOut = isCancel(err)
		res.Err = err
		return res
	}
	res.Index = idx
	res.Bytes = idx.SizeBytes()
	return res
}

// RunDRL measures the distributed DRL (Algorithm 3).
func (r *Runner) RunDRL(g *graph.Digraph, ord *order.Ordering) BuildResult {
	return r.RunDRLWorkers(g, ord, r.Workers)
}

// RunDRLWorkers is RunDRL at an explicit worker count (Exp 5).
func (r *Runner) RunDRLWorkers(g *graph.Digraph, ord *order.Ordering, p int) BuildResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	idx, met, err := drl.BuildDistributed(g, ord, drl.DistOptions{
		Workers: p, Net: r.Net, Cancel: cancel,
	})
	return distResult("DRL", idx, met, err)
}

// RunDRLb measures the distributed DRL_b (Algorithm 4).
func (r *Runner) RunDRLb(g *graph.Digraph, ord *order.Ordering) BuildResult {
	return r.RunDRLbParams(g, ord, drl.DefaultBatchParams(), r.Workers)
}

// RunDRLbParams is RunDRLb with explicit batch parameters and worker
// count (Exps 5, 7, 8).
func (r *Runner) RunDRLbParams(g *graph.Digraph, ord *order.Ordering, bp drl.BatchParams, p int) BuildResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	idx, met, err := drl.BuildDistributedBatch(g, ord, bp, drl.DistOptions{
		Workers: p, Net: r.Net, Cancel: cancel,
	})
	return distResult("DRLb", idx, met, err)
}

// RunDRLMinus measures the distributed basic method DRL⁻.
func (r *Runner) RunDRLMinus(g *graph.Digraph, ord *order.Ordering) BuildResult {
	return r.RunDRLMinusWorkers(g, ord, r.Workers)
}

// RunDRLMinusWorkers is RunDRLMinus at an explicit worker count.
func (r *Runner) RunDRLMinusWorkers(g *graph.Digraph, ord *order.Ordering, p int) BuildResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	idx, met, err := drl.BuildDistributedBasic(g, ord, drl.DistOptions{
		Workers: p, Net: r.Net, Cancel: cancel,
	})
	return distResult("DRL-", idx, met, err)
}

// BFLResult is the measurement of a BFL build (centralized or
// distributed).
type BFLResult struct {
	Algo     string
	Index    *bfl.Index
	Total    time.Duration
	Bytes    int64
	TimedOut bool
	Err      error
}

// INF reports whether the result should print as "INF".
func (r BFLResult) INF() bool { return r.TimedOut }

// RunBFLC measures the centralized BFL baseline.
func (r *Runner) RunBFLC(g *graph.Digraph) BFLResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	start := time.Now()
	idx, err := bfl.Build(g, bfl.Options{Cancel: cancel})
	dur := time.Since(start)
	res := BFLResult{Algo: "BFLC", Total: dur}
	if err != nil {
		res.TimedOut = isCancel(err)
		res.Err = err
		return res
	}
	res.Index = idx
	res.Bytes = idx.SizeBytes()
	return res
}

// RunBFLD measures the distributed BFL (token-passing DFS).
func (r *Runner) RunBFLD(g *graph.Digraph) BFLResult {
	cancel, stop := r.cutoffChan()
	defer stop()
	idx, met, err := bfl.BuildDistributed(g, bfl.Options{}, bfl.DistOptions{
		Workers: r.Workers, Net: r.Net, Cancel: cancel,
	})
	res := BFLResult{Algo: "BFLD", Total: met.Total()}
	if err != nil {
		res.TimedOut = isCancel(err)
		res.Err = err
		return res
	}
	res.Index = idx
	res.Bytes = idx.SizeBytes()
	return res
}

// queryPairs samples deterministic (s, t) query pairs.
func queryPairs(n, q int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]graph.Edge, q)
	for i := range pairs {
		pairs[i] = graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		}
	}
	return pairs
}

// QueryIndex measures the mean query time of a label index
// (TOL/DRL_b; they share the index, §VI Exp 1).
func (r *Runner) QueryIndex(idx *label.Index) time.Duration {
	if idx == nil || idx.NumVertices() == 0 {
		return 0
	}
	pairs := queryPairs(idx.NumVertices(), r.Queries, 7)
	start := time.Now()
	for _, p := range pairs {
		idx.Reachable(p.U, p.V)
	}
	return time.Since(start) / time.Duration(len(pairs))
}

// QueryBFLC measures the mean centralized BFL query time (labels plus
// fallback searches on the in-memory graph).
func (r *Runner) QueryBFLC(g *graph.Digraph, idx *bfl.Index) time.Duration {
	if idx == nil || g.NumVertices() == 0 {
		return 0
	}
	q := r.Queries
	if q > 5000 {
		q = 5000 // fallback DFS queries are orders slower
	}
	pairs := queryPairs(g.NumVertices(), q, 7)
	start := time.Now()
	for _, p := range pairs {
		idx.Reachable(g, p.U, p.V)
	}
	return time.Since(start) / time.Duration(len(pairs))
}

// QueryBFLD measures the mean distributed BFL query time: measured
// CPU plus the simulated cross-partition latency of the distributed
// traversals.
func (r *Runner) QueryBFLD(g *graph.Digraph, idx *bfl.Index) time.Duration {
	if idx == nil || g.NumVertices() == 0 {
		return 0
	}
	q := r.Queries
	if q > 2000 {
		q = 2000
	}
	pairs := queryPairs(g.NumVertices(), q, 7)
	var sim time.Duration
	start := time.Now()
	for _, p := range pairs {
		_, s := idx.ReachableDistributed(g, p.U, p.V, r.Workers, r.Net)
		sim += s
	}
	return (time.Since(start) + sim) / time.Duration(len(pairs))
}

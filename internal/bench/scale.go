package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/tol"
)

// The scale experiment measures the 10⁸-edge build path end to end:
// parallel CSR construction, streaming construction, binary v2
// save, copying load, mmap load, and memory-bounded labeling — and
// asserts along the way that every path produces the identical graph.
// Timings are reported as medians over ScaleParams.Runs repetitions
// (this bench host sees double-digit CPU steal, so single timings are
// noise); the structural outputs (edge count, file bytes, index
// entries) are fully deterministic and are what benchcompare gates.

// ScaleParams configures RunScale.
type ScaleParams struct {
	Family    string
	N         int
	AvgDegree float64
	Seed      int64
	// Budget is the per-vertex label cap for the labeling phase;
	// 0 skips labeling (pure build/IO measurement).
	Budget int
	// Runs is the number of timing repetitions per cheap phase; the
	// ordering and labeling phases always run once.
	Runs int
	// Dir is the scratch directory for the file phases ("" = temp).
	Dir string
}

// ScalePhase is one measured phase of the scale experiment.
type ScalePhase struct {
	Phase         string    `json:"phase"`
	MedianSeconds float64   `json:"median_seconds"`
	RunSeconds    []float64 `json:"run_seconds"`
}

// ScaleRecord is the serializable result of one scale run. The
// non-timing fields are fully determined by (family, n, deg, seed,
// budget) and the code: benchcompare fails when any of them moves.
type ScaleRecord struct {
	Family    string  `json:"family"`
	N         int     `json:"n"`
	AvgDegree float64 `json:"avg_degree"`
	Seed      int64   `json:"seed"`
	Budget    int     `json:"budget,omitempty"`
	Runs      int     `json:"runs"`

	Edges         int64 `json:"edges"`
	FileBytes     int64 `json:"file_bytes"`
	IndexEntries  int64 `json:"index_entries,omitempty"`
	IndexBytes    int64 `json:"index_bytes,omitempty"`
	MaxLabel      int   `json:"max_label,omitempty"`
	OverflowedIn  int   `json:"overflowed_in,omitempty"`
	OverflowedOut int   `json:"overflowed_out,omitempty"`

	Phases []ScalePhase `json:"phases"`
}

// RunScale runs the scale experiment. It returns an error (rather
// than a record) if any two build paths disagree — that is a
// correctness bug, not a measurement.
func RunScale(p ScaleParams, progress func(string)) (*ScaleRecord, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("bench: scale n %d must be positive", p.N)
	}
	if p.Runs < 1 {
		p.Runs = 1
	}
	params := gen.Params{Family: gen.Family(p.Family), N: p.N, AvgDegree: p.AvgDegree, Seed: p.Seed}
	rec := &ScaleRecord{
		Family: p.Family, N: p.N, AvgDegree: p.AvgDegree, Seed: p.Seed,
		Budget: p.Budget, Runs: p.Runs,
	}

	dir := p.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "drscale")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "scale.bin")

	var g *graph.Digraph
	phase, err := timed("generate", p.Runs, func() error {
		var err error
		g, err = gen.Generate(params)
		return err
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	rec.Edges = g.NumEdges()
	report(progress, "scale generate: %d vertices, %d edges, median %.3fs",
		p.N, rec.Edges, phase.MedianSeconds)

	var gs *graph.Digraph
	phase, err = timed("generate-stream", p.Runs, func() error {
		var err error
		gs, err = gen.GenerateStreamed(params)
		return err
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	if err := sameCSR(g, gs); err != nil {
		return nil, fmt.Errorf("bench: streamed build diverged from in-RAM build: %w", err)
	}
	gs = nil
	report(progress, "scale generate-stream: identical CSR, median %.3fs", phase.MedianSeconds)

	phase, err = timed("save-v2", p.Runs, func() error {
		return graph.SaveFile(path, g, true)
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	rec.FileBytes = st.Size()
	report(progress, "scale save-v2: %d bytes, median %.3fs", rec.FileBytes, phase.MedianSeconds)

	var gc *graph.Digraph
	phase, err = timed("load-copy", p.Runs, func() error {
		var err error
		gc, err = graph.LoadFile(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	if err := sameCSR(g, gc); err != nil {
		return nil, fmt.Errorf("bench: copy-loaded graph diverged: %w", err)
	}
	gc = nil
	report(progress, "scale load-copy: median %.3fs", phase.MedianSeconds)

	var gm *graph.Mapped
	phase, err = timed("load-mmap", p.Runs, func() error {
		if gm != nil {
			if err := gm.Close(); err != nil {
				return err
			}
		}
		var err error
		gm, err = graph.MapFile(path)
		return err
	})
	if err != nil {
		return nil, err
	}
	rec.Phases = append(rec.Phases, phase)
	if err := sameCSR(g, gm.Digraph); err != nil {
		gm.Close()
		return nil, fmt.Errorf("bench: mmap-loaded graph diverged: %w", err)
	}
	if err := gm.Close(); err != nil {
		return nil, err
	}
	report(progress, "scale load-mmap: median %.3fs", phase.MedianSeconds)

	if p.Budget > 0 {
		var ord *order.Ordering
		phase, err = timed("order", 1, func() error {
			ord = order.Compute(g)
			return nil
		})
		if err != nil {
			return nil, err
		}
		rec.Phases = append(rec.Phases, phase)
		report(progress, "scale order: %.3fs", phase.MedianSeconds)

		var b *label.Budgeted
		phase, err = timed("label-budgeted", 1, func() error {
			var err error
			b, err = tol.BuildBudgeted(g, ord, p.Budget, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		rec.Phases = append(rec.Phases, phase)
		x := b.Index()
		rec.IndexEntries = x.Entries()
		rec.IndexBytes = x.SizeBytes()
		rec.MaxLabel = x.MaxLabelSize()
		rec.OverflowedIn, rec.OverflowedOut = b.Overflowed()
		report(progress, "scale label-budgeted: %d entries, %d/%d overflowed, %.3fs",
			rec.IndexEntries, rec.OverflowedIn, rec.OverflowedOut, phase.MedianSeconds)
	}
	return rec, nil
}

// timed runs f runs times and reports the median wall time. Every run
// must succeed.
func timed(name string, runs int, f func() error) (ScalePhase, error) {
	ph := ScalePhase{Phase: name, RunSeconds: make([]float64, 0, runs)}
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return ph, fmt.Errorf("bench: scale phase %s: %w", name, err)
		}
		ph.RunSeconds = append(ph.RunSeconds, time.Since(start).Seconds())
	}
	sorted := append([]float64(nil), ph.RunSeconds...)
	sort.Float64s(sorted)
	ph.MedianSeconds = sorted[len(sorted)/2]
	return ph, nil
}

// sameCSR verifies two graphs expose identical adjacency, direction by
// direction — the byte-identity contract between the build paths.
func sameCSR(a, b *graph.Digraph) error {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("shape differs: %d/%d vertices, %d/%d edges",
			a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	for v := graph.VertexID(0); int(v) < a.NumVertices(); v++ {
		if err := sameAdj(a.OutNeighbors(v), b.OutNeighbors(v), "out", v); err != nil {
			return err
		}
		if err := sameAdj(a.InNeighbors(v), b.InNeighbors(v), "in", v); err != nil {
			return err
		}
	}
	return nil
}

func sameAdj(a, b []graph.VertexID, dir string, v graph.VertexID) error {
	if len(a) != len(b) {
		return fmt.Errorf("v%d %s-degree differs: %d vs %d", v, dir, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("v%d %s-adjacency differs at %d: %d vs %d", v, dir, i, a[i], b[i])
		}
	}
	return nil
}

// Package bfl implements the Bloom-Filter Labeling baseline of Su et
// al. ("Reachability Querying: Can It Be Even Faster?", TKDE 2017),
// the index-assisted competitor of Exp 2.
//
// BFL assigns each vertex a DFS interval (a positive certificate for
// tree reachability) and two Bloom labels: L_out(v) over-approximates
// the hashed descendant set h(DES(v)) and L_in(v) the hashed ancestor
// set. Queries use three O(1) tests — interval containment for "yes",
// and the label-containment conditions DES(t) ⊆ DES(s) /
// ANC(s) ⊆ ANC(t) for "no" — and fall back to a label-pruned graph
// search when neither test decides. That fallback is why BFL, unlike
// TOL/DRL, must keep the graph available at query time; on a
// distributed graph it turns every undecided query into a distributed
// traversal (see distributed.go), the behaviour Table VI documents.
package bfl

import (
	"repro/internal/graph"
)

// DefaultBits is the default Bloom label width in bits.
const DefaultBits = 256

// Index is the BFL reachability index.
type Index struct {
	n     int
	words int // bloom words per label

	// DFS intervals: pre/post discovery and finish ranks. t is a
	// DFS-tree descendant of s iff pre[s] <= pre[t] && post[t] <= post[s].
	pre, post []int32

	// Bloom labels, n*words each.
	labelOut []uint64
	labelIn  []uint64

	// hashBit[v] is the bloom bit assigned to v.
	hashBit []int32
}

// hashVertex spreads vertex IDs over the bloom bits (splitmix64).
func hashVertex(v graph.VertexID, bits int) int32 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int32(x % uint64(bits))
}

// NumVertices returns the number of vertices the index covers.
func (x *Index) NumVertices() int { return x.n }

// SizeBytes reports the index footprint: intervals plus both bloom
// labels (how the paper accounts BFL's index size).
func (x *Index) SizeBytes() int64 {
	return int64(x.n)*(4+4+4) + int64(len(x.labelOut)+len(x.labelIn))*8
}

func (x *Index) out(v graph.VertexID) []uint64 {
	return x.labelOut[int(v)*x.words : (int(v)+1)*x.words]
}

func (x *Index) in(v graph.VertexID) []uint64 {
	return x.labelIn[int(v)*x.words : (int(v)+1)*x.words]
}

// subset reports a ⊆ b for equal-length bitsets.
func subset(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// treeDescendant reports whether t is a DFS-tree descendant of s —
// a positive reachability certificate.
func (x *Index) treeDescendant(s, t graph.VertexID) bool {
	return x.pre[s] <= x.pre[t] && x.post[t] <= x.post[s]
}

// labelsRuleOut reports whether the Bloom labels prove ¬(s→t).
func (x *Index) labelsRuleOut(s, t graph.VertexID) bool {
	return !subset(x.out(t), x.out(s)) || !subset(x.in(s), x.in(t))
}

// Reachable answers q(s,t). The graph must be the one the index was
// built from: BFL needs it for the fallback search.
func (x *Index) Reachable(g *graph.Digraph, s, t graph.VertexID) bool {
	reach, _ := x.ReachableCounted(g, s, t)
	return reach
}

// ReachableCounted additionally reports how many vertices the
// fallback search expanded (0 when the labels decided the query) —
// the statistic that explains BFL's distributed query cost.
func (x *Index) ReachableCounted(g *graph.Digraph, s, t graph.VertexID) (bool, int) {
	if s == t {
		return true, 0
	}
	if x.treeDescendant(s, t) {
		return true, 0
	}
	if x.labelsRuleOut(s, t) {
		return false, 0
	}
	// Label-pruned DFS from s toward t.
	visited := make(map[graph.VertexID]struct{}, 64)
	stack := []graph.VertexID{s}
	visited[s] = struct{}{}
	expanded := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		expanded++
		for _, w := range g.OutNeighbors(u) {
			if _, ok := visited[w]; ok {
				continue
			}
			if w == t || x.treeDescendant(w, t) {
				return true, expanded
			}
			if x.labelsRuleOut(w, t) {
				continue
			}
			visited[w] = struct{}{}
			stack = append(stack, w)
		}
	}
	return false, expanded
}

package bfl

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
)

func randomDigraph(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

func testGraphs() map[string]*graph.Digraph {
	return map[string]*graph.Digraph{
		"paper-example": graph.PaperExample(),
		"singleton":     graph.FromEdges(1, nil),
		"two-cycle":     graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}),
		"path": graph.FromEdges(5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		}),
		"rand-cyclic": randomDigraph(40, 120, 5),
		"rand-sparse": randomDigraph(60, 70, 6),
	}
}

// TestBFLExact verifies BFL answers every pair correctly (the labels
// only ever prune; the fallback DFS keeps it exact), on cyclic inputs
// included — the paper's setting.
func TestBFLExact(t *testing.T) {
	for name, g := range testGraphs() {
		x, err := Build(g, Options{Bits: 128})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := g.NumVertices()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				want := graph.Reachable(g, graph.VertexID(s), graph.VertexID(d))
				if got := x.Reachable(g, graph.VertexID(s), graph.VertexID(d)); got != want {
					t.Fatalf("%s: q(%d,%d) = %v, want %v", name, s, d, got, want)
				}
			}
		}
	}
}

// TestBFLDistributedMatchesCentralized checks that the token-passing
// DFS and parallel label propagation reproduce the centralized index:
// identical intervals and identical Bloom labels.
func TestBFLDistributedMatchesCentralized(t *testing.T) {
	for name, g := range testGraphs() {
		want, err := Build(g, Options{Bits: 128})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range []int{1, 3, 4} {
			got, met, err := BuildDistributed(g, Options{Bits: 128}, DistOptions{Workers: p})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			for v := 0; v < g.NumVertices(); v++ {
				if want.pre[v] != got.pre[v] || want.post[v] != got.post[v] {
					t.Fatalf("%s p=%d: intervals differ at v%d: (%d,%d) vs (%d,%d)",
						name, p, v, want.pre[v], want.post[v], got.pre[v], got.post[v])
				}
			}
			for i := range want.labelOut {
				if want.labelOut[i] != got.labelOut[i] {
					t.Fatalf("%s p=%d: out-label word %d differs", name, p, i)
				}
			}
			for i := range want.labelIn {
				if want.labelIn[i] != got.labelIn[i] {
					t.Fatalf("%s p=%d: in-label word %d differs", name, p, i)
				}
			}
			if p > 1 && met.Supersteps < g.NumVertices() {
				t.Errorf("%s p=%d: token DFS should need ≥ n supersteps, got %d",
					name, p, met.Supersteps)
			}
		}
	}
}

// TestBFLDistributedQuery checks the distributed query both answers
// correctly and charges network time for cross-partition work.
func TestBFLDistributedQuery(t *testing.T) {
	g := randomDigraph(50, 140, 11)
	x, err := Build(g, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	model := netsim.Commodity()
	var anySim bool
	for s := 0; s < 50; s++ {
		for d := 0; d < 50; d++ {
			want := graph.Reachable(g, graph.VertexID(s), graph.VertexID(d))
			got, sim := x.ReachableDistributed(g, graph.VertexID(s), graph.VertexID(d), 8, model)
			if got != want {
				t.Fatalf("q(%d,%d) = %v, want %v", s, d, got, want)
			}
			if sim > 0 {
				anySim = true
			}
		}
	}
	if !anySim {
		t.Error("expected some queries to pay simulated network time")
	}
}

// TestBFLBadBits rejects invalid label widths.
func TestBFLBadBits(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Build(g, Options{Bits: 100}); err == nil {
		t.Error("expected error for bits not a multiple of 64")
	}
	if _, err := Build(g, Options{Bits: -64}); err == nil {
		t.Error("expected error for negative bits")
	}
}

package bfl

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrCanceled is returned when a build is aborted via Options.Cancel.
var ErrCanceled = errors.New("bfl: build canceled")

func isCanceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// Options configures BFL index construction.
type Options struct {
	// Bits is the Bloom label width (default DefaultBits). Must be a
	// multiple of 64.
	Bits int
	// Cancel aborts the build when closed.
	Cancel <-chan struct{}
}

func (o Options) bits() (int, error) {
	b := o.Bits
	if b == 0 {
		b = DefaultBits
	}
	if b <= 0 || b%64 != 0 {
		return 0, fmt.Errorf("bfl: bits %d must be a positive multiple of 64", b)
	}
	return b, nil
}

// Build constructs the centralized BFL index (BFL^C): one DFS over the
// graph for the intervals, then a worklist fixpoint for the Bloom
// labels. The construction strictly follows DFS order — the property
// that makes BFL expensive to distribute (§V).
func Build(g *graph.Digraph, opt Options) (*Index, error) {
	bits, err := opt.bits()
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	x := &Index{
		n:        n,
		words:    bits / 64,
		pre:      make([]int32, n),
		post:     make([]int32, n),
		labelOut: make([]uint64, n*(bits/64)),
		labelIn:  make([]uint64, n*(bits/64)),
		hashBit:  make([]int32, n),
	}
	for v := 0; v < n; v++ {
		x.hashBit[v] = hashVertex(graph.VertexID(v), bits)
	}
	x.computeIntervals(g)
	if err := x.fixpointLabels(g, x.labelOut, opt.Cancel); err != nil {
		return nil, err
	}
	if err := x.fixpointLabels(g.Inverse(), x.labelIn, opt.Cancel); err != nil {
		return nil, err
	}
	return x, nil
}

// computeIntervals assigns DFS discovery/finish times with an
// iterative DFS from every root in ID order. A single clock feeds
// both timestamps (it matches the token-passing distributed DFS
// bit for bit, which the tests rely on).
func (x *Index) computeIntervals(g *graph.Digraph) {
	n := g.NumVertices()
	seen := make([]bool, n)
	var clock int32
	type frame struct {
		v    graph.VertexID
		next int
	}
	var stack []frame
	for root := graph.VertexID(0); int(root) < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		x.pre[root] = clock
		clock++
		stack = append(stack, frame{v: root})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			nbrs := g.OutNeighbors(top.v)
			descended := false
			for top.next < len(nbrs) {
				w := nbrs[top.next]
				top.next++
				if !seen[w] {
					seen[w] = true
					x.pre[w] = clock
					clock++
					stack = append(stack, frame{v: w})
					descended = true
					break
				}
			}
			if descended {
				continue
			}
			x.post[top.v] = clock
			clock++
			stack = stack[:len(stack)-1]
		}
	}
}

// fixpointLabels computes lab[v] ⊇ {h(u) | u reachable from v in dir}
// by worklist propagation; on DAGs this is a single reverse-
// topological pass, on cyclic graphs it iterates to the fixpoint so
// the labels stay sound (the paper runs BFL on non-acyclic inputs).
func (x *Index) fixpointLabels(dir *graph.Digraph, lab []uint64, cancel <-chan struct{}) error {
	n := dir.NumVertices()
	w := x.words
	// Seed: own hash bit.
	for v := 0; v < n; v++ {
		bit := x.hashBit[v]
		lab[v*w+int(bit)/64] |= 1 << (uint(bit) % 64)
	}
	inQueue := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	// Start from every vertex in reverse post order for fast
	// convergence.
	order := graph.PostOrder(dir)
	for _, v := range order {
		queue = append(queue, v)
		inQueue[v] = true
	}
	steps := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		inQueue[v] = false
		steps++
		if steps%4096 == 0 && isCanceled(cancel) {
			return ErrCanceled
		}
		changed := false
		lv := lab[int(v)*w : (int(v)+1)*w]
		for _, u := range dir.OutNeighbors(v) {
			lu := lab[int(u)*w : (int(u)+1)*w]
			for i := 0; i < w; i++ {
				if add := lu[i] &^ lv[i]; add != 0 {
					lv[i] |= add
					changed = true
				}
			}
		}
		if changed {
			for _, p := range dir.InNeighbors(v) {
				if !inQueue[p] {
					inQueue[p] = true
					queue = append(queue, p)
				}
			}
		}
	}
	return nil
}

package bfl

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"

	"repro/internal/pregel"
)

// BFL^D: the distributed BFL of Exp 2. BFL's index construction
// strictly follows DFS order, so the distributed build passes a single
// DFS token between workers — one or two supersteps per tree edge —
// which is exactly the cost profile the paper reports (BFL^D index
// time up to 50× BFL^C). Awerbuch-style visit notifications let the
// token holder skip children it already knows are visited, but the
// walk itself stays serial. The Bloom labels are then computed by a
// parallel fixpoint propagation, the only phase that actually
// parallelizes.
//
// Queries on BFL^D that the labels cannot decide must traverse the
// distributed graph; ReachableDistributed charges one barrier latency
// per cross-partition expansion, the model behind Table VI's query
// column.

// DistOptions configures the distributed BFL build.
type DistOptions struct {
	Workers int
	Net     netsim.Model
	Cancel  <-chan struct{}
}

// Message kinds of the DFS token protocol and label propagation.
const (
	dfsRoot   uint8 = 0 // root-scan cursor; Val2 = clock
	dfsVisit  uint8 = 1 // token enters Dst; Val = sender, Val2 = clock
	dfsReturn uint8 = 2 // token returns to Dst; Val2 = clock
	dfsMark   uint8 = 3 // Val was visited; skip it as a child
	lblWord   uint8 = 4 // Val = 32-bit word index of Dst's neighbor label, Val2 = bits
)

type dfsLocal struct {
	visited  map[graph.VertexID]struct{}
	known    map[graph.VertexID]struct{} // remote vertices known visited
	parent   map[graph.VertexID]graph.VertexID
	isRoot   map[graph.VertexID]struct{}
	childIdx map[graph.VertexID]int
	pre      map[graph.VertexID]int32
	post     map[graph.VertexID]int32
}

// dfsProgram runs the token-passing DFS and assigns interval labels
// with a single global clock (incremented on discovery and finish).
type dfsProgram struct {
	n      int
	cancel <-chan struct{}
}

func (p *dfsProgram) Superstep(w *pregel.Worker, step int) (bool, error) {
	if step == 0 {
		w.State = &dfsLocal{
			visited:  make(map[graph.VertexID]struct{}),
			known:    make(map[graph.VertexID]struct{}),
			parent:   make(map[graph.VertexID]graph.VertexID),
			isRoot:   make(map[graph.VertexID]struct{}),
			childIdx: make(map[graph.VertexID]int),
			pre:      make(map[graph.VertexID]int32),
			post:     make(map[graph.VertexID]int32),
		}
		if p.n > 0 && w.Owns(0) {
			w.Send(pregel.Msg{Dst: 0, Kind: dfsRoot, Val2: 0})
		}
		return true, nil
	}
	local := w.State.(*dfsLocal)
	if isCanceled(p.cancel) {
		return false, pregel.ErrCanceled
	}
	// Apply visit notifications before moving the token so the holder
	// skips known-visited children without a probe round-trip.
	for _, m := range w.Inbox {
		if m.Kind == dfsMark {
			local.known[graph.VertexID(m.Val)] = struct{}{}
		}
	}
	for _, m := range w.Inbox {
		switch m.Kind {
		case dfsRoot:
			p.runToken(w, local, tokenAction{kind: actRoot, v: m.Dst, clock: m.Val2})
		case dfsVisit:
			v := m.Dst
			sender := graph.VertexID(m.Val)
			if _, ok := local.visited[v]; ok {
				// Bounce: the child was already visited.
				w.Send(pregel.Msg{Dst: sender, Kind: dfsReturn, Val: int32(v), Val2: m.Val2})
				continue
			}
			p.runToken(w, local, tokenAction{kind: actEnter, v: v, parent: sender, clock: m.Val2})
		case dfsReturn:
			p.runToken(w, local, tokenAction{kind: actAdvance, v: m.Dst, clock: m.Val2})
		}
	}
	return len(w.Inbox) > 0, nil
}

// The single DFS token is driven as an iterative state machine: each
// step either produces the next local action or hands the token to
// another worker via a message. This keeps arbitrarily deep DFS
// chains off the call stack.
const (
	actRoot    uint8 = iota // scan the root cursor from v
	actEnter                // discover v (parent/root as tagged)
	actAdvance              // continue scanning v's children
)

type tokenAction struct {
	kind   uint8
	v      graph.VertexID
	parent graph.VertexID
	root   bool
	clock  int32
}

func (p *dfsProgram) runToken(w *pregel.Worker, local *dfsLocal, a tokenAction) {
	for {
		switch a.kind {
		case actRoot:
			if int(a.v) >= p.n {
				return // every vertex processed: quiesce
			}
			if !w.Owns(a.v) {
				w.Send(pregel.Msg{Dst: a.v, Kind: dfsRoot, Val2: a.clock})
				return
			}
			if _, ok := local.visited[a.v]; ok {
				a.v++
				continue
			}
			a = tokenAction{kind: actEnter, v: a.v, root: true, clock: a.clock}

		case actEnter:
			v := a.v
			local.visited[v] = struct{}{}
			local.pre[v] = a.clock
			if a.root {
				local.isRoot[v] = struct{}{}
			} else {
				local.parent[v] = a.parent
			}
			// Notify owners of in-neighbors so they skip v as a child.
			for _, nb := range w.Graph.InNeighbors(v) {
				if !w.Owns(nb) {
					w.Send(pregel.Msg{Dst: nb, Kind: dfsMark, Val: int32(v)})
				}
			}
			a = tokenAction{kind: actAdvance, v: v, clock: a.clock + 1}

		case actAdvance:
			v := a.v
			nbrs := w.Graph.OutNeighbors(v)
			i := local.childIdx[v]
			var descend graph.VertexID = -1
			for i < len(nbrs) {
				c := nbrs[i]
				i++
				if _, ok := local.known[c]; ok {
					continue
				}
				if !w.Owns(c) {
					local.childIdx[v] = i
					w.Send(pregel.Msg{Dst: c, Kind: dfsVisit, Val: int32(v), Val2: a.clock})
					return
				}
				if _, ok := local.visited[c]; ok {
					continue
				}
				descend = c
				break
			}
			local.childIdx[v] = i
			if descend >= 0 {
				a = tokenAction{kind: actEnter, v: descend, parent: v, clock: a.clock}
				continue
			}
			// Children exhausted: finish v.
			local.post[v] = a.clock
			a.clock++
			if _, ok := local.isRoot[v]; ok {
				a = tokenAction{kind: actRoot, v: v + 1, clock: a.clock}
				continue
			}
			parent := local.parent[v]
			if w.Owns(parent) {
				a = tokenAction{kind: actAdvance, v: parent, clock: a.clock}
				continue
			}
			w.Send(pregel.Msg{Dst: parent, Kind: dfsReturn, Val: int32(v), Val2: a.clock})
			return
		}
	}
}

func (p *dfsProgram) Finish(w *pregel.Worker) error { return nil }

// lblLocal holds the label words of a worker's owned vertices plus
// the per-step dirty set.
type lblLocal struct {
	lab   map[graph.VertexID][]uint32
	dirty map[graph.VertexID]map[int32]struct{}
}

// lblProgram computes the Bloom out-labels over dir by parallel
// fixpoint propagation: a vertex whose label grows re-sends the
// changed 32-bit words to its in-neighbors (which absorb them, since
// DES(parent) ⊇ DES(child)).
type lblProgram struct {
	words32 int
	bits    int
	cancel  <-chan struct{}
}

func (p *lblProgram) Superstep(w *pregel.Worker, step int) (bool, error) {
	if step == 0 {
		local := &lblLocal{
			lab:   make(map[graph.VertexID][]uint32),
			dirty: make(map[graph.VertexID]map[int32]struct{}),
		}
		w.State = local
		w.OwnedVertices(func(v graph.VertexID) {
			lab := make([]uint32, p.words32)
			bit := hashVertex(v, p.bits)
			lab[bit/32] |= 1 << (uint(bit) % 32)
			local.lab[v] = lab
			word := bit / 32
			for _, nb := range w.Graph.InNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: lblWord, Val: word, Val2: int32(lab[word])})
			}
		})
		return true, nil
	}
	local := w.State.(*lblLocal)
	for k := range local.dirty {
		delete(local.dirty, k)
	}
	for i, m := range w.Inbox {
		// Supersteps of the fixpoint can carry millions of word
		// updates on dense graphs; honor the cut-off mid-step.
		if i%(1<<17) == 0 && isCanceled(p.cancel) {
			return false, pregel.ErrCanceled
		}
		v := m.Dst
		lab := local.lab[v]
		old := lab[m.Val]
		merged := old | uint32(m.Val2)
		if merged == old {
			continue
		}
		lab[m.Val] = merged
		set := local.dirty[v]
		if set == nil {
			set = make(map[int32]struct{})
			local.dirty[v] = set
		}
		set[m.Val] = struct{}{}
	}
	for v, words := range local.dirty {
		lab := local.lab[v]
		for word := range words {
			for _, nb := range w.Graph.InNeighbors(v) {
				//lint:ignore mapdet BFL is randomized by design: label words merge by commutative OR, so emission order cannot change the index
				w.Send(pregel.Msg{Dst: nb, Kind: lblWord, Val: word, Val2: int32(lab[word])})
			}
		}
	}
	return len(w.Inbox) > 0, nil
}

func (p *lblProgram) Finish(w *pregel.Worker) error { return nil }

// BuildDistributed constructs the BFL index on the vertex-centric
// system (BFL^D) and returns the index plus run metrics.
func BuildDistributed(g *graph.Digraph, opt Options, dopt DistOptions) (*Index, pregel.Metrics, error) {
	var met pregel.Metrics
	bits, err := opt.bits()
	if err != nil {
		return nil, met, err
	}
	n := g.NumVertices()
	cfg := pregel.Config{
		Workers:       dopt.Workers,
		Net:           dopt.Net,
		Cancel:        dopt.Cancel,
		MaxSupersteps: 8*(n+int(g.NumEdges())) + 64,
	}

	// Phase 1: token-passing DFS for the intervals.
	eng := pregel.New(g, cfg)
	m, err := eng.Run(&dfsProgram{n: n, cancel: dopt.Cancel})
	met.Add(m)
	if err != nil {
		return nil, met, fmt.Errorf("bfl: distributed DFS: %w", err)
	}
	x := &Index{
		n:        n,
		words:    bits / 64,
		pre:      make([]int32, n),
		post:     make([]int32, n),
		labelOut: make([]uint64, n*(bits/64)),
		labelIn:  make([]uint64, n*(bits/64)),
		hashBit:  make([]int32, n),
	}
	for v := 0; v < n; v++ {
		x.hashBit[v] = hashVertex(graph.VertexID(v), bits)
	}
	for _, wk := range eng.Workers() {
		st := wk.State.(*dfsLocal)
		for v, t := range st.pre {
			x.pre[v] = t
		}
		for v, t := range st.post {
			x.post[v] = t
		}
	}

	// Phase 2+3: Bloom labels in both directions, in parallel.
	for _, dir := range []struct {
		g   *graph.Digraph
		lab []uint64
	}{{g, x.labelOut}, {g.Inverse(), x.labelIn}} {
		eng := pregel.New(dir.g, cfg)
		m, err := eng.Run(&lblProgram{words32: bits / 32, bits: bits, cancel: dopt.Cancel})
		met.Add(m)
		if err != nil {
			return nil, met, fmt.Errorf("bfl: label propagation: %w", err)
		}
		for _, wk := range eng.Workers() {
			st := wk.State.(*lblLocal)
			for v, words := range st.lab {
				row := dir.lab[int(v)*x.words : (int(v)+1)*x.words]
				for i, bits32 := range words {
					row[i/2] |= uint64(bits32) << (uint(i%2) * 32)
				}
			}
		}
	}
	return x, met, nil
}

// ReachableDistributed answers q(s,t) against a partitioned graph:
// the labels of s and t decide most queries after one remote label
// fetch; undecided queries run the pruned DFS, paying one barrier
// latency per cross-partition expansion. It returns the answer and
// the simulated network time of the query.
func (x *Index) ReachableDistributed(g *graph.Digraph, s, t graph.VertexID, workers int, net netsim.Model) (bool, time.Duration) {
	var sim time.Duration
	owner := func(v graph.VertexID) int { return int(v) % workers }
	if workers > 1 && owner(s) != owner(t) {
		sim += net.BarrierLatency // fetch t's interval and labels
	}
	if s == t || x.treeDescendant(s, t) {
		return true, sim
	}
	if x.labelsRuleOut(s, t) {
		return false, sim
	}
	visited := make(map[graph.VertexID]struct{}, 64)
	stack := []graph.VertexID{s}
	visited[s] = struct{}{}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.OutNeighbors(u) {
			if _, ok := visited[w]; ok {
				continue
			}
			if workers > 1 && owner(u) != owner(w) {
				sim += net.BarrierLatency // the traversal crosses nodes
			}
			if w == t || x.treeDescendant(w, t) {
				return true, sim
			}
			if x.labelsRuleOut(w, t) {
				continue
			}
			visited[w] = struct{}{}
			stack = append(stack, w)
		}
	}
	return false, sim
}

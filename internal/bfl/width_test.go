package bfl

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestBloomWidthReducesFallbacks: wider Bloom labels rule out more
// unreachable pairs without the fallback search — the s parameter's
// purpose in the BFL design.
func TestBloomWidthReducesFallbacks(t *testing.T) {
	g := randomDigraph(300, 900, 15)
	narrow, err := Build(g, Options{Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Build(g, Options{Bits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	var en, ew int
	for i := 0; i < 4000; i++ {
		s := graph300(rng)
		d := graph300(rng)
		rn, cn := narrow.ReachableCounted(g, s, d)
		rw, cw := wide.ReachableCounted(g, s, d)
		if rn != rw {
			t.Fatalf("widths disagree on (%d,%d)", s, d)
		}
		en += cn
		ew += cw
	}
	if ew > en {
		t.Errorf("1024-bit labels expanded more (%d) than 64-bit (%d)", ew, en)
	}
}

func graph300(rng *rand.Rand) graph.VertexID {
	return graph.VertexID(rng.Intn(300))
}

// TestIndexSizeScalesWithBits.
func TestIndexSizeScalesWithBits(t *testing.T) {
	g := randomDigraph(100, 200, 1)
	a, err := Build(g, Options{Bits: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Bits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if b.SizeBytes() <= a.SizeBytes() {
		t.Errorf("wider labels must cost more: %d vs %d", a.SizeBytes(), b.SizeBytes())
	}
}

// Package distlab implements pruned landmark labeling (PLL; Akiba et
// al., SIGMOD 2013) for exact shortest-distance queries on unweighted
// directed graphs.
//
// It exists to substantiate the paper's related-work argument (§V):
// parallel *distance* labeling (Li et al. [29], Lakhotia et al. [30])
// cannot replace reachability labeling because a distance label must
// keep a landmark for every *shortest*-path cover, whereas Theorem 1
// lets reachability labels prune through higher-order vertices on
// *any* walk. On the same graph and the same vertex order, the PLL
// index here is typically several times larger than the TOL
// reachability index — the gap the benchmark suite measures.
//
// The implementation is the standard sequential PLL: process vertices
// in decreasing order; run a forward pruned BFS from each landmark
// (filling in-labels of its targets) and a backward one (filling
// out-labels), pruning every vertex whose current labels already
// certify a distance no longer than the BFS reached it with.
package distlab

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/order"
)

// Infinity is returned by Distance for unreachable pairs.
const Infinity = int32(math.MaxInt32)

// entry is one label element: landmark rank and distance.
type entry struct {
	rank order.Rank
	dist int32
}

// Index is a 2-hop distance index.
type Index struct {
	n   int
	ord *order.Ordering
	in  [][]entry // rank-sorted (ascending) per vertex
	out [][]entry
}

// ErrCanceled is returned when a build is aborted.
var ErrCanceled = errors.New("distlab: build canceled")

// Build constructs the PLL index under ord (pass order.Compute(g)).
func Build(g *graph.Digraph, ord *order.Ordering, cancel <-chan struct{}) (*Index, error) {
	n := g.NumVertices()
	x := &Index{n: n, ord: ord, in: make([][]entry, n), out: make([][]entry, n)}
	inv := g.Inverse()

	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []graph.VertexID

	// bfs runs the pruned BFS from the rank-r landmark over dir,
	// appending (r, d) to tgt labels; the pruning distance comes from
	// querying the partial index in the matching direction.
	bfs := func(dir *graph.Digraph, r order.Rank, tgt [][]entry, qry func(s, t graph.VertexID) int32) {
		root := ord.VertexAt(r)
		queue = queue[:0]
		queue = append(queue, root)
		dist[root] = 0
		var touched []graph.VertexID
		touched = append(touched, root)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			d := dist[u]
			// Prune: an existing 2-hop path through a higher landmark
			// already covers (root, u) at distance ≤ d.
			if u != root && qry(root, u) <= d {
				continue
			}
			tgt[u] = append(tgt[u], entry{rank: r, dist: d})
			for _, w := range dir.OutNeighbors(u) {
				if dist[w] < 0 {
					dist[w] = d + 1
					queue = append(queue, w)
					touched = append(touched, w)
				}
			}
		}
		for _, u := range touched {
			dist[u] = -1
		}
	}

	for r := order.Rank(0); int(r) < n; r++ {
		if r%256 == 0 && isCanceled(cancel) {
			return nil, ErrCanceled
		}
		// Forward BFS fills in-labels: query uses out(root) ⋈ in(u).
		bfs(g, r, x.in, func(s, t graph.VertexID) int32 {
			return joinEntries(x.out[s], x.in[t])
		})
		// Backward BFS fills out-labels: the "distance from u to
		// root" query is out(u) ⋈ in(root).
		bfs(inv, r, x.out, func(s, t graph.VertexID) int32 {
			return joinEntries(x.out[t], x.in[s])
		})
	}
	return x, nil
}

// joinEntries returns the minimum d_a + d_b over common ranks of two
// rank-sorted entry lists (Infinity if none).
func joinEntries(a, b []entry) int32 {
	best := Infinity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].rank == b[j].rank:
			if s := a[i].dist + b[j].dist; s < best {
				best = s
			}
			i++
			j++
		case a[i].rank < b[j].rank:
			i++
		default:
			j++
		}
	}
	return best
}

// Distance returns the exact shortest-path distance from s to t
// (0 for s == t, Infinity when unreachable).
func (x *Index) Distance(s, t graph.VertexID) int32 {
	if s == t {
		return 0
	}
	return joinEntries(x.out[s], x.in[t])
}

// Entries returns the total number of label entries.
func (x *Index) Entries() int64 {
	var total int64
	for v := 0; v < x.n; v++ {
		total += int64(len(x.in[v]) + len(x.out[v]))
	}
	return total
}

// SizeBytes returns the payload footprint (8 bytes per entry).
func (x *Index) SizeBytes() int64 { return 8 * x.Entries() }

func isCanceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

package distlab

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/tol"
)

// bfsDistances is the oracle: single-source BFS distances.
func bfsDistances(g *graph.Digraph, s graph.VertexID) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[s] = 0
	queue := []graph.VertexID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(u) {
			if dist[w] == Infinity {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func randomDigraph(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestDistancesExact: PLL answers every pair exactly, cyclic graphs
// included.
func TestDistancesExact(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"paper":  graph.PaperExample(),
		"cyclic": randomDigraph(40, 120, 2),
		"sparse": randomDigraph(60, 70, 3),
		"path": graph.FromEdges(6, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
		}),
	}
	for name, g := range graphs {
		ord := order.Compute(g)
		x, err := Build(g, ord, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := g.NumVertices()
		for s := 0; s < n; s++ {
			want := bfsDistances(g, graph.VertexID(s))
			for d := 0; d < n; d++ {
				if got := x.Distance(graph.VertexID(s), graph.VertexID(d)); got != want[d] {
					t.Fatalf("%s: dist(%d,%d) = %d, want %d", name, s, d, got, want[d])
				}
			}
		}
	}
}

// TestDistanceLabelsDwarfReachabilityLabels demonstrates the §V
// claim: on the same graph and order, the PLL distance index carries
// far more entries than the TOL reachability index, because distance
// labels can only prune through landmarks on *shortest* paths.
func TestDistanceLabelsDwarfReachabilityLabels(t *testing.T) {
	g := randomDigraph(300, 900, 5)
	ord := order.Compute(g)
	pll, err := Build(g, ord, nil)
	if err != nil {
		t.Fatal(err)
	}
	reach := tol.Build(g, ord)
	if pll.Entries() <= reach.Entries() {
		t.Errorf("distance labels (%d entries) should exceed reachability labels (%d)",
			pll.Entries(), reach.Entries())
	}
	if pll.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	t.Logf("distance %d entries vs reachability %d entries (%.1fx)",
		pll.Entries(), reach.Entries(), float64(pll.Entries())/float64(reach.Entries()))
}

func TestBuildCancel(t *testing.T) {
	g := randomDigraph(2000, 8000, 9)
	cancel := make(chan struct{})
	close(cancel)
	if _, err := Build(g, order.Compute(g), cancel); err == nil {
		t.Error("expected cancellation")
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	g := graph.FromEdges(1, nil)
	x, err := Build(g, order.Compute(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if x.Distance(0, 0) != 0 {
		t.Error("self distance must be 0")
	}
	two := graph.FromEdges(2, nil)
	x, err = Build(two, order.Compute(two), nil)
	if err != nil {
		t.Fatal(err)
	}
	if x.Distance(0, 1) != Infinity {
		t.Error("disconnected pair must be Infinity")
	}
}

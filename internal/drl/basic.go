package drl

import (
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// BuildBasic is the basic labeling method DRL⁻ (Theorem 3):
//
//	L⁻_in(v) = BFS_low(v) − ∪_{u ∈ BFS_hig(v)} DES(u)
//
// The filtering phase is one trimmed BFS per vertex; the refinement
// phase performs one full BFS per member of BFS_hig(v). The refinement
// BFS count is what makes DRL⁻ an order of magnitude slower than DRL
// (Exp 4) and unable to finish several datasets within the cut-off —
// behaviour this implementation intentionally shares.
func BuildBasic(g *graph.Digraph, ord *order.Ordering, opt Options) (*label.Index, error) {
	n := g.NumVertices()
	backIn := make([][]graph.VertexID, n)
	backOut := make([][]graph.VertexID, n)
	inv := g.Inverse()

	type scratch struct {
		trim  *label.Scratch
		epoch []int32
		cur   int32
		queue []graph.VertexID
		low   []graph.VertexID
		hig   []graph.VertexID
	}
	scratches := make([]*scratch, opt.workers())
	for i := range scratches {
		scratches[i] = &scratch{trim: label.NewScratch(n), epoch: make([]int32, n)}
	}

	run := func(dir *graph.Digraph, back [][]graph.VertexID) error {
		return parallelRanks(0, order.Rank(n), opt.workers(), opt.Cancel, func(wk int, r order.Rank) {
			v := ord.VertexAt(r)
			s := scratches[wk]
			s.low, s.hig = label.TrimmedBFS(dir, ord, v, s.trim, s.low[:0], s.hig[:0])
			// Refinement: sweep DES(u) for every blocking vertex u,
			// skipping u's already covered by an earlier sweep.
			s.cur++
			for _, u := range s.hig {
				if s.epoch[u] == s.cur {
					continue
				}
				s.queue = s.queue[:0]
				s.queue = append(s.queue, u)
				s.epoch[u] = s.cur
				for head := 0; head < len(s.queue); head++ {
					x := s.queue[head]
					for _, y := range dir.OutNeighbors(x) {
						if s.epoch[y] != s.cur {
							s.epoch[y] = s.cur
							s.queue = append(s.queue, y)
						}
					}
				}
			}
			keep := make([]graph.VertexID, 0, len(s.low))
			for _, w := range s.low {
				if s.epoch[w] != s.cur {
					keep = append(keep, w)
				}
			}
			back[r] = keep
		})
	}
	if err := run(g, backIn); err != nil {
		return nil, err
	}
	if err := run(inv, backOut); err != nil {
		return nil, err
	}
	return label.FromBackward(ord, backIn, backOut), nil
}

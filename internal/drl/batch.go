package drl

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/order"
)

// BatchParams controls the batch sequence of §IV: the initial batch
// size b and the increment factor k. The paper's defaults are b = 2,
// k = 2; k = 1 degenerates to fixed-size batches (and is the
// pathological configuration of Exp 8).
type BatchParams struct {
	InitialSize int
	Factor      float64
}

// DefaultBatchParams returns the paper's default b = 2, k = 2.
func DefaultBatchParams() BatchParams { return BatchParams{InitialSize: 2, Factor: 2} }

func (p BatchParams) normalized() (BatchParams, error) {
	if p.InitialSize == 0 {
		p.InitialSize = 2
	}
	if p.Factor == 0 {
		p.Factor = 2
	}
	if p.InitialSize < 0 {
		return p, fmt.Errorf("drl: initial batch size %d must be positive", p.InitialSize)
	}
	if p.Factor < 1 {
		return p, fmt.Errorf("drl: batch factor %g must be >= 1", p.Factor)
	}
	return p, nil
}

// Span is a half-open rank interval [Lo, Hi) forming one batch.
type Span struct {
	Lo, Hi order.Rank
}

// Size returns the number of vertices in the batch.
func (s Span) Size() int { return int(s.Hi - s.Lo) }

// BatchSequence splits the n ranks into the batch sequence
// [V_1, …, V_g] of Definition 7: batch i takes the next ⌊b·k^(i-1)⌋
// highest-order vertices (at least one per batch).
func BatchSequence(n int, p BatchParams) ([]Span, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	var spans []Span
	cur := float64(p.InitialSize)
	lo := order.Rank(0)
	for int(lo) < n {
		size := int(cur)
		if size < 1 {
			size = 1
		}
		hi := lo + order.Rank(size)
		if int(hi) > n {
			hi = order.Rank(n)
		}
		spans = append(spans, Span{Lo: lo, Hi: hi})
		lo = hi
		cur *= p.Factor
	}
	return spans, nil
}

// BuildBatch is DRL_b (§IV): vertices are labeled batch by batch in
// decreasing order; inside a batch everything runs in parallel with
// the DRL machinery, while the label sets accumulated from previous
// batches provide TOL-style pruning — the trimmed BFS additionally
// blocks at any vertex w with L_out(v) ∩ L_in(w) ≠ ∅ over the
// already-final labels, which is exactly "a previously-labeled vertex
// lies on a v→w walk".
//
// With Options.Workers = GOMAXPROCS this is the multi-core DRL_b^M of
// Exp 3; the vertex-centric implementation is BuildDistributed with
// DistOptions.Batch set.
func BuildBatch(g *graph.Digraph, ord *order.Ordering, bp BatchParams, opt Options) (*label.Index, error) {
	n := g.NumVertices()
	spans, err := BatchSequence(n, bp)
	if err != nil {
		return nil, err
	}
	inv := g.Inverse()
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)

	type scratch struct {
		visit []int32 // epoch at which the vertex joined BFS_low
		block []int32 // epoch at which expansion into the vertex was blocked
		epoch int32
		queue []graph.VertexID
	}
	scratches := make([]*scratch, opt.workers())
	for i := range scratches {
		scratches[i] = &scratch{visit: make([]int32, n), block: make([]int32, n)}
	}
	cBatches := opt.Obs.Counter("drl_batches_total")
	hBatch := opt.Obs.Histogram("drl_batch_vertices", obs.SizeBuckets)
	cBFS := opt.Obs.Counter("drl_trimmed_bfs_total")
	cVisits := opt.Obs.Counter("drl_bfs_visits_total")
	cRefine := opt.Obs.Counter("drl_refine_rounds_total")

	// batchTrimmed is the trimmed BFS with batch-label pruning: the
	// expansion into w is blocked both at higher-order vertices
	// (Algorithm 2) and where srcLab ∩ tgtLab[w] ≠ ∅ — a vertex from a
	// previous batch lies on a v→w walk (Algorithm 4).
	batchTrimmed := func(dir *graph.Digraph, s *scratch, v graph.VertexID, rv order.Rank, srcLab []order.Rank, tgtLab [][]order.Rank) []graph.VertexID {
		s.epoch++
		ep := s.epoch
		s.queue = s.queue[:0]
		s.queue = append(s.queue, v)
		s.visit[v] = ep
		low := make([]graph.VertexID, 1, 8)
		low[0] = v
		for head := 0; head < len(s.queue); head++ {
			u := s.queue[head]
			for _, w := range dir.OutNeighbors(u) {
				if s.visit[w] == ep || s.block[w] == ep {
					continue
				}
				if ord.RankOf(w) <= rv || !disjointRanks(srcLab, tgtLab[w]) {
					s.block[w] = ep
					continue
				}
				s.visit[w] = ep
				s.queue = append(s.queue, w)
				low = append(low, w)
			}
		}
		cBFS.Inc()
		cVisits.Add(int64(len(low)))
		return low
	}

	for _, span := range spans {
		fwdLows := make([][]graph.VertexID, span.Size())
		bwdLows := make([][]graph.VertexID, span.Size())
		err := parallelRanks(span.Lo, span.Hi, opt.workers(), opt.Cancel, func(wk int, r order.Rank) {
			v := ord.VertexAt(r)
			// Self pruning (Algorithm 4 line 6): a higher-order vertex
			// on a cycle through v means v joins no label set at all.
			if !disjointRanks(out[v], in[v]) {
				return
			}
			s := scratches[wk]
			fwdLows[r-span.Lo] = batchTrimmed(g, s, v, r, out[v], in)
			bwdLows[r-span.Lo] = batchTrimmed(inv, s, v, r, in[v], out)
		})
		if err != nil {
			return nil, err
		}
		cBatches.Inc()
		hBatch.Observe(float64(span.Size()))
		visitedFwd := invertLowsAt(n, fwdLows, span.Lo)
		visitedBwd := invertLowsAt(n, bwdLows, span.Lo)

		// In-batch refinement (Lemma 5) plus label append; new ranks
		// all exceed previously appended ones, so lists stay sorted.
		cRefine.Inc()
		err = parallelRanks(0, order.Rank(n), opt.workers(), opt.Cancel, func(_ int, i order.Rank) {
			w := graph.VertexID(i)
			fRow := visitedFwd.Row(w)
			bRow := visitedBwd.Row(w)
			for _, rv := range fRow {
				v := ord.VertexAt(rv)
				if disjointBelow(visitedBwd.Row(v), fRow, rv) {
					in[w] = append(in[w], rv)
				}
			}
			for _, rv := range bRow {
				v := ord.VertexAt(rv)
				if disjointBelow(visitedFwd.Row(v), bRow, rv) {
					out[w] = append(out[w], rv)
				}
			}
			// The refine merge relies on every batch's ranks exceeding
			// the previous batch's — that is what lets the lists skip a
			// final sort and still match TOL byte for byte.
			invariant.StrictlyIncreasing("drl: L_in after refine merge", in[w])
			invariant.StrictlyIncreasing("drl: L_out after refine merge", out[w])
		})
		if err != nil {
			return nil, err
		}
	}
	return label.FromLists(ord, in, out), nil
}

// invertLowsAt is invertLows for a batch: lows[i] belongs to the
// source with rank base+i.
func invertLowsAt(n int, lows [][]graph.VertexID, base order.Rank) *rankLists {
	t := &rankLists{off: make([]int64, n+1)}
	var total int64
	counts := make([]int64, n)
	for _, low := range lows {
		total += int64(len(low))
		for _, w := range low {
			counts[w]++
		}
	}
	for v := 0; v < n; v++ {
		t.off[v+1] = t.off[v] + counts[v]
	}
	t.data = make([]order.Rank, total)
	cursor := make([]int64, n)
	copy(cursor, t.off[:n])
	for i, low := range lows {
		for _, w := range low {
			t.data[cursor[w]] = base + order.Rank(i)
			cursor[w]++
		}
	}
	return t
}

package drl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/tol"
)

// TestBatchSequenceExample12 reproduces Example 12: n = 11, b = 2,
// k = 2 gives batches of sizes 2, 4, 5.
func TestBatchSequenceExample12(t *testing.T) {
	spans, err := BatchSequence(11, BatchParams{InitialSize: 2, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{2, 4, 5}
	if len(spans) != len(wantSizes) {
		t.Fatalf("got %d batches %v, want sizes %v", len(spans), spans, wantSizes)
	}
	for i, w := range wantSizes {
		if spans[i].Size() != w {
			t.Fatalf("batch %d size = %d, want %d (%v)", i, spans[i].Size(), w, spans)
		}
	}
}

// TestBatchSequenceProperties quick-checks Definition 7: the spans
// disjointly cover [0, n) in decreasing-order blocks, with sizes
// growing by k (except the last).
func TestBatchSequenceProperties(t *testing.T) {
	f := func(nRaw uint16, bRaw uint8, kTenths uint8) bool {
		n := int(nRaw%5000) + 1
		b := int(bRaw%64) + 1
		k := 1 + float64(kTenths%30)/10 // 1.0 .. 3.9
		spans, err := BatchSequence(n, BatchParams{InitialSize: b, Factor: k})
		if err != nil {
			return false
		}
		next := order.Rank(0)
		for i, s := range spans {
			if s.Lo != next || s.Hi <= s.Lo {
				return false
			}
			if i < len(spans)-1 && s.Size() < 1 {
				return false
			}
			next = s.Hi
		}
		return int(next) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSequenceK1(t *testing.T) {
	spans, err := BatchSequence(10, BatchParams{InitialSize: 2, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 {
		t.Fatalf("k=1, b=2 on 10 vertices should give 5 batches, got %v", spans)
	}
}

func TestBatchParamErrors(t *testing.T) {
	if _, err := BatchSequence(5, BatchParams{InitialSize: -1, Factor: 2}); err == nil {
		t.Error("negative b must fail")
	}
	if _, err := BatchSequence(5, BatchParams{InitialSize: 2, Factor: 0.5}); err == nil {
		t.Error("k < 1 must fail")
	}
	if _, err := BuildBatch(graph.PaperExample(), order.Compute(graph.PaperExample()),
		BatchParams{Factor: 0.1}, Options{}); err == nil {
		t.Error("BuildBatch must reject bad params")
	}
}

// TestBackwardLabelDuality checks Definition 4 on the paper example:
// the backward label sets derived from the index match Table III.
func TestBackwardLabelDuality(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	idx := tol.Build(g, ord)

	// Derive L⁻_in from the forward index.
	backIn := make(map[graph.VertexID][]graph.VertexID)
	for w := graph.VertexID(0); int(w) < 11; w++ {
		for _, r := range idx.InLabels(w) {
			v := ord.VertexAt(r)
			backIn[v] = append(backIn[v], w)
		}
	}
	want := map[graph.VertexID][]graph.VertexID{
		// Table III, 0-based.
		0:  {0, 4, 6, 7, 8},     // v1: {v1, v5, v7, v8, v9}
		1:  {1, 2, 3, 5, 9, 10}, // v2: {v2, v3, v4, v6, v10, v11}
		7:  {7, 8},              // v8: {v8, v9}
		8:  {8},                 // v9
		9:  {9},                 // v10
		10: {10},                // v11
	}
	for v := graph.VertexID(0); int(v) < 11; v++ {
		got := backIn[v]
		exp := want[v]
		if len(got) != len(exp) {
			t.Fatalf("L⁻_in(v%d) = %v, want %v", v+1, got, exp)
		}
		seen := map[graph.VertexID]bool{}
		for _, w := range got {
			seen[w] = true
		}
		for _, w := range exp {
			if !seen[w] {
				t.Fatalf("L⁻_in(v%d) = %v, want %v", v+1, got, exp)
			}
		}
	}
}

// TestSharedMemoryCancel verifies cancellation of the shared-memory
// builders.
func TestSharedMemoryCancel(t *testing.T) {
	g := randomDigraph(3000, 12000, 5)
	ord := order.Compute(g)
	cancel := make(chan struct{})
	close(cancel)
	for name, build := range map[string]func() (*label.Index, error){
		"naive":    func() (*label.Index, error) { return BuildNaive(g, ord, Options{Cancel: cancel, Workers: 2}) },
		"basic":    func() (*label.Index, error) { return BuildBasic(g, ord, Options{Cancel: cancel, Workers: 2}) },
		"improved": func() (*label.Index, error) { return BuildImproved(g, ord, Options{Cancel: cancel, Workers: 2}) },
		"batch": func() (*label.Index, error) {
			return BuildBatch(g, ord, DefaultBatchParams(), Options{Cancel: cancel, Workers: 2})
		},
	} {
		if _, err := build(); err == nil {
			t.Errorf("%s: expected cancellation", name)
		}
	}
}

// TestCoverConstraintRandom checks Definition 3 end to end on random
// cyclic graphs for the batch builder.
func TestCoverConstraintRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(40)
		g := randomDigraph(n, 3*n, int64(trial+50))
		ord := order.Compute(g)
		idx, err := BuildBatch(g, ord, DefaultBatchParams(), Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for s := graph.VertexID(0); int(s) < n; s++ {
			for d := graph.VertexID(0); int(d) < n; d++ {
				want := graph.Reachable(g, s, d)
				if got := idx.Reachable(s, d); got != want {
					t.Fatalf("trial %d: q(%d,%d) = %v, want %v", trial, s, d, got, want)
				}
			}
		}
	}
}

package drl

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/pregel"
)

// Distributed DRL⁻ (the basic labeling method of Theorem 3 on the
// vertex-centric system). Two engine runs over a persistent worker
// set:
//
//	Phase A (filtering): every vertex floods its trimmed BFS in both
//	directions — no Check pruning exists in DRL⁻. A blocked expansion
//	at w both marks w as an eliminator locally and notifies the
//	source's owner so BFS_hig(v) can be assembled.
//
//	Phase B (refinement): every eliminator floods its full descendant
//	set DES(u); the hig lists are broadcast. A candidate w survives
//	for v unless some u ∈ BFS_hig(v) reached w.
//
// The DES floods are unrestricted BFSs, which is exactly why DRL⁻'s
// communication volume dwarfs DRL's (Fig. 5) and why it misses the
// cut-off on several datasets.

const (
	kindHigFwd uint8 = 2 // notify: Val-ranked vertex blocked my fwd BFS
	kindHigBwd uint8 = 3
)

type basicLocal struct {
	seen    map[uint64]struct{}
	listFwd map[graph.VertexID][]order.Rank
	listBwd map[graph.VertexID][]order.Rank
	// higFwd[v] = BFS_hig(v) on G (ranks), assembled from notifies for
	// owned sources v.
	higFwd map[graph.VertexID][]order.Rank
	higBwd map[graph.VertexID][]order.Rank
	// elimFwd marks owned vertices that blocked at least one forward
	// BFS: the eliminator sources of phase B.
	elimFwd map[graph.VertexID]struct{}
	elimBwd map[graph.VertexID]struct{}
	// desSeen holds (kind, w, eliminator-rank) triples from phase B.
	desSeen map[uint64]struct{}
	resIn   map[graph.VertexID][]order.Rank
	resOut  map[graph.VertexID][]order.Rank
}

// basicShared replicates the hig lists for the phase-B elimination.
type basicShared struct {
	ord    *order.Ordering
	higFwd map[graph.VertexID][]order.Rank
	higBwd map[graph.VertexID][]order.Rank
	cancel <-chan struct{}
}

// basicPhaseA floods all trimmed BFSs and gathers hig sets.
type basicPhaseA struct {
	ord    *order.Ordering
	cancel <-chan struct{}
}

func (p *basicPhaseA) Superstep(w *pregel.Worker, step int) (bool, error) {
	ord := p.ord
	if step == 0 {
		local := &basicLocal{
			seen:    make(map[uint64]struct{}),
			listFwd: make(map[graph.VertexID][]order.Rank),
			listBwd: make(map[graph.VertexID][]order.Rank),
			higFwd:  make(map[graph.VertexID][]order.Rank),
			higBwd:  make(map[graph.VertexID][]order.Rank),
			elimFwd: make(map[graph.VertexID]struct{}),
			elimBwd: make(map[graph.VertexID]struct{}),
			desSeen: make(map[uint64]struct{}),
			resIn:   make(map[graph.VertexID][]order.Rank),
			resOut:  make(map[graph.VertexID][]order.Rank),
		}
		w.State = local
		w.OwnedVertices(func(v graph.VertexID) {
			r := ord.RankOf(v)
			local.seen[seenKey(kindFwd, v, r)] = struct{}{}
			local.seen[seenKey(kindBwd, v, r)] = struct{}{}
			local.listFwd[v] = append(local.listFwd[v], r)
			local.listBwd[v] = append(local.listBwd[v], r)
			for _, nb := range w.Graph.OutNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: int32(r)})
			}
			for _, nb := range w.Graph.InNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: int32(r)})
			}
		})
		return true, nil
	}
	local := w.State.(*basicLocal)
	for i, m := range w.Inbox {
		if stepCanceled(i, p.cancel) {
			return false, pregel.ErrCanceled
		}
		dst := m.Dst
		r := order.Rank(m.Val)
		switch m.Kind {
		case kindHigFwd:
			local.higFwd[dst] = append(local.higFwd[dst], r)
			continue
		case kindHigBwd:
			local.higBwd[dst] = append(local.higBwd[dst], r)
			continue
		}
		rw := ord.RankOf(dst)
		// A vertex already visited by this source is skipped before
		// the order test (Algorithm 2 line 8) — in particular the
		// source itself, which otherwise would join its own BFS_hig
		// when a cycle leads back to it.
		if _, ok := local.seen[seenKey(m.Kind, dst, r)]; ok {
			continue
		}
		if r >= rw {
			// Blocked: dst ∈ BFS_hig(source). Record dst as an
			// eliminator and notify the source's owner once.
			blockKey := seenKey(m.Kind+2, dst, r)
			if _, ok := local.seen[blockKey]; ok {
				continue
			}
			local.seen[blockKey] = struct{}{}
			src := ord.VertexAt(r)
			if m.Kind == kindFwd {
				local.elimFwd[dst] = struct{}{}
				w.Send(pregel.Msg{Dst: src, Kind: kindHigFwd, Val: int32(rw)})
			} else {
				local.elimBwd[dst] = struct{}{}
				w.Send(pregel.Msg{Dst: src, Kind: kindHigBwd, Val: int32(rw)})
			}
			continue
		}
		local.seen[seenKey(m.Kind, dst, r)] = struct{}{}
		if m.Kind == kindFwd {
			local.listFwd[dst] = append(local.listFwd[dst], r)
			for _, nb := range w.Graph.OutNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: m.Val})
			}
		} else {
			local.listBwd[dst] = append(local.listBwd[dst], r)
			for _, nb := range w.Graph.InNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: m.Val})
			}
		}
	}
	return len(w.Inbox) > 0, nil
}

func (p *basicPhaseA) Finish(w *pregel.Worker) error { return nil }

// MessageCombiner deduplicates identical messages per destination. The
// flood kinds are seen-guarded and the block/notify path is guarded by
// blockKey, so a duplicate (Dst, Kind, Val) triple is never acted on.
func (p *basicPhaseA) MessageCombiner() pregel.Combiner { return pregel.DedupCombiner }

// basicPhaseB floods DES(u) from every eliminator and eliminates.
type basicPhaseB struct {
	shared *basicShared
}

func (p *basicPhaseB) PreStep(workers []*pregel.Worker, step int) error {
	if len(workers) == 0 {
		return nil
	}
	for _, blob := range workers[0].BcastIn {
		if len(blob) == 0 {
			continue
		}
		tgt := p.shared.higFwd
		if blob[0] == kindHigBwd {
			tgt = p.shared.higBwd
		}
		err := decodeEventPairs(blob[1:], func(v graph.VertexID, r order.Rank) {
			tgt[v] = append(tgt[v], r)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// MessageCombiner deduplicates DES-flood messages; the receiving loop
// is desSeen-guarded.
func (p *basicPhaseB) MessageCombiner() pregel.Combiner { return pregel.DedupCombiner }

func (p *basicPhaseB) Superstep(w *pregel.Worker, step int) (bool, error) {
	local := w.State.(*basicLocal)
	ord := p.shared.ord
	if step == 0 {
		// Broadcast the assembled hig lists and seed the DES floods.
		// Iterate in sorted vertex order so the broadcast bytes and the
		// outbox message order are run-independent (mapdet): the
		// elimination result is a set and would survive reordering, but
		// deterministic wire traffic is what keeps checkpoints and
		// fault-injection replays byte-stable.
		var evsF, evsB []visitEvent
		for _, v := range sortedVertices(local.higFwd) {
			for _, r := range local.higFwd[v] {
				evsF = append(evsF, visitEvent{v: v, r: r})
			}
		}
		for _, v := range sortedVertices(local.higBwd) {
			for _, r := range local.higBwd[v] {
				evsB = append(evsB, visitEvent{v: v, r: r})
			}
		}
		w.Broadcast(encodeEventBlob(kindHigFwd, evsF))
		w.Broadcast(encodeEventBlob(kindHigBwd, evsB))
		for _, u := range sortedVertices(local.elimFwd) {
			r := ord.RankOf(u)
			local.desSeen[seenKey(kindFwd, u, r)] = struct{}{}
			for _, nb := range w.Graph.OutNeighbors(u) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: int32(r)})
			}
		}
		for _, u := range sortedVertices(local.elimBwd) {
			r := ord.RankOf(u)
			local.desSeen[seenKey(kindBwd, u, r)] = struct{}{}
			for _, nb := range w.Graph.InNeighbors(u) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: int32(r)})
			}
		}
		return true, nil
	}
	for i, m := range w.Inbox {
		if stepCanceled(i, p.shared.cancel) {
			return false, pregel.ErrCanceled
		}
		key := seenKey(m.Kind, m.Dst, order.Rank(m.Val))
		if _, ok := local.desSeen[key]; ok {
			continue
		}
		local.desSeen[key] = struct{}{}
		if m.Kind == kindFwd {
			for _, nb := range w.Graph.OutNeighbors(m.Dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: m.Val})
			}
		} else {
			for _, nb := range w.Graph.InNeighbors(m.Dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: m.Val})
			}
		}
	}
	return len(w.Inbox) > 0 || len(w.BcastIn) > 0, nil
}

// Finish eliminates every candidate covered by an eliminator's DES
// and sorts the survivors into label lists.
func (p *basicPhaseB) Finish(w *pregel.Worker) error {
	local := w.State.(*basicLocal)
	ord := p.shared.ord
	eliminated := func(kind uint8, tgt graph.VertexID, hig []order.Rank) bool {
		for _, u := range hig {
			if _, ok := local.desSeen[seenKey(kind, tgt, u)]; ok {
				return true
			}
		}
		return false
	}
	for v, list := range local.listFwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !eliminated(kindFwd, v, p.shared.higFwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		local.resIn[v] = keep
	}
	for v, list := range local.listBwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !eliminated(kindBwd, v, p.shared.higBwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		local.resOut[v] = keep
	}
	return nil
}

// BuildDistributedBasic runs DRL⁻ on the vertex-centric system.
func BuildDistributedBasic(g *graph.Digraph, ord *order.Ordering, opt DistOptions) (*label.Index, pregel.Metrics, error) {
	var met pregel.Metrics
	eng := pregel.New(g, pregel.Config{Workers: opt.Workers, Net: opt.Net, Cancel: opt.Cancel, Obs: opt.Obs})
	m, err := eng.Run(&basicPhaseA{ord: ord, cancel: opt.Cancel})
	met.Add(m)
	if err != nil {
		return nil, met, err
	}
	shared := &basicShared{
		ord:    ord,
		higFwd: make(map[graph.VertexID][]order.Rank),
		higBwd: make(map[graph.VertexID][]order.Rank),
		cancel: opt.Cancel,
	}
	m, err = eng.Run(&basicPhaseB{shared: shared})
	met.Add(m)
	if err != nil {
		return nil, met, err
	}
	n := ord.N()
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)
	for _, wk := range eng.Workers() {
		st := wk.State.(*basicLocal)
		for v, lab := range st.resIn {
			in[v] = lab
		}
		for v, lab := range st.resOut {
			out[v] = lab
		}
		if wk.ID != 0 {
			for v := graph.VertexID(wk.ID); int(v) < n; v += graph.VertexID(wk.P) {
				met.BytesRemote += 4 * int64(len(in[v])+len(out[v]))
			}
		}
	}
	return label.FromLists(ord, in, out), met, nil
}

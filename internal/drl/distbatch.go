package drl

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/pregel"
)

// Distributed DRL_b (Algorithm 4). The driver runs one engine run per
// batch over a persistent worker set. Within a batch the program is
// DRL (trimmed-BFS flood + inverted-list Check); across batches the
// accumulated label sets provide TOL-style pruning: each batch source
// broadcasts its prior labels (line 8) and every expansion into w is
// additionally blocked when L_out(v) ∩ L_in(w) ≠ ∅ over prior batches
// (line 12).

// Broadcast blob tags. kindFwd/kindBwd (0/1) tag visit-event blobs;
// blobLabels tags the batch-label share of Algorithm 4 line 8.
const blobLabels uint8 = 2

// batchShared is the replicated state for one batch: the prior labels
// of the batch sources and the in-batch inverted lists.
type batchShared struct {
	ord     *order.Ordering
	span    Span
	cancel  <-chan struct{}
	srcOut  map[graph.VertexID][]order.Rank
	srcIn   map[graph.VertexID][]order.Rank
	ibfsFwd map[graph.VertexID][]order.Rank
	ibfsBwd map[graph.VertexID][]order.Rank
}

func newBatchShared(ord *order.Ordering, span Span) *batchShared {
	return &batchShared{
		ord:     ord,
		span:    span,
		srcOut:  make(map[graph.VertexID][]order.Rank),
		srcIn:   make(map[graph.VertexID][]order.Rank),
		ibfsFwd: make(map[graph.VertexID][]order.Rank),
		ibfsBwd: make(map[graph.VertexID][]order.Rank),
	}
}

// batchLocal is one worker's persistent state: the accumulated label
// lists of its owned vertices, plus the per-batch visit status.
type batchLocal struct {
	in      map[graph.VertexID][]order.Rank
	out     map[graph.VertexID][]order.Rank
	seen    map[uint64]struct{}
	listFwd map[graph.VertexID][]order.Rank
	listBwd map[graph.VertexID][]order.Rank
}

type batchProgram struct {
	shared *batchShared
}

func (p *batchProgram) PreStep(workers []*pregel.Worker, step int) error {
	if len(workers) == 0 {
		return nil
	}
	s := p.shared
	for _, blob := range workers[0].BcastIn {
		if len(blob) == 0 {
			continue
		}
		var err error
		switch blob[0] {
		case blobLabels:
			err = decodeLabelShares(blob[1:], func(v graph.VertexID, out, in []order.Rank) {
				s.srcOut[v] = out
				s.srcIn[v] = in
			})
		default:
			tgt := s.ibfsFwd
			if blob[0] == kindBwd {
				tgt = s.ibfsBwd
			}
			err = decodeEventPairs(blob[1:], func(x graph.VertexID, r order.Rank) {
				tgt[x] = append(tgt[x], r)
			})
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MessageCombiner deduplicates rank messages to the same destination
// vertex (the receiving loop is seen-guarded, like Algorithm 3's).
func (p *batchProgram) MessageCombiner() pregel.Combiner { return pregel.DedupCombiner }

func (p *batchProgram) Superstep(w *pregel.Worker, step int) (bool, error) {
	ord := p.shared.ord
	if step == 0 {
		local, _ := w.State.(*batchLocal)
		if local == nil {
			local = &batchLocal{
				in:  make(map[graph.VertexID][]order.Rank),
				out: make(map[graph.VertexID][]order.Rank),
			}
			w.State = local
		}
		local.seen = make(map[uint64]struct{})
		local.listFwd = make(map[graph.VertexID][]order.Rank)
		local.listBwd = make(map[graph.VertexID][]order.Rank)

		var shares []labelShare
		span := p.shared.span
		w.OwnedVertices(func(v graph.VertexID) {
			r := ord.RankOf(v)
			if r < span.Lo || r >= span.Hi {
				return
			}
			// Self pruning (line 6): a prior-batch vertex on a cycle
			// through v covers everything v could label.
			if !disjointRanks(local.out[v], local.in[v]) {
				return
			}
			// Share the batch label sets (line 8).
			shares = append(shares, labelShare{v: v, out: local.out[v], in: local.in[v]})
			local.seen[seenKey(kindFwd, v, r)] = struct{}{}
			local.seen[seenKey(kindBwd, v, r)] = struct{}{}
			local.listFwd[v] = append(local.listFwd[v], r)
			local.listBwd[v] = append(local.listBwd[v], r)
			for _, nb := range w.Graph.OutNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: int32(r)})
			}
			for _, nb := range w.Graph.InNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: int32(r)})
			}
		})
		w.Broadcast(encodeLabelBlob(shares))
		return true, nil
	}

	local := w.State.(*batchLocal)
	var pendFwd, pendBwd []visitEvent
	for i, m := range w.Inbox {
		if stepCanceled(i, p.shared.cancel) {
			return false, pregel.ErrCanceled
		}
		dst := m.Dst
		r := order.Rank(m.Val)
		if r >= ord.RankOf(dst) {
			continue
		}
		key := seenKey(m.Kind, dst, r)
		if _, ok := local.seen[key]; ok {
			continue
		}
		v := ord.VertexAt(r)
		// Batch-label pruning (line 12): a prior-batch vertex on a
		// v→dst walk blocks the expansion permanently.
		var ibfs []order.Rank
		if m.Kind == kindFwd {
			if !disjointRanks(p.shared.srcOut[v], local.in[dst]) {
				continue
			}
			ibfs = p.shared.ibfsBwd[v]
		} else {
			if !disjointRanks(p.shared.srcIn[v], local.out[dst]) {
				continue
			}
			ibfs = p.shared.ibfsFwd[v]
		}
		// In-batch Check (same as Algorithm 3).
		if coveredBatch(local, m.Kind, dst, ibfs) {
			continue
		}
		local.seen[key] = struct{}{}
		if m.Kind == kindFwd {
			local.listFwd[dst] = append(local.listFwd[dst], r)
			pendFwd = append(pendFwd, visitEvent{v: dst, r: r})
			for _, nb := range w.Graph.OutNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: m.Val})
			}
		} else {
			local.listBwd[dst] = append(local.listBwd[dst], r)
			pendBwd = append(pendBwd, visitEvent{v: dst, r: r})
			for _, nb := range w.Graph.InNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: m.Val})
			}
		}
	}
	w.Broadcast(encodeEventBlob(kindFwd, pendFwd))
	w.Broadcast(encodeEventBlob(kindBwd, pendBwd))
	return len(w.Inbox) > 0 || len(w.BcastIn) > 0, nil
}

func coveredBatch(local *batchLocal, kind uint8, w graph.VertexID, ibfs []order.Rank) bool {
	for _, u := range ibfs {
		if _, ok := local.seen[seenKey(kind, w, u)]; ok {
			return true
		}
	}
	return false
}

// Finish runs the end-of-batch cleanup and appends the surviving
// ranks to the accumulated label lists (Algorithm 4 line 14).
func (p *batchProgram) Finish(w *pregel.Worker) error {
	local := w.State.(*batchLocal)
	ord := p.shared.ord
	for v, list := range local.listFwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !coveredBatch(local, kindFwd, v, p.shared.ibfsBwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		local.in[v] = append(local.in[v], keep...)
		// Appending a sorted batch of fresh (higher) ranks must keep the
		// accumulated list strictly increasing (Algorithm 4 line 14).
		invariant.StrictlyIncreasing("drl: accumulated L_in after batch merge", local.in[v])
	}
	for v, list := range local.listBwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !coveredBatch(local, kindBwd, v, p.shared.ibfsFwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		local.out[v] = append(local.out[v], keep...)
		invariant.StrictlyIncreasing("drl: accumulated L_out after batch merge", local.out[v])
	}
	return nil
}

// BuildDistributedBatch runs DRL_b (Algorithm 4) on the vertex-centric
// system: one engine run per batch over a persistent worker set,
// metrics accumulated across batches.
func BuildDistributedBatch(g *graph.Digraph, ord *order.Ordering, bp BatchParams, opt DistOptions) (*label.Index, pregel.Metrics, error) {
	var met pregel.Metrics
	spans, err := BatchSequence(g.NumVertices(), bp)
	if err != nil {
		return nil, met, err
	}
	eng := pregel.New(g, pregel.Config{Workers: opt.Workers, Net: opt.Net, Cancel: opt.Cancel, Obs: opt.Obs})
	cBatches := opt.Obs.Counter("drl_batches_total")
	hBatch := opt.Obs.Histogram("drl_batch_vertices", obs.SizeBuckets)
	for _, span := range spans {
		shared := newBatchShared(ord, span)
		shared.cancel = opt.Cancel
		prog := &batchProgram{shared: shared}
		m, err := eng.Run(prog)
		met.Add(m)
		if err != nil {
			return nil, met, err
		}
		cBatches.Inc()
		hBatch.Observe(float64(span.Size()))
	}
	idx := collectIndex(eng, ord, &met)
	return idx, met, nil
}

package drl

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/pregel"
)

// DistOptions configures the vertex-centric builders.
type DistOptions struct {
	// Workers is the number of computation nodes P.
	Workers int
	// Net is the simulated interconnect model.
	Net netsim.Model
	// Cancel aborts the build when closed.
	Cancel <-chan struct{}
	// Obs receives engine counters and the superstep trace (nil = off).
	Obs *obs.Registry
}

// Message kinds: a v-sourced trimmed BFS step on G (building in-label
// candidates) or on G̅ (building out-label candidates). Msg.Val
// carries the source's rank.
const (
	kindFwd uint8 = iota
	kindBwd
)

// seenKey packs (direction, vertex, source rank) for the per-worker
// visited-status table (the paper's w.status hash, footnote 2).
// Vertex IDs and ranks fit in 31 bits each, leaving two tag bits.
func seenKey(kind uint8, w graph.VertexID, r order.Rank) uint64 {
	return uint64(kind)<<62 | uint64(uint32(w))<<31 | uint64(uint32(r))
}

// distShared is the state every worker holds a replica of in a real
// cluster: the inverted lists, fed by visit-event broadcasts. One
// in-process copy stands in for the P identical replicas (see
// pregel.PreStepper).
type distShared struct {
	ord *order.Ordering
	// ibfsFwd[x] lists the ranks u whose *forward* BFS visited x —
	// the inverted list consumed by the backward Check.
	// ibfsBwd[x] is the symmetric list (IBFS_low of Definition 6)
	// consumed by the forward Check.
	ibfsFwd map[graph.VertexID][]order.Rank
	ibfsBwd map[graph.VertexID][]order.Rank
	// cancel lets long supersteps honor the cut-off mid-step.
	cancel <-chan struct{}
}

// checkCancelEvery bounds how many inbox messages a program processes
// between cut-off checks inside one superstep.
const checkCancelEvery = 1 << 16

func stepCanceled(i int, cancel <-chan struct{}) bool {
	if i%checkCancelEvery != 0 || cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// sortedVertices returns m's keys in increasing vertex order, the
// deterministic iteration order every broadcast- or message-emitting
// loop must use (mapdet).
func sortedVertices[V any](m map[graph.VertexID]V) []graph.VertexID {
	keys := make([]graph.VertexID, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// distLocal is one worker's private state: visited status and visitor
// lists for owned vertices, and the final label lists after cleanup.
type distLocal struct {
	seen    map[uint64]struct{}
	listFwd map[graph.VertexID][]order.Rank
	listBwd map[graph.VertexID][]order.Rank
	resIn   map[graph.VertexID][]order.Rank
	resOut  map[graph.VertexID][]order.Rank
}

func newDistLocal() *distLocal {
	return &distLocal{
		seen:    make(map[uint64]struct{}),
		listFwd: make(map[graph.VertexID][]order.Rank),
		listBwd: make(map[graph.VertexID][]order.Rank),
		resIn:   make(map[graph.VertexID][]order.Rank),
		resOut:  make(map[graph.VertexID][]order.Rank),
	}
}

// distProgram is Algorithm 3 (DRL): all n trimmed BFSs of both
// directions flood the graph simultaneously; the Check procedure
// prunes expansions opportunistically as the inverted-list replicas
// fill in, and the Finish cleanup makes the result exact (Theorem 5).
type distProgram struct {
	shared *distShared
}

// PreStep applies the visit-event broadcasts of the previous step to
// the shared inverted-list replica. A corrupt blob aborts the run.
func (p *distProgram) PreStep(workers []*pregel.Worker, step int) error {
	if len(workers) == 0 {
		return nil
	}
	for _, blob := range workers[0].BcastIn {
		if err := applyEvents(p.shared, blob); err != nil {
			return err
		}
	}
	return nil
}

// MessageCombiner deduplicates rank messages to the same destination
// vertex: the receiving loop is seen-guarded, so duplicates carry no
// information and need not cross the wire.
func (p *distProgram) MessageCombiner() pregel.Combiner { return pregel.DedupCombiner }

// applyEvents decodes one event blob (tag byte, then delta-encoded
// (vertex, rank) pairs) into the inverted-list replica.
func applyEvents(s *distShared, blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	tgt := s.ibfsFwd
	if blob[0] == kindBwd {
		tgt = s.ibfsBwd
	}
	return decodeEventPairs(blob[1:], func(x graph.VertexID, r order.Rank) {
		tgt[x] = append(tgt[x], r)
	})
}

func (p *distProgram) Superstep(w *pregel.Worker, step int) (bool, error) {
	if step == 0 {
		local := newDistLocal()
		w.State = local
		ord := p.shared.ord
		w.OwnedVertices(func(v graph.VertexID) {
			r := ord.RankOf(v)
			local.seen[seenKey(kindFwd, v, r)] = struct{}{}
			local.seen[seenKey(kindBwd, v, r)] = struct{}{}
			local.listFwd[v] = append(local.listFwd[v], r)
			local.listBwd[v] = append(local.listBwd[v], r)
			for _, nb := range w.Graph.OutNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: int32(r)})
			}
			for _, nb := range w.Graph.InNeighbors(v) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: int32(r)})
			}
		})
		return true, nil
	}

	local := w.State.(*distLocal)
	ord := p.shared.ord
	var pendFwd, pendBwd []visitEvent
	for i, m := range w.Inbox {
		if stepCanceled(i, p.shared.cancel) {
			return false, pregel.ErrCanceled
		}
		dst := m.Dst
		r := order.Rank(m.Val)
		rw := ord.RankOf(dst)
		if r >= rw {
			// ord(source) ≤ ord(dst): the trimmed BFS blocks here.
			continue
		}
		key := seenKey(m.Kind, dst, r)
		if _, ok := local.seen[key]; ok {
			continue
		}
		v := ord.VertexAt(r)
		// Check (Algorithm 3 line 14): a known higher-order vertex u
		// that reaches v backwards and has already visited dst proves
		// a covering walk; prune the expansion.
		var ibfs []order.Rank
		if m.Kind == kindFwd {
			ibfs = p.shared.ibfsBwd[v]
		} else {
			ibfs = p.shared.ibfsFwd[v]
		}
		if covered(local, m.Kind, dst, ibfs) {
			continue
		}
		local.seen[key] = struct{}{}
		if m.Kind == kindFwd {
			local.listFwd[dst] = append(local.listFwd[dst], r)
			pendFwd = append(pendFwd, visitEvent{v: dst, r: r})
			for _, nb := range w.Graph.OutNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindFwd, Val: m.Val})
			}
		} else {
			local.listBwd[dst] = append(local.listBwd[dst], r)
			pendBwd = append(pendBwd, visitEvent{v: dst, r: r})
			for _, nb := range w.Graph.InNeighbors(dst) {
				w.Send(pregel.Msg{Dst: nb, Kind: kindBwd, Val: m.Val})
			}
		}
	}
	w.Broadcast(encodeEventBlob(kindFwd, pendFwd))
	w.Broadcast(encodeEventBlob(kindBwd, pendBwd))
	return len(w.Inbox) > 0 || len(w.BcastIn) > 0, nil
}

// covered implements Check(v, w): true if some u ∈ ibfs (all of order
// higher than v) has already visited w in the same direction.
func covered(local *distLocal, kind uint8, w graph.VertexID, ibfs []order.Rank) bool {
	for _, u := range ibfs {
		if _, ok := local.seen[seenKey(kind, w, u)]; ok {
			return true
		}
	}
	return false
}

// Finish is the final-superstep cleanup (Algorithm 3 lines 19-20):
// re-run Check for every surviving visit against the now-complete
// inverted lists, then sort the survivors into label lists. The check
// reads the pre-cleanup status: the maximal covering witness is never
// itself removed (Theorem 5's argument), so this is exact.
func (p *distProgram) Finish(w *pregel.Worker) error {
	local := w.State.(*distLocal)
	ord := p.shared.ord
	for v, list := range local.listFwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !covered(local, kindFwd, v, p.shared.ibfsBwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		// Visit events are seen-guarded, so the cleaned list is a sorted
		// set — the exact shape label.FromLists requires.
		invariant.StrictlyIncreasing("drl: cleaned L_in", keep)
		local.resIn[v] = keep
	}
	for v, list := range local.listBwd {
		keep := make([]order.Rank, 0, len(list))
		for _, r := range list {
			if !covered(local, kindBwd, v, p.shared.ibfsFwd[ord.VertexAt(r)]) {
				keep = append(keep, r)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		invariant.StrictlyIncreasing("drl: cleaned L_out", keep)
		local.resOut[v] = keep
	}
	return nil
}

// BuildDistributed runs DRL (Algorithm 3) on the vertex-centric
// system with opt.Workers computation nodes and returns the index
// plus the run's cost metrics.
func BuildDistributed(g *graph.Digraph, ord *order.Ordering, opt DistOptions) (*label.Index, pregel.Metrics, error) {
	eng := pregel.New(g, pregel.Config{Workers: opt.Workers, Net: opt.Net, Cancel: opt.Cancel, Obs: opt.Obs})
	prog := &distProgram{shared: &distShared{
		ord:     ord,
		ibfsFwd: make(map[graph.VertexID][]order.Rank),
		ibfsBwd: make(map[graph.VertexID][]order.Rank),
		cancel:  opt.Cancel,
	}}
	met, err := eng.Run(prog)
	if err != nil {
		return nil, met, err
	}
	idx := collectIndex(eng, ord, &met)
	return idx, met, nil
}

// collectIndex gathers the per-worker label lists onto one "machine"
// (the paper serves queries from a single node holding the index) and
// charges the gather bytes to the metrics.
func collectIndex(eng *pregel.Engine, ord *order.Ordering, met *pregel.Metrics) *label.Index {
	n := ord.N()
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)
	for _, w := range eng.Workers() {
		switch st := w.State.(type) {
		case *distLocal:
			for v, lab := range st.resIn {
				in[v] = lab
			}
			for v, lab := range st.resOut {
				out[v] = lab
			}
		case *batchLocal:
			for v, lab := range st.in {
				in[v] = lab
			}
			for v, lab := range st.out {
				out[v] = lab
			}
		}
		if w.ID != 0 {
			var bytes int64
			for v := graph.VertexID(w.ID); int(v) < n; v += graph.VertexID(w.P) {
				bytes += 4 * int64(len(in[v])+len(out[v]))
			}
			met.BytesRemote += bytes
		}
	}
	return label.FromLists(ord, in, out)
}

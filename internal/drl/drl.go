// Package drl implements the paper's filtering-and-refinement labeling
// algorithms — the contribution that makes TOL's index constructible
// in parallel and on distributed graphs.
//
// For every vertex v the algorithms compute the backward label sets
// L⁻_in(v) = {w | v ∈ L_in(w)} and L⁻_out(v) = {w | v ∈ L_out(w)}
// (Definition 4) instead of running TOL's order-dependent pruning.
// Four variants are provided, in increasing sophistication:
//
//	BuildNaive     Theorem 2:  DES(v) filtered by DES of every
//	               higher-order descendant. Quadratic; test oracle.
//	BuildBasic     Theorem 3 (DRL⁻): trimmed-BFS filtering, one full
//	               BFS per BFS_hig(v) member for refinement.
//	BuildImproved  Theorem 4 (DRL): trimmed-BFS filtering in both
//	               directions, refinement via inverted lists — no
//	               refinement BFSs at all.
//	BuildBatch     §IV (DRL_b / DRL_b^M): batch sequence with
//	               TOL-style pruning across batches and DRL-style
//	               refinement inside each batch.
//
// All of the above run shared-memory parallel across Options.Workers
// goroutines. The genuinely distributed implementations (Algorithms 3
// and 4 on the vertex-centric system) are in distributed.go and
// distbatch.go; every variant produces an index identical to TOL's.
package drl

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/obs"
	"repro/internal/order"
)

// ErrCanceled is returned when a build is aborted through a cancel
// channel (the experiment harness's cut-off timer).
var ErrCanceled = errors.New("drl: labeling canceled")

// Options configures the shared-memory builders.
type Options struct {
	// Workers is the number of goroutines (default: GOMAXPROCS).
	Workers int
	// Cancel aborts the build when closed.
	Cancel <-chan struct{}
	// Obs receives build-path counters ("drl_*"); nil disables.
	Obs *obs.Registry
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// parallelRanks runs fn(rank) for every rank in [lo, hi) across the
// given number of goroutines, checking cancel between chunks. fn must
// be safe for concurrent invocation on distinct ranks.
func parallelRanks(lo, hi order.Rank, workers int, cancel <-chan struct{}, fn func(worker int, r order.Rank)) error {
	if hi <= lo {
		return nil
	}
	if workers <= 1 {
		for r := lo; r < hi; r++ {
			if r%1024 == 0 && canceled(cancel) {
				return ErrCanceled
			}
			fn(0, r)
		}
		return nil
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var once sync.Once
	var aborted bool
	next := int64(lo)
	nextMu := sync.Mutex{}
	const chunk = 64
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				if canceled(cancel) {
					once.Do(func() { aborted = true; close(stop) })
					return
				}
				select {
				case <-stop:
					return
				default:
				}
				nextMu.Lock()
				start := next
				next += chunk
				nextMu.Unlock()
				if start >= int64(hi) {
					return
				}
				end := start + chunk
				if end > int64(hi) {
					end = int64(hi)
				}
				for r := order.Rank(start); r < order.Rank(end); r++ {
					fn(wk, r)
				}
			}
		}(wk)
	}
	wg.Wait()
	if aborted {
		return ErrCanceled
	}
	return nil
}

// disjointBelow reports whether the rank-sorted lists a and b share no
// element strictly below bound. It is the refinement test of Lemma 5:
// a common rank u < rank(v) between IBFS_low(v) and the visitors of w
// proves a higher-order vertex on a v→w walk.
func disjointBelow(a, b []order.Rank, bound order.Rank) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i] < bound && b[j] < bound {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// disjointRanks reports whether two rank-sorted lists are disjoint
// (the TOL/batch pruning test).
func disjointRanks(a, b []order.Rank) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// rankLists is a flat vertex → sorted-rank-list table: row w holds the
// ranks of the sources whose (trimmed) BFS visited w. It doubles as
// the inverted-list store: IBFS_low(v) on G is exactly row v of the
// inverse direction's table.
type rankLists struct {
	off  []int64
	data []order.Rank
}

// Row returns the sorted rank list of vertex w.
func (t *rankLists) Row(w graph.VertexID) []order.Rank {
	return t.data[t.off[w]:t.off[w+1]]
}

// Entries returns the total number of (source, vertex) visit pairs.
func (t *rankLists) Entries() int64 { return int64(len(t.data)) }

// invertLows builds the vertex→visitors table from per-source low
// lists indexed by rank. Iterating sources in increasing rank keeps
// every row sorted.
func invertLows(n int, lows [][]graph.VertexID) *rankLists {
	return invertLowsAt(n, lows, 0)
}

// allTrimmedLows runs the v-sourced trimmed BFS for every vertex of g
// (the filtering phase run for all vertices at once) and returns the
// per-rank BFS_low lists.
func allTrimmedLows(g *graph.Digraph, ord *order.Ordering, opt Options) ([][]graph.VertexID, error) {
	n := g.NumVertices()
	lows := make([][]graph.VertexID, n)
	scratches := make([]*label.Scratch, opt.workers())
	for i := range scratches {
		scratches[i] = label.NewScratch(n)
	}
	opt.Obs.Counter("drl_filter_rounds_total").Inc()
	cBFS := opt.Obs.Counter("drl_trimmed_bfs_total")
	cVisits := opt.Obs.Counter("drl_bfs_visits_total")
	err := parallelRanks(0, order.Rank(n), opt.workers(), opt.Cancel, func(wk int, r order.Rank) {
		v := ord.VertexAt(r)
		low, _ := label.TrimmedBFS(g, ord, v, scratches[wk], nil, nil)
		lows[r] = low
		cBFS.Inc()
		cVisits.Add(int64(len(low)))
	})
	if err != nil {
		return nil, err
	}
	return lows, nil
}

package drl

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/order"
	"repro/internal/tol"
)

// builders lists every labeling algorithm that must reproduce TOL's
// index exactly — the paper's central claim.
func builders() map[string]func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
	byWorkers := func(p int) func(*graph.Digraph, *order.Ordering) (*label.Index, error) {
		return func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			idx, _, err := BuildDistributed(g, ord, DistOptions{Workers: p})
			return idx, err
		}
	}
	batchByWorkers := func(p int) func(*graph.Digraph, *order.Ordering) (*label.Index, error) {
		return func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			idx, _, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: p})
			return idx, err
		}
	}
	basicByWorkers := func(p int) func(*graph.Digraph, *order.Ordering) (*label.Index, error) {
		return func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			idx, _, err := BuildDistributedBasic(g, ord, DistOptions{Workers: p})
			return idx, err
		}
	}
	return map[string]func(*graph.Digraph, *order.Ordering) (*label.Index, error){
		"naive": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildNaive(g, ord, Options{Workers: 2})
		},
		"basic": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildBasic(g, ord, Options{Workers: 2})
		},
		"improved": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildImproved(g, ord, Options{Workers: 2})
		},
		"batch-serial": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildBatch(g, ord, DefaultBatchParams(), Options{Workers: 1})
		},
		"batch-parallel": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildBatch(g, ord, DefaultBatchParams(), Options{Workers: 4})
		},
		"batch-b1k1.5": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildBatch(g, ord, BatchParams{InitialSize: 1, Factor: 1.5}, Options{Workers: 2})
		},
		"batch-b64": func(g *graph.Digraph, ord *order.Ordering) (*label.Index, error) {
			return BuildBatch(g, ord, BatchParams{InitialSize: 64, Factor: 2}, Options{Workers: 2})
		},
		"dist-drl-p1":      byWorkers(1),
		"dist-drl-p3":      byWorkers(3),
		"dist-drl-p8":      byWorkers(8),
		"dist-drlb-p1":     batchByWorkers(1),
		"dist-drlb-p4":     batchByWorkers(4),
		"dist-drlbasic-p3": basicByWorkers(3),
	}
}

// testGraphs returns the adversarial fixtures plus seeded random
// graphs, both cyclic and acyclic.
func testGraphs() map[string]*graph.Digraph {
	gs := map[string]*graph.Digraph{
		"paper-example": graph.PaperExample(),
		"empty":         graph.FromEdges(0, nil),
		"singleton":     graph.FromEdges(1, nil),
		"self-loop":     graph.FromEdges(2, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}}),
		"two-cycle":     graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}),
		"triangle":      graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}),
		"path": graph.FromEdges(6, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
		}),
		"star-out": graph.FromEdges(7, []graph.Edge{
			{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5}, {U: 0, V: 6},
		}),
		"diamond": graph.FromEdges(4, []graph.Edge{
			{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		}),
		"disconnected": graph.FromEdges(6, []graph.Edge{
			{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 5, V: 4},
		}),
		"bowtie": graph.FromEdges(7, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // left cycle
			{U: 2, V: 3},                             // bridge
			{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // right cycle
			{U: 5, V: 6},
		}),
	}
	for _, seed := range []int64{1, 2, 3} {
		gs[fmt.Sprintf("rand-dag-%d", seed)] = randomDAG(40, 90, seed)
		gs[fmt.Sprintf("rand-cyclic-%d", seed)] = randomDigraph(40, 110, seed)
	}
	gs["rand-dense"] = randomDigraph(25, 180, 7)
	gs["rand-sparse"] = randomDigraph(80, 90, 9)
	return gs
}

func randomDAG(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	return graph.FromEdges(n, edges)
}

func randomDigraph(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestIndexEqualsTOL is the paper's central claim: every variant, at
// every parallelism level, produces exactly TOL's index.
func TestIndexEqualsTOL(t *testing.T) {
	for gname, g := range testGraphs() {
		ord := order.Compute(g)
		want := tol.Build(g, ord)
		for bname, build := range builders() {
			t.Run(gname+"/"+bname, func(t *testing.T) {
				got, err := build(g, ord)
				if err != nil {
					t.Fatalf("build failed: %v", err)
				}
				if !want.Equal(got) {
					t.Fatalf("index differs from TOL: %s", want.Diff(got))
				}
			})
		}
	}
}

// TestIndexEqualsTOLAdversarialOrders repeats the equivalence check
// under random (non-degree) total orders, which exercises order-
// dependent corner cases the degree order never hits.
func TestIndexEqualsTOLAdversarialOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		g := randomDigraph(30, 80, int64(100+trial))
		n := g.NumVertices()
		perm := rng.Perm(n)
		ranks := make([]order.Rank, n)
		for v, r := range perm {
			ranks[v] = order.Rank(r)
		}
		ord := order.FromRanks(ranks)
		want := tol.Build(g, ord)
		for bname, build := range builders() {
			got, err := build(g, ord)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, bname, err)
			}
			if !want.Equal(got) {
				t.Fatalf("trial %d %s: index differs: %s", trial, bname, want.Diff(got))
			}
		}
	}
}

// TestDistributedMetricsSane checks that a distributed run on several
// workers reports remote traffic and supersteps.
func TestDistributedMetricsSane(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	_, met, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{
		Workers: 4,
		Net:     netsim.Commodity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps == 0 || met.Messages == 0 {
		t.Errorf("metrics look empty: %+v", met)
	}
	if met.BytesRemote == 0 {
		t.Errorf("expected remote bytes with 4 workers: %+v", met)
	}
	if met.SimNetTime == 0 {
		t.Errorf("expected simulated network time with commodity model")
	}
}

package drl

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
	"repro/internal/pregel"
	"repro/internal/tol"
)

// flakyCluster is the fault-injection test harness: a set of real
// worker servers reached through FaultTransports that drop calls, lose
// replies, and crash on a deterministic seeded schedule. Logical
// worker names ("w0", "w1", ...) are what the master dials; a crash
// starts a replacement server on a fresh port and reroutes the name,
// so the master's re-dial lands on a genuinely state-less process —
// exactly a restarted worker.
type flakyCluster struct {
	t *testing.T

	mu         sync.Mutex
	route      map[string]string // logical name -> current TCP address
	plans      map[string]pregel.FaultPlan
	dials      map[string]int
	transports []*pregel.FaultTransport
}

func newFlakyCluster(t *testing.T, plans map[string]pregel.FaultPlan) *flakyCluster {
	t.Helper()
	fc := &flakyCluster{
		t:     t,
		route: map[string]string{},
		plans: plans,
		dials: map[string]int{},
	}
	for name := range plans {
		fc.route[name] = startWorkers(t, 1)[0]
	}
	return fc
}

// addrs returns the logical worker names in w0..wN order.
func (fc *flakyCluster) addrs() []string {
	names := make([]string, 0, len(fc.route))
	for i := 0; i < len(fc.route); i++ {
		names = append(names, fmt.Sprintf("w%d", i))
	}
	return names
}

// dial is the pregel.Dialer. A re-dial after a crash gets a plan
// without the crash point: the replacement process is healthy (drops
// and lost replies persist — the network is still the network).
func (fc *flakyCluster) dial(logical string) (pregel.Transport, error) {
	fc.mu.Lock()
	real, ok := fc.route[logical]
	plan := fc.plans[logical]
	fc.dials[logical]++
	if fc.dials[logical] > 1 {
		plan.CrashAtCall = 0
		plan.Seed += int64(1000 * fc.dials[logical]) // fresh schedule per incarnation
	}
	fc.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("flakyCluster: unknown worker %q", logical)
	}
	inner, err := pregel.DialRPC(real)
	if err != nil {
		return nil, err
	}
	ft := pregel.NewFaultTransport(inner, plan)
	if plan.CrashAtCall > 0 {
		ft.OnCrash = func() { fc.replace(logical) }
	}
	fc.mu.Lock()
	fc.transports = append(fc.transports, ft)
	fc.mu.Unlock()
	return ft, nil
}

// replace stands up a replacement worker server and reroutes the
// logical name to it.
func (fc *flakyCluster) replace(logical string) {
	addr := startWorkers(fc.t, 1)[0]
	fc.mu.Lock()
	fc.route[logical] = addr
	fc.mu.Unlock()
}

// stats sums the injected-fault counters across every transport the
// harness handed out.
func (fc *flakyCluster) stats() pregel.FaultStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	var sum pregel.FaultStats
	for _, ft := range fc.transports {
		st := ft.Stats()
		sum.Calls += st.Calls
		sum.Drops += st.Drops
		sum.LostReplies += st.LostReplies
		sum.Delays += st.Delays
		sum.Crashes += st.Crashes
	}
	return sum
}

// fastFaultOptions returns ClusterOptions tuned for tests: short
// backoffs, plenty of attempts, checkpoints every 2 supersteps.
func fastFaultOptions(fc *flakyCluster) ClusterOptions {
	return ClusterOptions{
		Retry: pregel.RetryPolicy{
			CallTimeout: 5 * time.Second,
			MaxAttempts: 8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
		CheckpointEvery: 2,
		Dial:            fc.dial,
	}
}

func saveGraph(t *testing.T, g *graph.Digraph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	return path
}

func indexBytes(t *testing.T, idx *label.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultScheduleEquivalence is the randomized fault-schedule
// equivalence check: seeded random DAGs and digraphs run through
// transports injecting drops, lost replies, and one worker crash —
// the produced index must be byte-identical to the serial TOL oracle.
func TestFaultScheduleEquivalence(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"rand-dag-11":    randomDAG(40, 90, 11),
		"rand-cyclic-12": randomDigraph(35, 100, 12),
	}
	for gname, g := range graphs {
		path := saveGraph(t, g)
		ord := order.Compute(g)
		want := indexBytes(t, tol.Build(g, ord))

		for _, algo := range []string{"drl", "drl-batch"} {
			t.Run(gname+"/"+algo, func(t *testing.T) {
				fc := newFlakyCluster(t, map[string]pregel.FaultPlan{
					"w0": {Seed: 101, DropProb: 0.15, LostReplyProb: 0.10},
					"w1": {Seed: 202, DropProb: 0.10, LostReplyProb: 0.10, CrashAtCall: 9},
					"w2": {Seed: 303, DropProb: 0.15, LostReplyProb: 0.15},
				})
				copt := fastFaultOptions(fc)
				var (
					idx *label.Index
					met pregel.Metrics
					err error
				)
				if algo == "drl" {
					idx, met, err = BuildOverRPCOpts(fc.addrs(), path, copt)
				} else {
					idx, met, err = BuildBatchOverRPCOpts(fc.addrs(), path, DefaultBatchParams(), copt)
				}
				if err != nil {
					t.Fatalf("%s under faults: %v", algo, err)
				}
				if got := indexBytes(t, idx); !bytes.Equal(got, want) {
					t.Fatalf("%s index under faults is not byte-identical to TOL", algo)
				}
				st := fc.stats()
				if st.Drops+st.LostReplies == 0 {
					t.Error("no faults were injected; the test proved nothing")
				}
				if st.Crashes == 0 {
					t.Error("the planned worker crash never fired")
				}
				if met.Retries == 0 {
					t.Error("expected retried calls under injected drops")
				}
				if met.Recoveries == 0 {
					t.Error("expected at least one checkpoint recovery after the crash")
				}
			})
		}
	}
}

// TestCheckpointRoundTrip kills a worker mid-run, lets the master
// restore the cluster from the last superstep checkpoint onto a
// replacement process, and verifies the resumed build matches both an
// uninterrupted run and the TOL oracle byte for byte.
func TestCheckpointRoundTrip(t *testing.T) {
	g := randomDigraph(50, 140, 33)
	path := saveGraph(t, g)
	ord := order.Compute(g)
	want := indexBytes(t, tol.Build(g, ord))

	// Uninterrupted reference run on a healthy cluster.
	refIdx, _, err := BuildOverRPC(startWorkers(t, 3), path)
	if err != nil {
		t.Fatal(err)
	}
	ref := indexBytes(t, refIdx)
	if !bytes.Equal(ref, want) {
		t.Fatal("healthy run differs from TOL; fix that before testing faults")
	}

	// Crash-only plan: worker w1 dies at its 7th call — after Init,
	// BeginRun, and the step-0 checkpoint, i.e. mid-superstep-loop.
	fc := newFlakyCluster(t, map[string]pregel.FaultPlan{
		"w0": {},
		"w1": {Seed: 5, CrashAtCall: 7},
		"w2": {},
	})
	idx, met, err := BuildOverRPCOpts(fc.addrs(), path, fastFaultOptions(fc))
	if err != nil {
		t.Fatalf("build with mid-run crash: %v", err)
	}
	if got := indexBytes(t, idx); !bytes.Equal(got, ref) {
		t.Fatal("resumed build differs from the uninterrupted run")
	}
	if fc.stats().Crashes == 0 {
		t.Error("the planned crash never fired")
	}
	if met.Recoveries == 0 {
		t.Error("expected a checkpoint recovery")
	}
	if met.Checkpoints == 0 || met.CheckpointBytes == 0 {
		t.Errorf("expected checkpoint activity, got %+v", met)
	}
	if fc.dials["w1"] < 2 {
		t.Error("crashed worker was never re-dialed")
	}

	// Same round trip across run boundaries: DRL_b runs once per
	// batch, and the crash lands in a middle batch.
	fc = newFlakyCluster(t, map[string]pregel.FaultPlan{
		"w0": {Seed: 6, CrashAtCall: 25},
		"w1": {},
		"w2": {},
	})
	idx, met, err = BuildBatchOverRPCOpts(fc.addrs(), path, DefaultBatchParams(), fastFaultOptions(fc))
	if err != nil {
		t.Fatalf("batch build with crash: %v", err)
	}
	if got := indexBytes(t, idx); !bytes.Equal(got, want) {
		t.Fatal("batch build after crash recovery is not byte-identical to TOL")
	}
	if met.Recoveries == 0 {
		t.Error("expected a checkpoint recovery in the batch build")
	}
}

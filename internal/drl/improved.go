package drl

import (
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// BuildImproved is the improved labeling method DRL (Theorem 4). The
// filtering phase runs the trimmed BFS from every vertex in both
// directions; refinement needs no BFS at all: a vertex w is removed
// from BFS_low(v) exactly when the inverted list IBFS_low(v) and the
// visitor list of w share a vertex of order higher than v (Lemma 5).
//
// Representation: visitedFwd.Row(w) holds the ranks of all sources
// whose forward trimmed BFS visited w — simultaneously the candidate
// in-label set of w and, read for vertex v, the inverted list
// IBFS^G̅_low(v) consumed by the backward refinement. The backward
// table plays the symmetric roles. The refinement below therefore
// produces the *forward* label lists L_in(w)/L_out(w) directly,
// without materializing backward sets.
func BuildImproved(g *graph.Digraph, ord *order.Ordering, opt Options) (*label.Index, error) {
	n := g.NumVertices()

	// Filtering phase: all trimmed BFSs on G, then on G̅.
	fwdLows, err := allTrimmedLows(g, ord, opt)
	if err != nil {
		return nil, err
	}
	visitedFwd := invertLows(n, fwdLows)
	fwdLows = nil
	bwdLows, err := allTrimmedLows(g.Inverse(), ord, opt)
	if err != nil {
		return nil, err
	}
	visitedBwd := invertLows(n, bwdLows)
	bwdLows = nil

	// Refinement phase (Lemma 5), per target vertex, in parallel.
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)
	opt.Obs.Counter("drl_refine_rounds_total").Inc()
	err = parallelRanks(0, order.Rank(n), opt.workers(), opt.Cancel, func(_ int, wr order.Rank) {
		w := ord.VertexAt(wr)
		fRow := visitedFwd.Row(w)
		bRow := visitedBwd.Row(w)
		var inW, outW []order.Rank
		for _, rv := range fRow {
			v := ord.VertexAt(rv)
			// Keep v ∈ L_in(w) unless some u with rank < rv appears in
			// both IBFS_low(v) (= visitors of v on G̅) and the forward
			// visitors of w.
			if disjointBelow(visitedBwd.Row(v), fRow, rv) {
				inW = append(inW, rv)
			}
		}
		for _, rv := range bRow {
			v := ord.VertexAt(rv)
			if disjointBelow(visitedFwd.Row(v), bRow, rv) {
				outW = append(outW, rv)
			}
		}
		in[w] = inW
		out[w] = outW
	})
	if err != nil {
		return nil, err
	}
	return label.FromLists(ord, in, out), nil
}

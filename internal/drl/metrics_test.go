package drl

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/order"
)

// TestDistributedDeterministic: repeated runs of the same
// configuration produce identical indexes and identical message
// counts (the engine's exchange is fully deterministic).
func TestDistributedDeterministic(t *testing.T) {
	g := randomDigraph(80, 240, 61)
	ord := order.Compute(g)
	first, met1, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	second, met2, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Fatal("nondeterministic index")
	}
	if met1.Messages != met2.Messages || met1.Supersteps != met2.Supersteps ||
		met1.BytesRemote != met2.BytesRemote {
		t.Errorf("nondeterministic metrics: %+v vs %+v", met1, met2)
	}
}

// TestCommunicationOrdering: the paper's Fig. 5 shape at small scale —
// DRL_b moves fewer bytes than DRL, which moves fewer than DRL⁻ (the
// DES floods dominate).
func TestCommunicationOrdering(t *testing.T) {
	g := randomDigraph(300, 1200, 62)
	ord := order.Compute(g)
	opt := DistOptions{Workers: 4, Net: netsim.Zero()}
	_, basic, err := BuildDistributedBasic(g, ord, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, improved, err := BuildDistributed(g, ord, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, batch, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if batch.BytesRemote >= improved.BytesRemote {
		t.Errorf("DRL_b (%d B) should move less than DRL (%d B)",
			batch.BytesRemote, improved.BytesRemote)
	}
	if improved.BytesRemote >= basic.BytesRemote {
		t.Errorf("DRL (%d B) should move less than DRL⁻ (%d B)",
			improved.BytesRemote, basic.BytesRemote)
	}
}

// TestWorkerCountIndependence: the index is identical for every P.
func TestWorkerCountIndependence(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	var base *struct{ entries int64 }
	for _, p := range []int{1, 2, 5, 7, 11, 16} {
		idx, _, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if base == nil {
			base = &struct{ entries int64 }{idx.Entries()}
		} else if base.entries != idx.Entries() {
			t.Fatalf("p=%d: entry count changed", p)
		}
	}
}

// TestDistBatchParamsRejected: invalid batch parameters surface as
// errors from the distributed builder too.
func TestDistBatchParamsRejected(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	if _, _, err := BuildDistributedBatch(g, ord, BatchParams{Factor: 0.2}, DistOptions{Workers: 2}); err == nil {
		t.Error("expected error for factor < 1")
	}
}

package drl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/order"
)

// TestDistributedDeterministic: repeated runs of the same
// configuration produce identical indexes and identical message
// counts (the engine's exchange is fully deterministic).
func TestDistributedDeterministic(t *testing.T) {
	g := randomDigraph(80, 240, 61)
	ord := order.Compute(g)
	first, met1, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	second, met2, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Fatal("nondeterministic index")
	}
	if met1.Messages != met2.Messages || met1.Supersteps != met2.Supersteps ||
		met1.BytesRemote != met2.BytesRemote {
		t.Errorf("nondeterministic metrics: %+v vs %+v", met1, met2)
	}
}

// TestCommunicationOrdering: the paper's Fig. 5 shape at small scale —
// DRL_b moves fewer bytes than DRL, which moves fewer than DRL⁻ (the
// DES floods dominate).
func TestCommunicationOrdering(t *testing.T) {
	g := randomDigraph(300, 1200, 62)
	ord := order.Compute(g)
	opt := DistOptions{Workers: 4, Net: netsim.Zero()}
	_, basic, err := BuildDistributedBasic(g, ord, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, improved, err := BuildDistributed(g, ord, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, batch, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if batch.BytesRemote >= improved.BytesRemote {
		t.Errorf("DRL_b (%d B) should move less than DRL (%d B)",
			batch.BytesRemote, improved.BytesRemote)
	}
	if improved.BytesRemote >= basic.BytesRemote {
		t.Errorf("DRL (%d B) should move less than DRL⁻ (%d B)",
			improved.BytesRemote, basic.BytesRemote)
	}
}

// TestWorkerCountIndependence: the index is identical for every P.
func TestWorkerCountIndependence(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	var base *struct{ entries int64 }
	for _, p := range []int{1, 2, 5, 7, 11, 16} {
		idx, _, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if base == nil {
			base = &struct{ entries int64 }{idx.Entries()}
		} else if base.entries != idx.Entries() {
			t.Fatalf("p=%d: entry count changed", p)
		}
	}
}

// TestObsCountersMatchMetrics: the observability counters must agree
// exactly with the engine's own Metrics — the deterministic message
// and byte counts are the acceptance bar for the /metrics pipeline.
func TestObsCountersMatchMetrics(t *testing.T) {
	g := randomDigraph(80, 240, 63)
	ord := order.Compute(g)

	reg := obs.New()
	_, met, err := BuildDistributed(g, ord, DistOptions{Workers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("pregel_messages_total"); got != met.Messages {
		t.Errorf("pregel_messages_total = %d, metrics say %d", got, met.Messages)
	}
	if got := reg.CounterValue("pregel_supersteps_total"); got != int64(met.Supersteps) {
		t.Errorf("pregel_supersteps_total = %d, metrics say %d", got, met.Supersteps)
	}
	if got := reg.CounterValue("pregel_bytes_local_total"); got != met.BytesLocal {
		t.Errorf("pregel_bytes_local_total = %d, metrics say %d", got, met.BytesLocal)
	}
	if got := reg.CounterValue("pregel_bcast_bytes_total"); got != met.BcastBytes {
		t.Errorf("pregel_bcast_bytes_total = %d, metrics say %d", got, met.BcastBytes)
	}
	// met.BytesRemote additionally charges the final index gather
	// (collectIndex), which happens outside the engine run.
	remote := reg.CounterValue("pregel_bytes_remote_total")
	if remote <= 0 || remote > met.BytesRemote {
		t.Errorf("pregel_bytes_remote_total = %d, want in (0, %d]", remote, met.BytesRemote)
	}

	// The Prometheus document carries the same numbers verbatim.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, line := range []string{
		fmt.Sprintf("pregel_messages_total %d", met.Messages),
		fmt.Sprintf("pregel_supersteps_total %d", met.Supersteps),
		fmt.Sprintf("pregel_bytes_local_total %d", met.BytesLocal),
	} {
		if !strings.Contains(doc, line) {
			t.Errorf("/metrics document missing %q", line)
		}
	}

	// The superstep trace covers every superstep and its message sum
	// reproduces the counter.
	steps := reg.Trace("pregel").Steps()
	if len(steps) != met.Supersteps {
		t.Fatalf("trace has %d rows, want %d", len(steps), met.Supersteps)
	}
	var traced int64
	for _, s := range steps {
		traced += s.Messages
	}
	if traced != met.Messages {
		t.Errorf("trace messages sum to %d, metrics say %d", traced, met.Messages)
	}
}

// TestObsBatchCounters: the DRL_b build path reports one batch per
// span and accumulates engine counters across the per-batch runs.
func TestObsBatchCounters(t *testing.T) {
	g := randomDigraph(80, 240, 64)
	ord := order.Compute(g)
	spans, err := BatchSequence(g.NumVertices(), DefaultBatchParams())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	_, met, err := BuildDistributedBatch(g, ord, DefaultBatchParams(), DistOptions{Workers: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("drl_batches_total"); got != int64(len(spans)) {
		t.Errorf("drl_batches_total = %d, want %d", got, len(spans))
	}
	if got := reg.CounterValue("pregel_messages_total"); got != met.Messages {
		t.Errorf("pregel_messages_total = %d, metrics say %d", got, met.Messages)
	}
	if got := reg.CounterValue("pregel_supersteps_total"); got != int64(met.Supersteps) {
		t.Errorf("pregel_supersteps_total = %d, metrics say %d", got, met.Supersteps)
	}

	// Shared-memory DRL_b^M reports the same batch structure plus its
	// trimmed-BFS activity.
	regM := obs.New()
	if _, err := BuildBatch(g, ord, DefaultBatchParams(), Options{Workers: 4, Obs: regM}); err != nil {
		t.Fatal(err)
	}
	if got := regM.CounterValue("drl_batches_total"); got != int64(len(spans)) {
		t.Errorf("shared drl_batches_total = %d, want %d", got, len(spans))
	}
	nBFS := regM.CounterValue("drl_trimmed_bfs_total")
	if nBFS <= 0 || nBFS > 2*int64(g.NumVertices()) {
		t.Errorf("drl_trimmed_bfs_total = %d, want in (0, %d]", nBFS, 2*g.NumVertices())
	}
	if regM.CounterValue("drl_refine_rounds_total") != int64(len(spans)) {
		t.Errorf("drl_refine_rounds_total = %d, want %d",
			regM.CounterValue("drl_refine_rounds_total"), len(spans))
	}
}

// TestDistBatchParamsRejected: invalid batch parameters surface as
// errors from the distributed builder too.
func TestDistBatchParamsRejected(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	if _, _, err := BuildDistributedBatch(g, ord, BatchParams{Factor: 0.2}, DistOptions{Workers: 2}); err == nil {
		t.Error("expected error for factor < 1")
	}
}

package drl

import (
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// BuildNaive computes the index through the raw filtering-and-
// refinement framework of Theorem 2:
//
//	L⁻_in(v) = DES(v) − ∪_{u ∈ DES_hig(v)} DES(u)
//
// with one full BFS for v and one per higher-order descendant. It is
// quadratic in the worst case and exists as the most literal oracle
// against which the optimized variants are verified.
func BuildNaive(g *graph.Digraph, ord *order.Ordering, opt Options) (*label.Index, error) {
	n := g.NumVertices()
	backIn := make([][]graph.VertexID, n)
	backOut := make([][]graph.VertexID, n)
	inv := g.Inverse()

	type scratch struct {
		epoch []int32
		cur   int32
		queue []graph.VertexID
	}
	scratches := make([]*scratch, opt.workers())
	for i := range scratches {
		scratches[i] = &scratch{epoch: make([]int32, n)}
	}

	// eliminate marks DES(u) for every higher-order descendant u of v.
	// A u already marked by an earlier elimination BFS is skipped: its
	// descendants are a subset of the marker's (§III-C).
	eliminate := func(dir *graph.Digraph, s *scratch, des []graph.VertexID, rv order.Rank) {
		s.cur++
		for _, u := range des {
			if ord.RankOf(u) >= rv || s.epoch[u] == s.cur {
				continue // not higher order, or already swept
			}
			// Full BFS from u marking everything it reaches.
			s.queue = s.queue[:0]
			s.queue = append(s.queue, u)
			s.epoch[u] = s.cur
			for head := 0; head < len(s.queue); head++ {
				x := s.queue[head]
				for _, y := range dir.OutNeighbors(x) {
					if s.epoch[y] != s.cur {
						s.epoch[y] = s.cur
						s.queue = append(s.queue, y)
					}
				}
			}
		}
	}

	run := func(dir *graph.Digraph, back [][]graph.VertexID) error {
		return parallelRanks(0, order.Rank(n), opt.workers(), opt.Cancel, func(wk int, r order.Rank) {
			v := ord.VertexAt(r)
			s := scratches[wk]
			des := graph.Descendants(dir, v)
			eliminate(dir, s, des, r)
			var keep []graph.VertexID
			for _, w := range des {
				if s.epoch[w] != s.cur {
					keep = append(keep, w)
				}
			}
			back[r] = keep
		})
	}
	if err := run(g, backIn); err != nil {
		return nil, err
	}
	if err := run(inv, backOut); err != nil {
		return nil, err
	}
	return label.FromBackward(ord, backIn, backOut), nil
}

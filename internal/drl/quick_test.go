package drl

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/tol"
)

// Quick-checked properties over randomly generated graphs. These are
// shallower than the table-driven equivalence suite but explore far
// more graph shapes.

// TestQuickImprovedEqualsNaive: the refinement shortcut (Theorem 4)
// agrees with the literal framework (Theorem 2) on arbitrary graphs.
func TestQuickImprovedEqualsNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 14
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(raw[i] % n),
				V: graph.VertexID(raw[i+1] % n),
			})
		}
		g := graph.FromEdges(n, edges)
		ord := order.Compute(g)
		naive, err := BuildNaive(g, ord, Options{Workers: 1})
		if err != nil {
			return false
		}
		improved, err := BuildImproved(g, ord, Options{Workers: 1})
		if err != nil {
			return false
		}
		return naive.Equal(improved)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBatchCoverConstraint: Definition 3 holds for DRL_b on
// arbitrary graphs — the index answers exactly like BFS.
func TestQuickBatchCoverConstraint(t *testing.T) {
	f := func(raw []uint16, b uint8) bool {
		const n = 12
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(raw[i] % n),
				V: graph.VertexID(raw[i+1] % n),
			})
		}
		g := graph.FromEdges(n, edges)
		ord := order.Compute(g)
		idx, err := BuildBatch(g, ord, BatchParams{InitialSize: int(b%5) + 1, Factor: 2}, Options{Workers: 1})
		if err != nil {
			return false
		}
		for s := graph.VertexID(0); int(s) < n; s++ {
			for d := graph.VertexID(0); int(d) < n; d++ {
				if idx.Reachable(s, d) != graph.Reachable(g, s, d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDistributedEqualsTOL: the vertex-centric DRL agrees with
// TOL under quick-generated graphs and worker counts.
func TestQuickDistributedEqualsTOL(t *testing.T) {
	f := func(raw []uint16, p uint8) bool {
		const n = 12
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(raw[i] % n),
				V: graph.VertexID(raw[i+1] % n),
			})
		}
		g := graph.FromEdges(n, edges)
		ord := order.Compute(g)
		want := tol.Build(g, ord)
		got, _, err := BuildDistributed(g, ord, DistOptions{Workers: int(p%6) + 1})
		if err != nil {
			return false
		}
		return want.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

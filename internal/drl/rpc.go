package drl

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/pregel"
)

// RPC deployment: the DRL and DRL_b programs registered for the
// multi-process transport (cmd/drworker + cmd/drcluster). Each worker
// process loads the graph from shared storage, computes the (fully
// deterministic) vertex order locally, and keeps its own replica of
// the broadcast state — exactly the paper's deployment model, with
// net/rpc over TCP standing in for MPI.

func init() {
	pregel.RegisterRPC("drl", pregel.RPCFactory{
		New: func(params map[string]string, w *pregel.Worker) (pregel.Program, error) {
			ord := order.Compute(w.Graph)
			return &distProgram{shared: &distShared{
				ord:     ord,
				ibfsFwd: make(map[graph.VertexID][]order.Rank),
				ibfsBwd: make(map[graph.VertexID][]order.Rank),
			}}, nil
		},
		Collect: collectDist,
	})
	pregel.RegisterRPC("drl-batch", pregel.RPCFactory{
		New: func(params map[string]string, w *pregel.Worker) (pregel.Program, error) {
			bp, batch, err := parseBatchParams(params)
			if err != nil {
				return nil, err
			}
			spans, err := BatchSequence(w.Graph.NumVertices(), bp)
			if err != nil {
				return nil, err
			}
			if batch < 0 || batch >= len(spans) {
				return nil, fmt.Errorf("drl: batch %d out of range (%d batches)", batch, len(spans))
			}
			ord := order.Compute(w.Graph)
			return &batchProgram{shared: newBatchShared(ord, spans[batch])}, nil
		},
		Collect: collectBatch,
	})
}

func parseBatchParams(params map[string]string) (BatchParams, int, error) {
	bp := DefaultBatchParams()
	if s, ok := params["b"]; ok {
		v, err := strconv.Atoi(s)
		if err != nil {
			return bp, 0, fmt.Errorf("drl: bad batch size %q: %w", s, err)
		}
		bp.InitialSize = v
	}
	if s, ok := params["k"]; ok {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return bp, 0, fmt.Errorf("drl: bad batch factor %q: %w", s, err)
		}
		bp.Factor = v
	}
	batch, err := strconv.Atoi(params["batch"])
	if err != nil {
		return bp, 0, fmt.Errorf("drl: bad batch index %q: %w", params["batch"], err)
	}
	return bp, batch, nil
}

// Result blob format: repeated records of
// (vertex u32, nIn u32, nOut u32, inRanks..., outRanks...), ranks as
// u32 each.

func appendResult(blob []byte, v graph.VertexID, in, out []order.Rank) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(v))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(in)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(out)))
	blob = append(blob, hdr[:]...)
	var rec [4]byte
	for _, r := range in {
		binary.LittleEndian.PutUint32(rec[:], uint32(r))
		blob = append(blob, rec[:]...)
	}
	for _, r := range out {
		binary.LittleEndian.PutUint32(rec[:], uint32(r))
		blob = append(blob, rec[:]...)
	}
	return blob
}

func collectDist(w *pregel.Worker) ([]byte, error) {
	local, ok := w.State.(*distLocal)
	if !ok {
		return nil, fmt.Errorf("drl: worker %d holds no DRL state", w.ID)
	}
	var blob []byte
	w.OwnedVertices(func(v graph.VertexID) {
		blob = appendResult(blob, v, local.resIn[v], local.resOut[v])
	})
	return blob, nil
}

func collectBatch(w *pregel.Worker) ([]byte, error) {
	local, ok := w.State.(*batchLocal)
	if !ok {
		return nil, fmt.Errorf("drl: worker %d holds no DRL_b state", w.ID)
	}
	var blob []byte
	w.OwnedVertices(func(v graph.VertexID) {
		blob = appendResult(blob, v, local.in[v], local.out[v])
	})
	return blob, nil
}

func decodeResults(blobs [][]byte, n int) (in, out [][]order.Rank, err error) {
	in = make([][]order.Rank, n)
	out = make([][]order.Rank, n)
	for _, blob := range blobs {
		for len(blob) > 0 {
			if len(blob) < 12 {
				return nil, nil, fmt.Errorf("drl: truncated result blob")
			}
			v := graph.VertexID(binary.LittleEndian.Uint32(blob[0:4]))
			nIn := int(binary.LittleEndian.Uint32(blob[4:8]))
			nOut := int(binary.LittleEndian.Uint32(blob[8:12]))
			blob = blob[12:]
			if int(v) >= n || len(blob) < 4*(nIn+nOut) {
				return nil, nil, fmt.Errorf("drl: corrupt result blob")
			}
			ranks := func(k int) []order.Rank {
				rs := make([]order.Rank, k)
				for i := 0; i < k; i++ {
					rs[i] = order.Rank(binary.LittleEndian.Uint32(blob[4*i:]))
				}
				blob = blob[4*k:]
				return rs
			}
			in[v] = ranks(nIn)
			out[v] = ranks(nOut)
		}
	}
	return in, out, nil
}

// ClusterOptions tunes the fault handling of the RPC builders. The
// zero value uses pregel's defaults: per-call deadlines with bounded
// exponential-backoff retries, checkpoints at run boundaries only.
type ClusterOptions struct {
	// Retry bounds per-call deadlines and retries.
	Retry pregel.RetryPolicy
	// CheckpointEvery additionally snapshots worker state every k
	// supersteps (0 = run-boundary checkpoints only).
	CheckpointEvery int
	// Dial overrides the transport dialer (tests inject faults here).
	Dial pregel.Dialer
	// Net charges simulated wire time for checkpoint traffic.
	Net netsim.Model
	// Obs receives master-side counters and the superstep trace
	// (nil = off).
	Obs *obs.Registry
}

func (o ClusterOptions) masterConfig() pregel.MasterConfig {
	return pregel.MasterConfig{
		Retry:           o.Retry,
		CheckpointEvery: o.CheckpointEvery,
		Dial:            o.Dial,
		Net:             o.Net,
		Obs:             o.Obs,
	}
}

// BuildOverRPC runs DRL (Algorithm 3) on a cluster of worker
// processes reachable at addrs; graphPath must be readable by every
// worker and the master.
func BuildOverRPC(addrs []string, graphPath string) (*label.Index, pregel.Metrics, error) {
	return BuildOverRPCOpts(addrs, graphPath, ClusterOptions{})
}

// BuildOverRPCOpts is BuildOverRPC with explicit fault-handling
// options.
func BuildOverRPCOpts(addrs []string, graphPath string, copt ClusterOptions) (*label.Index, pregel.Metrics, error) {
	g, err := graph.LoadFile(graphPath)
	if err != nil {
		return nil, pregel.Metrics{}, err
	}
	ord := order.Compute(g)
	m, err := pregel.DialClusterOpts(addrs, graphPath, copt.masterConfig())
	if err != nil {
		return nil, pregel.Metrics{}, err
	}
	defer m.Close()
	if err := m.Run("drl", nil, 0); err != nil {
		return nil, m.Metrics, err
	}
	blobs, err := m.Collect()
	if err != nil {
		return nil, m.Metrics, err
	}
	in, out, err := decodeResults(blobs, g.NumVertices())
	if err != nil {
		return nil, m.Metrics, err
	}
	return label.FromLists(ord, in, out), m.Metrics, nil
}

// BuildBatchOverRPC runs DRL_b (Algorithm 4) on a cluster of worker
// processes: one coordinated run per batch, then a final gather.
func BuildBatchOverRPC(addrs []string, graphPath string, bp BatchParams) (*label.Index, pregel.Metrics, error) {
	return BuildBatchOverRPCOpts(addrs, graphPath, bp, ClusterOptions{})
}

// BuildBatchOverRPCOpts is BuildBatchOverRPC with explicit
// fault-handling options.
func BuildBatchOverRPCOpts(addrs []string, graphPath string, bp BatchParams, copt ClusterOptions) (*label.Index, pregel.Metrics, error) {
	g, err := graph.LoadFile(graphPath)
	if err != nil {
		return nil, pregel.Metrics{}, err
	}
	ord := order.Compute(g)
	spans, err := BatchSequence(g.NumVertices(), bp)
	if err != nil {
		return nil, pregel.Metrics{}, err
	}
	m, err := pregel.DialClusterOpts(addrs, graphPath, copt.masterConfig())
	if err != nil {
		return nil, pregel.Metrics{}, err
	}
	defer m.Close()
	bpNorm, _ := bp.normalized()
	for i := range spans {
		params := map[string]string{
			"b":     strconv.Itoa(bpNorm.InitialSize),
			"k":     strconv.FormatFloat(bpNorm.Factor, 'g', -1, 64),
			"batch": strconv.Itoa(i),
		}
		if err := m.Run("drl-batch", params, 0); err != nil {
			return nil, m.Metrics, err
		}
	}
	blobs, err := m.Collect()
	if err != nil {
		return nil, m.Metrics, err
	}
	in, out, err := decodeResults(blobs, g.NumVertices())
	if err != nil {
		return nil, m.Metrics, err
	}
	return label.FromLists(ord, in, out), m.Metrics, nil
}

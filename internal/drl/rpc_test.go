package drl

import (
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pregel"
	"repro/internal/tol"
)

// startWorkers launches in-process RPC worker servers on ephemeral
// localhost ports — the same code path cmd/drworker serves, without
// fork/exec.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ready := make(chan string, 1)
		//lint:ignore goleak test worker serves until the process exits; ready (sent inside pregel.ServeWorker) is the only handshake it needs
		go func() {
			if err := pregel.ServeWorker("127.0.0.1:0", ready); err != nil {
				// The listener dies when the test process exits.
				t.Log(err)
			}
		}()
		addrs[i] = <-ready
	}
	return addrs
}

// TestRPCClusterMatchesTOL runs DRL and DRL_b across a real TCP
// net/rpc cluster and verifies both reproduce TOL's index.
func TestRPCClusterMatchesTOL(t *testing.T) {
	g := randomDigraph(60, 170, 21)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	ord := order.Compute(g)
	want := tol.Build(g, ord)

	addrs := startWorkers(t, 3)

	got, met, err := BuildBatchOverRPC(addrs, path, DefaultBatchParams())
	if err != nil {
		t.Fatalf("DRL_b over RPC: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("DRL_b over RPC differs from TOL: %s", want.Diff(got))
	}
	if met.Supersteps == 0 || met.BytesRemote == 0 {
		t.Errorf("suspicious metrics: %+v", met)
	}

	// A fresh cluster for DRL (worker state is per-job).
	addrs = startWorkers(t, 4)
	got, _, err = BuildOverRPC(addrs, path)
	if err != nil {
		t.Fatalf("DRL over RPC: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("DRL over RPC differs from TOL: %s", want.Diff(got))
	}
}

// TestRPCPaperExample runs the running-example graph through the RPC
// cluster end to end, checking queries against the BFS oracle.
func TestRPCPaperExample(t *testing.T) {
	g := graph.PaperExample()
	path := filepath.Join(t.TempDir(), "g.el")
	if err := graph.SaveFile(path, g, false); err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, 2)
	idx, _, err := BuildBatchOverRPC(addrs, path, DefaultBatchParams())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.NumVertices(); s++ {
		for d := 0; d < g.NumVertices(); d++ {
			want := graph.Reachable(g, graph.VertexID(s), graph.VertexID(d))
			if got := idx.Reachable(graph.VertexID(s), graph.VertexID(d)); got != want {
				t.Fatalf("q(%d,%d) = %v, want %v", s, d, got, want)
			}
		}
	}
}

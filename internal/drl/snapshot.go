package drl

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pregel"
)

// Superstep-checkpoint state serialization (pregel.Snapshotter) for
// the RPC-deployed programs. The encoding reuses the rank-list record
// layout of the collect blobs and the on-disk index (internal/label):
// little-endian u32 headers followed by u32 ranks, here grouped into
// sections. Persistent state (what survives engine runs — the
// accumulated batch labels) comes first so a run-boundary restore can
// stop after it; per-run state (visit status, inverted-list replicas)
// follows.

const (
	snapVersion   = 1
	snapKindDist  = 'd'
	snapKindBatch = 'b'
)

func appendU32(blob []byte, v uint32) []byte {
	var rec [4]byte
	binary.LittleEndian.PutUint32(rec[:], v)
	return append(blob, rec[:]...)
}

func readU32(blob []byte) (uint32, []byte, error) {
	if len(blob) < 4 {
		return 0, nil, fmt.Errorf("drl: truncated state blob")
	}
	return binary.LittleEndian.Uint32(blob[:4]), blob[4:], nil
}

// appendPairMap encodes two vertex→ranks maps over the union of
// their keys as (count, then per key: vertex, lenA, lenB, ranks...)
// records — the same record shape as the collect blobs. Keys are
// sorted so checkpoints of identical state are byte-identical.
func appendPairMap(blob []byte, a, b map[graph.VertexID][]order.Rank) []byte {
	keys := make([]graph.VertexID, 0, len(a)+len(b))
	for v := range a {
		keys = append(keys, v)
	}
	for v := range b {
		if _, ok := a[v]; !ok {
			keys = append(keys, v)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	blob = appendU32(blob, uint32(len(keys)))
	for _, v := range keys {
		blob = appendResult(blob, v, a[v], b[v])
	}
	return blob
}

func readPairMap(blob []byte) (a, b map[graph.VertexID][]order.Rank, rest []byte, err error) {
	count, blob, err := readU32(blob)
	if err != nil {
		return nil, nil, nil, err
	}
	a = make(map[graph.VertexID][]order.Rank, count)
	b = make(map[graph.VertexID][]order.Rank, count)
	for k := uint32(0); k < count; k++ {
		if len(blob) < 12 {
			return nil, nil, nil, fmt.Errorf("drl: truncated state record")
		}
		v := graph.VertexID(binary.LittleEndian.Uint32(blob[0:4]))
		nA := int(binary.LittleEndian.Uint32(blob[4:8]))
		nB := int(binary.LittleEndian.Uint32(blob[8:12]))
		blob = blob[12:]
		if len(blob) < 4*(nA+nB) {
			return nil, nil, nil, fmt.Errorf("drl: truncated state record")
		}
		take := func(n int) []order.Rank {
			if n == 0 {
				return nil
			}
			rs := make([]order.Rank, n)
			for i := 0; i < n; i++ {
				rs[i] = order.Rank(binary.LittleEndian.Uint32(blob[4*i:]))
			}
			blob = blob[4*n:]
			return rs
		}
		if rs := take(nA); rs != nil {
			a[v] = rs
		}
		if rs := take(nB); rs != nil {
			b[v] = rs
		}
	}
	return a, b, blob, nil
}

// appendSeen encodes a visit-status set as a sorted u64 list.
func appendSeen(blob []byte, seen map[uint64]struct{}) []byte {
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	blob = appendU32(blob, uint32(len(keys)))
	var rec [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(rec[:], k)
		blob = append(blob, rec[:]...)
	}
	return blob
}

func readSeen(blob []byte) (map[uint64]struct{}, []byte, error) {
	count, blob, err := readU32(blob)
	if err != nil {
		return nil, nil, err
	}
	if len(blob) < 8*int(count) {
		return nil, nil, fmt.Errorf("drl: truncated visit-status section")
	}
	seen := make(map[uint64]struct{}, count)
	for k := uint32(0); k < count; k++ {
		seen[binary.LittleEndian.Uint64(blob[:8])] = struct{}{}
		blob = blob[8:]
	}
	return seen, blob, nil
}

func checkSnapHeader(blob []byte, kind byte) ([]byte, error) {
	if len(blob) < 2 {
		return nil, fmt.Errorf("drl: state blob too short")
	}
	if blob[0] != snapVersion {
		return nil, fmt.Errorf("drl: unknown state version %d", blob[0])
	}
	if blob[1] != kind {
		return nil, fmt.Errorf("drl: state blob kind %q, want %q", blob[1], kind)
	}
	return blob[2:], nil
}

// EncodeState serializes DRL's recoverable state: the worker-local
// visit status, candidate lists, and cleaned results, plus this
// worker's replica of the inverted lists. DRL has no cross-run
// persistent state (one engine run per job).
func (p *distProgram) EncodeState(w *pregel.Worker) ([]byte, error) {
	blob := []byte{snapVersion, snapKindDist}
	local, _ := w.State.(*distLocal)
	if local == nil {
		blob = append(blob, 0)
	} else {
		blob = append(blob, 1)
		blob = appendSeen(blob, local.seen)
		blob = appendPairMap(blob, local.listFwd, local.listBwd)
		blob = appendPairMap(blob, local.resIn, local.resOut)
	}
	blob = appendPairMap(blob, p.shared.ibfsFwd, p.shared.ibfsBwd)
	return blob, nil
}

// DecodeState restores the blob, replacing all current state. A
// cross-run restore resets to empty: DRL runs once per job, so a
// previous run's state never carries over.
func (p *distProgram) DecodeState(w *pregel.Worker, blob []byte, sameRun bool) error {
	if !sameRun {
		w.State = nil
		p.shared.ibfsFwd = make(map[graph.VertexID][]order.Rank)
		p.shared.ibfsBwd = make(map[graph.VertexID][]order.Rank)
		return nil
	}
	blob, err := checkSnapHeader(blob, snapKindDist)
	if err != nil {
		return err
	}
	if len(blob) < 1 {
		return fmt.Errorf("drl: state blob too short")
	}
	hasLocal := blob[0] == 1
	blob = blob[1:]
	if !hasLocal {
		w.State = nil
	} else {
		local := newDistLocal()
		if local.seen, blob, err = readSeen(blob); err != nil {
			return err
		}
		if local.listFwd, local.listBwd, blob, err = readPairMap(blob); err != nil {
			return err
		}
		if local.resIn, local.resOut, blob, err = readPairMap(blob); err != nil {
			return err
		}
		w.State = local
	}
	if p.shared.ibfsFwd, p.shared.ibfsBwd, _, err = readPairMap(blob); err != nil {
		return err
	}
	return nil
}

// EncodeState serializes DRL_b's recoverable state. Persistent
// section: the label lists accumulated across batches. Per-run
// section: the in-batch visit status and candidate lists, the batch
// sources' shared prior labels, and the inverted-list replica.
func (p *batchProgram) EncodeState(w *pregel.Worker) ([]byte, error) {
	blob := []byte{snapVersion, snapKindBatch}
	local, _ := w.State.(*batchLocal)
	if local == nil {
		blob = append(blob, 0)
	} else {
		blob = append(blob, 1)
		blob = appendPairMap(blob, local.in, local.out)
		blob = appendSeen(blob, local.seen)
		blob = appendPairMap(blob, local.listFwd, local.listBwd)
	}
	blob = appendPairMap(blob, p.shared.srcOut, p.shared.srcIn)
	blob = appendPairMap(blob, p.shared.ibfsFwd, p.shared.ibfsBwd)
	return blob, nil
}

// DecodeState restores the blob. A run-boundary restore (sameRun
// false — the blob is the previous batch's post-finish snapshot onto
// this batch's fresh program) applies only the accumulated labels and
// leaves the per-run state empty, exactly as a fresh BeginRun would.
func (p *batchProgram) DecodeState(w *pregel.Worker, blob []byte, sameRun bool) error {
	blob, err := checkSnapHeader(blob, snapKindBatch)
	if err != nil {
		return err
	}
	if len(blob) < 1 {
		return fmt.Errorf("drl: state blob too short")
	}
	hasLocal := blob[0] == 1
	blob = blob[1:]
	if !hasLocal {
		w.State = nil
		return nil
	}
	local := &batchLocal{}
	if local.in, local.out, blob, err = readPairMap(blob); err != nil {
		return err
	}
	if sameRun {
		if local.seen, blob, err = readSeen(blob); err != nil {
			return err
		}
		if local.listFwd, local.listBwd, blob, err = readPairMap(blob); err != nil {
			return err
		}
		if p.shared.srcOut, p.shared.srcIn, blob, err = readPairMap(blob); err != nil {
			return err
		}
		if p.shared.ibfsFwd, p.shared.ibfsBwd, _, err = readPairMap(blob); err != nil {
			return err
		}
	}
	w.State = local
	return nil
}

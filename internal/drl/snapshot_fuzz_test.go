package drl

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/pregel"
)

// FuzzSnapshotRoundTrip drives arbitrary state shapes through the
// checkpoint codecs and checks two properties on every input:
//
//  1. Round trip: decode(encode(state)) reproduces the state exactly.
//  2. Canonical form: re-encoding the decoded state is byte-identical
//     to the first encoding — the property superstep checkpointing
//     leans on, since a restore followed by a checkpoint must not
//     produce a spuriously "different" blob.
//
// The section codecs (appendSeen/readSeen, appendPairMap/readPairMap)
// are checked in isolation and then composed through the distProgram
// EncodeState/DecodeState pair.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, shape uint8) {
		// Derive a visit-status set and a pair of vertex→ranks maps
		// from the fuzz input. Duplicate ranks per vertex and keys
		// present in only one map are all legal states.
		seen := map[uint64]struct{}{}
		fwd := map[graph.VertexID][]order.Rank{}
		bwd := map[graph.VertexID][]order.Rank{}
		for i := 0; i+8 <= len(data); i += 8 {
			k := binary.LittleEndian.Uint64(data[i:])
			seen[k] = struct{}{}
			v := graph.VertexID(uint32(k) % 1024)
			r := order.Rank(uint32(k>>32) % 1024)
			switch (int(shape) + i/8) % 3 {
			case 0:
				fwd[v] = append(fwd[v], r)
			case 1:
				bwd[v] = append(bwd[v], r)
			default:
				fwd[v] = append(fwd[v], r)
				bwd[v] = append(bwd[v], r)
			}
		}

		// Visit-status section.
		sb := appendSeen(nil, seen)
		gotSeen, rest, err := readSeen(sb)
		if err != nil {
			t.Fatalf("readSeen: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("readSeen left %d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(gotSeen, seen) {
			t.Fatalf("seen set changed across round trip: %d keys in, %d out", len(seen), len(gotSeen))
		}
		if sb2 := appendSeen(nil, gotSeen); !bytes.Equal(sb, sb2) {
			t.Fatal("re-encoding the decoded seen set is not byte-identical")
		}

		// Label/pair-map section.
		pb := appendPairMap(nil, fwd, bwd)
		gotFwd, gotBwd, rest, err := readPairMap(pb)
		if err != nil {
			t.Fatalf("readPairMap: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("readPairMap left %d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(gotFwd, fwd) || !reflect.DeepEqual(gotBwd, bwd) {
			t.Fatal("pair maps changed across round trip")
		}
		if pb2 := appendPairMap(nil, gotFwd, gotBwd); !bytes.Equal(pb, pb2) {
			t.Fatal("re-encoding the decoded pair maps is not byte-identical")
		}

		// Whole-checkpoint composition: a distProgram state built from
		// the same material, encoded, restored into a fresh program,
		// and encoded again must reproduce the first blob exactly.
		local := newDistLocal()
		local.seen = seen
		local.listFwd = fwd
		local.listBwd = bwd
		local.resIn = gotFwd
		local.resOut = gotBwd
		w := &pregel.Worker{State: local}
		p1 := &distProgram{shared: &distShared{ibfsFwd: fwd, ibfsBwd: bwd}}
		blob, err := p1.EncodeState(w)
		if err != nil {
			t.Fatalf("EncodeState: %v", err)
		}

		p2 := &distProgram{shared: &distShared{
			ibfsFwd: map[graph.VertexID][]order.Rank{},
			ibfsBwd: map[graph.VertexID][]order.Rank{},
		}}
		w2 := &pregel.Worker{}
		if err := p2.DecodeState(w2, blob, true); err != nil {
			t.Fatalf("DecodeState: %v", err)
		}
		blob2, err := p2.EncodeState(w2)
		if err != nil {
			t.Fatalf("re-EncodeState: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("checkpoint not byte-stable across restore: %d bytes then %d bytes", len(blob), len(blob2))
		}
	})
}

// FuzzSnapshotDecodeArbitrary feeds raw bytes to the checkpoint
// decoder: it must reject or accept without panicking, and any
// accepted blob must re-encode to a decode-equivalent state (the
// decoder never fabricates state it cannot round-trip).
func FuzzSnapshotDecodeArbitrary(f *testing.F) {
	f.Add([]byte{snapVersion, snapKindDist, 0})
	f.Add([]byte{snapVersion, snapKindDist, 1, 0, 0, 0, 0})
	f.Add([]byte{snapVersion, snapKindBatch, 1})
	f.Fuzz(func(t *testing.T, blob []byte) {
		p := &distProgram{shared: &distShared{
			ibfsFwd: map[graph.VertexID][]order.Rank{},
			ibfsBwd: map[graph.VertexID][]order.Rank{},
		}}
		w := &pregel.Worker{}
		if err := p.DecodeState(w, blob, true); err != nil {
			return // rejected cleanly
		}
		re, err := p.EncodeState(w)
		if err != nil {
			t.Fatalf("EncodeState after accepting decode: %v", err)
		}
		p2 := &distProgram{shared: &distShared{
			ibfsFwd: map[graph.VertexID][]order.Rank{},
			ibfsBwd: map[graph.VertexID][]order.Rank{},
		}}
		w2 := &pregel.Worker{}
		if err := p2.DecodeState(w2, re, true); err != nil {
			t.Fatalf("decoder rejected its own re-encoding: %v", err)
		}
		re2, err := p2.EncodeState(w2)
		if err != nil {
			t.Fatalf("re-EncodeState: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("re-encoded checkpoint is not a fixed point of decode∘encode")
		}
	})
}

package drl

import (
	"bytes"
	"testing"

	"repro/internal/order"
	"repro/internal/tol"
)

// TestSharedBatchRaceStress hammers the shared-memory parallel DRL_b^M
// across worker counts and repetitions. Under -race this is the data
// race detector's workout for parallelRanks and the per-worker scratch
// tables; functionally every build must serialize byte-identically to
// the serial TOL index (not just Equal — the exact on-disk artifact).
func TestSharedBatchRaceStress(t *testing.T) {
	g := randomDigraph(150, 600, 91)
	ord := order.Compute(g)
	want := tol.Build(g, ord)
	var wantBytes bytes.Buffer
	if _, err := want.WriteTo(&wantBytes); err != nil {
		t.Fatal(err)
	}
	reps := 3
	if testing.Short() {
		reps = 1
	}
	for _, p := range []int{1, 2, 4, 8} {
		for rep := 0; rep < reps; rep++ {
			idx, err := BuildBatch(g, ord, DefaultBatchParams(), Options{Workers: p})
			if err != nil {
				t.Fatalf("p=%d rep=%d: %v", p, rep, err)
			}
			var got bytes.Buffer
			if _, err := idx.WriteTo(&got); err != nil {
				t.Fatalf("p=%d rep=%d: %v", p, rep, err)
			}
			if !bytes.Equal(wantBytes.Bytes(), got.Bytes()) {
				t.Fatalf("p=%d rep=%d: index bytes differ from serial TOL", p, rep)
			}
		}
	}
}

// TestImprovedRaceStress is the same workout for the improved method's
// filter/refine phases.
func TestImprovedRaceStress(t *testing.T) {
	g := randomDigraph(120, 480, 92)
	ord := order.Compute(g)
	want := tol.Build(g, ord)
	for _, p := range []int{1, 2, 4, 8} {
		idx, err := BuildImproved(g, ord, Options{Workers: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !want.Equal(idx) {
			t.Fatalf("p=%d: index differs from TOL: %s", p, want.Diff(idx))
		}
	}
}

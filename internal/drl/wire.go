package drl

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/order"
)

// Broadcast blob wire format. The DRL programs broadcast three blob
// families — visit events (inverted-list feed), hig pairs (DRL⁻ phase
// B), and batch label shares (Algorithm 4 line 8) — and at P workers
// every blob byte is charged (P−1)× to BytesRemote, so these blobs
// dominate the build's communication volume. They get the same
// treatment as the point-to-point message codec (DESIGN.md §9):
//
//	event blob := tag(1) version(1) uvarint(count) pair*
//	pair       := uvarint(dv) uvarint(dv>0 ? r : dr)
//
//	label blob := tag(1) version(1) uvarint(count) share*
//	share      := uvarint(dv) uvarint(nOut) uvarint(nIn)
//	              rankDeltas[nOut] rankDeltas[nIn]
//
// Pairs are sorted by (vertex, rank); dv is the vertex gap to the
// previous pair and the rank is delta-encoded within a vertex run.
// Label shares are sorted by vertex and each rank list is strictly
// increasing (the label-list invariant), so rankDeltas encodes the
// first rank absolute and then the positive gaps. Decoding is strict:
// a version mismatch, truncated record, or ragged tail is a hard
// error that PreStep propagates through both transports — the v1
// decoders silently ignored trailing garbage.

// blobVersion is the broadcast-blob version byte (after the tag).
const blobVersion = 0x01

// visitEvent is one (vertex, rank) inverted-list entry in flight.
type visitEvent struct {
	v graph.VertexID
	r order.Rank
}

// encodeEventBlob serializes events under tag, sorting evs in place by
// (vertex, rank). Returns nil for an empty event set so callers can
// skip the broadcast entirely.
func encodeEventBlob(tag uint8, evs []visitEvent) []byte {
	if len(evs) == 0 {
		return nil
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].v != evs[j].v {
			return evs[i].v < evs[j].v
		}
		return evs[i].r < evs[j].r
	})
	blob := make([]byte, 0, 3+3*len(evs))
	blob = append(blob, tag, blobVersion)
	blob = binary.AppendUvarint(blob, uint64(len(evs)))
	prevV, prevR := int64(0), int64(0)
	for _, e := range evs {
		dv := int64(e.v) - prevV
		blob = binary.AppendUvarint(blob, uint64(dv))
		if dv > 0 {
			blob = binary.AppendUvarint(blob, uint64(e.r))
		} else {
			blob = binary.AppendUvarint(blob, uint64(int64(e.r)-prevR))
		}
		prevV, prevR = int64(e.v), int64(e.r)
	}
	return blob
}

// decodeEventPairs walks an event blob's payload (everything after the
// tag byte) and hands each (vertex, rank) pair to fn.
func decodeEventPairs(payload []byte, fn func(graph.VertexID, order.Rank)) error {
	if len(payload) == 0 || payload[0] != blobVersion {
		return fmt.Errorf("drl: unsupported event-blob version")
	}
	rest := payload[1:]
	count, k := binary.Uvarint(rest)
	if k <= 0 || count > uint64(len(rest)) {
		return fmt.Errorf("drl: corrupt event blob: bad pair count")
	}
	rest = rest[k:]
	prevV, prevR := int64(0), int64(0)
	for i := uint64(0); i < count; i++ {
		dv, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("drl: ragged event blob: pair %d/%d truncated", i, count)
		}
		rest = rest[k:]
		rv, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("drl: ragged event blob: pair %d/%d truncated in rank", i, count)
		}
		rest = rest[k:]
		if dv > math.MaxInt32 || rv > math.MaxInt32 {
			return fmt.Errorf("drl: corrupt event blob: pair %d out of range", i)
		}
		v := prevV + int64(dv)
		r := int64(rv)
		if dv == 0 {
			r += prevR
		}
		if v > math.MaxInt32 || r > math.MaxInt32 {
			return fmt.Errorf("drl: corrupt event blob: pair %d out of range", i)
		}
		fn(graph.VertexID(v), order.Rank(r))
		prevV, prevR = v, r
	}
	if len(rest) != 0 {
		return fmt.Errorf("drl: ragged event blob: %d trailing bytes after %d pairs", len(rest), count)
	}
	return nil
}

// labelShare is one batch source's prior labels (Algorithm 4 line 8).
type labelShare struct {
	v   graph.VertexID
	out []order.Rank
	in  []order.Rank
}

// appendRankDeltas encodes a strictly increasing rank list as first
// rank absolute, then gaps.
func appendRankDeltas(blob []byte, rs []order.Rank) []byte {
	prev := int64(0)
	for i, r := range rs {
		if i == 0 {
			blob = binary.AppendUvarint(blob, uint64(r))
		} else {
			blob = binary.AppendUvarint(blob, uint64(int64(r)-prev))
		}
		prev = int64(r)
	}
	return blob
}

func readRankDeltas(rest []byte, n int) ([]order.Rank, []byte, error) {
	rs := make([]order.Rank, 0, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, nil, fmt.Errorf("drl: ragged label blob: rank %d/%d truncated", i, n)
		}
		rest = rest[k:]
		if d > math.MaxInt32 {
			return nil, nil, fmt.Errorf("drl: corrupt label blob: rank out of range")
		}
		r := int64(d)
		if i > 0 {
			r += prev
		}
		if r > math.MaxInt32 {
			return nil, nil, fmt.Errorf("drl: corrupt label blob: rank out of range")
		}
		rs = append(rs, order.Rank(r))
		prev = r
	}
	return rs, rest, nil
}

// encodeLabelBlob serializes the batch sources' label shares, sorted
// by vertex. Returns nil when there is nothing to share.
func encodeLabelBlob(shares []labelShare) []byte {
	if len(shares) == 0 {
		return nil
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].v < shares[j].v })
	blob := []byte{blobLabels, blobVersion}
	blob = binary.AppendUvarint(blob, uint64(len(shares)))
	prevV := int64(0)
	for _, s := range shares {
		blob = binary.AppendUvarint(blob, uint64(int64(s.v)-prevV))
		prevV = int64(s.v)
		blob = binary.AppendUvarint(blob, uint64(len(s.out)))
		blob = binary.AppendUvarint(blob, uint64(len(s.in)))
		blob = appendRankDeltas(blob, s.out)
		blob = appendRankDeltas(blob, s.in)
	}
	return blob
}

// decodeLabelShares walks a label blob's payload (after the tag byte)
// and hands each share to fn.
func decodeLabelShares(payload []byte, fn func(v graph.VertexID, out, in []order.Rank)) error {
	if len(payload) == 0 || payload[0] != blobVersion {
		return fmt.Errorf("drl: unsupported label-blob version")
	}
	rest := payload[1:]
	count, k := binary.Uvarint(rest)
	if k <= 0 || count > uint64(len(rest)) {
		return fmt.Errorf("drl: corrupt label blob: bad share count")
	}
	rest = rest[k:]
	prevV := int64(0)
	for i := uint64(0); i < count; i++ {
		dv, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("drl: ragged label blob: share %d/%d truncated", i, count)
		}
		rest = rest[k:]
		if dv > math.MaxInt32 {
			return fmt.Errorf("drl: corrupt label blob: vertex out of range")
		}
		v := prevV + int64(dv)
		if v > math.MaxInt32 {
			return fmt.Errorf("drl: corrupt label blob: vertex out of range")
		}
		prevV = v
		nOut, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("drl: ragged label blob: share %d nOut truncated", i)
		}
		rest = rest[k:]
		nIn, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("drl: ragged label blob: share %d nIn truncated", i)
		}
		rest = rest[k:]
		if nOut+nIn > uint64(len(rest))+2 {
			return fmt.Errorf("drl: corrupt label blob: %d+%d ranks declared in %d bytes", nOut, nIn, len(rest))
		}
		var out, in []order.Rank
		var err error
		if out, rest, err = readRankDeltas(rest, int(nOut)); err != nil {
			return err
		}
		if in, rest, err = readRankDeltas(rest, int(nIn)); err != nil {
			return err
		}
		fn(graph.VertexID(v), out, in)
	}
	if len(rest) != 0 {
		return fmt.Errorf("drl: ragged label blob: %d trailing bytes after %d shares", len(rest), count)
	}
	return nil
}

package drl

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

func TestEventBlobRoundTrip(t *testing.T) {
	if blob := encodeEventBlob(kindFwd, nil); blob != nil {
		t.Errorf("empty event set must encode to nil, got %v", blob)
	}
	evs := []visitEvent{
		{v: 9, r: 2},
		{v: 3, r: 7},
		{v: 3, r: 1},
		{v: 9, r: 11},
	}
	blob := encodeEventBlob(kindBwd, evs)
	if blob[0] != kindBwd {
		t.Fatalf("tag byte = %d, want %d", blob[0], kindBwd)
	}
	var got []visitEvent
	if err := decodeEventPairs(blob[1:], func(v graph.VertexID, r order.Rank) {
		got = append(got, visitEvent{v: v, r: r})
	}); err != nil {
		t.Fatal(err)
	}
	want := []visitEvent{{v: 3, r: 1}, {v: 3, r: 7}, {v: 9, r: 2}, {v: 9, r: 11}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v, want %v", got, want)
	}
	// Canonical: re-encoding the decoded pairs is byte-identical.
	if blob2 := encodeEventBlob(kindBwd, got); !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding the decoded events is not byte-identical")
	}
}

func TestEventBlobRejectsCorrupt(t *testing.T) {
	blob := encodeEventBlob(kindFwd, []visitEvent{{v: 5, r: 3}, {v: 6, r: 1}})
	payload := blob[1:]
	nop := func(graph.VertexID, order.Rank) {}
	if err := decodeEventPairs(nil, nop); err == nil {
		t.Error("empty payload must fail")
	}
	if err := decodeEventPairs([]byte{0x7f}, nop); err == nil {
		t.Error("wrong version byte must fail")
	}
	for cut := 1; cut < len(payload); cut++ {
		if err := decodeEventPairs(payload[:cut], nop); err == nil {
			t.Errorf("truncation to %d bytes silently accepted", cut)
		}
	}
	ragged := append(append([]byte(nil), payload...), 0x01)
	if err := decodeEventPairs(ragged, nop); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestLabelBlobRoundTrip(t *testing.T) {
	if blob := encodeLabelBlob(nil); blob != nil {
		t.Errorf("empty share set must encode to nil, got %v", blob)
	}
	shares := []labelShare{
		{v: 12, out: []order.Rank{0, 4, 9}, in: nil},
		{v: 2, out: nil, in: []order.Rank{3}},
		{v: 30, out: []order.Rank{1}, in: []order.Rank{0, 2}},
	}
	blob := encodeLabelBlob(shares)
	if blob[0] != blobLabels {
		t.Fatalf("tag byte = %d, want %d", blob[0], blobLabels)
	}
	got := map[graph.VertexID][2][]order.Rank{}
	if err := decodeLabelShares(blob[1:], func(v graph.VertexID, out, in []order.Rank) {
		got[v] = [2][]order.Rank{out, in}
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d shares, want 3", len(got))
	}
	check := func(v graph.VertexID, wantOut, wantIn []order.Rank) {
		s, ok := got[v]
		if !ok {
			t.Fatalf("share for vertex %d missing", v)
		}
		if len(s[0]) != len(wantOut) || len(s[1]) != len(wantIn) {
			t.Fatalf("vertex %d: got %v/%v, want %v/%v", v, s[0], s[1], wantOut, wantIn)
		}
		for i := range wantOut {
			if s[0][i] != wantOut[i] {
				t.Errorf("vertex %d out[%d] = %d, want %d", v, i, s[0][i], wantOut[i])
			}
		}
		for i := range wantIn {
			if s[1][i] != wantIn[i] {
				t.Errorf("vertex %d in[%d] = %d, want %d", v, i, s[1][i], wantIn[i])
			}
		}
	}
	check(12, []order.Rank{0, 4, 9}, nil)
	check(2, nil, []order.Rank{3})
	check(30, []order.Rank{1}, []order.Rank{0, 2})
}

func TestLabelBlobRejectsCorrupt(t *testing.T) {
	blob := encodeLabelBlob([]labelShare{{v: 4, out: []order.Rank{1, 5}, in: []order.Rank{2}}})
	payload := blob[1:]
	sink := func(graph.VertexID, []order.Rank, []order.Rank) {}
	if err := decodeLabelShares(nil, sink); err == nil {
		t.Error("empty payload must fail")
	}
	if err := decodeLabelShares([]byte{0x7f}, sink); err == nil {
		t.Error("wrong version byte must fail")
	}
	for cut := 1; cut < len(payload); cut++ {
		if err := decodeLabelShares(payload[:cut], sink); err == nil {
			t.Errorf("truncation to %d bytes silently accepted", cut)
		}
	}
	ragged := append(append([]byte(nil), payload...), 0x00)
	if err := decodeLabelShares(ragged, sink); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// FuzzBlobDecodeArbitrary feeds raw bytes to both blob decoders: they
// must reject or accept without panicking on any input.
func FuzzBlobDecodeArbitrary(f *testing.F) {
	f.Add([]byte{blobVersion, 0x00})
	f.Add(encodeEventBlob(kindFwd, []visitEvent{{v: 1, r: 0}, {v: 1, r: 2}})[1:])
	f.Add(encodeLabelBlob([]labelShare{{v: 3, out: []order.Rank{1}}})[1:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		var evs []visitEvent
		if err := decodeEventPairs(payload, func(v graph.VertexID, r order.Rank) {
			evs = append(evs, visitEvent{v: v, r: r})
		}); err == nil {
			// Accepted event payloads decode to non-decreasing vertex
			// runs by construction of the delta coding; verify the
			// decoder never emits a negative field.
			for _, e := range evs {
				if e.v < 0 || e.r < 0 {
					t.Fatalf("decoder emitted negative field: %+v", e)
				}
			}
		}
		_ = decodeLabelShares(payload, func(v graph.VertexID, out, in []order.Rank) {
			if v < 0 {
				t.Fatalf("decoder emitted negative vertex %d", v)
			}
		})
	})
}

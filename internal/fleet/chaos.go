package fleet

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos is a seeded fault-injecting wrapper around a replica handler,
// the serving-tier sibling of the Pregel FaultTransport: it turns a
// well-behaved replica into one that drops connections, delays
// responses, and answers in 5xx bursts, deterministically per seed.
// The fleet tests wrap real QueryHandlers in it to prove the router's
// retry, health-flap, and drain machinery under misbehavior, and the
// Kill switch simulates a process death (every request aborted, the
// way a killed drserve looks to the router) without tearing down the
// listener — so the same replica can be "restarted" by flipping it
// back.
type Chaos struct {
	next http.Handler
	opts ChaosOptions

	mu    sync.Mutex // guards rng and burst
	rng   *rand.Rand
	burst int // remaining responses of the current 5xx burst

	dead atomic.Bool

	drops  atomic.Int64
	delays atomic.Int64
	fails  atomic.Int64
}

// ChaosOptions configures the injected faults. All rates are
// per-request probabilities in [0, 1]; zero disables that fault.
type ChaosOptions struct {
	// Seed makes the fault schedule deterministic.
	Seed int64
	// DropRate aborts the connection without any response — the
	// client sees a transport error, like a crashed process.
	DropRate float64
	// DelayRate stalls the request by Delay before serving it.
	DelayRate float64
	// Delay is the injected stall (default 5ms).
	Delay time.Duration
	// ErrorRate starts a burst of BurstLen consecutive 503 responses.
	ErrorRate float64
	// BurstLen is the length of one 5xx burst (default 1).
	BurstLen int
	// ExemptHealth spares GET /healthz from injected faults, so the
	// replica misbehaves toward queries while still probing healthy —
	// the nastiest case for the router's retry logic. Kill overrides
	// this: a dead replica fails its probes too.
	ExemptHealth bool
}

// NewChaos wraps next in a fault injector.
func NewChaos(next http.Handler, opts ChaosOptions) *Chaos {
	if opts.Delay <= 0 {
		opts.Delay = 5 * time.Millisecond
	}
	if opts.BurstLen <= 0 {
		opts.BurstLen = 1
	}
	return &Chaos{
		next: next,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Kill marks the replica dead (every request, including health
// probes, aborts at the connection level) or alive again. It models
// kill -9 plus restart on the same address.
func (c *Chaos) Kill(dead bool) { c.dead.Store(dead) }

// Counts reports the injected faults so far.
func (c *Chaos) Counts() (drops, delays, fails int64) {
	return c.drops.Load(), c.delays.Load(), c.fails.Load()
}

// ServeHTTP implements http.Handler with faults injected up front.
func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.dead.Load() {
		c.drops.Add(1)
		panic(http.ErrAbortHandler)
	}
	if c.opts.ExemptHealth && r.Method == http.MethodGet && r.URL.Path == "/healthz" {
		c.next.ServeHTTP(w, r)
		return
	}

	c.mu.Lock()
	if c.burst > 0 {
		c.burst--
		c.mu.Unlock()
		c.fails.Add(1)
		http.Error(w, "injected fault: unavailable", http.StatusServiceUnavailable)
		return
	}
	roll := c.rng.Float64()
	drop := roll < c.opts.DropRate
	roll = c.rng.Float64()
	delay := roll < c.opts.DelayRate
	roll = c.rng.Float64()
	if roll < c.opts.ErrorRate {
		c.burst = c.opts.BurstLen - 1
		c.mu.Unlock()
		c.fails.Add(1)
		http.Error(w, "injected fault: unavailable", http.StatusServiceUnavailable)
		return
	}
	c.mu.Unlock()

	if drop {
		c.drops.Add(1)
		// http.Server recognizes ErrAbortHandler and closes the
		// connection without a response — exactly a mid-request crash.
		panic(http.ErrAbortHandler)
	}
	if delay {
		c.delays.Add(1)
		time.Sleep(c.opts.Delay)
	}
	c.next.ServeHTTP(w, r)
}

// Package fleet is the horizontally scaled serving tier: a router
// that fans reachability queries across N drserve replicas, each
// holding the same frozen flat index (DESIGN.md §11).
//
// Two routing modes share one replica pool:
//
//   - Replicated: any replica can answer any pair; the router picks
//     the healthy replica with the fewest outstanding requests.
//   - Sharded: the pair space is partitioned by source rank
//     (shard(s) = s mod K over the fixed replica list), so each
//     replica's hot-pair cache sees only its slice of the source
//     space and stays hot. Batches are split into per-shard
//     sub-batches and the answers merged back into caller order.
//
// Sharding is an affinity policy, not a data partition — every
// replica holds the full index — so when a shard's owner is down the
// router falls back to any healthy replica and no query is lost.
//
// Replica health is probed periodically (GET /healthz): a replica is
// marked down after DownAfter consecutive failures and readmitted
// after UpAfter consecutive successes, with queries routing around it
// the whole time. The probe also records the replica's serving epoch
// and vertex count from the X-Reachlab-* headers, so /stats can show
// whether an index reload has landed on every replica. Graceful
// drain (POST /admin/drain) stops routing new queries to a replica
// and marks it drained once its outstanding count hits zero.
package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Mode selects how the router spreads traffic across replicas.
type Mode string

const (
	// Replicated routes every query to the least-loaded healthy
	// replica.
	Replicated Mode = "replicated"
	// Sharded routes each pair to the replica owning its source's
	// shard, falling back to any healthy replica when the owner is
	// out.
	Sharded Mode = "sharded"
)

// ReplicaState is the router's view of one replica.
type ReplicaState int32

const (
	// StateUp: healthy, receiving traffic.
	StateUp ReplicaState = iota
	// StateDown: failed DownAfter consecutive probes; no traffic
	// until it passes UpAfter consecutive probes.
	StateDown
	// StateDraining: operator-initiated drain; no new traffic,
	// outstanding requests finishing.
	StateDraining
	// StateDrained: drain complete (outstanding hit zero); stays out
	// of rotation until readmitted.
	StateDrained
)

func (s ReplicaState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// replica is the router's bookkeeping for one backend. The health
// loop owns fails/oks (probed one round at a time); everything else
// is atomic because request goroutines read and update it.
type replica struct {
	addr string // host:port, the admin-facing name
	base string // http://host:port

	state       atomic.Int32
	outstanding atomic.Int64
	epoch       atomic.Uint64 // last epoch seen on a probe (0 = unknown)
	vertices    atomic.Int64  // last vertex count seen on a probe
	forwards    atomic.Int64  // requests sent (including retries)
	errors      atomic.Int64  // transport errors + 5xx from this replica

	fails, oks int // consecutive probe outcomes; health-loop private
}

func (r *replica) getState() ReplicaState { return ReplicaState(r.state.Load()) }
func (r *replica) setState(s ReplicaState) {
	r.state.Store(int32(s))
}

// ReplicaStatus is one replica's externally visible state.
type ReplicaStatus struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Outstanding int64  `json:"outstanding"`
	Epoch       uint64 `json:"epoch"`
	Vertices    int64  `json:"vertices"`
	Forwards    int64  `json:"forwards"`
	Errors      int64  `json:"errors"`
}

// Options configures a Fleet. The zero value gives sane defaults.
type Options struct {
	// Mode is Replicated (default) or Sharded.
	Mode Mode
	// CheckInterval is the health-probe period (default 500ms).
	CheckInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// ProxyTimeout bounds one forwarded request attempt (default 10s).
	ProxyTimeout time.Duration
	// DownAfter is the consecutive probe failures before a replica is
	// marked down (default 2).
	DownAfter int
	// UpAfter is the consecutive probe successes before a down
	// replica is readmitted (default 2).
	UpAfter int
	// MaxAttempts is the per-query forwarding budget across replicas
	// and retry rounds (default 4 × the replica count).
	MaxAttempts int
	// RetryBackoff is the pause between retry rounds once every
	// candidate replica has been tried (default 25ms).
	RetryBackoff time.Duration
	// MaxBatch caps the pair count of one /reach/batch request
	// (default 8192, matching the replica-side default).
	MaxBatch int
	// Client issues probes and forwards; nil uses a private client
	// with sensible connection pooling.
	Client *http.Client
	// Obs receives router counters and latency histograms; nil
	// disables instrumentation.
	Obs *obs.Registry
}

func (o Options) mode() Mode {
	if o.Mode == "" {
		return Replicated
	}
	return o.Mode
}

func (o Options) checkInterval() time.Duration {
	if o.CheckInterval <= 0 {
		return 500 * time.Millisecond
	}
	return o.CheckInterval
}

func (o Options) probeTimeout() time.Duration {
	if o.ProbeTimeout <= 0 {
		return 2 * time.Second
	}
	return o.ProbeTimeout
}

func (o Options) proxyTimeout() time.Duration {
	if o.ProxyTimeout <= 0 {
		return 10 * time.Second
	}
	return o.ProxyTimeout
}

func (o Options) downAfter() int {
	if o.DownAfter <= 0 {
		return 2
	}
	return o.DownAfter
}

func (o Options) upAfter() int {
	if o.UpAfter <= 0 {
		return 2
	}
	return o.UpAfter
}

func (o Options) maxAttempts(replicas int) int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 4 * replicas
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return o.RetryBackoff
}

func (o Options) maxBatch() int {
	if o.MaxBatch <= 0 {
		return 8192
	}
	return o.MaxBatch
}

// Fleet is the replica pool plus its router. Create with New, start
// health checking with Start, serve it as an http.Handler, stop with
// Close.
type Fleet struct {
	opts     Options
	mode     Mode
	replicas []*replica // fixed order; position = shard index
	httpc    *http.Client
	mux      *http.ServeMux

	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}

	// Metric handles, resolved once.
	reg         *obs.Registry
	unavailable *obs.Counter
	retries     *obs.Counter
	probeFails  *obs.Counter
	healthyG    *obs.Gauge
	proxyHist   *obs.Histogram
}

// New builds a fleet over the given replica addresses (host:port or
// http:// URLs). The order is significant in Sharded mode: position
// in the list is the shard index.
func New(addrs []string, opts Options) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleet: no replicas")
	}
	reg := opts.Obs
	f := &Fleet{
		opts:     opts,
		mode:     opts.mode(),
		httpc:    opts.Client,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),

		reg:         reg,
		unavailable: reg.Counter("fleet_unavailable_total"),
		retries:     reg.Counter("fleet_retries_total"),
		probeFails:  reg.Counter("fleet_probe_failures_total"),
		healthyG:    reg.Gauge("fleet_healthy_replicas"),
		proxyHist:   reg.Histogram("fleet_proxy_seconds", obs.LatencyBuckets),
	}
	if f.mode != Replicated && f.mode != Sharded {
		return nil, fmt.Errorf("fleet: unknown mode %q", opts.Mode)
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		addr := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
		if seen[addr] {
			return nil, fmt.Errorf("fleet: duplicate replica %s", addr)
		}
		seen[addr] = true
		r := &replica{addr: addr, base: strings.TrimSuffix(base, "/")}
		// Replicas start down and are admitted by their first probes,
		// so a dead address never receives traffic.
		r.setState(StateDown)
		f.replicas = append(f.replicas, r)
	}
	if len(f.replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas")
	}
	if f.httpc == nil {
		f.httpc = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * len(f.replicas) * 16,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     60 * time.Second,
			},
		}
	}
	f.initMux()
	return f, nil
}

// Start probes every replica once synchronously (so a fleet over live
// replicas serves immediately) and then launches the periodic health
// loop.
func (f *Fleet) Start() {
	f.probeAll()
	go f.healthLoop()
}

// Close stops the health loop. In-flight forwarded requests finish on
// their own.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.loopDone
}

func (f *Fleet) healthLoop() {
	defer close(f.loopDone)
	t := time.NewTicker(f.opts.checkInterval())
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probeAll()
		}
	}
}

// probeAll checks every replica in parallel and applies the state
// transitions. One round completes before the next starts, so the
// fails/oks counters need no locking.
func (f *Fleet) probeAll() {
	var wg sync.WaitGroup
	for _, r := range f.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			f.probe(r)
		}(r)
	}
	wg.Wait()
	f.healthyG.Set(int64(len(f.healthy())))
}

// probe runs one health check against r and advances its state
// machine.
func (f *Fleet) probe(r *replica) {
	ok := f.probeOnce(r)
	if ok {
		r.oks++
		r.fails = 0
	} else {
		r.fails++
		r.oks = 0
		f.probeFails.Inc()
	}
	switch r.getState() {
	case StateUp:
		if r.fails >= f.opts.downAfter() {
			r.setState(StateDown)
		}
	case StateDown:
		if r.oks >= f.opts.upAfter() {
			r.setState(StateUp)
		}
	case StateDraining:
		// A draining replica that stops answering is down, drained or
		// not (mid-drain kill). One that finished its outstanding work
		// is drained.
		if r.fails >= f.opts.downAfter() {
			r.setState(StateDown)
		} else if r.outstanding.Load() == 0 {
			r.setState(StateDrained)
		}
	case StateDrained:
		// Parked until readmitted.
	}
}

// probeOnce is the wire part of a probe: GET /healthz under the probe
// timeout, recording the epoch/vertices headers on success.
func (f *Fleet) probeOnce(r *replica) bool {
	req, err := http.NewRequest(http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return false
	}
	ctx, cancel := contextWithTimeout(f.opts.probeTimeout())
	defer cancel()
	resp, err := f.httpc.Do(req.WithContext(ctx))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if e, err := strconv.ParseUint(resp.Header.Get("X-Reachlab-Epoch"), 10, 64); err == nil {
		r.epoch.Store(e)
	}
	if v, err := strconv.ParseInt(resp.Header.Get("X-Reachlab-Vertices"), 10, 64); err == nil {
		r.vertices.Store(v)
	}
	return true
}

// healthy returns the replicas currently accepting traffic.
func (f *Fleet) healthy() []*replica {
	var up []*replica
	for _, r := range f.replicas {
		if r.getState() == StateUp {
			up = append(up, r)
		}
	}
	return up
}

// pick chooses the next replica to try: the preferred one (shard
// owner) when it is up and untried, otherwise the least-outstanding
// healthy untried replica. Ties break by list position, so selection
// is deterministic under equal load.
func (f *Fleet) pick(preferred *replica, tried map[*replica]bool) *replica {
	if preferred != nil && preferred.getState() == StateUp && !tried[preferred] {
		return preferred
	}
	var best *replica
	var bestOut int64
	for _, r := range f.replicas {
		if r.getState() != StateUp || tried[r] {
			continue
		}
		out := r.outstanding.Load()
		if best == nil || out < bestOut {
			best, bestOut = r, out
		}
	}
	return best
}

// find resolves an admin-supplied replica name (host:port, with or
// without a scheme).
func (f *Fleet) find(name string) *replica {
	name = strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(strings.TrimSpace(name), "http://"), "https://"), "/")
	for _, r := range f.replicas {
		if r.addr == name {
			return r
		}
	}
	return nil
}

// Drain starts a graceful drain of the named replica: it leaves the
// routing set immediately and is marked drained once its outstanding
// requests finish.
func (f *Fleet) Drain(name string) error {
	r := f.find(name)
	if r == nil {
		return fmt.Errorf("fleet: unknown replica %q", name)
	}
	switch r.getState() {
	case StateDraining, StateDrained:
		return nil
	}
	if r.outstanding.Load() == 0 {
		r.setState(StateDrained)
	} else {
		r.setState(StateDraining)
	}
	return nil
}

// Readmit returns a drained or down replica to probation: it rejoins
// the routing set after UpAfter consecutive successful probes.
func (f *Fleet) Readmit(name string) error {
	r := f.find(name)
	if r == nil {
		return fmt.Errorf("fleet: unknown replica %q", name)
	}
	if r.getState() == StateUp {
		return nil
	}
	r.setState(StateDown)
	return nil
}

// Snapshot reports every replica's current status, in shard order.
func (f *Fleet) Snapshot() []ReplicaStatus {
	out := make([]ReplicaStatus, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = ReplicaStatus{
			Addr:        r.addr,
			State:       r.getState().String(),
			Outstanding: r.outstanding.Load(),
			Epoch:       r.epoch.Load(),
			Vertices:    r.vertices.Load(),
			Forwards:    r.forwards.Load(),
			Errors:      r.errors.Load(),
		}
	}
	return out
}

// Vertices returns the vertex-ID space reported by the fleet's
// replicas (the maximum seen, 0 when no probe has succeeded yet).
func (f *Fleet) Vertices() int64 {
	var n int64
	for _, r := range f.replicas {
		if v := r.vertices.Load(); v > n {
			n = v
		}
	}
	return n
}

// Mode returns the routing mode.
func (f *Fleet) Mode() Mode { return f.mode }

// NumReplicas returns the fixed replica count (shard count in Sharded
// mode).
func (f *Fleet) NumReplicas() int { return len(f.replicas) }

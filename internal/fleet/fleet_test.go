package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a deterministic stand-in for a drserve replica: it
// answers /reach and /reach/batch from a pure function of the pair,
// serves /healthz with the epoch/vertices headers, and records every
// pair it answered — so router tests can assert both the answers and
// the routing without building a real index.
type fakeReplica struct {
	id       int
	vertices int

	mu         sync.Mutex
	served     [][2]int64 // every pair answered, in arrival order
	sources    []int64    // every rich-query source answered (path/count/from/join)
	batchCalls int
	joinCalls  int

	edgeOps []string // "insert(3,17)" per accepted mutation
	edgeSeq uint64

	epoch      atomic.Uint64
	failHealth atomic.Bool // healthz → 503
	failReach  atomic.Bool // reach endpoints → 500
	failEdges  atomic.Bool // edges → 500
}

// ans is the ground truth every fake replica agrees on.
func fakeAnswer(s, t int64) bool { return (s*31+t)%3 == 0 }

func newFakeReplica(id, vertices int) *fakeReplica {
	f := &fakeReplica{id: id, vertices: vertices}
	f.epoch.Store(1)
	return f
}

func (f *fakeReplica) servedPairs() [][2]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][2]int64(nil), f.served...)
}

func (f *fakeReplica) servedSources() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.sources...)
}

// fakeCount is the deterministic reachable-set size every fake
// replica agrees on: the row count of fakeAnswer over the ID space.
func (f *fakeReplica) fakeCount(s int64) int {
	c := 0
	for t := int64(0); t < int64(f.vertices); t++ {
		if fakeAnswer(s, t) {
			c++
		}
	}
	return c
}

func (f *fakeReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		if f.failHealth.Load() {
			http.Error(w, "injected unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("X-Reachlab-Vertices", strconv.Itoa(f.vertices))
		fmt.Fprintln(w, "ok")
	case r.Method == http.MethodGet && r.URL.Path == "/reach":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		s, err1 := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64)
		t, err2 := strconv.ParseInt(r.URL.Query().Get("t"), 10, 64)
		if err1 != nil || err2 != nil || s < 0 || t < 0 || s >= int64(f.vertices) || t >= int64(f.vertices) {
			http.Error(w, "bad pair", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.served = append(f.served, [2]int64{s, t})
		f.mu.Unlock()
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"s":%d,"t":%d,"reachable":%v}`+"\n", s, t, fakeAnswer(s, t))
	case r.Method == http.MethodPost && r.URL.Path == "/reach/batch":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			Pairs [][2]int64 `json:"pairs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]bool, len(req.Pairs))
		f.mu.Lock()
		f.batchCalls++
		for i, p := range req.Pairs {
			f.served = append(f.served, p)
			results[i] = fakeAnswer(p[0], p[1])
		}
		f.mu.Unlock()
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/json")
		// The client may have hung up mid-test; a short write here is
		// its problem, not the fake replica's.
		_ = json.NewEncoder(w).Encode(map[string]any{"count": len(results), "results": results})
	case r.Method == http.MethodGet && r.URL.Path == "/reach/path":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		s, err1 := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64)
		t, err2 := strconv.ParseInt(r.URL.Query().Get("t"), 10, 64)
		if err1 != nil || err2 != nil || s < 0 || t < 0 || s >= int64(f.vertices) || t >= int64(f.vertices) {
			http.Error(w, "bad pair", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.sources = append(f.sources, s)
		f.mu.Unlock()
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/json")
		if fakeAnswer(s, t) {
			fmt.Fprintf(w, `{"s":%d,"t":%d,"reachable":true,"path":[%d,%d]}`+"\n", s, t, s, t)
		} else {
			fmt.Fprintf(w, `{"s":%d,"t":%d,"reachable":false}`+"\n", s, t)
		}
	case r.Method == http.MethodGet && r.URL.Path == "/reach/count":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		s, err := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64)
		if err != nil || s < 0 || s >= int64(f.vertices) {
			http.Error(w, "bad source", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.sources = append(f.sources, s)
		f.mu.Unlock()
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"s":%d,"count":%d}`+"\n", s, f.fakeCount(s))
	case r.Method == http.MethodPost && r.URL.Path == "/reach/from":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			S       int64   `json:"s"`
			Targets []int64 `json:"targets"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.S < 0 || req.S >= int64(f.vertices) {
			http.Error(w, "bad source", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.sources = append(f.sources, req.S)
		f.mu.Unlock()
		results := make([]bool, len(req.Targets))
		count := 0
		for i, t := range req.Targets {
			results[i] = fakeAnswer(req.S, t)
			if results[i] {
				count++
			}
		}
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"s": req.S, "count": count, "results": results})
	case r.Method == http.MethodPost && r.URL.Path == "/reach/join":
		if f.failReach.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			Sources []int64 `json:"sources"`
			Targets []int64 `json:"targets"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, v := range append(append([]int64(nil), req.Sources...), req.Targets...) {
			if v < 0 || v >= int64(f.vertices) {
				http.Error(w, "bad vertex", http.StatusBadRequest)
				return
			}
		}
		// Mirror the real replica: dedup + sort both lists, stream the
		// reachable pairs in (s, t) order, end with the summary line.
		srcs := dedupSorted(req.Sources)
		tgts := dedupSorted(req.Targets)
		f.mu.Lock()
		f.joinCalls++
		f.sources = append(f.sources, srcs...)
		f.mu.Unlock()
		w.Header().Set("X-Reachlab-Epoch", strconv.FormatUint(f.epoch.Load(), 10))
		w.Header().Set("Content-Type", "application/x-ndjson")
		count := 0
		for _, s := range srcs {
			for _, t := range tgts {
				if fakeAnswer(s, t) {
					count++
					fmt.Fprintf(w, `{"s":%d,"t":%d}`+"\n", s, t)
				}
			}
		}
		fmt.Fprintf(w, `{"done":true,"count":%d,"scanned":%d}`+"\n", count, len(srcs)*len(tgts))
	case r.Method == http.MethodPost && r.URL.Path == "/edges":
		if f.failEdges.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var req struct {
			Op string `json:"op"`
			U  int64  `json:"u"`
			V  int64  `json:"v"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Op != "insert" && req.Op != "delete" {
			http.Error(w, "bad op", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.edgeSeq++
		seq := f.edgeSeq
		f.edgeOps = append(f.edgeOps, fmt.Sprintf("%s(%d,%d)", req.Op, req.U, req.V))
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"op":%q,"seq":%d,"epoch":%d}`+"\n", req.Op, seq, f.epoch.Load()+1)
	case r.Method == http.MethodPost && r.URL.Path == "/admin/reload":
		e := f.epoch.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"epoch":%d,"vertices":%d}`+"\n", e, f.vertices)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// testFleet spins up n fake replicas (optionally wrapped) and a
// started Fleet over them with snappy test timings.
func testFleet(t *testing.T, n int, mode Mode, wrap func(i int, h http.Handler) http.Handler, opt func(*Options)) ([]*fakeReplica, []*httptest.Server, *Fleet) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	servers := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := range fakes {
		fakes[i] = newFakeReplica(i, 100)
		var h http.Handler = fakes[i]
		if wrap != nil {
			h = wrap(i, h)
		}
		servers[i] = httptest.NewServer(h)
		t.Cleanup(servers[i].Close)
		addrs[i] = strings.TrimPrefix(servers[i].URL, "http://")
	}
	opts := Options{
		Mode:          mode,
		CheckInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		DownAfter:     2,
		UpAfter:       2,
		RetryBackoff:  5 * time.Millisecond,
	}
	if opt != nil {
		opt(&opts)
	}
	f, err := New(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)
	return fakes, servers, f
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func stateOf(f *Fleet, addr string) string {
	for _, s := range f.Snapshot() {
		if s.Addr == addr {
			return s.State
		}
	}
	return "missing"
}

// --- splitBatch: the pure split/merge invariants -------------------

func TestSplitBatchInvariants(t *testing.T) {
	pairs := [][2]int64{
		{5, 1}, {0, 2}, {5, 1}, {3, 3}, {4, 0}, {0, 2}, {6, 6}, {5, 1}, {1, 9},
	}
	for _, k := range []int{1, 2, 3, 7} {
		plan := splitBatch(pairs, k)

		// Duplicates collapsed: uniq holds each distinct pair once, in
		// first-appearance order.
		seen := make(map[[2]int64]bool)
		for _, p := range plan.uniq {
			if seen[p] {
				t.Fatalf("k=%d: pair %v appears twice in uniq", k, p)
			}
			seen[p] = true
		}
		if len(plan.uniq) != 6 {
			t.Fatalf("k=%d: %d unique pairs, want 6", k, len(plan.uniq))
		}

		// Caller order: posToUniq maps every position back to its own
		// pair.
		for i, u := range plan.posToUniq {
			if plan.uniq[u] != pairs[i] {
				t.Fatalf("k=%d: position %d maps to %v, want %v", k, i, plan.uniq[u], pairs[i])
			}
		}

		// Partition: every uniq index in exactly one group, and in the
		// group its source owns.
		covered := make([]int, len(plan.uniq))
		for g, group := range plan.groups {
			for _, u := range group {
				covered[u]++
				if want := int(plan.uniq[u][0] % int64(k)); want != g {
					t.Fatalf("k=%d: pair %v in group %d, want %d", k, plan.uniq[u], g, want)
				}
			}
		}
		for u, c := range covered {
			if c != 1 {
				t.Fatalf("k=%d: uniq %d covered %d times", k, u, c)
			}
		}
	}
}

// --- sharded batch over real HTTP: order invariance + dedup --------

func TestShardedBatchMergeOrderAndDedup(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Sharded, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })

	router := httptest.NewServer(f)
	defer router.Close()

	// A batch with duplicates and interleaved shard owners.
	pairs := [][2]int64{
		{0, 7}, {1, 7}, {2, 7}, {0, 7}, {4, 1}, {5, 2}, {3, 9}, {1, 7}, {8, 8}, {0, 7},
	}
	raw, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(router.URL+"/reach/batch", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var body struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}

	// Answers in caller order.
	if body.Count != len(pairs) || len(body.Results) != len(pairs) {
		t.Fatalf("answered %d/%d results for %d pairs", body.Count, len(body.Results), len(pairs))
	}
	for i, p := range pairs {
		if want := fakeAnswer(p[0], p[1]); body.Results[i] != want {
			t.Errorf("pair %d %v: got %v, want %v", i, p, body.Results[i], want)
		}
	}
	// Epoch header present when every shard serves the same epoch.
	if e := resp.Header.Get("X-Reachlab-Epoch"); e != "1" {
		t.Errorf("uniform epoch header = %q, want \"1\"", e)
	}

	// Each replica saw only its shard's sources, and each unique pair
	// was asked exactly once across the fleet (duplicates collapsed).
	total := 0
	askedOnce := make(map[[2]int64]int)
	for i, fr := range fakes {
		for _, p := range fr.servedPairs() {
			if int(p[0]%3) != i {
				t.Errorf("replica %d served source %d (shard %d)", i, p[0], p[0]%3)
			}
			askedOnce[p]++
			total++
		}
	}
	if total != 7 {
		t.Errorf("fleet served %d pairs, want 7 unique", total)
	}
	for p, c := range askedOnce {
		if c != 1 {
			t.Errorf("pair %v asked %d times, want 1", p, c)
		}
	}
}

// TestShardedSingleQueryAffinity: single queries land on the shard
// owner when it is healthy.
func TestShardedSingleQueryAffinity(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Sharded, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	for s := int64(0); s < 9; s++ {
		resp, err := http.Get(fmt.Sprintf("%s/reach?s=%d&t=1", router.URL, s))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := fakeAnswer(s, 1); body.Reachable != want {
			t.Errorf("reach(%d,1) = %v, want %v", s, body.Reachable, want)
		}
	}
	for i, fr := range fakes {
		for _, p := range fr.servedPairs() {
			if int(p[0]%3) != i {
				t.Errorf("replica %d served source %d", i, p[0])
			}
		}
		if n := len(fr.servedPairs()); n != 3 {
			t.Errorf("replica %d served %d queries, want 3", i, n)
		}
	}
}

// --- health flap: down, routed around, readmitted ------------------

// TestHealthFlapReadmission marks a replica down mid-traffic and
// brings it back: no query may fail at any point, traffic routes
// around the outage, and the replica serves again after readmission.
func TestHealthFlapReadmission(t *testing.T) {
	fakes, servers, f := testFleet(t, 2, Replicated, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 2 })
	router := httptest.NewServer(f)
	defer router.Close()
	flappyAddr := strings.TrimPrefix(servers[1].URL, "http://")

	// Background query pressure for the whole flap cycle; every
	// response must be a correct 200.
	stop := make(chan struct{})
	var queryErrs atomic.Int64
	var sent atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s, u := int64((w*13+i)%100), int64((w*7+i*3)%100)
				resp, err := http.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", router.URL, s, u))
				if err != nil {
					queryErrs.Add(1)
					continue
				}
				var body struct {
					Reachable bool `json:"reachable"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				sent.Add(1)
				if err != nil || resp.StatusCode != http.StatusOK || body.Reachable != fakeAnswer(s, u) {
					queryErrs.Add(1)
				}
			}
		}(w)
	}

	// Flap: replica 1 starts failing health checks (still answering
	// queries it already accepted — the probe is the signal).
	fakes[1].failHealth.Store(true)
	fakes[1].failReach.Store(true)
	waitFor(t, "replica marked down", func() bool { return stateOf(f, flappyAddr) == "down" })

	// Sustained traffic during the outage.
	base := sent.Load()
	waitFor(t, "traffic during outage", func() bool { return sent.Load() > base+50 })

	// Recovery and readmission.
	fakes[1].failHealth.Store(false)
	fakes[1].failReach.Store(false)
	waitFor(t, "replica readmitted", func() bool { return stateOf(f, flappyAddr) == "up" })

	// Traffic lands on the readmitted replica again.
	served := len(fakes[1].servedPairs())
	waitFor(t, "readmitted replica serving", func() bool { return len(fakes[1].servedPairs()) > served })

	close(stop)
	wg.Wait()
	if queryErrs.Load() != 0 {
		t.Fatalf("%d of %d queries failed across the flap", queryErrs.Load(), sent.Load())
	}
}

// --- drain: graceful removal, then mid-drain kill ------------------

func TestDrainAndMidDrainKill(t *testing.T) {
	fakes, servers, f := testFleet(t, 3, Replicated, nil, nil)
	_ = fakes
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()
	drainAddr := strings.TrimPrefix(servers[2].URL, "http://")

	// Drain replica 2 via the admin endpoint.
	resp, err := http.Post(router.URL+"/admin/drain?replica="+drainAddr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	waitFor(t, "replica drained", func() bool { return stateOf(f, drainAddr) == "drained" })

	// Queries keep flowing with the replica out, and none land on it.
	before := len(fakes[2].servedPairs())
	for i := 0; i < 30; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", router.URL, i%100, (i*3)%100))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d with a drained replica", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if after := len(fakes[2].servedPairs()); after != before {
		t.Fatalf("drained replica served %d new queries", after-before)
	}

	// Mid-drain kill: the drained replica dies outright; the fleet
	// marks it down instead of readmitting a corpse.
	servers[2].Close()
	if err := f.Readmit(drainAddr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "killed replica stays down", func() bool { return stateOf(f, drainAddr) == "down" })
	for i := 0; i < 10; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/reach?s=%d&t=1", router.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d after mid-drain kill", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// --- chaos wrapper -------------------------------------------------

// TestChaosDeterministicSchedule: the same seed yields the same fault
// schedule over a sequential request stream.
func TestChaosDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []int {
		inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		c := NewChaos(inner, ChaosOptions{Seed: seed, DropRate: 0.2, ErrorRate: 0.2, BurstLen: 2})
		srv := httptest.NewServer(c)
		defer srv.Close()
		var outcomes []int
		for i := 0; i < 60; i++ {
			resp, err := http.Get(srv.URL + "/x")
			switch {
			case err != nil:
				outcomes = append(outcomes, -1) // dropped
			case resp.StatusCode == http.StatusOK:
				resp.Body.Close()
				outcomes = append(outcomes, 0)
			default:
				resp.Body.Close()
				outcomes = append(outcomes, resp.StatusCode)
			}
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	diff := run(8)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRouterAbsorbsChaos: with drops, delays, and 5xx bursts injected
// on every replica (health exempted so the replicas stay in
// rotation), the router's retries must still answer every query
// correctly — zero failures reach the client.
func TestRouterAbsorbsChaos(t *testing.T) {
	chaos := make([]*Chaos, 3)
	_, _, f := testFleet(t, 3, Sharded, func(i int, h http.Handler) http.Handler {
		chaos[i] = NewChaos(h, ChaosOptions{
			Seed:         int64(100 + i),
			DropRate:     0.08,
			DelayRate:    0.10,
			Delay:        2 * time.Millisecond,
			ErrorRate:    0.05,
			BurstLen:     2,
			ExemptHealth: true,
		})
		return chaos[i]
	}, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	client := router.Client()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				s, u := int64((w*17+i)%100), int64((w+i*5)%100)
				if i%2 == 0 {
					resp, err := client.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", router.URL, s, u))
					if err != nil {
						failures.Add(1)
						continue
					}
					var body struct {
						Reachable bool `json:"reachable"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK || body.Reachable != fakeAnswer(s, u) {
						failures.Add(1)
					}
					continue
				}
				pairs := [][2]int64{{s, u}, {u, s}, {s, s}}
				raw, _ := json.Marshal(map[string]any{"pairs": pairs})
				resp, err := client.Post(router.URL+"/reach/batch", "application/json", strings.NewReader(string(raw)))
				if err != nil {
					failures.Add(1)
					continue
				}
				var body struct {
					Results []bool `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || len(body.Results) != len(pairs) {
					failures.Add(1)
					continue
				}
				for k, p := range pairs {
					if body.Results[k] != fakeAnswer(p[0], p[1]) {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failures leaked through the router's retries", failures.Load())
	}
	var drops, fails int64
	for _, c := range chaos {
		d, _, e := c.Counts()
		drops += d
		fails += e
	}
	if drops+fails == 0 {
		t.Fatal("chaos injected nothing; the test proved nothing")
	}
}

// TestFleetStatsAndReloadFanout: /stats reports per-replica epochs;
// /admin/reload advances every replica and the outcome says so.
func TestFleetStatsAndReloadFanout(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Replicated, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	resp, err := http.Post(router.URL+"/admin/reload", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	var rr struct {
		Replicas []struct {
			Addr  string `json:"addr"`
			Epoch uint64 `json:"epoch"`
			Error string `json:"error"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Replicas) != 3 {
		t.Fatalf("reload reported %d replicas", len(rr.Replicas))
	}
	for _, r := range rr.Replicas {
		if r.Error != "" || r.Epoch != 2 {
			t.Errorf("replica %s: epoch %d, error %q", r.Addr, r.Epoch, r.Error)
		}
	}
	for i, fr := range fakes {
		if e := fr.epoch.Load(); e != 2 {
			t.Errorf("replica %d epoch %d after fleet reload, want 2", i, e)
		}
	}

	// /stats shows the new epochs once a probe lands (the reload
	// fan-out records them immediately).
	sresp, err := http.Get(router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Vertices int64  `json:"vertices"`
		Mode     string `json:"mode"`
		Healthy  int    `json:"healthy"`
		Replicas []struct {
			Addr  string `json:"addr"`
			State string `json:"state"`
			Epoch uint64 `json:"epoch"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Vertices != 100 || stats.Mode != "replicated" || stats.Healthy != 3 {
		t.Errorf("stats = %+v", stats)
	}
	for _, r := range stats.Replicas {
		if r.Epoch != 2 {
			t.Errorf("replica %s epoch %d in /stats, want 2", r.Addr, r.Epoch)
		}
	}
}

// --- /edges mutation fan-out ---------------------------------------

func postEdges(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

// TestFleetEdgesFanout: a mutation through the router lands on every
// replica (the replicated-WAL discipline), partial failure reports
// 502 with per-replica detail, and a validation error short-circuits
// as the replica's 4xx without spraying the pool.
func TestFleetEdgesFanout(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Replicated, nil, nil)
	router := httptest.NewServer(f)
	defer router.Close()

	resp, doc := postEdges(t, router.URL, `{"op":"insert","u":3,"v":17}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-out status %d: %v", resp.StatusCode, doc)
	}
	outcomes, _ := doc["replicas"].([]any)
	if len(outcomes) != 3 {
		t.Fatalf("outcomes for %d replicas, want 3: %v", len(outcomes), doc)
	}
	for _, fr := range fakes {
		fr.mu.Lock()
		got := append([]string(nil), fr.edgeOps...)
		fr.mu.Unlock()
		if len(got) != 1 || got[0] != "insert(3,17)" {
			t.Fatalf("replica %d saw %v, want [insert(3,17)]", fr.id, got)
		}
	}

	// One replica failing → 502, the healthy ones still got the write.
	fakes[2].failEdges.Store(true)
	resp, doc = postEdges(t, router.URL, `{"op":"delete","u":3,"v":17}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial failure status %d, want 502", resp.StatusCode)
	}
	failed := 0
	for _, o := range doc["replicas"].([]any) {
		if m, _ := o.(map[string]any); m["error"] != nil && m["error"] != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d replicas reported errors, want 1: %v", failed, doc)
	}
	for _, fr := range fakes[:2] {
		fr.mu.Lock()
		n := len(fr.edgeOps)
		fr.mu.Unlock()
		if n != 2 {
			t.Fatalf("healthy replica %d saw %d mutations, want 2", fr.id, n)
		}
	}
	fakes[2].failEdges.Store(false)

	// A malformed op is rejected deterministically: 400 straight back,
	// and no replica records it.
	before := make([]int, len(fakes))
	for i, fr := range fakes {
		fr.mu.Lock()
		before[i] = len(fr.edgeOps)
		fr.mu.Unlock()
	}
	resp, _ = postEdges(t, router.URL, `{"op":"upsert","u":1,"v":2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op status %d, want 400", resp.StatusCode)
	}
	for i, fr := range fakes {
		fr.mu.Lock()
		n := len(fr.edgeOps)
		fr.mu.Unlock()
		if n != before[i] {
			t.Fatalf("replica %d recorded the rejected mutation (%d → %d ops)", fr.id, before[i], n)
		}
	}
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// The router half of the fleet: ServeHTTP fans /reach and
// /reach/batch across the replica pool with bounded retries, serves
// fleet-level /stats and /healthz, and exposes the admin verbs
// (drain, readmit, fleet-wide reload).
//
// Endpoints:
//
//	GET  /reach?s=&t=                → proxied single query
//	POST /reach/batch                → split/merged batch query
//	GET  /reach/path?s=&t=           → proxied witness-path query (by source)
//	GET  /reach/count?s=             → proxied reachable-set-size query (by source)
//	POST /reach/from                 → proxied one-source sweep (by source)
//	POST /reach/join                 → per-shard split/merged NDJSON join
//	GET  /stats                      → {"vertices":N,"mode":...,"healthy":K,"replicas":[...]}
//	GET  /healthz                    → 200 while ≥1 replica is up
//	POST /edges                      → fan one edge mutation to every replica
//	POST /admin/drain?replica=a:p    → graceful drain
//	POST /admin/readmit?replica=a:p  → return a drained/down replica to probation
//	POST /admin/reload               → fan POST /admin/reload to every replica
//	GET  /metrics, /trace, /debug/pprof/ (obs.Mount)

func (f *Fleet) initMux() {
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("GET /reach", f.handleReach)
	f.mux.HandleFunc("POST /reach/batch", f.handleBatch)
	f.mux.HandleFunc("GET /reach/path", f.handlePath)
	f.mux.HandleFunc("GET /reach/count", f.handleCount)
	f.mux.HandleFunc("POST /reach/from", f.handleFrom)
	f.mux.HandleFunc("POST /reach/join", f.handleJoin)
	f.mux.HandleFunc("POST /edges", f.handleEdges)
	f.mux.HandleFunc("GET /stats", f.handleStats)
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("POST /admin/drain", f.handleDrain)
	f.mux.HandleFunc("POST /admin/readmit", f.handleReadmit)
	f.mux.HandleFunc("POST /admin/reload", f.handleReload)
	obs.Mount(f.mux, f.reg)
}

// ServeHTTP implements http.Handler.
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mux.ServeHTTP(w, r)
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// drain discards a response body so the connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
}

// errAllReplicasFailed reports an exhausted retry budget.
var errAllReplicasFailed = errors.New("fleet: no replica answered within the retry budget")

// forward sends one request to the pool with retries: prefer the
// shard owner, fail over to the least-loaded healthy replica, and
// once every candidate has been tried, back off briefly and start a
// fresh round — a replica marked down mid-flight gets routed around,
// and one readmitted mid-flight picks queued work back up. The
// response body (on success) and the serving replica are returned.
func (f *Fleet) forward(preferred *replica, method, path string, body []byte) (*http.Response, []byte, *replica, error) {
	attempts := f.opts.maxAttempts(len(f.replicas))
	tried := make(map[*replica]bool)
	var lastErr error
	for a := 0; a < attempts; a++ {
		r := f.pick(preferred, tried)
		if r == nil {
			// Every candidate tried (or none healthy): new round after
			// a backoff so a flapping replica can come back.
			tried = make(map[*replica]bool)
			select {
			case <-f.stop:
				return nil, nil, nil, errAllReplicasFailed
			case <-time.After(f.opts.retryBackoff()):
			}
			continue
		}
		if a > 0 {
			f.retries.Inc()
		}
		tried[r] = true
		resp, data, err := f.try(r, method, path, body)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, data, r, nil
	}
	if lastErr == nil {
		lastErr = errAllReplicasFailed
	}
	return nil, nil, nil, lastErr
}

// try issues one attempt against one replica, counting outstanding
// work and errors. 5xx statuses and transport failures count against
// the replica and are retryable; any other status is a final answer.
func (f *Fleet) try(r *replica, method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	ctx, cancel := contextWithTimeout(f.opts.proxyTimeout())
	defer cancel()
	r.outstanding.Add(1)
	r.forwards.Add(1)
	resp, err := f.httpc.Do(req.WithContext(ctx))
	if err != nil {
		r.outstanding.Add(-1)
		r.errors.Add(1)
		return nil, nil, fmt.Errorf("fleet: %s: %w", r.addr, err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	r.outstanding.Add(-1)
	if err != nil {
		r.errors.Add(1)
		return nil, nil, fmt.Errorf("fleet: %s: reading response: %w", r.addr, err)
	}
	if resp.StatusCode >= 500 {
		r.errors.Add(1)
		return nil, nil, fmt.Errorf("fleet: %s: status %d", r.addr, resp.StatusCode)
	}
	return resp, data, nil
}

// shardOwner returns the replica owning source s in Sharded mode
// (nil in Replicated mode): shard(s) = s mod K over the fixed
// replica list.
func (f *Fleet) shardOwner(s int64) *replica {
	if f.mode != Sharded || s < 0 {
		return nil
	}
	return f.replicas[int(s%int64(len(f.replicas)))]
}

// fail counts and sends an HTTP error.
func (f *Fleet) fail(w http.ResponseWriter, handler, msg string, code int) {
	f.reg.Counter(obs.Label("fleet_http_errors_total", "handler", handler)).Inc()
	http.Error(w, msg, code)
}

// handleReach proxies one single-pair query. The upstream response —
// answer, client errors (400), and the epoch header — passes through
// verbatim; only replica failures are absorbed by retries.
func (f *Fleet) handleReach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "reach")).Inc()
	var preferred *replica
	if s, err := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64); err == nil {
		preferred = f.shardOwner(s)
	}
	resp, data, _, err := f.forward(preferred, http.MethodGet, "/reach?"+r.URL.RawQuery, nil)
	if err != nil {
		f.unavailable.Inc()
		f.fail(w, "reach", err.Error(), http.StatusServiceUnavailable)
		return
	}
	f.proxyHist.Observe(time.Since(start).Seconds())
	copyResponse(w, resp, data)
}

// copyResponse relays an upstream response (status, content type,
// epoch header, body) to the caller.
func copyResponse(w http.ResponseWriter, resp *http.Response, data []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if e := resp.Header.Get("X-Reachlab-Epoch"); e != "" {
		w.Header().Set("X-Reachlab-Epoch", e)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := w.Write(data); err != nil {
		logDropped(err)
	}
}

type batchRequest struct {
	Pairs [][2]int64 `json:"pairs"`
}

type batchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

// handleBatch splits a batch across the pool and merges the answers
// back into caller order. In Replicated mode the whole (deduplicated)
// batch goes to one replica; in Sharded mode each sub-batch goes to
// its shard owner. Any sub-batch that exhausts its retries fails the
// whole request — partial answers are never returned.
func (f *Fleet) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "batch")).Inc()
	maxBatch := f.opts.maxBatch()
	r.Body = http.MaxBytesReader(w, r.Body, int64(maxBatch)*32+4096)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			f.fail(w, "batch", fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		f.fail(w, "batch", fmt.Sprintf("bad batch request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > maxBatch {
		f.fail(w, "batch", fmt.Sprintf("batch of %d pairs exceeds limit %d", len(req.Pairs), maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, batchResponse{Count: 0, Results: []bool{}})
		return
	}

	plan := splitBatch(req.Pairs, f.shardCount())

	// Resolve every shard group concurrently; answers land in the
	// unique-pair slot table.
	answers := make([]bool, len(plan.uniq))
	epochs := make([]string, len(plan.groups))
	errs := make([]error, len(plan.groups))
	var wg sync.WaitGroup
	for gi, group := range plan.groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int, group []int) {
			defer wg.Done()
			epochs[gi], errs[gi] = f.resolveGroup(gi, group, plan.uniq, answers)
		}(gi, group)
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			f.unavailable.Inc()
			f.fail(w, "batch", fmt.Sprintf("shard %d: %v", gi, err), http.StatusBadGateway)
			return
		}
	}

	// Merge: expand unique answers back to every caller position.
	results := make([]bool, len(req.Pairs))
	for i, u := range plan.posToUniq {
		results[i] = answers[u]
	}
	// The epoch header is only meaningful when one epoch served the
	// whole batch; during a rolling reload sub-batches may differ, in
	// which case it is omitted.
	if e := uniformEpoch(epochs); e != "" {
		w.Header().Set("X-Reachlab-Epoch", e)
	}
	f.proxyHist.Observe(time.Since(start).Seconds())
	writeJSON(w, batchResponse{Count: len(results), Results: results})
}

// resolveGroup sends one shard's unique pairs as a sub-batch (owner
// preferred, any healthy replica as fallback) and scatters the
// answers into the slot table. Distinct groups write distinct slots,
// so no locking is needed.
func (f *Fleet) resolveGroup(shard int, group []int, uniq [][2]int64, answers []bool) (epoch string, err error) {
	sub := batchRequest{Pairs: make([][2]int64, len(group))}
	for k, u := range group {
		sub.Pairs[k] = uniq[u]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return "", err
	}
	var preferred *replica
	if f.mode == Sharded {
		preferred = f.replicas[shard]
	}
	resp, data, _, err := f.forward(preferred, http.MethodPost, "/reach/batch", body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("replica status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		return "", fmt.Errorf("decoding sub-batch response: %w", err)
	}
	if len(br.Results) != len(group) {
		return "", fmt.Errorf("sub-batch of %d pairs got %d answers", len(group), len(br.Results))
	}
	for k, u := range group {
		answers[u] = br.Results[k]
	}
	return resp.Header.Get("X-Reachlab-Epoch"), nil
}

// shardCount is the group fan-out of a batch: one group per replica
// in Sharded mode, a single group in Replicated mode.
func (f *Fleet) shardCount() int {
	if f.mode == Sharded {
		return len(f.replicas)
	}
	return 1
}

// uniformEpoch returns the epoch all non-empty groups agree on, or
// "".
func uniformEpoch(epochs []string) string {
	u := ""
	for _, e := range epochs {
		if e == "" {
			continue
		}
		if u == "" {
			u = e
		} else if u != e {
			return ""
		}
	}
	return u
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	up := len(f.healthy())
	if up == 0 {
		http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok (%d/%d replicas up)\n", up, len(f.replicas))
}

// handleStats reports the fleet topology and per-replica status —
// including each replica's serving epoch, so an operator can confirm
// a reload landed everywhere. The top-level "vertices" field keeps
// the response drop-in compatible with a single replica's /stats for
// clients (drload) that only need the ID space.
func (f *Fleet) handleStats(w http.ResponseWriter, _ *http.Request) {
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "stats")).Inc()
	snap := f.Snapshot()
	healthy := 0
	for _, s := range snap {
		if s.State == "up" {
			healthy++
		}
	}
	writeJSON(w, map[string]any{
		"vertices": f.Vertices(),
		"mode":     string(f.mode),
		"healthy":  healthy,
		"replicas": snap,
	})
}

func (f *Fleet) handleDrain(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "drain")).Inc()
	if err := f.Drain(r.URL.Query().Get("replica")); err != nil {
		f.fail(w, "drain", err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"replicas": f.Snapshot()})
}

func (f *Fleet) handleReadmit(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "readmit")).Inc()
	if err := f.Readmit(r.URL.Query().Get("replica")); err != nil {
		f.fail(w, "readmit", err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"replicas": f.Snapshot()})
}

// replicaReload is one replica's outcome of a fleet-wide reload.
type replicaReload struct {
	Addr     string `json:"addr"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Vertices int    `json:"vertices,omitempty"`
	Error    string `json:"error,omitempty"`
}

// handleReload fans POST /admin/reload out to every replica (all of
// them, not just the healthy set — a draining or down-but-reachable
// replica should come back serving the new epoch) and reports each
// outcome. 200 when every replica reloaded; 502 with the per-replica
// detail otherwise.
func (f *Fleet) handleReload(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "reload")).Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		f.fail(w, "reload", fmt.Sprintf("reading request: %v", err), http.StatusBadRequest)
		return
	}
	outcomes := make([]replicaReload, len(f.replicas))
	var wg sync.WaitGroup
	for i, rep := range f.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			outcomes[i] = f.reloadReplica(rep, body)
		}(i, rep)
	}
	wg.Wait()
	failed := false
	for _, o := range outcomes {
		if o.Error != "" {
			failed = true
		}
	}
	code := http.StatusOK
	if failed {
		code = http.StatusBadGateway
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]any{"replicas": outcomes}); err != nil {
		f.logDropped(err)
	}
}

func (f *Fleet) reloadReplica(rep *replica, body []byte) replicaReload {
	out := replicaReload{Addr: rep.addr}
	resp, data, err := f.try(rep, http.MethodPost, "/admin/reload", body)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	if resp.StatusCode != http.StatusOK {
		out.Error = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		return out
	}
	var rr struct {
		Epoch    uint64 `json:"epoch"`
		Vertices int    `json:"vertices"`
	}
	if err := json.Unmarshal(data, &rr); err != nil {
		out.Error = fmt.Sprintf("decoding reload response: %v", err)
		return out
	}
	out.Epoch, out.Vertices = rr.Epoch, rr.Vertices
	rep.epoch.Store(rr.Epoch)
	return out
}

// replicaEdge is one replica's acknowledgement of an edge mutation.
type replicaEdge struct {
	Addr  string `json:"addr"`
	Seq   uint64 `json:"seq,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleEdges fans one POST /edges mutation out to every replica —
// each keeps its own write-ahead log, so a replicated fleet stays
// convergent only if every replica sees every write (the same
// all-replicas discipline as reload; a draining replica still takes
// writes so it comes back current). 200 when every replica durably
// acknowledged; 502 with per-replica detail otherwise — the caller
// must treat 502 as "retry until 200" since a partial write leaves
// replicas divergent until it lands everywhere. A 4xx from the first
// replica (malformed op, vertex out of range) is returned verbatim
// without touching the rest: validation failures are deterministic,
// so one verdict speaks for the pool.
func (f *Fleet) handleEdges(w http.ResponseWriter, r *http.Request) {
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "edges")).Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		f.fail(w, "edges", fmt.Sprintf("reading request: %v", err), http.StatusBadRequest)
		return
	}
	// Probe the first replica alone so a validation error short-circuits.
	first := f.mutateReplica(f.replicas[0], body)
	if first.Error != "" && first.status >= 400 && first.status < 500 {
		f.fail(w, "edges", first.Error, first.status)
		return
	}
	outcomes := make([]replicaEdge, len(f.replicas))
	outcomes[0] = first.replicaEdge
	var wg sync.WaitGroup
	for i, rep := range f.replicas[1:] {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			outcomes[i] = f.mutateReplica(rep, body).replicaEdge
		}(i+1, rep)
	}
	wg.Wait()
	code := http.StatusOK
	for _, o := range outcomes {
		if o.Error != "" {
			code = http.StatusBadGateway
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]any{"replicas": outcomes}); err != nil {
		f.logDropped(err)
	}
}

type edgeOutcome struct {
	replicaEdge
	status int
}

func (f *Fleet) mutateReplica(rep *replica, body []byte) edgeOutcome {
	out := edgeOutcome{replicaEdge: replicaEdge{Addr: rep.addr}}
	resp, data, err := f.try(rep, http.MethodPost, "/edges", body)
	if err != nil {
		out.Error = err.Error()
		out.status = http.StatusBadGateway
		return out
	}
	out.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		out.Error = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		return out
	}
	var ack struct {
		Seq   uint64 `json:"seq"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		out.Error = fmt.Sprintf("decoding edge ack: %v", err)
		return out
	}
	out.Seq, out.Epoch = ack.Seq, ack.Epoch
	return out
}

// writeJSON mirrors the replica-side discipline: a mid-stream write
// failure cannot be turned into an error response, so log and drop.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logDropped(err)
	}
}

func (f *Fleet) logDropped(err error) { logDropped(err) }

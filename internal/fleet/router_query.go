package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Rich-query routing. Path and count are single-source, so Sharded
// mode routes them to the shard owner exactly like point queries —
// the owner's cache holds that source's hot pairs. /reach/from is
// single-source too: the router sniffs "s" out of the body for
// affinity and forwards the body verbatim (the replica re-validates).
// /reach/join fans out like batch: in Sharded mode the source list is
// partitioned by owner, each shard scans its sources against the full
// target list, and the router merges the NDJSON sub-streams back into
// one sorted stream with a single summary line.

// handlePath proxies one witness-path query to the source's owner.
func (f *Fleet) handlePath(w http.ResponseWriter, r *http.Request) {
	f.forwardBySource(w, r, "path", "/reach/path")
}

// handleCount proxies one reachable-set-size query to the source's
// owner.
func (f *Fleet) handleCount(w http.ResponseWriter, r *http.Request) {
	f.forwardBySource(w, r, "count", "/reach/count")
}

// forwardBySource relays a GET endpoint whose "s" query parameter
// decides shard affinity, passing the upstream response through
// verbatim (handleReach's discipline).
func (f *Fleet) forwardBySource(w http.ResponseWriter, r *http.Request, handler, path string) {
	start := time.Now()
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", handler)).Inc()
	var preferred *replica
	if s, err := strconv.ParseInt(r.URL.Query().Get("s"), 10, 64); err == nil {
		preferred = f.shardOwner(s)
	}
	resp, data, _, err := f.forward(preferred, http.MethodGet, path+"?"+r.URL.RawQuery, nil)
	if err != nil {
		f.unavailable.Inc()
		f.fail(w, handler, err.Error(), http.StatusServiceUnavailable)
		return
	}
	f.proxyHist.Observe(time.Since(start).Seconds())
	copyResponse(w, resp, data)
}

// handleFrom proxies one one-source sweep. The body is forwarded
// verbatim; the router only peeks at "s" for shard affinity and
// leaves all validation to the replica.
func (f *Fleet) handleFrom(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "from")).Inc()
	maxBatch := f.opts.maxBatch()
	r.Body = http.MaxBytesReader(w, r.Body, int64(maxBatch)*32+4096)
	body, err := readBody(r)
	if err != nil {
		f.failBody(w, "from", err)
		return
	}
	var peek struct {
		S int64 `json:"s"`
	}
	var preferred *replica
	if json.Unmarshal(body, &peek) == nil {
		preferred = f.shardOwner(peek.S)
	}
	resp, data, _, err := f.forward(preferred, http.MethodPost, "/reach/from", body)
	if err != nil {
		f.unavailable.Inc()
		f.fail(w, "from", err.Error(), http.StatusServiceUnavailable)
		return
	}
	f.proxyHist.Observe(time.Since(start).Seconds())
	copyResponse(w, resp, data)
}

type joinRequest struct {
	Sources []int64 `json:"sources"`
	Targets []int64 `json:"targets"`
}

// joinLine decodes one NDJSON line of a replica's join stream: either
// a result pair or the terminal summary, discriminated by "done".
type joinLine struct {
	S       *int64 `json:"s"`
	T       *int64 `json:"t"`
	Done    bool   `json:"done"`
	Count   int    `json:"count"`
	Scanned int    `json:"scanned"`
}

// handleJoin routes a reachability join. Replicated mode forwards the
// whole request to one replica and relays its stream. Sharded mode
// partitions the sources by owner (s mod K), sends each shard a
// sub-join over its sources and the full target list, and merges: the
// source sets are disjoint, so concatenating the sub-results and
// sorting by (s, t) reproduces exactly the single-replica output, and
// the summary's count/scanned are the sums (each replica deduplicates
// its own lists, so Σ|srcs_k|·|tgts| == |srcs|·|tgts|). A sub-stream
// without its done line means a truncated upstream — the merge fails
// closed with 502 rather than relay a silent partial answer.
func (f *Fleet) handleJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	f.reg.Counter(obs.Label("fleet_http_requests_total", "handler", "join")).Inc()
	maxBatch := f.opts.maxBatch()
	r.Body = http.MaxBytesReader(w, r.Body, 2*(int64(maxBatch)*32+4096))
	body, err := readBody(r)
	if err != nil {
		f.failBody(w, "join", err)
		return
	}
	if f.mode != Sharded {
		resp, data, _, err := f.forward(nil, http.MethodPost, "/reach/join", body)
		if err != nil {
			f.unavailable.Inc()
			f.fail(w, "join", err.Error(), http.StatusServiceUnavailable)
			return
		}
		f.proxyHist.Observe(time.Since(start).Seconds())
		copyResponse(w, resp, data)
		return
	}

	var req joinRequest
	if err := json.Unmarshal(body, &req); err != nil {
		f.fail(w, "join", fmt.Sprintf("bad join request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Sources) > maxBatch || len(req.Targets) > maxBatch {
		f.fail(w, "join", fmt.Sprintf("join lists of %d×%d exceed per-list limit %d",
			len(req.Sources), len(req.Targets), maxBatch), http.StatusRequestEntityTooLarge)
		return
	}
	// Partition sources by shard owner; duplicates land on the same
	// shard and are deduplicated there, exactly as one replica would.
	k := len(f.replicas)
	bySrc := make([][]int64, k)
	for _, s := range req.Sources {
		if s < 0 {
			// Let a replica produce the canonical 400 for the bad entry.
			bySrc[0] = append(bySrc[0], s)
			continue
		}
		shard := int(s % int64(k))
		bySrc[shard] = append(bySrc[shard], s)
	}

	type subResult struct {
		pairs   [][2]int64
		count   int
		scanned int
		epoch   string
		status  int // non-200 upstream verdict, relayed verbatim
		body    []byte
		err     error
	}
	results := make([]subResult, k)
	var wg sync.WaitGroup
	for shard := 0; shard < k; shard++ {
		if len(bySrc[shard]) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			results[shard] = f.subJoin(shard, bySrc[shard], req.Targets)
		}(shard)
	}
	wg.Wait()

	pairs := make([][2]int64, 0)
	count, scanned := 0, 0
	epochs := make([]string, 0, k)
	for shard := range results {
		res := &results[shard]
		if len(bySrc[shard]) == 0 {
			continue
		}
		if res.err != nil {
			f.unavailable.Inc()
			f.fail(w, "join", fmt.Sprintf("shard %d: %v", shard, res.err), http.StatusBadGateway)
			return
		}
		if res.status != http.StatusOK {
			// Deterministic refusals (400 bad vertex, 413 over a cap)
			// speak for the whole join: relay the first one verbatim.
			f.reg.Counter(obs.Label("fleet_http_errors_total", "handler", "join")).Inc()
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(res.status)
			if _, err := w.Write(res.body); err != nil {
				f.logDropped(err)
			}
			return
		}
		pairs = append(pairs, res.pairs...)
		count += res.count
		scanned += res.scanned
		epochs = append(epochs, res.epoch)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})

	w.Header().Set("Content-Type", "application/x-ndjson")
	if e := uniformEpoch(epochs); e != "" {
		w.Header().Set("X-Reachlab-Epoch", e)
	}
	enc := json.NewEncoder(w)
	for _, p := range pairs {
		if err := enc.Encode(map[string]int64{"s": p[0], "t": p[1]}); err != nil {
			f.logDropped(err)
			return
		}
	}
	if err := enc.Encode(map[string]any{"done": true, "count": count, "scanned": scanned}); err != nil {
		f.logDropped(err)
		return
	}
	f.proxyHist.Observe(time.Since(start).Seconds())
}

// subJoin sends one shard's sources (with the full target list) to the
// shard owner and parses the NDJSON sub-stream back into pairs plus
// the summary.
func (f *Fleet) subJoin(shard int, sources, targets []int64) (out struct {
	pairs   [][2]int64
	count   int
	scanned int
	epoch   string
	status  int
	body    []byte
	err     error
}) {
	body, err := json.Marshal(joinRequest{Sources: sources, Targets: targets})
	if err != nil {
		out.err = err
		return out
	}
	resp, data, _, err := f.forward(f.replicas[shard], http.MethodPost, "/reach/join", body)
	if err != nil {
		out.err = err
		return out
	}
	out.status = resp.StatusCode
	out.epoch = resp.Header.Get("X-Reachlab-Epoch")
	if resp.StatusCode != http.StatusOK {
		out.body = data
		return out
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	done := false
	for dec.More() {
		var line joinLine
		if err := dec.Decode(&line); err != nil {
			out.err = fmt.Errorf("decoding join stream: %w", err)
			return out
		}
		switch {
		case line.Done:
			done = true
			out.count = line.Count
			out.scanned = line.Scanned
		case line.S != nil && line.T != nil:
			out.pairs = append(out.pairs, [2]int64{*line.S, *line.T})
		default:
			out.err = fmt.Errorf("unrecognized join stream line")
			return out
		}
	}
	if !done {
		out.err = errors.New("join sub-stream truncated (no done line)")
		return out
	}
	if out.count != len(out.pairs) {
		out.err = fmt.Errorf("join summary claims %d pairs, stream carried %d", out.count, len(out.pairs))
	}
	return out
}

// readBody drains a MaxBytesReader-wrapped request body.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

// failBody maps a body-read failure to 413 (limit hit) or 400.
func (f *Fleet) failBody(w http.ResponseWriter, handler string, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		f.fail(w, handler, fmt.Sprintf("request body over %d bytes", tooBig.Limit),
			http.StatusRequestEntityTooLarge)
		return
	}
	f.fail(w, handler, fmt.Sprintf("reading request: %v", err), http.StatusBadRequest)
}

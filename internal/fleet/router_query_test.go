package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
)

// dedupSorted returns vs sorted with duplicates removed — the list
// normalization the real join endpoint performs.
func dedupSorted(vs []int64) []int64 {
	out := append([]int64(nil), vs...)
	slices.Sort(out)
	return slices.Compact(out)
}

// joinOracle computes the pair set a single replica would stream for
// (sources, targets) under fakeAnswer.
func joinOracle(sources, targets []int64) (pairs [][2]int64, scanned int) {
	srcs, tgts := dedupSorted(sources), dedupSorted(targets)
	for _, s := range srcs {
		for _, t := range tgts {
			if fakeAnswer(s, t) {
				pairs = append(pairs, [2]int64{s, t})
			}
		}
	}
	return pairs, len(srcs) * len(tgts)
}

// decodeJoinStream parses an NDJSON join response into its pairs and
// summary, failing the test on malformed lines or a missing summary.
func decodeJoinStream(t *testing.T, body *bufio.Scanner) (pairs [][2]int64, count, scanned int) {
	t.Helper()
	done := false
	for body.Scan() {
		line := strings.TrimSpace(body.Text())
		if line == "" {
			continue
		}
		if done {
			t.Fatalf("line after the done summary: %s", line)
		}
		var rec struct {
			S, T    *int64
			Done    bool
			Count   int
			Scanned int
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad join line %q: %v", line, err)
		}
		if rec.Done {
			done, count, scanned = true, rec.Count, rec.Scanned
			continue
		}
		if rec.S == nil || rec.T == nil {
			t.Fatalf("join line with neither pair nor summary: %s", line)
		}
		pairs = append(pairs, [2]int64{*rec.S, *rec.T})
	}
	if err := body.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("join stream ended without a done summary")
	}
	return pairs, count, scanned
}

// TestShardedRichQueryAffinity: path, count, and from land on the
// shard owner with correct pass-through answers and epoch headers.
func TestShardedRichQueryAffinity(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Sharded, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	for s := int64(0); s < 6; s++ {
		// Witness path: reachable answers carry a path, epoch passes
		// through.
		resp, err := http.Get(fmt.Sprintf("%s/reach/path?s=%d&t=9", router.URL, s))
		if err != nil {
			t.Fatal(err)
		}
		var pr struct {
			Reachable bool    `json:"reachable"`
			Path      []int64 `json:"path"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Reachlab-Epoch") != "1" {
			t.Fatalf("path(%d,9): status %d epoch %q", s, resp.StatusCode, resp.Header.Get("X-Reachlab-Epoch"))
		}
		if want := fakeAnswer(s, 9); pr.Reachable != want || (want && len(pr.Path) == 0) {
			t.Errorf("path(%d,9) = %+v, want reachable=%v with a path", s, pr, want)
		}

		// Set-size count.
		resp, err = http.Get(fmt.Sprintf("%s/reach/count?s=%d", router.URL, s))
		if err != nil {
			t.Fatal(err)
		}
		var cr struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := fakes[0].fakeCount(s); cr.Count != want {
			t.Errorf("count(%d) = %d, want %d", s, cr.Count, want)
		}

		// One-source sweep.
		body, _ := json.Marshal(map[string]any{"s": s, "targets": []int64{1, 9, 42}})
		resp, err = http.Post(router.URL+"/reach/from", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var fr struct {
			Results []bool `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := []bool{fakeAnswer(s, 1), fakeAnswer(s, 9), fakeAnswer(s, 42)}
		if !slices.Equal(fr.Results, want) {
			t.Errorf("from(%d) = %v, want %v", s, fr.Results, want)
		}
	}

	// Every rich query landed on its source's shard owner.
	for i, fr := range fakes {
		for _, s := range fr.servedSources() {
			if int(s%3) != i {
				t.Errorf("replica %d answered source %d (shard %d)", i, s, s%3)
			}
		}
	}
}

// TestShardedJoinSplitMerge: a join through the router must reproduce
// the single-replica answer exactly — same pair set in (s, t) order,
// summed count/scanned, uniform epoch — with each replica scanning
// only its own sources.
func TestShardedJoinSplitMerge(t *testing.T) {
	fakes, _, f := testFleet(t, 3, Sharded, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	sources := []int64{5, 0, 7, 2, 5, 9, 0, 14} // duplicates on purpose
	targets := []int64{3, 3, 8, 1, 42, 17}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	resp, err := http.Post(router.URL+"/reach/join", "application/x-ndjson", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("join Content-Type %q", ct)
	}
	if e := resp.Header.Get("X-Reachlab-Epoch"); e != "1" {
		t.Errorf("join epoch header %q, want \"1\"", e)
	}
	pairs, count, scanned := decodeJoinStream(t, bufio.NewScanner(resp.Body))

	wantPairs, wantScanned := joinOracle(sources, targets)
	if !slices.Equal(flatten(pairs), flatten(wantPairs)) {
		t.Errorf("join pairs = %v, want %v", pairs, wantPairs)
	}
	if count != len(wantPairs) || scanned != wantScanned {
		t.Errorf("join summary count=%d scanned=%d, want %d/%d", count, scanned, len(wantPairs), wantScanned)
	}
	if !slices.IsSortedFunc(pairs, func(a, b [2]int64) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	}) {
		t.Errorf("join pairs not sorted by (s, t): %v", pairs)
	}

	// Source partition: each replica joined only its own sources, and
	// every unique source was scanned exactly once fleet-wide.
	seen := map[int64]int{}
	for i, fr := range fakes {
		for _, s := range fr.servedSources() {
			if int(s%3) != i {
				t.Errorf("replica %d joined source %d (shard %d)", i, s, s%3)
			}
			seen[s]++
		}
	}
	for _, s := range dedupSorted(sources) {
		if seen[s] != 1 {
			t.Errorf("source %d scanned %d times, want 1", s, seen[s])
		}
	}
}

func flatten(pairs [][2]int64) []int64 {
	out := make([]int64, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p[0], p[1])
	}
	return out
}

// TestJoinErrorPaths: a deterministic replica 400 relays verbatim; a
// truncated sub-stream (no done line) fails closed with 502 instead of
// a silent partial merge.
func TestJoinErrorPaths(t *testing.T) {
	truncate := false
	_, _, f := testFleet(t, 3, Sharded, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if truncate && r.URL.Path == "/reach/join" {
				// A stream that dies before its summary line.
				w.Header().Set("Content-Type", "application/x-ndjson")
				fmt.Fprintln(w, `{"s":1,"t":3}`)
				return
			}
			h.ServeHTTP(w, r)
		})
	}, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 3 })
	router := httptest.NewServer(f)
	defer router.Close()

	// Out-of-range vertex → the replica's 400 comes straight back.
	body, _ := json.Marshal(map[string]any{"sources": []int64{1, -4}, "targets": []int64{3}})
	resp, err := http.Post(router.URL+"/reach/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-vertex join status %d, want 400", resp.StatusCode)
	}

	// Truncated sub-stream → 502, not a partial result.
	truncate = true
	body, _ = json.Marshal(map[string]any{"sources": []int64{0, 1, 2}, "targets": []int64{3, 9}})
	resp, err = http.Post(router.URL+"/reach/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("truncated join status %d, want 502", resp.StatusCode)
	}
}

// TestReplicatedJoinPassthrough: in Replicated mode the join forwards
// whole and the NDJSON stream relays untouched.
func TestReplicatedJoinPassthrough(t *testing.T) {
	fakes, _, f := testFleet(t, 2, Replicated, nil, nil)
	waitFor(t, "all replicas up", func() bool { return len(f.healthy()) == 2 })
	router := httptest.NewServer(f)
	defer router.Close()

	sources, targets := []int64{4, 2, 2}, []int64{0, 1, 2, 3}
	body, _ := json.Marshal(map[string]any{"sources": sources, "targets": targets})
	resp, err := http.Post(router.URL+"/reach/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", resp.StatusCode)
	}
	pairs, count, scanned := decodeJoinStream(t, bufio.NewScanner(resp.Body))
	wantPairs, wantScanned := joinOracle(sources, targets)
	if !slices.Equal(flatten(pairs), flatten(wantPairs)) || count != len(wantPairs) || scanned != wantScanned {
		t.Errorf("join = %v (count %d, scanned %d), want %v (%d, %d)",
			pairs, count, scanned, wantPairs, len(wantPairs), wantScanned)
	}
	// Exactly one replica did the whole join.
	calls := 0
	for _, fr := range fakes {
		fr.mu.Lock()
		calls += fr.joinCalls
		fr.mu.Unlock()
	}
	if calls != 1 {
		t.Errorf("join hit %d replicas in Replicated mode, want 1", calls)
	}
}

package fleet

import "log"

// Batch planning: a /reach/batch request is deduplicated and
// partitioned by source rank before it is fanned out, then the
// answers are expanded back into caller order. The plan is pure data
// — no I/O — so the split/merge invariants (caller order preserved,
// duplicates asked once) are unit-testable without a fleet.

// batchPlan is the split of one incoming batch.
type batchPlan struct {
	// uniq holds the distinct pairs in first-appearance order.
	uniq [][2]int64
	// posToUniq maps each caller position to its pair's slot in uniq.
	posToUniq []int
	// groups[g] lists uniq indices owned by shard g (shard(s) =
	// s mod len(groups)); with one group everything lands in
	// groups[0]. Within a group, uniq order (and therefore caller
	// first-appearance order) is preserved.
	groups [][]int
}

// splitBatch plans a batch over k shards. Duplicate pairs collapse to
// one upstream ask; every caller position keeps its answer because
// the merge step expands through posToUniq.
func splitBatch(pairs [][2]int64, k int) batchPlan {
	if k < 1 {
		k = 1
	}
	plan := batchPlan{
		uniq:      make([][2]int64, 0, len(pairs)),
		posToUniq: make([]int, len(pairs)),
		groups:    make([][]int, k),
	}
	slot := make(map[[2]int64]int, len(pairs))
	for i, p := range pairs {
		u, ok := slot[p]
		if !ok {
			u = len(plan.uniq)
			slot[p] = u
			plan.uniq = append(plan.uniq, p)
			g := 0
			if k > 1 && p[0] >= 0 {
				g = int(p[0] % int64(k))
			}
			plan.groups[g] = append(plan.groups[g], u)
		}
		plan.posToUniq[i] = u
	}
	return plan
}

// logDropped records a response-write failure that cannot be
// reported to the (gone) client.
func logDropped(err error) {
	log.Printf("fleet: writing JSON response: %v", err)
}

// Package gen provides seeded synthetic graph generators, one per
// structural family of the paper's 18 evaluation datasets (Table V).
//
// The real datasets are multi-gigabyte downloads (SNAP, Konect, LAW,
// NetworkRepository); this environment has no network access, so each
// paper graph is replaced by a generator reproducing its family's
// structural regime — the properties the labeling algorithms are
// sensitive to:
//
//	Web        hierarchical copying model with hub pages and
//	           intra-site back links → skewed degrees, medium SCCs
//	Citation   preferential attachment, edges only new→old → DAG
//	Social     preferential attachment with reciprocation → one giant
//	           SCC, heavy-tailed degrees
//	Knowledge  sparse tree backbone plus cross links → shallow, wide
//	Biology    layered ontology DAG (GO-style) → short paths, high
//	           fan-out
//	Synthetic  RMAT/Kronecker as in Graph500
//
// Every generator is deterministic in (parameters, seed).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Family names a structural regime from Table V.
type Family string

// The supported families.
const (
	Web       Family = "web"
	Citation  Family = "citation"
	Social    Family = "social"
	Knowledge Family = "knowledge"
	Biology   Family = "biology"
	Synthetic Family = "synthetic"
)

// Families lists every supported family.
func Families() []Family {
	return []Family{Web, Citation, Social, Knowledge, Biology, Synthetic}
}

// Params configures a generated graph.
type Params struct {
	Family Family
	// N is the number of vertices.
	N int
	// AvgDegree is the target average out-degree.
	AvgDegree float64
	// Seed makes the output deterministic.
	Seed int64
}

// Edges generates the edge stream for p. The stream order matters:
// the scalability experiment (Fig. 7) takes prefixes of it.
func Edges(p Params) ([]graph.Edge, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("gen: vertex count %d must be positive", p.N)
	}
	if p.AvgDegree <= 0 {
		p.AvgDegree = 4
	}
	rng := rand.New(rand.NewSource(p.Seed))
	switch p.Family {
	case Web:
		return webEdges(p.N, p.AvgDegree, rng), nil
	case Citation:
		return citationEdges(p.N, p.AvgDegree, rng), nil
	case Social:
		return socialEdges(p.N, p.AvgDegree, rng), nil
	case Knowledge:
		return knowledgeEdges(p.N, p.AvgDegree, rng), nil
	case Biology:
		return biologyEdges(p.N, p.AvgDegree, rng), nil
	case Synthetic:
		return rmatEdges(p.N, p.AvgDegree, rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q", p.Family)
	}
}

// Generate builds the graph for p.
func Generate(p Params) (*graph.Digraph, error) {
	edges, err := Edges(p)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(p.N, edges), nil
}

// webEdges: linear-growth copying model. Each new page links to a few
// targets, copying the out-links of a random earlier page with
// probability copyP (produces hub pages and skewed in-degrees); with
// probability backP a target links back (intra-site navigation),
// forming medium-size cycles.
func webEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	const copyP, backP = 0.55, 0.12
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		for j := 0; j < perVertex; j++ {
			var t int
			if rng.Float64() < copyP && len(edges) > 0 {
				// Copy a random existing link's target: preferential
				// attachment by in-degree.
				t = int(edges[rng.Intn(len(edges))].V)
			} else {
				t = rng.Intn(v)
			}
			if t == v {
				continue
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
			if rng.Float64() < backP {
				edges = append(edges, graph.Edge{U: graph.VertexID(t), V: graph.VertexID(v)})
			}
		}
	}
	return edges
}

// citationEdges: edges strictly from newer to older vertices — a DAG,
// like Citeseerx and Cit-patent. Citations mix strong preferential
// attachment (landmark papers dominate, which is what keeps 2-hop
// labels small on real citation graphs) with recency (papers mostly
// cite the recent literature).
func citationEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	// Papers live in research areas and overwhelmingly cite within
	// their own area; the occasional cross-area citation goes to a
	// well-cited paper. This community structure is what keeps the
	// transitive closure — and therefore the 2-hop labels — sparse on
	// real citation graphs.
	numCats := n/800 + 1
	perCat := make([][]int32, numCats)   // older papers per area
	catCited := make([][]int32, numCats) // citation targets per area (preferential pool)
	var allCited []int32                 // global preferential pool
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		c := rng.Intn(numCats)
		for j := 0; j < perVertex; j++ {
			var t int32 = -1
			r := rng.Float64()
			switch {
			case r < 0.05 && len(allCited) > 0:
				t = allCited[rng.Intn(len(allCited))] // cross-area landmark
			case r < 0.65 && len(catCited[c]) > 0:
				t = catCited[c][rng.Intn(len(catCited[c]))]
			case len(perCat[c]) > 0:
				t = perCat[c][rng.Intn(len(perCat[c]))]
			}
			if t < 0 || int(t) >= v { // keep the DAG invariant
				continue
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
			catCited[c] = append(catCited[c], t)
			allCited = append(allCited, t)
		}
		perCat[c] = append(perCat[c], int32(v))
	}
	return edges
}

// socialEdges: directed preferential attachment with reciprocation,
// yielding a giant SCC and heavy-tailed degrees (Twitter/Sina-weibo
// regime).
func socialEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	const reciprocateP = 0.3
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		for j := 0; j < perVertex; j++ {
			var t int
			if rng.Float64() < 0.7 && len(edges) > 0 {
				t = int(edges[rng.Intn(len(edges))].V)
			} else {
				t = rng.Intn(v)
			}
			if t == v {
				continue
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
			if rng.Float64() < reciprocateP {
				edges = append(edges, graph.Edge{U: graph.VertexID(t), V: graph.VertexID(v)})
			}
		}
	}
	return edges
}

// knowledgeEdges: a shallow forest backbone (instance→class edges)
// plus sparse cross references — the DBpedia regime: low degrees,
// mostly acyclic, many tiny components reaching a small core.
func knowledgeEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	var edges []graph.Edge
	core := n / 50
	if core < 1 {
		core = 1
	}
	for v := core; v < n; v++ {
		// Parent link into the earlier part of the graph, biased to
		// the core.
		var t int
		if rng.Float64() < 0.4 {
			t = rng.Intn(core)
		} else {
			t = rng.Intn(v)
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
	}
	// Cross references: mostly toward earlier (more general) entities
	// so the graph stays largely acyclic with only small local cycles,
	// the DBpedia regime.
	extra := int(float64(n)*avg) - len(edges)
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		t := rng.Intn(n)
		if u == t {
			continue
		}
		if t > u {
			u, t = t, u
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(t)})
		// A sprinkle of reciprocal links (redirect pairs, see-also
		// loops) keeps the family non-acyclic without a giant SCC.
		if rng.Float64() < 0.01 {
			edges = append(edges, graph.Edge{U: graph.VertexID(t), V: graph.VertexID(u)})
		}
	}
	return edges
}

// biologyEdges: a layered ontology DAG in the Go-uniprot style —
// annotation vertices point into a term hierarchy that narrows toward
// a handful of roots.
func biologyEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	// The first tenth of the vertices form the term hierarchy; the
	// rest are annotations pointing into it.
	terms := n / 10
	if terms < 2 {
		terms = 2
	}
	if terms > n {
		terms = n
	}
	var edges []graph.Edge
	for v := 1; v < terms; v++ {
		// is-a edges toward lower-numbered (more general) terms.
		parents := 1 + rng.Intn(2)
		for j := 0; j < parents; j++ {
			t := rng.Intn(v)
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
		}
	}
	perAnnot := int(avg + 0.5)
	if perAnnot < 1 {
		perAnnot = 1
	}
	for v := terms; v < n; v++ {
		for j := 0; j < perAnnot; j++ {
			t := rng.Intn(terms)
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)})
		}
	}
	return edges
}

// rmatEdges: the Graph500 RMAT/Kronecker generator with the standard
// (0.57, 0.19, 0.19, 0.05) partition probabilities.
func rmatEdges(n int, avg float64, rng *rand.Rand) []graph.Edge {
	// Round n up to a power of two for the recursive partition, then
	// fold overflowing IDs back into range.
	scale := 0
	for 1<<scale < n {
		scale++
	}
	m := int(float64(n) * avg)
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		u %= n
		v %= n
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	return edges
}

// Package gen provides seeded synthetic graph generators, one per
// structural family of the paper's 18 evaluation datasets (Table V).
//
// The real datasets are multi-gigabyte downloads (SNAP, Konect, LAW,
// NetworkRepository); this environment has no network access, so each
// paper graph is replaced by a generator reproducing its family's
// structural regime — the properties the labeling algorithms are
// sensitive to:
//
//	Web        hierarchical copying model with hub pages and
//	           intra-site back links → skewed degrees, medium SCCs
//	Citation   preferential attachment, edges only new→old → DAG
//	Social     preferential attachment with reciprocation → one giant
//	           SCC, heavy-tailed degrees
//	Knowledge  sparse tree backbone plus cross links → shallow, wide
//	Biology    layered ontology DAG (GO-style) → short paths, high
//	           fan-out
//	Synthetic  RMAT/Kronecker as in Graph500
//
// Every generator is deterministic in (parameters, seed).
//
// Generators are written in emit style: each produces its edge stream
// through a callback, holding only its preferential-attachment pools
// (4 bytes per edge for the copying models, less for the rest) instead
// of the full edge slice. Edges collects the stream into a slice;
// Stream exposes it replayably so graph.FromEdgeStream can build the
// CSR without the slice ever existing — the generate-and-label path
// for graphs that stress one machine's memory.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Family names a structural regime from Table V.
type Family string

// The supported families.
const (
	Web       Family = "web"
	Citation  Family = "citation"
	Social    Family = "social"
	Knowledge Family = "knowledge"
	Biology   Family = "biology"
	Synthetic Family = "synthetic"
)

// Families lists every supported family.
func Families() []Family {
	return []Family{Web, Citation, Social, Knowledge, Biology, Synthetic}
}

// Params configures a generated graph.
type Params struct {
	Family Family
	// N is the number of vertices.
	N int
	// AvgDegree is the target average out-degree.
	AvgDegree float64
	// Seed makes the output deterministic.
	Seed int64
}

// EmitEdges streams the edge sequence of p to emit, in generation
// order — exactly the sequence Edges returns as a slice. An error
// from emit aborts generation and is returned unchanged.
func EmitEdges(p Params, emit func(graph.Edge) error) error {
	if p.N <= 0 {
		return fmt.Errorf("gen: vertex count %d must be positive", p.N)
	}
	if p.AvgDegree <= 0 {
		p.AvgDegree = 4
	}
	rng := rand.New(rand.NewSource(p.Seed))
	switch p.Family {
	case Web:
		return webEdges(p.N, p.AvgDegree, rng, emit)
	case Citation:
		return citationEdges(p.N, p.AvgDegree, rng, emit)
	case Social:
		return socialEdges(p.N, p.AvgDegree, rng, emit)
	case Knowledge:
		return knowledgeEdges(p.N, p.AvgDegree, rng, emit)
	case Biology:
		return biologyEdges(p.N, p.AvgDegree, rng, emit)
	case Synthetic:
		return rmatEdges(p.N, p.AvgDegree, rng, emit)
	default:
		return fmt.Errorf("gen: unknown family %q", p.Family)
	}
}

// Edges generates the edge stream for p as a slice. The stream order
// matters: the scalability experiment (Fig. 7) takes prefixes of it.
func Edges(p Params) ([]graph.Edge, error) {
	var edges []graph.Edge
	if err := EmitEdges(p, func(e graph.Edge) error {
		edges = append(edges, e)
		return nil
	}); err != nil {
		return nil, err
	}
	return edges, nil
}

// Stream returns the replayable edge stream of p: every invocation
// regenerates the identical sequence from the seed, which is what
// graph.FromEdgeStream's two passes need.
func Stream(p Params) graph.EdgeStreamFunc {
	return func(emit func(graph.Edge) error) error {
		return EmitEdges(p, emit)
	}
}

// Generate builds the graph for p through the in-memory edge slice.
func Generate(p Params) (*graph.Digraph, error) {
	edges, err := Edges(p)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(p.N, edges), nil
}

// GenerateStreamed builds the graph for p without materializing the
// edge slice: the generator runs twice (count pass, placement pass)
// and the peak footprint is the CSR plus the generator's pools. The
// result is byte-identical to Generate.
func GenerateStreamed(p Params) (*graph.Digraph, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("gen: vertex count %d must be positive", p.N)
	}
	return graph.FromEdgeStream(p.N, Stream(p))
}

// webEdges: linear-growth copying model. Each new page links to a few
// targets, copying the out-links of a random earlier page with
// probability copyP (produces hub pages and skewed in-degrees); with
// probability backP a target links back (intra-site navigation),
// forming medium-size cycles. The target pool stands in for the edge
// history: entry i is the target of the i-th emitted edge, so sampling
// it consumes the rng exactly as indexing the edge slice used to.
func webEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	const copyP, backP = 0.55, 0.12
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	var targets []graph.VertexID
	put := func(u, v int) error {
		targets = append(targets, graph.VertexID(v))
		return emit(graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	for v := 1; v < n; v++ {
		for j := 0; j < perVertex; j++ {
			var t int
			if rng.Float64() < copyP && len(targets) > 0 {
				// Copy a random existing link's target: preferential
				// attachment by in-degree.
				t = int(targets[rng.Intn(len(targets))])
			} else {
				t = rng.Intn(v)
			}
			if t == v {
				continue
			}
			if err := put(v, t); err != nil {
				return err
			}
			if rng.Float64() < backP {
				if err := put(t, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// citationEdges: edges strictly from newer to older vertices — a DAG,
// like Citeseerx and Cit-patent. Citations mix strong preferential
// attachment (landmark papers dominate, which is what keeps 2-hop
// labels small on real citation graphs) with recency (papers mostly
// cite the recent literature).
func citationEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	// Papers live in research areas and overwhelmingly cite within
	// their own area; the occasional cross-area citation goes to a
	// well-cited paper. This community structure is what keeps the
	// transitive closure — and therefore the 2-hop labels — sparse on
	// real citation graphs.
	numCats := n/800 + 1
	perCat := make([][]int32, numCats)   // older papers per area
	catCited := make([][]int32, numCats) // citation targets per area (preferential pool)
	var allCited []int32                 // global preferential pool
	for v := 0; v < n; v++ {
		c := rng.Intn(numCats)
		for j := 0; j < perVertex; j++ {
			var t int32 = -1
			r := rng.Float64()
			switch {
			case r < 0.05 && len(allCited) > 0:
				t = allCited[rng.Intn(len(allCited))] // cross-area landmark
			case r < 0.65 && len(catCited[c]) > 0:
				t = catCited[c][rng.Intn(len(catCited[c]))]
			case len(perCat[c]) > 0:
				t = perCat[c][rng.Intn(len(perCat[c]))]
			}
			if t < 0 || int(t) >= v { // keep the DAG invariant
				continue
			}
			if err := emit(graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)}); err != nil {
				return err
			}
			catCited[c] = append(catCited[c], t)
			allCited = append(allCited, t)
		}
		perCat[c] = append(perCat[c], int32(v))
	}
	return nil
}

// socialEdges: directed preferential attachment with reciprocation,
// yielding a giant SCC and heavy-tailed degrees (Twitter/Sina-weibo
// regime). The target pool replaces the edge history as in webEdges.
func socialEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	const reciprocateP = 0.3
	perVertex := int(avg + 0.5)
	if perVertex < 1 {
		perVertex = 1
	}
	var targets []graph.VertexID
	put := func(u, v int) error {
		targets = append(targets, graph.VertexID(v))
		return emit(graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	for v := 1; v < n; v++ {
		for j := 0; j < perVertex; j++ {
			var t int
			if rng.Float64() < 0.7 && len(targets) > 0 {
				t = int(targets[rng.Intn(len(targets))])
			} else {
				t = rng.Intn(v)
			}
			if t == v {
				continue
			}
			if err := put(v, t); err != nil {
				return err
			}
			if rng.Float64() < reciprocateP {
				if err := put(t, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// knowledgeEdges: a shallow forest backbone (instance→class edges)
// plus sparse cross references — the DBpedia regime: low degrees,
// mostly acyclic, many tiny components reaching a small core.
func knowledgeEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	core := n / 50
	if core < 1 {
		core = 1
	}
	emitted := 0
	put := func(u, v int) error {
		emitted++
		return emit(graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	for v := core; v < n; v++ {
		// Parent link into the earlier part of the graph, biased to
		// the core.
		var t int
		if rng.Float64() < 0.4 {
			t = rng.Intn(core)
		} else {
			t = rng.Intn(v)
		}
		if err := put(v, t); err != nil {
			return err
		}
	}
	// Cross references: mostly toward earlier (more general) entities
	// so the graph stays largely acyclic with only small local cycles,
	// the DBpedia regime.
	extra := int(float64(n)*avg) - emitted
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		t := rng.Intn(n)
		if u == t {
			continue
		}
		if t > u {
			u, t = t, u
		}
		if err := put(u, t); err != nil {
			return err
		}
		// A sprinkle of reciprocal links (redirect pairs, see-also
		// loops) keeps the family non-acyclic without a giant SCC.
		if rng.Float64() < 0.01 {
			if err := put(t, u); err != nil {
				return err
			}
		}
	}
	return nil
}

// biologyEdges: a layered ontology DAG in the Go-uniprot style —
// annotation vertices point into a term hierarchy that narrows toward
// a handful of roots.
func biologyEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	// The first tenth of the vertices form the term hierarchy; the
	// rest are annotations pointing into it.
	terms := n / 10
	if terms < 2 {
		terms = 2
	}
	if terms > n {
		terms = n
	}
	for v := 1; v < terms; v++ {
		// is-a edges toward lower-numbered (more general) terms.
		parents := 1 + rng.Intn(2)
		for j := 0; j < parents; j++ {
			t := rng.Intn(v)
			if err := emit(graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)}); err != nil {
				return err
			}
		}
	}
	perAnnot := int(avg + 0.5)
	if perAnnot < 1 {
		perAnnot = 1
	}
	for v := terms; v < n; v++ {
		for j := 0; j < perAnnot; j++ {
			t := rng.Intn(terms)
			if err := emit(graph.Edge{U: graph.VertexID(v), V: graph.VertexID(t)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// rmatEdges: the Graph500 RMAT/Kronecker generator with the standard
// (0.57, 0.19, 0.19, 0.05) partition probabilities.
func rmatEdges(n int, avg float64, rng *rand.Rand, emit func(graph.Edge) error) error {
	// Round n up to a power of two for the recursive partition, then
	// fold overflowing IDs back into range.
	scale := 0
	for 1<<scale < n {
		scale++
	}
	m := int(float64(n) * avg)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		u %= n
		v %= n
		if err := emit(graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)}); err != nil {
			return err
		}
	}
	return nil
}

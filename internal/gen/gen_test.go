package gen

import (
	"testing"

	"repro/internal/graph"
)

// TestDeterminism: same parameters, same graph.
func TestDeterminism(t *testing.T) {
	for _, f := range Families() {
		p := Params{Family: f, N: 500, AvgDegree: 3, Seed: 11}
		a, err := Edges(p)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := Edges(p)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic edge count", f)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic edge %d", f, i)
			}
		}
		// A different seed must differ somewhere.
		p.Seed = 12
		c, err := Edges(p)
		if err != nil {
			t.Fatal(err)
		}
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seed has no effect", f)
		}
	}
}

// TestEdgeValidity: all generated edges stay in range and graphs are
// roughly the requested size.
func TestEdgeValidity(t *testing.T) {
	for _, f := range Families() {
		const n = 2000
		g, err := Generate(Params{Family: f, N: n, AvgDegree: 4, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if g.NumVertices() != n {
			t.Errorf("%s: %d vertices, want %d", f, g.NumVertices(), n)
		}
		m := g.NumEdges()
		if m < n || m > 8*n {
			t.Errorf("%s: %d edges for avg degree 4 on %d vertices", f, m, n)
		}
	}
}

// TestFamilyRegimes asserts the structural property each family
// stands in for (the substitution contract of DESIGN.md §3).
func TestFamilyRegimes(t *testing.T) {
	build := func(f Family, deg float64) (*graph.Digraph, graph.Stats) {
		g, err := Generate(Params{Family: f, N: 4000, AvgDegree: deg, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		return g, graph.ComputeStats(g)
	}

	if _, s := build(Citation, 4); !s.Acyclic {
		t.Error("citation graphs must be DAGs")
	}
	if _, s := build(Biology, 5); !s.Acyclic {
		t.Error("biology (ontology) graphs must be DAGs")
	}
	if _, s := build(Social, 4); float64(s.LargestSCC) < 0.3*4000 {
		t.Errorf("social graphs need a giant SCC, largest = %d", s.LargestSCC)
	}
	if _, s := build(Web, 4); s.Acyclic || s.LargestSCC < 10 {
		t.Errorf("web graphs have medium cycles, largest SCC = %d", s.LargestSCC)
	}
	if _, s := build(Knowledge, 3); float64(s.LargestSCC) > 0.1*4000 {
		t.Errorf("knowledge graphs are mostly acyclic, largest SCC = %d", s.LargestSCC)
	}
	// Degree skew for the preferential families.
	g, s := build(Social, 4)
	if s.MaxInDegree < 20*int(float64(g.NumEdges())/4000) {
		t.Errorf("social in-degree not heavy-tailed: max %d", s.MaxInDegree)
	}
}

func TestParamErrors(t *testing.T) {
	if _, err := Edges(Params{Family: Web, N: 0}); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := Edges(Params{Family: "nope", N: 10}); err == nil {
		t.Error("expected error for unknown family")
	}
	// AvgDegree defaults when unset.
	if _, err := Edges(Params{Family: Web, N: 10}); err != nil {
		t.Errorf("default degree should work: %v", err)
	}
}

func TestTinyGraphs(t *testing.T) {
	for _, f := range Families() {
		for _, n := range []int{1, 2, 3} {
			if _, err := Generate(Params{Family: f, N: n, AvgDegree: 2, Seed: 1}); err != nil {
				t.Errorf("%s n=%d: %v", f, n, err)
			}
		}
	}
}

// Package grail implements GRAIL (Yildirim, Chaoji, Zaki — VLDB
// 2010), the interval-labeling index-assisted approach from the
// paper's related work (§V, [7]). It is not part of the paper's
// head-to-head evaluation — BFL superseded it — but it rounds out the
// baseline families this repository provides: index-only (TOL/DRL),
// Bloom-filter (BFL), and interval (GRAIL).
//
// GRAIL assigns every vertex k interval labels from k randomized
// post-order traversals of the DAG: L_i(v) = [low_i(v), post_i(v)]
// with low_i(v) the smallest post rank in v's reachable set. If u
// reaches v then L_i(u) ⊇ L_i(v) for every i, so any non-containment
// proves unreachability; containment in all k labels is inconclusive
// and falls back to a label-pruned DFS. Because interval soundness
// needs acyclicity, the index is built over the SCC condensation
// (this is also how the original system handles cyclic inputs).
package grail

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// DefaultTraversals is the default number of randomized traversals k.
const DefaultTraversals = 3

// Options configures GRAIL construction.
type Options struct {
	// Traversals is k (default DefaultTraversals).
	Traversals int
	// Seed drives the randomized traversal orders.
	Seed int64
}

// Index is the GRAIL reachability index.
type Index struct {
	cond *graph.Digraph
	comp []int32
	k    int
	// low[i*nc + c], post[i*nc + c] for traversal i, component c.
	low, post []int32
}

// Build constructs the GRAIL index for g (cyclic inputs allowed; the
// labels live on the condensation).
func Build(g *graph.Digraph, opt Options) (*Index, error) {
	k := opt.Traversals
	if k == 0 {
		k = DefaultTraversals
	}
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("grail: traversal count %d out of range [1, 64]", k)
	}
	cond, comp := graph.Condense(g)
	nc := cond.NumVertices()
	x := &Index{
		cond: cond,
		comp: comp,
		k:    k,
		low:  make([]int32, k*nc),
		post: make([]int32, k*nc),
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := 0; i < k; i++ {
		x.assign(i, rng)
	}
	return x, nil
}

// assign computes the i-th traversal's post ranks (randomized child
// order) and derives low as the minimum post over the reachable set.
func (x *Index) assign(i int, rng *rand.Rand) {
	nc := x.cond.NumVertices()
	post := x.post[i*nc : (i+1)*nc]
	low := x.low[i*nc : (i+1)*nc]

	// Randomized iterative DFS over all roots in shuffled order.
	order := rng.Perm(nc)
	seen := make([]bool, nc)
	var clock int32
	type frame struct {
		v    graph.VertexID
		nbrs []graph.VertexID
		next int
	}
	shuffled := func(v graph.VertexID) []graph.VertexID {
		nbrs := append([]graph.VertexID(nil), x.cond.OutNeighbors(v)...)
		rng.Shuffle(len(nbrs), func(a, b int) { nbrs[a], nbrs[b] = nbrs[b], nbrs[a] })
		return nbrs
	}
	var stack []frame
	finish := make([]graph.VertexID, 0, nc) // vertices in finishing order
	for _, root := range order {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack, frame{v: graph.VertexID(root), nbrs: shuffled(graph.VertexID(root))})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			descended := false
			for top.next < len(top.nbrs) {
				w := top.nbrs[top.next]
				top.next++
				if !seen[w] {
					seen[w] = true
					stack = append(stack, frame{v: w, nbrs: shuffled(w)})
					descended = true
					break
				}
			}
			if descended {
				continue
			}
			post[top.v] = clock
			clock++
			finish = append(finish, top.v)
			stack = stack[:len(stack)-1]
		}
	}
	// low(v) = min(post(v), min over out-neighbors' low). Finishing
	// order puts every DAG descendant before its ancestors, so one
	// pass suffices.
	for _, v := range finish {
		lv := post[v]
		for _, w := range x.cond.OutNeighbors(v) {
			if low[w] < lv {
				lv = low[w]
			}
		}
		low[v] = lv
	}
}

// containsAll reports whether every interval of cu contains the
// corresponding interval of cv — the necessary condition for cu
// reaching cv.
func (x *Index) containsAll(cu, cv int32) bool {
	nc := x.cond.NumVertices()
	for i := 0; i < x.k; i++ {
		base := i * nc
		if x.low[base+int(cu)] > x.low[base+int(cv)] || x.post[base+int(cu)] < x.post[base+int(cv)] {
			return false
		}
	}
	return true
}

// Reachable answers q(s, t) exactly: interval pruning plus a fallback
// DFS over the condensation.
func (x *Index) Reachable(s, t graph.VertexID) bool {
	reach, _ := x.ReachableCounted(s, t)
	return reach
}

// ReachableCounted also reports how many condensation vertices the
// fallback expanded (0 when the labels decided).
func (x *Index) ReachableCounted(s, t graph.VertexID) (bool, int) {
	cs, ct := x.comp[s], x.comp[t]
	if cs == ct {
		return true, 0
	}
	if !x.containsAll(cs, ct) {
		return false, 0
	}
	// Fallback DFS with interval pruning.
	visited := map[int32]struct{}{cs: {}}
	stack := []int32{cs}
	expanded := 0
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		expanded++
		for _, w := range x.cond.OutNeighbors(graph.VertexID(c)) {
			cw := int32(w)
			if cw == ct {
				return true, expanded
			}
			if _, ok := visited[cw]; ok {
				continue
			}
			if !x.containsAll(cw, ct) {
				continue
			}
			visited[cw] = struct{}{}
			stack = append(stack, cw)
		}
	}
	return false, expanded
}

// SizeBytes reports the index footprint: k interval pairs per
// condensation vertex plus the component table.
func (x *Index) SizeBytes() int64 {
	return int64(len(x.low)+len(x.post))*4 + int64(len(x.comp))*4
}

// NumVertices returns the number of original-graph vertices covered.
func (x *Index) NumVertices() int { return len(x.comp) }

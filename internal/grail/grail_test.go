package grail

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomDigraph(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestGrailExact: the labels only prune; answers must match BFS on
// every pair, cyclic graphs included.
func TestGrailExact(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"paper":   graph.PaperExample(),
		"cyclic":  randomDigraph(40, 120, 2),
		"sparse":  randomDigraph(60, 70, 3),
		"single":  graph.FromEdges(1, nil),
		"2-cycle": graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 3, 5} {
			x, err := Build(g, Options{Traversals: k, Seed: 7})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			n := g.NumVertices()
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					want := graph.Reachable(g, graph.VertexID(s), graph.VertexID(d))
					if got := x.Reachable(graph.VertexID(s), graph.VertexID(d)); got != want {
						t.Fatalf("%s k=%d: q(%d,%d) = %v, want %v", name, k, s, d, got, want)
					}
				}
			}
		}
	}
}

// TestGrailIntervalSoundness: u→v in the condensation implies
// containment in every traversal.
func TestGrailIntervalSoundness(t *testing.T) {
	g := randomDigraph(50, 140, 9)
	x, err := Build(g, Options{Traversals: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nc := x.cond.NumVertices()
	for u := 0; u < nc; u++ {
		for v := 0; v < nc; v++ {
			if graph.Reachable(x.cond, graph.VertexID(u), graph.VertexID(v)) &&
				!x.containsAll(int32(u), int32(v)) {
				t.Fatalf("containment violated for reachable pair (%d,%d)", u, v)
			}
		}
	}
}

// TestGrailMoreTraversalsPruneMore: with more labels, fewer fallback
// expansions on unreachable pairs.
func TestGrailMoreTraversalsPruneMore(t *testing.T) {
	g := randomDigraph(200, 500, 4)
	x1, err := Build(g, Options{Traversals: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x5, err := Build(g, Options{Traversals: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var e1, e5 int
	for i := 0; i < 3000; i++ {
		s := graph.VertexID(rng.Intn(200))
		d := graph.VertexID(rng.Intn(200))
		_, c1 := x1.ReachableCounted(s, d)
		_, c5 := x5.ReachableCounted(s, d)
		e1 += c1
		e5 += c5
	}
	if e5 > e1 {
		t.Errorf("5 traversals expanded more (%d) than 1 (%d)", e5, e1)
	}
}

func TestGrailOptions(t *testing.T) {
	g := graph.PaperExample()
	if _, err := Build(g, Options{Traversals: -1}); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := Build(g, Options{Traversals: 100}); err == nil {
		t.Error("huge k should fail")
	}
	x, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumVertices() != 11 || x.SizeBytes() <= 0 {
		t.Errorf("bad index: n=%d bytes=%d", x.NumVertices(), x.SizeBytes())
	}
}

// TestGrailDeterministic: same seed, same labels.
func TestGrailDeterministic(t *testing.T) {
	g := randomDigraph(30, 80, 12)
	a, err := Build(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.low {
		if a.low[i] != b.low[i] || a.post[i] != b.post[i] {
			t.Fatal("nondeterministic labels")
		}
	}
}

package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Digraph.
// The zero value is ready to use.
type Builder struct {
	edges []Edge
	maxID VertexID
	// minVertices forces the built graph to contain at least this many
	// vertices even if the top IDs have no incident edges.
	minVertices int
}

// NewBuilder returns a Builder with capacity hints for n vertices and
// m edges. Both hints may be zero.
func NewBuilder(n int, m int) *Builder {
	return &Builder{edges: make([]Edge, 0, m), minVertices: n, maxID: -1}
}

// AddEdge records the directed edge u -> v. Duplicate edges are
// deduplicated at Build time; self-loops are kept (they never affect
// reachability but appear in real datasets).
func (b *Builder) AddEdge(u, v VertexID) *Builder {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id in edge (%d,%d)", u, v))
	}
	if u > b.maxID {
		b.maxID = u
	}
	if v > b.maxID {
		b.maxID = v
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
	return b
}

// AddEdges records a batch of directed edges.
func (b *Builder) AddEdges(edges []Edge) *Builder {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b
}

// EnsureVertices guarantees the built graph has at least n vertices.
func (b *Builder) EnsureVertices(n int) *Builder {
	if n > b.minVertices {
		b.minVertices = n
	}
	return b
}

// NumEdgesAdded returns the number of AddEdge calls so far (before
// deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build finalizes the graph. The builder may be reused afterwards; the
// built graph does not alias the builder's edge slice.
func (b *Builder) Build() *Digraph {
	n := int(b.maxID) + 1
	if b.minVertices > n {
		n = b.minVertices
	}
	return FromEdges(n, b.edges)
}

// FromEdges builds a Digraph with n vertices from an edge list. The
// input slice is neither modified nor copied. Duplicate edges are
// removed. It panics if an edge references a vertex outside [0, n).
//
// The build is the parallel counting construction of parallel.go:
// deterministic, and byte-identical to the historical global-sort
// builder (fromEdgesSort, kept as the test reference).
func FromEdges(n int, edges []Edge) *Digraph {
	return fromEdgesParallel(n, edges, 0)
}

// FromEdgesParallel is FromEdges with an explicit worker count
// (<= 0 picks automatically). The output is identical for every
// worker count; tests pin the builds against each other.
func FromEdgesParallel(n int, edges []Edge, workers int) *Digraph {
	return fromEdgesParallel(n, edges, workers)
}

// fromEdgesSort is the historical builder: copy the edge slice, one
// global (U, V) sort, dedup, then counting placement. It is the
// reference implementation the parallel build is pinned byte-identical
// to; only tests call it.
func fromEdgesSort(n int, edges []Edge) *Digraph {
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
		}
	}
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	// Deduplicate in place.
	dedup := sorted[:0]
	for i, e := range sorted {
		if i > 0 && e == sorted[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	sorted = dedup
	m := len(sorted)

	outOff := make([]int64, n+1)
	outAdj := make([]VertexID, m)
	inOff := make([]int64, n+1)
	inAdj := make([]VertexID, m)

	for _, e := range sorted {
		outOff[e.U+1]++
		inOff[e.V+1]++
	}
	for i := 1; i <= n; i++ {
		outOff[i] += outOff[i-1]
		inOff[i] += inOff[i-1]
	}
	// Out adjacency is already in (U, V) order.
	for i, e := range sorted {
		outAdj[i] = e.V
	}
	// In adjacency: counting placement, then per-vertex sort for
	// deterministic, ID-sorted neighborhoods.
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	for _, e := range sorted {
		inAdj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	for v := 0; v < n; v++ {
		seg := inAdj[inOff[v]:inOff[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj)
}

// EdgePrefix returns the first fraction frac (0 < frac <= 1) of the
// edge slice, rounding to the nearest edge. It is the scalability
// workload of Exp 6 (Fig. 7): the i-th test graph contains the first
// i/5 of the generated edge stream.
func EdgePrefix(edges []Edge, frac float64) []Edge {
	if frac <= 0 {
		return nil
	}
	if frac >= 1 {
		return edges
	}
	k := int(float64(len(edges))*frac + 0.5)
	if k > len(edges) {
		k = len(edges)
	}
	return edges[:k]
}

package graph

// Condense returns the condensation of g — the DAG whose vertices are
// g's strongly connected components — together with the
// vertex→component mapping. Reachability is preserved: s can reach t
// in g iff component(s) can reach component(t) in the condensation
// (trivially true when they coincide).
//
// The paper deliberately does *not* condense: obtaining and merging
// SCCs of a distributed graph requires distributed DFS (§II-C). The
// centralized utility here backs the ablation that quantifies what
// condensation would buy — index size and construction time on the
// condensed DAG versus the raw graph.
func Condense(g *Digraph) (*Digraph, []int32) {
	scc := SCC(g)
	nc := scc.NumComponents()
	var edges []Edge
	seen := make(map[Edge]struct{})
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		cu := scc.Component[u]
		for _, v := range g.OutNeighbors(u) {
			cv := scc.Component[v]
			if cu == cv {
				continue
			}
			e := Edge{U: VertexID(cu), V: VertexID(cv)}
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			edges = append(edges, e)
		}
	}
	return FromEdges(nc, edges), scc.Component
}

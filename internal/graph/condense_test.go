package graph

import (
	"math/rand"
	"testing"
)

func TestCondensePaperExample(t *testing.T) {
	g := PaperExample()
	cond, comp := Condense(g)
	if cond.NumVertices() != 6 {
		t.Fatalf("condensation has %d vertices, want 6", cond.NumVertices())
	}
	if !IsAcyclic(cond) {
		t.Fatal("condensation must be a DAG")
	}
	// {v1, v5, v7} and {v2, v3, v4, v6} collapse.
	if comp[0] != comp[4] || comp[0] != comp[6] {
		t.Error("v1, v5, v7 should collapse")
	}
	if comp[1] != comp[2] || comp[1] != comp[3] || comp[1] != comp[5] {
		t.Error("v2, v3, v4, v6 should collapse")
	}
}

// TestCondensePreservesReachability on random cyclic graphs.
func TestCondensePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))})
		}
		g := FromEdges(n, edges)
		cond, comp := Condense(g)
		if !IsAcyclic(cond) {
			t.Fatal("condensation must be acyclic")
		}
		for s := VertexID(0); int(s) < n; s++ {
			for d := VertexID(0); int(d) < n; d++ {
				want := Reachable(g, s, d)
				var got bool
				if comp[s] == comp[d] {
					got = true
				} else {
					got = Reachable(cond, VertexID(comp[s]), VertexID(comp[d]))
				}
				if got != want {
					t.Fatalf("trial %d: condensed reach(%d,%d) = %v, want %v", trial, s, d, got, want)
				}
			}
		}
	}
}

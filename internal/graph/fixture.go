package graph

// PaperExample returns the 11-vertex, 15-edge running example of the
// paper (Fig. 1). The paper numbers vertices v1..v11; here vertex v_i
// has ID i-1. The edge set is reconstructed from Examples 1-14 and
// Tables II/III, all of which the test suite reproduces verbatim:
//
//	N_in(v2) = {v6}, N_out(v2) = {v1, v3, v4, v5}          (Example 1)
//	DES(v1)  = {v1, v5, v7, v8, v9}                        (Example 4)
//	trimmed BFS from v3 (Example 8, Fig. 3)
//	ord(v1) = 12.08, ord(v10) = 2.83                       (Example 3)
func PaperExample() *Digraph {
	edges := []Edge{
		{0, 4}, {0, 7}, // v1 -> v5, v8
		{1, 0}, {1, 2}, {1, 3}, {1, 4}, // v2 -> v1, v3, v4, v5
		{2, 0}, {2, 3}, {2, 9}, // v3 -> v1, v4, v10
		{3, 5}, {3, 10}, // v4 -> v6, v11
		{4, 6}, // v5 -> v7
		{5, 1}, // v6 -> v2
		{6, 0}, // v7 -> v1
		{7, 8}, // v8 -> v9
	}
	return FromEdges(11, edges)
}

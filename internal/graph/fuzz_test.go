package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzzers for the two on-disk formats: whatever the bytes, the
// readers must either fail cleanly or produce a structurally valid
// graph; valid graphs must round-trip.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% konect\n3 4\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("1 2 3 extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural sanity plus round trip.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, back)
		}
	})
}

func FuzzReadBinary2(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary2(&seed, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A truncated header page, a bare magic, and the valid file with a
	// flipped section-table byte give the mutator structured starting
	// points for the strict-decode paths.
	f.Add(seed.Bytes()[:v2Page-1])
	f.Add([]byte("DRLGRPH2"))
	flipped := append([]byte(nil), seed.Bytes()...)
	flipped[40] ^= 1
	f.Add(flipped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary2(bytes.NewReader(input))
		if err != nil {
			return
		}
		var inSum, outSum int64
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			inSum += int64(g.InDegree(v))
			outSum += int64(g.OutDegree(v))
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			t.Fatalf("inconsistent accepted graph: in=%d out=%d m=%d", inSum, outSum, g.NumEdges())
		}
		// An accepted graph must survive a v2 round trip structurally
		// (the input may carry nonzero padding bytes the strict decode
		// ignores, so byte equality is only promised for writer output).
		var buf bytes.Buffer
		if err := WriteBinary2(&buf, g); err != nil {
			t.Fatalf("re-writing accepted graph: %v", err)
		}
		back, err := ReadBinary2(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, back)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Any accepted graph must have consistent degrees.
		var inSum, outSum int64
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			inSum += int64(g.InDegree(v))
			outSum += int64(g.OutDegree(v))
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			t.Fatalf("inconsistent accepted graph: in=%d out=%d m=%d", inSum, outSum, g.NumEdges())
		}
	})
}

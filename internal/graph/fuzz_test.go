package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzzers for the two on-disk formats: whatever the bytes, the
// readers must either fail cleanly or produce a structurally valid
// graph; valid graphs must round-trip.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% konect\n3 4\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("1 2 3 extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural sanity plus round trip.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, back)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Any accepted graph must have consistent degrees.
		var inSum, outSum int64
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			inSum += int64(g.InDegree(v))
			outSum += int64(g.OutDegree(v))
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			t.Fatalf("inconsistent accepted graph: in=%d out=%d m=%d", inSum, outSum, g.NumEdges())
		}
	})
}

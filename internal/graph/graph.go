// Package graph provides the directed-graph substrate used by every
// labeling algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form in both edge
// directions, so out-neighborhoods and in-neighborhoods are contiguous
// slices and the inverse graph is available without copying. Vertex
// identifiers are dense int32 values in [0, N).
package graph

import "fmt"

// VertexID identifies a vertex. IDs are dense: a graph with n vertices
// uses exactly the IDs 0..n-1.
type VertexID int32

// Edge is a directed edge from U to V.
type Edge struct {
	U, V VertexID
}

// Digraph is an immutable directed graph in dual-direction CSR form.
// Construct one with a Builder, FromEdges, or a loader from the io file.
type Digraph struct {
	n      int32
	m      int64
	outOff []int64
	outAdj []VertexID
	inOff  []int64
	inAdj  []VertexID

	// inverse caches the view with edge directions swapped. The two
	// views share all four slices.
	inverse *Digraph
}

// NumVertices returns the number of vertices n.
func (g *Digraph) NumVertices() int { return int(g.n) }

// NumEdges returns the number of directed edges m (after any
// deduplication performed at build time).
func (g *Digraph) NumEdges() int64 { return g.m }

// OutNeighbors returns the out-neighborhood N_out(v) as a shared,
// read-only slice sorted by vertex ID.
func (g *Digraph) OutNeighbors(v VertexID) []VertexID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the in-neighborhood N_in(v) as a shared,
// read-only slice sorted by vertex ID.
func (g *Digraph) InNeighbors(v VertexID) []VertexID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns d_out(v).
func (g *Digraph) OutDegree(v VertexID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns d_in(v).
func (g *Digraph) InDegree(v VertexID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// Inverse returns the inverse graph G̅: same vertices, every edge
// reversed. The returned graph shares storage with g and is built once.
func (g *Digraph) Inverse() *Digraph {
	return g.inverse
}

// Edges appends every edge of g to dst and returns the extended slice.
// Edges are produced in (source, target) sorted order.
func (g *Digraph) Edges(dst []Edge) []Edge {
	for u := VertexID(0); u < VertexID(g.n); u++ {
		for _, v := range g.OutNeighbors(u) {
			dst = append(dst, Edge{U: u, V: v})
		}
	}
	return dst
}

// Valid reports whether v is a vertex of g.
func (g *Digraph) Valid(v VertexID) bool { return v >= 0 && int32(v) < g.n }

// String returns a short human-readable summary.
func (g *Digraph) String() string {
	return fmt.Sprintf("Digraph(n=%d, m=%d)", g.n, g.m)
}

// newDigraph assembles the dual CSR views and links the inverse.
func newDigraph(n int32, outOff []int64, outAdj []VertexID, inOff []int64, inAdj []VertexID) *Digraph {
	g := &Digraph{
		n:      n,
		m:      int64(len(outAdj)),
		outOff: outOff,
		outAdj: outAdj,
		inOff:  inOff,
		inAdj:  inAdj,
	}
	inv := &Digraph{
		n:       n,
		m:       g.m,
		outOff:  inOff,
		outAdj:  inAdj,
		inOff:   outOff,
		inAdj:   outAdj,
		inverse: g,
	}
	g.inverse = inv
	return g
}

package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	g := NewBuilder(0, 0).
		AddEdge(0, 1).
		AddEdge(1, 2).
		AddEdge(0, 1). // duplicate
		AddEdge(2, 2). // self-loop
		Build()
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3 (dedup)", g.NumEdges())
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("OutNeighbors(0) = %v", got)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("InNeighbors(2) = %v", got)
	}
	if g.OutDegree(2) != 1 || g.InDegree(0) != 0 {
		t.Errorf("degrees wrong: out(2)=%d in(0)=%d", g.OutDegree(2), g.InDegree(0))
	}
}

func TestBuilderEnsureVertices(t *testing.T) {
	g := NewBuilder(0, 0).AddEdge(0, 1).EnsureVertices(10).Build()
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", g.NumVertices())
	}
	if g.OutDegree(9) != 0 {
		t.Errorf("vertex 9 should be isolated")
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	FromEdges(2, []Edge{{U: 0, V: 5}})
}

func TestInverseIsInvolution(t *testing.T) {
	g := PaperExample()
	inv := g.Inverse()
	if inv.Inverse() != g {
		t.Fatal("Inverse().Inverse() should return the original")
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		out := g.OutNeighbors(v)
		in := inv.InNeighbors(v)
		if len(out) != len(in) {
			t.Fatalf("v%d: |out|=%d but |inverse.in|=%d", v, len(out), len(in))
		}
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("v%d: out %v != inverse in %v", v, out, in)
			}
		}
	}
}

// TestPaperExampleStructure checks the neighborhoods of Example 1.
func TestPaperExampleStructure(t *testing.T) {
	g := PaperExample()
	if g.NumVertices() != 11 || g.NumEdges() != 15 {
		t.Fatalf("got %v, want 11 vertices and 15 edges", g)
	}
	// N_in(v2) = {v6}; N_out(v2) = {v1, v3, v4, v5} (Example 1).
	if got := g.InNeighbors(1); len(got) != 1 || got[0] != 5 {
		t.Errorf("N_in(v2) = %v, want [v6]", got)
	}
	want := []VertexID{0, 2, 3, 4}
	got := g.OutNeighbors(1)
	if len(got) != len(want) {
		t.Fatalf("N_out(v2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("N_out(v2) = %v, want %v", got, want)
		}
	}
	// DES(v2) = everything; ANC(v2) = {v2, v3, v4, v6} (Example 1).
	if des := Descendants(g, 1); len(des) != 11 {
		t.Errorf("|DES(v2)| = %d, want 11", len(des))
	}
	anc := Ancestors(g, 1)
	sort.Slice(anc, func(i, j int) bool { return anc[i] < anc[j] })
	wantAnc := []VertexID{1, 2, 3, 5}
	if len(anc) != len(wantAnc) {
		t.Fatalf("ANC(v2) = %v", anc)
	}
	for i := range wantAnc {
		if anc[i] != wantAnc[i] {
			t.Fatalf("ANC(v2) = %v, want %v", anc, wantAnc)
		}
	}
	// DES(v1) = {v1, v5, v7, v8, v9} (Example 4, round 1).
	des := Descendants(g, 0)
	sort.Slice(des, func(i, j int) bool { return des[i] < des[j] })
	wantDes := []VertexID{0, 4, 6, 7, 8}
	if len(des) != len(wantDes) {
		t.Fatalf("DES(v1) = %v", des)
	}
	for i := range wantDes {
		if des[i] != wantDes[i] {
			t.Fatalf("DES(v1) = %v, want %v", des, wantDes)
		}
	}
}

func TestReachableOracle(t *testing.T) {
	g := PaperExample()
	cases := []struct {
		s, t VertexID
		want bool
	}{
		{1, 6, true},  // v2 → v7 (Example 1)
		{0, 8, true},  // v1 → v9
		{9, 0, false}, // v10 → v1
		{4, 1, false}, // v5 → v2
		{5, 10, true}, // v6 → v11
		{3, 3, true},
	}
	for _, c := range cases {
		if got := Reachable(g, c.s, c.t); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestTextIORoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, got)
}

func TestBinaryIORoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, got)
}

func TestLoadFileDetectsFormat(t *testing.T) {
	g := PaperExample()
	dir := t.TempDir()
	for _, binary := range []bool{true, false} {
		path := filepath.Join(dir, "g")
		if err := SaveFile(path, g, binary); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		assertSameGraph(t, g, got)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"one-field": "3\n",
		"bad-int":   "a b\n",
		"negative":  "-1 2\n",
		"too-big":   "99999999999999999999 1\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
	// Comments and blanks are fine.
	g, err := ReadEdgeList(strings.NewReader("# header\n% konect\n\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Error("expected error for garbage input")
	}
}

func TestSCCPaperExample(t *testing.T) {
	g := PaperExample()
	r := SCC(g)
	// Cycles: {v1, v5, v7} and {v2, v3, v4, v6}; everything else is a
	// singleton.
	if r.LargestComponent() != 4 {
		t.Errorf("largest SCC = %d, want 4", r.LargestComponent())
	}
	if r.NumComponents() != 6 {
		t.Errorf("components = %d, want 6", r.NumComponents())
	}
	same := func(a, b VertexID) bool { return r.Component[a] == r.Component[b] }
	if !same(0, 4) || !same(0, 6) {
		t.Error("v1, v5, v7 should share a component")
	}
	if !same(1, 2) || !same(1, 3) || !same(1, 5) {
		t.Error("v2, v3, v4, v6 should share a component")
	}
	if same(0, 1) {
		t.Error("v1 and v2 are in different components")
	}
}

// TestSCCAgainstReachability: u, v share a component iff mutually
// reachable, on random graphs.
func TestSCCAgainstReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(25)
		var edges []Edge
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{U: VertexID(rng.Intn(n)), V: VertexID(rng.Intn(n))})
		}
		g := FromEdges(n, edges)
		r := SCC(g)
		for u := VertexID(0); int(u) < n; u++ {
			for v := VertexID(0); int(v) < n; v++ {
				want := Reachable(g, u, v) && Reachable(g, v, u)
				got := r.Component[u] == r.Component[v]
				if got != want {
					t.Fatalf("trial %d: SCC(%d,%d) = %v, want %v", trial, u, v, got, want)
				}
			}
		}
	}
}

func TestIsAcyclic(t *testing.T) {
	if IsAcyclic(PaperExample()) {
		t.Error("the paper example has cycles")
	}
	dag := FromEdges(3, []Edge{{0, 1}, {0, 2}, {1, 2}})
	if !IsAcyclic(dag) {
		t.Error("diamond DAG misclassified")
	}
	loop := FromEdges(1, []Edge{{0, 0}})
	if IsAcyclic(loop) {
		t.Error("self-loop is a cycle")
	}
}

// TestPostOrderProperty: in a DAG, every edge (u,v) has post[v] <
// post[u] (children finish first).
func TestPostOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u < v {
				edges = append(edges, Edge{U: VertexID(u), V: VertexID(v)})
			}
		}
		g := FromEdges(n, edges)
		order := PostOrder(g)
		if len(order) != n {
			t.Fatalf("postorder has %d entries, want %d", len(order), n)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := VertexID(0); int(u) < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				if pos[v] >= pos[u] {
					t.Fatalf("DAG edge (%d,%d) violates postorder", u, v)
				}
			}
		}
	}
}

func TestEdgePrefix(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	if got := EdgePrefix(edges, 0.4); len(got) != 2 {
		t.Errorf("40%% of 5 = %d, want 2", len(got))
	}
	if got := EdgePrefix(edges, 1.0); len(got) != 5 {
		t.Errorf("100%% = %d", len(got))
	}
	if got := EdgePrefix(edges, 0); got != nil {
		t.Errorf("0%% = %v", got)
	}
	if got := EdgePrefix(edges, 2); len(got) != 5 {
		t.Errorf("200%% clamped = %d", len(got))
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(PaperExample())
	if s.Vertices != 11 || s.Edges != 15 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MaxOutDegree != 4 { // v2
		t.Errorf("MaxOutDegree = %d, want 4", s.MaxOutDegree)
	}
	if s.Acyclic {
		t.Error("paper example is cyclic")
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestTransitiveClosureSize(t *testing.T) {
	// Path 0→1→2: TC rows are {0,1,2}, {1,2}, {2} = 6.
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if got := TransitiveClosureSize(g); got != 6 {
		t.Errorf("TC size = %d, want 6", got)
	}
}

// TestCSRInvariants: quick-checked structural invariants of the
// builder on random edge sets.
func TestCSRInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 40
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: VertexID(raw[i] % n),
				V: VertexID(raw[i+1] % n),
			})
		}
		g := FromEdges(n, edges)
		// Round-trip through Edges must reproduce the deduped set.
		back := g.Edges(nil)
		if int64(len(back)) != g.NumEdges() {
			return false
		}
		seen := map[Edge]bool{}
		for _, e := range edges {
			seen[e] = true
		}
		if len(seen) != len(back) {
			return false
		}
		var inSum, outSum int64
		for v := VertexID(0); int(v) < n; v++ {
			out := g.OutNeighbors(v)
			for i := 1; i < len(out); i++ {
				if out[i-1] >= out[i] { // sorted, no dups
					return false
				}
			}
			in := g.InNeighbors(v)
			for i := 1; i < len(in); i++ {
				if in[i-1] >= in[i] {
					return false
				}
			}
			inSum += int64(len(in))
			outSum += int64(len(out))
		}
		return inSum == g.NumEdges() && outSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func assertSameGraph(t *testing.T, a, b *Digraph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	for v := VertexID(0); int(v) < a.NumVertices(); v++ {
		ao, bo := a.OutNeighbors(v), b.OutNeighbors(v)
		if len(ao) != len(bo) {
			t.Fatalf("v%d out-degree differs", v)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("v%d out-neighbors differ: %v vs %v", v, ao, bo)
			}
		}
	}
}

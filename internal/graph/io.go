package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list format: one "u v" pair per line, whitespace separated,
// '#' and '%' introduce comment lines (SNAP and Konect conventions).
//
// Binary format: a fixed header followed by the two CSR directions;
// loading a binary graph is an order of magnitude faster than parsing
// text and is the format cmd/drgen emits by default.

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) (*Digraph, error) {
	edges, n, err := ReadEdges(r)
	if err != nil {
		return nil, err
	}
	return FromEdges(n, edges), nil
}

// ReadEdges parses a text edge list and returns the raw edges plus the
// vertex count (max ID + 1).
func ReadEdges(r io.Reader) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := VertexID(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want \"u v\", got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad source vertex: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad target vertex: %w", line, err)
		}
		if u < 0 || v < 0 {
			return nil, 0, fmt.Errorf("graph: line %d: negative vertex id", line)
		}
		e := Edge{U: VertexID(u), V: VertexID(v)}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, int(maxID) + 1, nil
}

// WriteEdgeList writes g as a text edge list.
func WriteEdgeList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# directed graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	}
	return bw.Flush()
}

const binaryMagic = uint64(0x44524c4752415048) // "DRLGRAPH"

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(g.m)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing binary header: %w", err)
		}
	}
	for _, part := range []any{g.outOff, g.outAdj, g.inOff, g.inAdj} {
		if err := binary.Write(bw, binary.LittleEndian, part); err != nil {
			return fmt.Errorf("graph: writing binary section: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary CSR format.
func ReadBinary(r io.Reader) (*Digraph, error) {
	br := bufio.NewReader(r)
	var magic, n64, m64 uint64
	for _, p := range []*uint64{&magic, &n64, &m64} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, errors.New("graph: not a binary graph file (bad magic)")
	}
	if n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible binary header n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int64(m64)
	// Sections are read in bounded chunks so a corrupt header cannot
	// force a giant upfront allocation: a truncated stream fails at
	// the first missing chunk instead.
	outOff, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	outAdj, err := readVertexIDs(br, m)
	if err != nil {
		return nil, err
	}
	inOff, err := readInt64s(br, n+1)
	if err != nil {
		return nil, err
	}
	inAdj, err := readVertexIDs(br, m)
	if err != nil {
		return nil, err
	}
	// Validate offsets and adjacency entries so a corrupt file cannot
	// produce out-of-range slicing later.
	if err := validateCSR(n, m, outOff, inOff, outAdj, inAdj); err != nil {
		return nil, err
	}
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj), nil
}

// chunkElems bounds single allocations while reading untrusted sizes.
const chunkElems = 1 << 16

func readInt64s(r io.Reader, count int) ([]int64, error) {
	out := make([]int64, 0, min(count, chunkElems))
	for len(out) < count {
		c := min(count-len(out), chunkElems)
		chunk := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: reading binary section: %w", err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readVertexIDs(r io.Reader, count int64) ([]VertexID, error) {
	out := make([]VertexID, 0, min(count, chunkElems))
	for int64(len(out)) < count {
		c := min(count-int64(len(out)), chunkElems)
		chunk := make([]VertexID, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: reading binary section: %w", err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// LoadFile loads a graph from path, detecting the binary formats (v1
// and v2) by their magic numbers and falling back to the text
// edge-list parser.
func LoadFile(path string) (*Digraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	_, serr := io.ReadFull(f, magic[:])
	if serr != nil && !errors.Is(serr, io.EOF) && !errors.Is(serr, io.ErrUnexpectedEOF) {
		// A real I/O failure (permissions, a directory, a dying disk)
		// is not "this is a text file": report it instead of letting
		// the text parser turn it into a confusing parse error.
		return nil, fmt.Errorf("graph: sniffing %s: %w", path, serr)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if serr == nil {
		// Files shorter than 8 bytes cannot carry a magic number and
		// fall through to the text parser ("1 2" is a valid graph).
		switch binary.LittleEndian.Uint64(magic[:]) {
		case binaryMagic:
			return ReadBinary(f)
		case binaryMagic2:
			return ReadBinary2(f)
		}
	}
	return ReadEdgeList(f)
}

// SaveFile writes g to path; binary chooses the format (the v2
// mmap-friendly layout — WriteBinary still emits v1 for compatibility
// tooling, and LoadFile reads both).
func SaveFile(path string, g *Digraph, binaryFormat bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if binaryFormat {
		err = WriteBinary2(f, g)
	} else {
		err = WriteEdgeList(f, g)
	}
	// Exactly one close, and its error reported exactly once: a write
	// failure wins (the close error is then usually a consequence),
	// a clean write surfaces the close error, which is where buffered
	// filesystems report ENOSPC.
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("graph: closing %s: %w", path, cerr)
	}
	return err
}

package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary CSR format v2: the mmap-friendly layout.
//
// v1 is a bare header plus the four CSR sections packed back to back —
// fine for a buffered read, useless for mmap (sections land on
// arbitrary byte offsets, so the int64/int32 views are unaligned). v2
// page-aligns everything:
//
//	page 0        4096-byte header (fields below, zero padded)
//	sections      outOff, outAdj, inOff, inAdj — each starting on a
//	              4096-byte boundary, each padded to the next boundary,
//	              little-endian, in that order
//
//	header fields (all uint64, little-endian):
//	  [0:8)    magic "DRLGRPH2"
//	  [8:16)   version = 2
//	  [16:24)  n (vertex count)
//	  [24:32)  m (edge count after dedup)
//	  [32:96)  section table: 4 × {byte offset, byte length}
//	  [96:100) CRC-32 (IEEE) of bytes [0:96)
//
// The section table is fully determined by (n, m); a decoder computes
// the canonical layout and requires the stored table to match exactly,
// so a corrupt or truncated header can never redirect a section view
// outside the file (strict decode, like every other format in this
// repo). MapFile (mmap.go) serves the sections zero-copy straight out
// of the page cache; ReadBinary2 is the portable copying reader for
// arbitrary io.Readers.
const (
	binaryMagic2    = uint64(0x44524c4752504832) // "DRLGRPH2"
	binaryV2Version = uint64(2)
	v2Page          = 4096
	v2CRCOff        = 96
)

// v2Section locates one CSR array inside the file.
type v2Section struct {
	off  uint64 // byte offset, 4096-aligned
	size uint64 // exact byte length, unpadded
}

// v2Header is the decoded header page.
type v2Header struct {
	n, m uint64
	// outOff, outAdj, inOff, inAdj
	sec [4]v2Section
}

// v2Layout computes the canonical section layout for an (n, m) graph.
func v2Layout(n, m uint64) v2Header {
	h := v2Header{n: n, m: m}
	sizes := [4]uint64{(n + 1) * 8, m * 4, (n + 1) * 8, m * 4}
	off := uint64(v2Page)
	for i, sz := range sizes {
		h.sec[i] = v2Section{off: off, size: sz}
		off += pageCeil(sz)
	}
	return h
}

// fileSize returns the total byte length of the v2 file for h.
func (h v2Header) fileSize() uint64 {
	last := h.sec[3]
	return last.off + pageCeil(last.size)
}

func pageCeil(sz uint64) uint64 {
	return (sz + v2Page - 1) / v2Page * v2Page
}

// encodeV2Header renders the 4096-byte header page.
func encodeV2Header(h v2Header) []byte {
	b := make([]byte, v2Page)
	le := binary.LittleEndian
	le.PutUint64(b[0:], binaryMagic2)
	le.PutUint64(b[8:], binaryV2Version)
	le.PutUint64(b[16:], h.n)
	le.PutUint64(b[24:], h.m)
	for i, s := range h.sec {
		le.PutUint64(b[32+16*i:], s.off)
		le.PutUint64(b[40+16*i:], s.size)
	}
	le.PutUint32(b[v2CRCOff:], crc32.ChecksumIEEE(b[:v2CRCOff]))
	return b
}

// decodeV2Header parses and strictly validates a header page: magic,
// version, CRC, plausible n/m, and a section table that matches the
// canonical layout for (n, m) bit for bit.
func decodeV2Header(b []byte) (v2Header, error) {
	var h v2Header
	if len(b) < v2Page {
		return h, errors.New("graph: binary v2 file shorter than its header page")
	}
	le := binary.LittleEndian
	if le.Uint64(b[0:]) != binaryMagic2 {
		return h, errors.New("graph: not a binary v2 graph file (bad magic)")
	}
	if v := le.Uint64(b[8:]); v != binaryV2Version {
		return h, fmt.Errorf("graph: unsupported binary v2 version %d", v)
	}
	if got, want := le.Uint32(b[v2CRCOff:]), crc32.ChecksumIEEE(b[:v2CRCOff]); got != want {
		return h, errors.New("graph: corrupt binary v2 header (bad checksum)")
	}
	h.n = le.Uint64(b[16:])
	h.m = le.Uint64(b[24:])
	if h.n > 1<<31 || h.m > 1<<40 {
		return h, fmt.Errorf("graph: implausible binary v2 header n=%d m=%d", h.n, h.m)
	}
	want := v2Layout(h.n, h.m)
	for i := range h.sec {
		h.sec[i] = v2Section{off: le.Uint64(b[32+16*i:]), size: le.Uint64(b[40+16*i:])}
		if h.sec[i] != want.sec[i] {
			return h, fmt.Errorf("graph: corrupt binary v2 header (section %d does not match the canonical layout)", i)
		}
	}
	return h, nil
}

// WriteBinary2 writes g in the v2 format. It streams: sections are
// encoded through one fixed 64 KiB buffer in file order, never
// materializing a byte-level copy of the CSR, so the writer adds O(1)
// memory however large the graph.
func WriteBinary2(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	h := v2Layout(uint64(g.n), uint64(g.m))
	if _, err := bw.Write(encodeV2Header(h)); err != nil {
		return fmt.Errorf("graph: writing binary v2 header: %w", err)
	}
	var buf [1 << 16]byte
	for i, part := range []any{g.outOff, g.outAdj, g.inOff, g.inAdj} {
		var err error
		switch s := part.(type) {
		case []int64:
			err = writeInt64sLE(bw, buf[:], s)
		case []VertexID:
			err = writeVertexIDsLE(bw, buf[:], s)
		}
		if err != nil {
			return fmt.Errorf("graph: writing binary v2 section: %w", err)
		}
		if err := writeZeros(bw, int64(pageCeil(h.sec[i].size)-h.sec[i].size)); err != nil {
			return fmt.Errorf("graph: padding binary v2 section: %w", err)
		}
	}
	return bw.Flush()
}

func writeInt64sLE(w io.Writer, buf []byte, xs []int64) error {
	for len(xs) > 0 {
		k := min(len(xs), len(buf)/8)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(xs[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeVertexIDsLE(w io.Writer, buf []byte, xs []VertexID) error {
	for len(xs) > 0 {
		k := min(len(xs), len(buf)/4)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(xs[i]))
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeZeros(w io.Writer, count int64) error {
	var zero [v2Page]byte
	for count > 0 {
		c := min(count, int64(len(zero)))
		if _, err := w.Write(zero[:c]); err != nil {
			return err
		}
		count -= c
	}
	return nil
}

// ReadBinary2 reads a v2 graph from any io.Reader, copying the
// sections into fresh slices. Strict: a truncated or corrupt stream is
// a hard error, never a silently smaller graph. For files, MapFile is
// the zero-copy route.
func ReadBinary2(r io.Reader) (*Digraph, error) {
	var hdr [v2Page]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary v2 header: %w", err)
	}
	h, err := decodeV2Header(hdr[:])
	if err != nil {
		return nil, err
	}
	n, m := int(h.n), int64(h.m)
	var (
		outOff, inOff []int64
		outAdj, inAdj []VertexID
	)
	for i := range h.sec {
		var err error
		switch i {
		case 0:
			outOff, err = readInt64s(r, n+1)
		case 1:
			outAdj, err = readVertexIDs(r, m)
		case 2:
			inOff, err = readInt64s(r, n+1)
		case 3:
			inAdj, err = readVertexIDs(r, m)
		}
		if err != nil {
			return nil, err
		}
		pad := int64(pageCeil(h.sec[i].size) - h.sec[i].size)
		if _, err := io.CopyN(io.Discard, r, pad); err != nil {
			return nil, fmt.Errorf("graph: reading binary v2 padding: %w", err)
		}
	}
	if err := validateCSR(n, m, outOff, inOff, outAdj, inAdj); err != nil {
		return nil, err
	}
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj), nil
}

// validateCSR checks the structural invariants every binary loader
// relies on, so a corrupt file can never produce out-of-range slicing
// later: offsets start at 0, end at m, never decrease; every adjacency
// entry is a valid vertex.
func validateCSR(n int, m int64, outOff, inOff []int64, outAdj, inAdj []VertexID) error {
	if outOff[n] != m || inOff[n] != m {
		return errors.New("graph: corrupt binary file (offset mismatch)")
	}
	for _, off := range [][]int64{outOff, inOff} {
		if off[0] != 0 {
			return errors.New("graph: corrupt binary file (bad first offset)")
		}
		for i := 1; i <= n; i++ {
			if off[i] < off[i-1] || off[i] > m {
				return errors.New("graph: corrupt binary file (non-monotone offsets)")
			}
		}
	}
	for _, adj := range [][]VertexID{outAdj, inAdj} {
		for _, v := range adj {
			if v < 0 || int(v) >= n {
				return errors.New("graph: corrupt binary file (vertex out of range)")
			}
		}
	}
	return nil
}

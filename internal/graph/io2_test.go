package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func v2TestGraph(t *testing.T) *Digraph {
	t.Helper()
	return FromEdges(6, []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 0}, {U: 5, V: 5},
	})
}

func TestBinaryV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Digraph
	}{
		{"small", v2TestGraph(t)},
		{"no-edges", FromEdges(4, nil)},
		{"single-vertex", FromEdges(1, []Edge{{U: 0, V: 0}})},
		{"random", fromEdgesSort(200, randomTestEdges(200, 1500, 42))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary2(&buf, tc.g); err != nil {
				t.Fatalf("WriteBinary2: %v", err)
			}
			// The file is exactly the canonical layout size, and every
			// section starts on a page boundary.
			h := v2Layout(uint64(tc.g.NumVertices()), uint64(tc.g.NumEdges()))
			if got := uint64(buf.Len()); got != h.fileSize() {
				t.Fatalf("file size %d, want %d", got, h.fileSize())
			}
			for i, s := range h.sec {
				if s.off%v2Page != 0 {
					t.Fatalf("section %d offset %d not page aligned", i, s.off)
				}
			}
			got, err := ReadBinary2(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadBinary2: %v", err)
			}
			assertIdenticalCSR(t, tc.g, got)
		})
	}
}

func TestBinaryV1AndV2LoadIdentically(t *testing.T) {
	g := v2TestGraph(t)
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "g1.bin"), filepath.Join(dir, "g2.bin")

	f1, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f1, g); err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(v2, g, true); err != nil {
		t.Fatal(err)
	}

	// SaveFile's binary format is v2 now.
	head := make([]byte, 8)
	raw, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	copy(head, raw)
	if binary.LittleEndian.Uint64(head) != binaryMagic2 {
		t.Fatalf("SaveFile wrote magic %#x, want v2", binary.LittleEndian.Uint64(head))
	}

	// LoadFile dispatches both magics to the same graph.
	g1, err := LoadFile(v1)
	if err != nil {
		t.Fatalf("LoadFile v1: %v", err)
	}
	g2, err := LoadFile(v2)
	if err != nil {
		t.Fatalf("LoadFile v2: %v", err)
	}
	assertIdenticalCSR(t, g, g1)
	assertIdenticalCSR(t, g, g2)
}

func TestMapFileMatchesReadBinary2(t *testing.T) {
	g := fromEdgesSort(300, randomTestEdges(300, 2500, 7))
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	assertIdenticalCSR(t, g, m.Digraph)
	// The mapped view must satisfy every accessor, not just raw arrays.
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if got, want := m.OutDegree(v), g.OutDegree(v); got != want {
			t.Fatalf("OutDegree(%d) = %d, want %d", v, got, want)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMapFileRejectsNonV2(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "g1.bin")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, v2TestGraph(t)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(v1); err == nil {
		t.Fatal("MapFile accepted a v1 file")
	}
	short := filepath.Join(dir, "short.bin")
	if err := os.WriteFile(short, []byte("DRLGRPH2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(short); err == nil {
		t.Fatal("MapFile accepted a truncated header")
	}
}

func TestReadBinary2RejectsTruncation(t *testing.T) {
	g := v2TestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary2(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the header, at each section boundary, and inside each
	// section's payload.
	cuts := []int{0, 17, v2Page - 1, v2Page, v2Page + 9, 2 * v2Page, len(full) - v2Page, len(full) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(full) {
			continue
		}
		if _, err := ReadBinary2(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

func TestReadBinary2RejectsCorruptHeader(t *testing.T) {
	g := v2TestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary2(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := func(off int, val byte) []byte {
		c := append([]byte(nil), full...)
		c[off] ^= val
		return c
	}
	cases := map[string]int{
		"magic":         0,
		"version":       8,
		"n":             16,
		"m":             24,
		"section-off":   32,
		"section-size":  40,
		"header-spare":  v2CRCOff + 8, // covered by nothing: must still decode
		"checksum-byte": v2CRCOff,
	}
	for name, off := range cases {
		_, err := ReadBinary2(bytes.NewReader(corrupt(off, 0x5a)))
		if name == "header-spare" {
			// Bytes past the CRC are padding; flipping them must not
			// break the strict decode (they are outside the checksum).
			if err != nil {
				t.Errorf("flip %s: unexpected error %v", name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("flip %s: corrupt header accepted", name)
		}
	}
}

func TestReadBinary2RejectsCorruptSections(t *testing.T) {
	g := v2TestGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary2(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	h := v2Layout(uint64(g.NumVertices()), uint64(g.NumEdges()))
	// Out-of-range adjacency entry.
	c := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(c[h.sec[1].off:], uint32(g.NumVertices()+5))
	if _, err := ReadBinary2(bytes.NewReader(c)); err == nil {
		t.Error("out-of-range adjacency accepted")
	}
	// Non-monotone offsets.
	c = append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(c[h.sec[0].off+8:], uint64(1<<40))
	if _, err := ReadBinary2(bytes.NewReader(c)); err == nil {
		t.Error("non-monotone offsets accepted")
	}
}

func TestLoadFileShortFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, content string
		wantErr       bool
		vertices      int
	}{
		{"empty", "", false, 0},
		{"five-bytes", "1 2\n", false, 3}, // shorter than a magic number
		{"seven-bytes", "10 11\n", false, 12},
		{"comment-only", "# nothing here\n", false, 0},
		{"eight-byte-text", "3 4\n5 6\n", false, 7},
		{"garbage", "not a graph at all\n", true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := LoadFile(path)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatalf("LoadFile: %v", err)
			}
			if g.NumVertices() != tc.vertices {
				t.Fatalf("vertices = %d, want %d", g.NumVertices(), tc.vertices)
			}
		})
	}
}

func TestLoadFileReportsSniffErrors(t *testing.T) {
	// Reading a directory fails with a real I/O error (EISDIR), which
	// must surface as a sniff failure — not get misparsed as an empty
	// text graph or a confusing parse error.
	dir := t.TempDir()
	_, err := LoadFile(dir)
	if err == nil {
		t.Fatal("expected error loading a directory")
	}
	if !strings.Contains(err.Error(), "sniffing") {
		t.Fatalf("err = %v, want a sniff error", err)
	}
}

func TestSaveFileReportsCreateError(t *testing.T) {
	err := SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.bin"), v2TestGraph(t), true)
	if err == nil {
		t.Fatal("expected error")
	}
}

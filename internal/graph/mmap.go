//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Mapped is a Digraph whose CSR arrays are served zero-copy out of a
// memory-mapped binary v2 file: loading touches no section bytes
// beyond the validation scan, allocates nothing proportional to the
// graph, and lets the kernel page adjacency data in and out on demand
// — the 10⁸-edge loading path. The embedded Digraph (and anything
// built from it) must not be used after Close.
type Mapped struct {
	*Digraph
	data []byte
}

// MapFile memory-maps a binary v2 graph file read-only and returns
// the zero-copy graph view. The file must be v2 (MapFile never falls
// back to a parse; use LoadFile for format sniffing). The mapping is
// validated as strictly as ReadBinary2 before the graph is returned.
func MapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if st.Size() < v2Page {
		return nil, fmt.Errorf("graph: %s: binary v2 file shorter than its header page", path)
	}
	if !hostLittleEndian() {
		// The zero-copy casts below assume a little-endian host (the
		// on-disk format is little-endian). Fall back to the copying
		// reader, which byte-swaps properly.
		g, err := ReadBinary2(f)
		if err != nil {
			return nil, err
		}
		return &Mapped{Digraph: g}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := viewV2(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return &Mapped{Digraph: g, data: data}, nil
}

// Close releases the mapping. The graph view is invalid afterwards.
// Close is idempotent; a Mapped built by the copying fallback closes
// to a no-op.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// viewV2 builds the zero-copy Digraph over a v2 byte image (an mmap
// region or an in-memory copy). The returned graph aliases data.
func viewV2(data []byte) (*Digraph, error) {
	h, err := decodeV2Header(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < h.fileSize() {
		return nil, fmt.Errorf("graph: binary v2 file truncated (%d bytes, layout needs %d)", len(data), h.fileSize())
	}
	n, m := int(h.n), int64(h.m)
	outOff := sliceInt64(data, h.sec[0], n+1)
	outAdj := sliceVertexID(data, h.sec[1], m)
	inOff := sliceInt64(data, h.sec[2], n+1)
	inAdj := sliceVertexID(data, h.sec[3], m)
	if err := validateCSR(n, m, outOff, inOff, outAdj, inAdj); err != nil {
		return nil, err
	}
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj), nil
}

func sliceInt64(data []byte, s v2Section, count int) []int64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[s.off])), count)
}

func sliceVertexID(data []byte, s v2Section, count int64) []VertexID {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*VertexID)(unsafe.Pointer(&data[s.off])), count)
}

func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

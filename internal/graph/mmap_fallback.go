//go:build !unix

package graph

import (
	"fmt"
	"os"
)

// Mapped is the portable stand-in for the unix mmap loader: the graph
// is read with the copying v2 reader and Close is a no-op, so callers
// use one code path everywhere.
type Mapped struct {
	*Digraph
	data []byte
}

// MapFile loads a binary v2 graph. Without mmap support it copies via
// ReadBinary2; the API matches the unix zero-copy loader.
func MapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	g, err := ReadBinary2(f)
	if err != nil {
		return nil, err
	}
	return &Mapped{Digraph: g}, nil
}

// Close releases nothing on the fallback loader.
func (m *Mapped) Close() error { return nil }

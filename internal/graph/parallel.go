package graph

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel counting CSR construction.
//
// The historical builder sorted a copy of the full edge slice with one
// global sort.Slice — O(m log m) single-threaded and a second 8-byte-
// per-edge allocation. At the 10⁸-edge scale both are the wall. This
// file builds the same CSR by counting:
//
//	pass 1  count raw out-degree per source (parallel, atomic adds)
//	        + range-check every edge
//	pass 2  place each target into its source's bucket (parallel,
//	        per-source atomic cursors; placement order is racy and
//	        irrelevant because of pass 3)
//	pass 3  sort + dedup each bucket independently (parallel over
//	        edge-balanced vertex ranges)
//	pass 4  prefix-sum deduped degrees, compact buckets into the final
//	        out-CSR (parallel)
//	pass 5  derive the in-CSR from the deduped out-CSR the same way
//	        (count, place, per-bucket sort; no dedup needed)
//
// Each per-vertex neighborhood ends sorted ascending and deduplicated,
// which is exactly the order the global (U, V) sort produced, so the
// output is byte-identical to the sort-based builder (pinned by
// TestFromEdgesMatchesReference). The input edge slice is never copied
// or modified; transient memory is one raw-degree bucket array
// (4 bytes per raw edge) plus two n-sized counter arrays.

// buildWorkers returns the parallelism for one CSR construction: the
// scheduler's P, capped so tiny inputs don't pay goroutine overhead.
func buildWorkers(work int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 1+work/parallelGrain {
		w = 1 + work/parallelGrain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelGrain is the minimum per-worker work item count before an
// extra worker pays for itself.
const parallelGrain = 1 << 15

// parallelRanges runs fn over [0, total) split into one contiguous
// range per worker and waits for all of them.
func parallelRanges(total, workers int, fn func(lo, hi int)) {
	if workers <= 1 || total < 2*parallelGrain {
		fn(0, total)
		return
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// vertexCuts partitions the vertex space [0, n) into at most `workers`
// contiguous ranges balanced by bucket size (off is any monotone
// offset array of length n+1). Returns the range boundaries, starting
// with 0 and ending with n.
func vertexCuts(n, workers int, off []int64) []int {
	if workers < 1 {
		workers = 1
	}
	cuts := make([]int, 0, workers+1)
	cuts = append(cuts, 0)
	total := off[n]
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		// First vertex whose bucket starts at or after the target.
		v := sort.Search(n, func(i int) bool { return off[i] >= target })
		if v > cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	if cuts[len(cuts)-1] != n {
		cuts = append(cuts, n)
	}
	return cuts
}

// fromEdgesParallel is FromEdges's implementation: the parallel
// counting build. workers <= 0 means "pick automatically".
func fromEdgesParallel(n int, edges []Edge, workers int) *Digraph {
	if workers <= 0 {
		workers = buildWorkers(len(edges))
	}
	if int64(len(edges)) > math.MaxInt64/2 {
		panic("graph: edge slice too large")
	}

	// Pass 1: raw out-degree counts + validation. The count array
	// doubles as the cursor array of pass 2.
	cnt := make([]int64, n)
	var badEdge atomic.Int64 // index+1 of some out-of-range edge
	parallelRanges(len(edges), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
				badEdge.Store(int64(i) + 1)
				return
			}
			atomic.AddInt64(&cnt[e.U], 1)
		}
	})
	if i := badEdge.Load(); i != 0 {
		e := edges[i-1]
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
	}

	rawOff := prefixSum(cnt)
	for v := range cnt {
		cnt[v] = 0
	}

	// Pass 2: bucket placement. Slot order within a bucket is
	// scheduling-dependent; pass 3 sorts it away.
	prov := make([]VertexID, rawOff[n])
	parallelRanges(len(edges), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			slot := rawOff[e.U] + atomic.AddInt64(&cnt[e.U], 1) - 1
			prov[slot] = e.V
		}
	})

	outOff, outAdj := dedupCompact(n, prov, rawOff, cnt, workers)
	inOff, inAdj := inFromOut(n, outOff, outAdj, cnt, workers)
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj)
}

// prefixSum returns the offsets array [0, c0, c0+c1, ...] of length
// len(cnt)+1.
func prefixSum(cnt []int64) []int64 {
	off := make([]int64, len(cnt)+1)
	for i, c := range cnt {
		off[i+1] = off[i] + c
	}
	return off
}

// dedupCompact sorts and deduplicates every provisional bucket
// (prov[rawOff[v]:rawOff[v+1]]), then compacts the survivors into a
// tight CSR. scratch must be an n-sized int64 array; it is clobbered.
func dedupCompact(n int, prov []VertexID, rawOff []int64, scratch []int64, workers int) (off []int64, adj []VertexID) {
	cuts := vertexCuts(n, workers, rawOff)
	var wg sync.WaitGroup
	for c := 0; c+1 < len(cuts); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				seg := prov[rawOff[v]:rawOff[v+1]]
				slices.Sort(seg)
				k := 0
				for i, x := range seg {
					if i > 0 && x == seg[i-1] {
						continue
					}
					seg[k] = x
					k++
				}
				scratch[v] = int64(k)
			}
		}(cuts[c], cuts[c+1])
	}
	wg.Wait()

	off = prefixSum(scratch)
	adj = make([]VertexID, off[n])
	cuts = vertexCuts(n, workers, off)
	for c := 0; c+1 < len(cuts); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				deg := off[v+1] - off[v]
				copy(adj[off[v]:off[v+1]], prov[rawOff[v]:rawOff[v]+deg])
			}
		}(cuts[c], cuts[c+1])
	}
	wg.Wait()
	return off, adj
}

// inFromOut derives the in-direction CSR from a deduplicated
// out-direction CSR: count in-degrees, place sources into target
// buckets, sort each bucket. scratch must be an n-sized int64 array;
// it is clobbered.
func inFromOut(n int, outOff []int64, outAdj []VertexID, scratch []int64, workers int) (inOff []int64, inAdj []VertexID) {
	for v := 0; v < n; v++ {
		scratch[v] = 0
	}
	parallelRanges(len(outAdj), workers, func(lo, hi int) {
		for _, v := range outAdj[lo:hi] {
			atomic.AddInt64(&scratch[v], 1)
		}
	})
	inOff = prefixSum(scratch)
	for v := 0; v < n; v++ {
		scratch[v] = 0
	}
	inAdj = make([]VertexID, len(outAdj))
	cuts := vertexCuts(n, workers, outOff)
	var wg sync.WaitGroup
	for c := 0; c+1 < len(cuts); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				for _, v := range outAdj[outOff[u]:outOff[u+1]] {
					slot := inOff[v] + atomic.AddInt64(&scratch[v], 1) - 1
					inAdj[slot] = VertexID(u)
				}
			}
		}(cuts[c], cuts[c+1])
	}
	wg.Wait()

	cuts = vertexCuts(n, workers, inOff)
	for c := 0; c+1 < len(cuts); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				slices.Sort(inAdj[inOff[v]:inOff[v+1]])
			}
		}(cuts[c], cuts[c+1])
	}
	wg.Wait()
	return inOff, inAdj
}

package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randomTestEdges produces a messy edge list: duplicates, self-loops,
// a degree skew toward low vertex IDs, and (for spice) a few isolated
// vertices at the top of the ID range.
func randomTestEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if rng.Float64() < 0.3 { // skew: hubs at low IDs
			v = VertexID(rng.Intn(n/4 + 1))
		}
		if rng.Float64() < 0.05 {
			v = u // self-loop
		}
		edges = append(edges, Edge{U: u, V: v})
		if rng.Float64() < 0.1 { // exact duplicate
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return edges
}

// assertIdenticalCSR requires the raw CSR arrays to match exactly —
// the byte-identical guarantee the parallel builder is pinned to, one
// level stricter than assertSameGraph's neighbor-list comparison.
func assertIdenticalCSR(t *testing.T, want, got *Digraph) {
	t.Helper()
	if want.n != got.n || want.m != got.m {
		t.Fatalf("shape differs: n=%d/%d m=%d/%d", want.n, got.n, want.m, got.m)
	}
	pairs := []struct {
		name string
		a, b []int64
	}{{"outOff", want.outOff, got.outOff}, {"inOff", want.inOff, got.inOff}}
	for _, p := range pairs {
		if len(p.a) != len(p.b) {
			t.Fatalf("%s length differs: %d vs %d", p.name, len(p.a), len(p.b))
		}
		for i := range p.a {
			if p.a[i] != p.b[i] {
				t.Fatalf("%s[%d] = %d, want %d", p.name, i, p.b[i], p.a[i])
			}
		}
	}
	adjPairs := []struct {
		name string
		a, b []VertexID
	}{{"outAdj", want.outAdj, got.outAdj}, {"inAdj", want.inAdj, got.inAdj}}
	for _, p := range adjPairs {
		if len(p.a) != len(p.b) {
			t.Fatalf("%s length differs: %d vs %d", p.name, len(p.a), len(p.b))
		}
		for i := range p.a {
			if p.a[i] != p.b[i] {
				t.Fatalf("%s[%d] = %d, want %d", p.name, i, p.b[i], p.a[i])
			}
		}
	}
}

func TestParallelBuilderMatchesReference(t *testing.T) {
	cases := []struct {
		n, m int
		seed int64
	}{
		{1, 0, 1},
		{1, 5, 2}, // only self-loops possible
		{7, 3, 3},
		{50, 400, 4},
		{257, 2000, 5},
		{1000, 50, 6},   // sparse: most vertices isolated
		{300, 9000, 7},  // dense
		{4096, 4096, 8}, // around one grain
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d_m%d", tc.n, tc.m), func(t *testing.T) {
			edges := randomTestEdges(tc.n, tc.m, tc.seed)
			want := fromEdgesSort(tc.n, append([]Edge(nil), edges...))
			for _, workers := range []int{1, 2, 3, 4, 8} {
				got := FromEdgesParallel(tc.n, edges, workers)
				assertIdenticalCSR(t, want, got)
			}
			got := FromEdges(tc.n, edges)
			assertIdenticalCSR(t, want, got)
			streamed, err := FromEdgeStream(tc.n, StreamOfEdges(edges))
			if err != nil {
				t.Fatalf("FromEdgeStream: %v", err)
			}
			assertIdenticalCSR(t, want, streamed)
		})
	}
}

func TestParallelBuilderNoEdges(t *testing.T) {
	want := fromEdgesSort(10, nil)
	assertIdenticalCSR(t, want, FromEdges(10, nil))
	streamed, err := FromEdgeStream(10, StreamOfEdges(nil))
	if err != nil {
		t.Fatalf("FromEdgeStream: %v", err)
	}
	assertIdenticalCSR(t, want, streamed)
}

func TestParallelBuilderPanicsOutOfRange(t *testing.T) {
	for _, bad := range []Edge{{U: 0, V: 5}, {U: -1, V: 0}, {U: 2, V: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %v: expected panic", bad)
				}
			}()
			FromEdgesParallel(2, []Edge{{U: 0, V: 1}, bad}, 4)
		}()
	}
}

func TestFromEdgeStreamRejectsBadEdges(t *testing.T) {
	// The streaming builder reports invalid edges as errors, never
	// panics: a stream source is typically external input.
	_, err := FromEdgeStream(2, StreamOfEdges([]Edge{{U: 0, V: 5}}))
	if err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	if _, err := FromEdgeStream(-1, StreamOfEdges(nil)); err == nil {
		t.Fatal("expected error for negative vertex count")
	}
}

func TestFromEdgeStreamDetectsDivergence(t *testing.T) {
	// A stream that emits different edges on replay must be caught,
	// not silently build a wrong graph.
	pass := 0
	diverging := func(emit func(Edge) error) error {
		pass++
		if pass == 1 {
			return errorsJoin(emit(Edge{U: 0, V: 1}), emit(Edge{U: 1, V: 2}))
		}
		return errorsJoin(emit(Edge{U: 0, V: 1}), emit(Edge{U: 0, V: 2}))
	}
	if _, err := FromEdgeStream(3, diverging); err == nil {
		t.Fatal("expected replay-divergence error")
	}

	pass = 0
	growing := func(emit func(Edge) error) error {
		pass++
		if err := emit(Edge{U: 0, V: 1}); err != nil {
			return err
		}
		if pass > 1 { // extra edge on replay
			return emit(Edge{U: 1, V: 2})
		}
		return nil
	}
	if _, err := FromEdgeStream(3, growing); err == nil {
		t.Fatal("expected replay-divergence error for growing stream")
	}
}

func TestFromEdgeStreamPropagatesSourceError(t *testing.T) {
	boom := errors.New("boom")
	failing := func(emit func(Edge) error) error { return boom }
	if _, err := FromEdgeStream(3, failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func errorsJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package graph

// Strongly connected components via an iterative Tarjan algorithm.
// The labeling algorithms never require an acyclic input (§II-C of the
// paper), but component structure drives the dataset statistics in
// Table V and the generators use it to validate the structural regime
// of each synthetic family.

// SCCResult describes the strongly connected components of a graph.
type SCCResult struct {
	// Component[v] is the component index of vertex v. Components are
	// numbered in reverse topological order of the condensation (i.e.
	// component 0 is a sink component).
	Component []int32
	// Sizes[c] is the number of vertices in component c.
	Sizes []int32
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Sizes) }

// LargestComponent returns the size of the largest SCC.
func (r *SCCResult) LargestComponent() int {
	best := 0
	for _, s := range r.Sizes {
		if int(s) > best {
			best = int(s)
		}
	}
	return best
}

// SCC computes the strongly connected components of g.
func SCC(g *Digraph) *SCCResult {
	n := g.NumVertices()
	const unvisited = int32(-1)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var sizes []int32
	var counter int32
	stack := make([]VertexID, 0, 64)

	type frame struct {
		v    VertexID
		next int
	}
	call := make([]frame, 0, 64)

	for root := VertexID(0); int(root) < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call, frame{v: root})
		index[root] = counter
		lowlink[root] = counter
		counter++
		onStack[root] = true
		stack = append(stack, root)

		for len(call) > 0 {
			top := &call[len(call)-1]
			nbrs := g.OutNeighbors(top.v)
			recursed := false
			for top.next < len(nbrs) {
				w := nbrs[top.next]
				top.next++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					onStack[w] = true
					stack = append(stack, w)
					call = append(call, frame{v: w})
					recursed = true
					break
				}
				if onStack[w] && index[w] < lowlink[top.v] {
					lowlink[top.v] = index[w]
				}
			}
			if recursed {
				continue
			}
			v := top.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				c := int32(len(sizes))
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = c
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
			}
		}
	}
	return &SCCResult{Component: comp, Sizes: sizes}
}

// IsAcyclic reports whether g contains no directed cycle (self-loops
// count as cycles).
func IsAcyclic(g *Digraph) bool {
	r := SCC(g)
	if r.LargestComponent() > 1 {
		return false
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(v) {
			if w == v {
				return false
			}
		}
	}
	return true
}

package graph

import "fmt"

// Stats summarizes a graph for the Table V dataset inventory.
type Stats struct {
	Vertices     int
	Edges        int64
	MaxOutDegree int
	MaxInDegree  int
	AvgDegree    float64
	SelfLoops    int
	Components   int // strongly connected components
	LargestSCC   int
	Acyclic      bool
}

// ComputeStats gathers the Stats of g. It runs SCC and is therefore
// linear in the graph size.
func ComputeStats(g *Digraph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		for _, w := range g.OutNeighbors(v) {
			if w == v {
				s.SelfLoops++
			}
		}
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
	}
	scc := SCC(g)
	s.Components = scc.NumComponents()
	s.LargestSCC = scc.LargestComponent()
	s.Acyclic = s.LargestSCC <= 1 && s.SelfLoops == 0
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avg-deg=%.2f max-out=%d max-in=%d self-loops=%d SCCs=%d largest-SCC=%d acyclic=%v",
		s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.SelfLoops, s.Components, s.LargestSCC, s.Acyclic)
}

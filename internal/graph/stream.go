package graph

import (
	"fmt"
	"math"
)

// Streaming CSR construction: build a graph from an edge *stream*
// without ever materializing the edge slice, so generating and
// labeling a graph never holds raw edges and CSR simultaneously
// (at 10⁸ edges the raw slice alone is ~800 MB).
//
// The counting build needs two passes over the edges, so the stream
// must be replayable: FromEdgeStream invokes it twice and requires the
// two replays to be identical (every deterministic seeded generator
// is; a file-backed stream trivially is). A divergent second replay is
// detected and reported, never silently mis-built.

// EdgeStreamFunc produces an edge stream by calling emit once per
// edge, in a deterministic order. Returning a non-nil error from emit
// aborts the stream; the stream must propagate it.
type EdgeStreamFunc func(emit func(Edge) error) error

// errStopStream cancels a replay early from inside emit.
var errStopStream = fmt.Errorf("graph: stop stream")

// FromEdgeStream builds a Digraph with n vertices by two passes over
// the stream: count raw out-degrees, then place targets into their
// source buckets. Sorting, deduplication, compaction, and the
// in-direction derivation run parallel afterwards, exactly as
// FromEdges — the result is byte-identical to FromEdges over the same
// edge sequence. Peak transient memory is one raw bucket array
// (4 bytes per streamed edge) instead of the 8-byte-per-edge slice.
func FromEdgeStream(n int, stream EdgeStreamFunc) (*Digraph, error) {
	if n < 0 || int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}

	// Pass 1: count and validate.
	cnt := make([]int64, n)
	var raw int64
	err := stream(func(e Edge) error {
		if int(e.U) >= n || int(e.V) >= n || e.U < 0 || e.V < 0 {
			return fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		cnt[e.U]++
		raw++
		return nil
	})
	if err != nil {
		return nil, err
	}

	rawOff := prefixSum(cnt)
	for v := range cnt {
		cnt[v] = 0
	}

	// Pass 2: replay and place. The replay must reproduce pass 1's
	// sequence; a bucket overflow or count mismatch means it did not.
	prov := make([]VertexID, raw)
	var seen int64
	err = stream(func(e Edge) error {
		if int(e.U) >= n || e.U < 0 {
			return errStopStream
		}
		slot := cnt[e.U]
		if slot >= rawOff[e.U+1]-rawOff[e.U] {
			return errStopStream
		}
		prov[rawOff[e.U]+slot] = e.V
		cnt[e.U]++
		seen++
		return nil
	})
	if err == errStopStream || (err == nil && seen != raw) {
		return nil, fmt.Errorf("graph: edge stream is not replayable (pass 1 yielded %d edges, pass 2 diverged at edge %d)", raw, seen)
	}
	if err != nil {
		return nil, err
	}

	workers := buildWorkers(int(min(raw, math.MaxInt32)))
	outOff, outAdj := dedupCompact(n, prov, rawOff, cnt, workers)
	inOff, inAdj := inFromOut(n, outOff, outAdj, cnt, workers)
	return newDigraph(int32(n), outOff, outAdj, inOff, inAdj), nil
}

// StreamOfEdges adapts an in-memory edge slice to an EdgeStreamFunc
// (tests and callers that already hold the slice).
func StreamOfEdges(edges []Edge) EdgeStreamFunc {
	return func(emit func(Edge) error) error {
		for _, e := range edges {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	}
}

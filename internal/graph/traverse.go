package graph

// Traversal helpers. These are the index-free oracles used throughout
// the test suite and the primitives BFL's fallback search builds on.

// Visitor is called for every vertex discovered by a traversal. If it
// returns false the traversal stops early.
type Visitor func(v VertexID) bool

// BFS runs a breadth-first search from src over out-edges, invoking
// visit for every discovered vertex including src.
func BFS(g *Digraph, src VertexID, visit Visitor) {
	seen := make([]bool, g.NumVertices())
	queue := make([]VertexID, 0, 64)
	seen[src] = true
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !visit(u) {
			return
		}
		for _, w := range g.OutNeighbors(u) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
}

// Reachable reports whether s can reach t by an online BFS. It is the
// ground-truth oracle for every reachability index in this repository.
func Reachable(g *Digraph, s, t VertexID) bool {
	if s == t {
		return true
	}
	found := false
	BFS(g, s, func(v VertexID) bool {
		if v == t {
			found = true
			return false
		}
		return true
	})
	return found
}

// Descendants returns DES(v): every vertex v can reach, including v.
func Descendants(g *Digraph, v VertexID) []VertexID {
	var out []VertexID
	BFS(g, v, func(u VertexID) bool {
		out = append(out, u)
		return true
	})
	return out
}

// Ancestors returns ANC(v): every vertex that can reach v, including v.
func Ancestors(g *Digraph, v VertexID) []VertexID {
	return Descendants(g.Inverse(), v)
}

// PostOrder returns the vertices of g in DFS finishing order, running
// the DFS from every root in increasing ID order. The traversal is
// iterative so deep graphs cannot overflow the goroutine stack. BFL's
// interval labels are assigned from this order.
func PostOrder(g *Digraph) []VertexID {
	n := g.NumVertices()
	order := make([]VertexID, 0, n)
	seen := make([]bool, n)
	type frame struct {
		v    VertexID
		next int
	}
	stack := make([]frame, 0, 64)
	for root := VertexID(0); int(root) < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack, frame{v: root})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			nbrs := g.OutNeighbors(top.v)
			advanced := false
			for top.next < len(nbrs) {
				w := nbrs[top.next]
				top.next++
				if !seen[w] {
					seen[w] = true
					stack = append(stack, frame{v: w})
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			order = append(order, top.v)
			stack = stack[:len(stack)-1]
		}
	}
	return order
}

// TransitiveClosureSize counts Σ_v |DES(v)| with one BFS per vertex.
// It is quadratic and intended only for small analysis runs (Table V
// style statistics on test graphs).
func TransitiveClosureSize(g *Digraph) int64 {
	var total int64
	n := g.NumVertices()
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	queue := make([]VertexID, 0, 64)
	for v := VertexID(0); int(v) < n; v++ {
		queue = queue[:0]
		queue = append(queue, v)
		seen[v] = int32(v)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			total++
			for _, w := range g.OutNeighbors(u) {
				if seen[w] != int32(v) {
					seen[w] = int32(v)
					queue = append(queue, w)
				}
			}
		}
	}
	return total
}

// Package invariant provides runtime assertions that compile to no-ops
// unless the build carries -tags=invariants.
//
// The determinism contract (Theorems 2–4: the distributed build's index
// is byte-identical to serial TOL's) rests on a handful of structural
// properties that no Go type can express: label lists stay strictly
// increasing in rank, message buffers stay aligned to the wire record,
// checkpoint sections encode sorted key sets. The drlint analyzers
// (internal/lint) catch the static hazard patterns; this package is the
// dynamic complement — the properties are asserted in the hot paths
// themselves, and CI runs the full test suite once with the tag on
// (go test -tags=invariants ./...) so every exercised path checks them.
//
// Without the tag every function here has an empty body that the
// compiler inlines away, so production builds pay nothing.
package invariant

//go:build !invariants

package invariant

import "cmp"

// Enabled reports whether the invariants build tag is on, for callers
// that want to gate expensive check preparation.
const Enabled = false

// Assert is a no-op without the invariants tag.
func Assert(cond bool, format string, args ...any) {}

// Sorted is a no-op without the invariants tag.
func Sorted[T cmp.Ordered](what string, xs []T) {}

// StrictlyIncreasing is a no-op without the invariants tag.
func StrictlyIncreasing[T cmp.Ordered](what string, xs []T) {}

// NoDup is a no-op without the invariants tag.
func NoDup[T comparable](what string, xs []T) {}

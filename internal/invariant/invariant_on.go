//go:build invariants

package invariant

import (
	"cmp"
	"fmt"
)

// Enabled reports whether the invariants build tag is on, for callers
// that want to gate expensive check preparation.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// Sorted panics unless xs is in non-decreasing order.
func Sorted[T cmp.Ordered](what string, xs []T) {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			panic(fmt.Sprintf("invariant violated: %s: not sorted at index %d: %v after %v", what, i, xs[i], xs[i-1]))
		}
	}
}

// StrictlyIncreasing panics unless xs is strictly increasing — the
// shape of every label list: a sorted set of ranks with no repeats.
func StrictlyIncreasing[T cmp.Ordered](what string, xs []T) {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			panic(fmt.Sprintf("invariant violated: %s: not strictly increasing at index %d: %v after %v", what, i, xs[i], xs[i-1]))
		}
	}
}

// NoDup panics when xs contains a repeated element.
func NoDup[T comparable](what string, xs []T) {
	seen := make(map[T]struct{}, len(xs))
	for i, x := range xs {
		if _, dup := seen[x]; dup {
			panic(fmt.Sprintf("invariant violated: %s: duplicate element %v at index %d", what, x, i))
		}
		seen[x] = struct{}{}
	}
}

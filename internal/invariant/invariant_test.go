package invariant

import "testing"

// The same test binary behaves differently under the two build modes:
// with -tags=invariants every violated check must panic, without it
// every call must be a no-op. Enabled tells the test which contract to
// hold the package to, so `go test ./...` and
// `go test -tags=invariants ./...` both exercise their own mode.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); (r != nil) != Enabled {
			if Enabled {
				t.Errorf("%s: violated check did not panic with invariants on", name)
			} else {
				t.Errorf("%s: panicked with invariants off: %v", name, r)
			}
		}
	}()
	f()
}

func mustNotPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: satisfied check panicked: %v", name, r)
		}
	}()
	f()
}

func TestAssert(t *testing.T) {
	mustNotPanic(t, "Assert(true)", func() { Assert(true, "unreachable") })
	mustPanic(t, "Assert(false)", func() { Assert(false, "n=%d", 7) })
}

func TestSorted(t *testing.T) {
	mustNotPanic(t, "Sorted ok", func() { Sorted("xs", []int{1, 2, 2, 5}) })
	mustNotPanic(t, "Sorted empty", func() { Sorted("xs", []int(nil)) })
	mustPanic(t, "Sorted bad", func() { Sorted("xs", []int{3, 1}) })
}

func TestStrictlyIncreasing(t *testing.T) {
	mustNotPanic(t, "StrictlyIncreasing ok", func() { StrictlyIncreasing("xs", []uint32{1, 2, 5}) })
	mustPanic(t, "StrictlyIncreasing dup", func() { StrictlyIncreasing("xs", []uint32{1, 2, 2}) })
	mustPanic(t, "StrictlyIncreasing bad", func() { StrictlyIncreasing("xs", []uint32{2, 1}) })
}

func TestNoDup(t *testing.T) {
	mustNotPanic(t, "NoDup ok", func() { NoDup("xs", []string{"a", "b"}) })
	mustPanic(t, "NoDup dup", func() { NoDup("xs", []string{"a", "b", "a"}) })
}

package label

import (
	"sync"

	"repro/internal/graph"
)

// Budgeted is a reachability index whose per-vertex label lists are
// capped at a fixed width (the FERRARI idea adapted to TOL labels):
// when a graph's full 2-hop cover would not fit in memory, the builder
// keeps at most `budget` ranks per vertex per direction and records,
// per vertex and direction, whether the list is complete — i.e. the
// builder never refused an addition the pruning rule asked for.
//
// Query semantics rest on two facts:
//
//   - Every stored entry is factual (rank r ∈ L_out(v) still means v
//     reaches the rank-r vertex; capping elsewhere only weakens
//     pruning, which adds entries, never invents them), so a label hit
//     is always a sound "reachable".
//   - The 2-hop cover property survives capping for any pair whose two
//     endpoint lists are both complete: the inductive witness argument
//     of TOL only ever needs additions to those two lists, and a
//     pruning test that blocks such an addition stores its blocking
//     witness in the very list being tested. So a miss with
//     outFull(s) ∧ inFull(t) is a sound "unreachable".
//
// Every other pair falls back to a guarded BFS over the retained
// graph, pruned by whichever endpoint label is complete. The graph is
// therefore part of the index: a Budgeted cannot be serialized and
// served without it.
type Budgeted struct {
	x      *Index
	g      *graph.Digraph
	budget int
	// inFull[v] / outFull[v] report that L_in(v) / L_out(v) is the
	// complete label set the uncapped build would have produced a
	// superset-witness for (see above), not a truncation.
	inFull, outFull []bool

	scratch sync.Pool // *bfsScratch, reused across queries and goroutines
}

// bfsScratch is the per-query BFS state, epoch-marked so reuse costs
// no clearing: a vertex is visited iff mark[v] == epoch.
type bfsScratch struct {
	mark  []int32
	epoch int32
	queue []graph.VertexID
}

// NewBudgeted assembles a budgeted index from the capped Index, the
// graph it covers, and the per-vertex completeness flags produced by
// the builder. The graph is retained for fallback queries.
func NewBudgeted(x *Index, g *graph.Digraph, budget int, inFull, outFull []bool) *Budgeted {
	b := &Budgeted{x: x, g: g, budget: budget, inFull: inFull, outFull: outFull}
	b.scratch.New = func() any {
		return &bfsScratch{mark: make([]int32, g.NumVertices())}
	}
	return b
}

// Index returns the capped label index (entries are factual; lists may
// be incomplete where the flags say so).
func (b *Budgeted) Index() *Index { return b.x }

// Budget returns the per-vertex per-direction label cap.
func (b *Budgeted) Budget() int { return b.budget }

// Overflowed returns how many vertices have an incomplete in-label and
// out-label list respectively — the vertices whose queries may need
// the BFS fallback.
func (b *Budgeted) Overflowed() (in, out int) {
	for v := range b.inFull {
		if !b.inFull[v] {
			in++
		}
		if !b.outFull[v] {
			out++
		}
	}
	return in, out
}

// Reachable answers q(s, t). A label hit is always trusted; a miss is
// trusted when both endpoint lists are complete; the residual cases
// run a BFS pruned by whichever side's labels are complete.
func (b *Budgeted) Reachable(s, t graph.VertexID) bool {
	if s == t {
		// A vertex's own rank may have been capped out of its lists,
		// so reflexivity is answered before looking at them.
		return true
	}
	if b.x.Reachable(s, t) {
		return true
	}
	if b.outFull[s] && b.inFull[t] {
		return false
	}
	return b.fallbackBFS(s, t)
}

// ReachableBatch answers q(s, t) for every pair, in the callers'
// order, identically to calling Reachable per pair.
func (b *Budgeted) ReachableBatch(pairs []Pair) []bool {
	res := make([]bool, len(pairs))
	for i, p := range pairs {
		res[i] = b.Reachable(p.S, p.T)
	}
	return res
}

// fallbackBFS resolves a label miss where at least one endpoint list
// overflowed. Three regimes, in order of preference:
//
//   - t's in-label is complete: forward BFS from s; any frontier
//     vertex with a complete out-label is resolved against L_in(t) by
//     one intersection — a hit answers the query, a miss proves that
//     vertex reaches nothing relevant and prunes its subtree.
//   - s's out-label is complete: the mirror image, backward from t.
//   - both endpoints overflowed: a plain forward BFS (rare by
//     construction — only the widest vertices overflow).
func (b *Budgeted) fallbackBFS(s, t graph.VertexID) bool {
	sc := b.scratch.Get().(*bfsScratch)
	defer b.scratch.Put(sc)
	sc.epoch++
	if sc.epoch == 0 { // wrapped: marks are stale, reset once
		clear(sc.mark)
		sc.epoch = 1
	}

	backward := b.outFull[s] && !b.inFull[t]
	start, goal := s, t
	var next func(graph.VertexID) []graph.VertexID
	prune := func(graph.VertexID) (hit, cut bool) { return false, false }
	switch {
	case b.inFull[t]:
		next = b.g.OutNeighbors
		prune = func(u graph.VertexID) (hit, cut bool) {
			if !b.outFull[u] {
				return false, false
			}
			// u's out-label is the complete story of what u reaches
			// among label targets; t's in-label is complete too, so
			// this one intersection decides u's whole subtree.
			return intersects(b.x.OutLabels(u), b.x.InLabels(t)), true
		}
	case backward:
		start, goal = t, s
		next = b.g.InNeighbors
		prune = func(u graph.VertexID) (hit, cut bool) {
			if !b.inFull[u] {
				return false, false
			}
			return intersects(b.x.OutLabels(s), b.x.InLabels(u)), true
		}
	default:
		next = b.g.OutNeighbors
	}

	sc.mark[start] = sc.epoch
	sc.queue = append(sc.queue[:0], start)
	for head := 0; head < len(sc.queue); head++ {
		for _, u := range next(sc.queue[head]) {
			if u == goal {
				return true
			}
			if sc.mark[u] == sc.epoch {
				continue
			}
			sc.mark[u] = sc.epoch
			if hit, cut := prune(u); cut {
				if hit {
					return true
				}
				continue
			}
			sc.queue = append(sc.queue, u)
		}
	}
	return false
}

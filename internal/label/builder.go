package label

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/order"
)

// Builder accumulates label entries and produces an immutable Index.
// Entries may arrive in any order; Finalize sorts each per-vertex list
// by rank.
type Builder struct {
	n   int
	ord *order.Ordering
	in  [][]order.Rank
	out [][]order.Rank
}

// NewBuilder returns a Builder for a graph with the given ordering.
func NewBuilder(ord *order.Ordering) *Builder {
	n := ord.N()
	return &Builder{n: n, ord: ord, in: make([][]order.Rank, n), out: make([][]order.Rank, n)}
}

// AddIn records r ∈ L_in(w): the vertex with rank r reaches w and
// survives pruning.
func (b *Builder) AddIn(w graph.VertexID, r order.Rank) { b.in[w] = append(b.in[w], r) }

// AddOut records r ∈ L_out(w).
func (b *Builder) AddOut(w graph.VertexID, r order.Rank) { b.out[w] = append(b.out[w], r) }

// Finalize sorts every label list and freezes the result into the
// flat Index: every construction path funnels through Lists.Freeze.
func (b *Builder) Finalize() *Index {
	return b.Lists().Freeze()
}

// Lists sorts every accumulated label list and returns the slice
// layout, aliasing the Builder's backing slices (the Builder should
// not be reused afterwards).
func (b *Builder) Lists() *Lists {
	for v := 0; v < b.n; v++ {
		sortRanks(b.in[v])
		sortRanks(b.out[v])
		// Builder tolerates duplicate Add calls (the merge in Reachable
		// handles repeats), so only sortedness is promised here.
		invariant.Sorted("label: L_in after Finalize sort", b.in[v])
		invariant.Sorted("label: L_out after Finalize sort", b.out[v])
	}
	return &Lists{n: b.n, ord: b.ord, in: b.in, out: b.out}
}

func sortRanks(rs []order.Rank) {
	if len(rs) < 2 {
		return
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

// FromLists assembles an Index directly from per-vertex label lists.
// Each list must be a strictly increasing rank sequence — a sorted
// label *set* (TOL emits labels in round order, which is rank order,
// and never labels a vertex twice). The lists are copied, not aliased.
func FromLists(ord *order.Ordering, in, out [][]order.Rank) *Index {
	n := ord.N()
	for v := 0; v < n; v++ {
		invariant.StrictlyIncreasing("label: FromLists in-list", in[v])
		invariant.StrictlyIncreasing("label: FromLists out-list", out[v])
	}
	return (&Lists{n: n, ord: ord, in: in, out: out}).Freeze()
}

// FromBackward assembles an Index from backward label sets: backIn[r]
// lists the vertices w with rank-r vertex ∈ L_in(w) (i.e. L_in^⁻ of
// the vertex ranked r), and likewise backOut for out-labels
// (Definition 4). Iterating ranks in increasing order keeps each
// forward list sorted without a final sort.
func FromBackward(ord *order.Ordering, backIn, backOut [][]graph.VertexID) *Index {
	n := ord.N()
	x := &Index{
		n:      n,
		ord:    ord,
		inOff:  make([]int64, n+1),
		outOff: make([]int64, n+1),
	}
	inCnt := make([]int64, n)
	outCnt := make([]int64, n)
	var inTotal, outTotal int64
	for r := 0; r < n; r++ {
		for _, w := range backIn[r] {
			inCnt[w]++
		}
		for _, w := range backOut[r] {
			outCnt[w]++
		}
		inTotal += int64(len(backIn[r]))
		outTotal += int64(len(backOut[r]))
	}
	for v := 0; v < n; v++ {
		x.inOff[v+1] = x.inOff[v] + inCnt[v]
		x.outOff[v+1] = x.outOff[v] + outCnt[v]
	}
	x.inLab = make([]order.Rank, inTotal)
	x.outLab = make([]order.Rank, outTotal)
	inCur := make([]int64, n)
	outCur := make([]int64, n)
	copy(inCur, x.inOff[:n])
	copy(outCur, x.outOff[:n])
	for r := 0; r < n; r++ {
		for _, w := range backIn[r] {
			x.inLab[inCur[w]] = order.Rank(r)
			inCur[w]++
		}
		for _, w := range backOut[r] {
			x.outLab[outCur[w]] = order.Rank(r)
			outCur[w]++
		}
	}
	return x
}

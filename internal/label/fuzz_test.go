package label

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

// FuzzRead: arbitrary bytes must either fail cleanly or yield an
// index whose queries cannot panic.
func FuzzRead(f *testing.F) {
	b := NewBuilder(order.FromRanks([]order.Rank{0, 1, 2}))
	b.AddIn(1, 0)
	b.AddIn(2, 0)
	b.AddOut(0, 0)
	b.AddOut(2, 2)
	x := b.Finalize()
	var seed bytes.Buffer
	if _, err := x.WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, input []byte) {
		idx, err := Read(bytes.NewReader(input))
		if err != nil {
			return
		}
		n := idx.NumVertices()
		for v := 0; v < n && v < 8; v++ {
			for w := 0; w < n && w < 8; w++ {
				idx.Reachable(graph.VertexID(v), graph.VertexID(w))
			}
		}
		_ = idx.MaxLabelSize()
		_ = idx.SizeBytes()
	})
}

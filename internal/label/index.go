// Package label defines the reachability index produced by TOL and by
// the paper's distributed labeling algorithms, the merge-intersection
// query over it, and the trimmed BFS primitive (Algorithm 2) the
// filtering phase is built on.
//
// A label entry is the *rank* of the labeling vertex in the total
// order (rank 0 = highest order). Storing ranks instead of vertex IDs
// keeps every per-vertex label list sorted by construction — TOL and
// the batch algorithms emit labels in decreasing order — so the
// intersection at query time is a linear merge, the
// O(|L_out(s)| + |L_in(t)|) bound of §II-A.
package label

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/order"
)

// Index is an immutable reachability index: an in-label and an
// out-label set per vertex, each a rank-sorted slice.
type Index struct {
	n      int
	ord    *order.Ordering
	inOff  []int64
	inLab  []order.Rank
	outOff []int64
	outLab []order.Rank
}

// NumVertices returns the number of vertices the index covers.
func (x *Index) NumVertices() int { return x.n }

// Ordering returns the vertex order the index was built under.
func (x *Index) Ordering() *order.Ordering { return x.ord }

// InLabels returns L_in(v) as a rank-sorted read-only slice.
func (x *Index) InLabels(v graph.VertexID) []order.Rank {
	return x.inLab[x.inOff[v]:x.inOff[v+1]]
}

// OutLabels returns L_out(v) as a rank-sorted read-only slice.
func (x *Index) OutLabels(v graph.VertexID) []order.Rank {
	return x.outLab[x.outOff[v]:x.outOff[v+1]]
}

// Reachable answers the reachability query q(s, t) from the index
// alone: true iff L_out(s) ∩ L_in(t) ≠ ∅ (Definition 3). The two
// sorted label lists are merged, never the graph touched. Both lists
// live in the flat arrays, so the merge walks two dense ranges via
// offset cursors with no per-vertex pointer chasing; the loop lives
// in this method body because gc does not inline functions with
// loops, and a call frame is measurable at single-digit-nanosecond
// query latencies. Heavily skewed list pairs take the galloping path
// instead.
func (x *Index) Reachable(s, t graph.VertexID) bool {
	i, ae := x.outOff[s], x.outOff[s+1]
	j, be := x.inOff[t], x.inOff[t+1]
	if la, lb := ae-i, be-j; la > gallopRatio*lb || lb > gallopRatio*la {
		return intersects(x.outLab[i:ae], x.inLab[j:be])
	}
	a, b := x.outLab, x.inLab
	for i < ae && j < be {
		av, bv := a[i], b[j]
		if av == bv {
			return true
		}
		if av < bv {
			i++
		} else {
			j++
		}
	}
	return false
}

// gallopRatio is the length skew beyond which the merge switches from
// the linear two-pointer walk to galloping probes of the short list
// into the long one: O(|short|·log|long|) beats O(|short|+|long|) once
// the skew exceeds the log factor with room to spare.
const gallopRatio = 16

// intersects reports whether two rank-sorted lists share an element.
// It is the query kernel: a linear merge for comparable lengths, a
// galloping search when one list dwarfs the other (hub vertices have
// single-digit labels, low-order vertices can carry hundreds).
func intersects(a, b []order.Rank) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return false
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntersects(a, b)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// gallopIntersects probes each element of the short list into the
// remaining suffix of the long one: exponential steps to bracket the
// element, then a binary search inside the bracket. Both lists are
// consumed left to right, so the whole pass is monotone.
func gallopIntersects(short, long []order.Rank) bool {
	pos := 0
	for _, r := range short {
		step := 1
		for pos+step < len(long) && long[pos+step-1] < r {
			step <<= 1
		}
		lo, hi := pos, pos+step
		if hi > len(long) {
			hi = len(long)
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if long[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(long) {
			return false
		}
		if long[lo] == r {
			return true
		}
		pos = lo
	}
	return false
}

// Pair is one (source, target) query of a batch.
type Pair struct {
	S, T graph.VertexID
}

// ReachableBatch answers q(s, t) for every pair, writing answers in
// the callers' order. Pairs are processed sorted by (source, target)
// so consecutive pairs sharing a source reuse its out-label range
// (still hot in cache) and exact duplicates are answered once. The
// answers are identical to calling Reachable per pair.
func (x *Index) ReachableBatch(pairs []Pair) []bool {
	res := make([]bool, len(pairs))
	if len(pairs) == 0 {
		return res
	}
	perm := make([]int32, len(pairs))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		pi, pj := pairs[perm[i]], pairs[perm[j]]
		if pi.S != pj.S {
			return pi.S < pj.S
		}
		return pi.T < pj.T
	})
	curS := graph.VertexID(-1)
	var out []order.Rank
	prev := Pair{S: -1, T: -1}
	prevAns := false
	for _, k := range perm {
		p := pairs[k]
		if p == prev {
			res[k] = prevAns
			continue
		}
		if p.S != curS {
			curS = p.S
			out = x.OutLabels(p.S)
		}
		prevAns = intersects(out, x.InLabels(p.T))
		prev = p
		res[k] = prevAns
	}
	return res
}

// Entries returns the total number of label entries Σ(|L_in|+|L_out|).
func (x *Index) Entries() int64 {
	return int64(len(x.inLab) + len(x.outLab))
}

// SizeBytes returns the byte footprint of the index payload: 4 bytes
// per label entry plus the two offset arrays. This matches how the
// paper reports "Index Size" in Table VI.
func (x *Index) SizeBytes() int64 {
	return 4*x.Entries() + 8*int64(len(x.inOff)+len(x.outOff))
}

// MaxLabelSize returns Δ = max_v max(|L_in(v)|, |L_out(v)|).
func (x *Index) MaxLabelSize() int {
	best := 0
	for v := 0; v < x.n; v++ {
		if l := int(x.inOff[v+1] - x.inOff[v]); l > best {
			best = l
		}
		if l := int(x.outOff[v+1] - x.outOff[v]); l > best {
			best = l
		}
	}
	return best
}

// AvgLabelSize returns the mean of (|L_in(v)| + |L_out(v)|) / 2.
func (x *Index) AvgLabelSize() float64 {
	if x.n == 0 {
		return 0
	}
	return float64(x.Entries()) / float64(2*x.n)
}

// Equal reports whether two indexes contain exactly the same label
// sets (the paper's central claim: DRL variants reproduce TOL's index
// bit for bit).
func (x *Index) Equal(y *Index) bool {
	if x.n != y.n {
		return false
	}
	eq := func(aOff, bOff []int64, aLab, bLab []order.Rank) bool {
		if len(aLab) != len(bLab) {
			return false
		}
		for v := 0; v <= x.n; v++ {
			if aOff[v] != bOff[v] {
				return false
			}
		}
		for i := range aLab {
			if aLab[i] != bLab[i] {
				return false
			}
		}
		return true
	}
	return eq(x.inOff, y.inOff, x.inLab, y.inLab) &&
		eq(x.outOff, y.outOff, x.outLab, y.outLab)
}

// Diff returns a short description of the first difference between two
// indexes, or "" if they are equal. Used by tests for readable
// failures.
func (x *Index) Diff(y *Index) string {
	if x.n != y.n {
		return fmt.Sprintf("vertex count %d vs %d", x.n, y.n)
	}
	for v := graph.VertexID(0); int(v) < x.n; v++ {
		if d := diffLabels("L_in", v, x.InLabels(v), y.InLabels(v)); d != "" {
			return d
		}
		if d := diffLabels("L_out", v, x.OutLabels(v), y.OutLabels(v)); d != "" {
			return d
		}
	}
	return ""
}

func diffLabels(kind string, v graph.VertexID, a, b []order.Rank) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s(v%d): %v vs %v", kind, v, a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("%s(v%d): %v vs %v", kind, v, a, b)
		}
	}
	return ""
}

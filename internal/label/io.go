package label

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/order"
)

// Binary index format. The paper's deployment model collects the
// distributed label sets onto one machine and serves queries from
// memory there (§I, Exp 1); this serialization is how that machine
// loads the index. The ordering's rank permutation is embedded so a
// reader can translate vertex IDs to ranks without the graph.

const indexMagic = uint64(0x44524c494e444558) // "DRLINDEX"

// WriteTo serializes the index. It returns the number of bytes
// written.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(data any, size int64) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return fmt.Errorf("label: writing index: %w", err)
		}
		written += size
		return nil
	}
	if err := put(indexMagic, 8); err != nil {
		return written, err
	}
	if err := put(uint64(x.n), 8); err != nil {
		return written, err
	}
	if err := put(uint64(len(x.inLab)), 8); err != nil {
		return written, err
	}
	if err := put(uint64(len(x.outLab)), 8); err != nil {
		return written, err
	}
	ranks := make([]int32, x.n)
	for v := 0; v < x.n; v++ {
		ranks[v] = int32(x.ord.Ranks()[v])
	}
	if err := put(ranks, int64(4*x.n)); err != nil {
		return written, err
	}
	for _, off := range [][]int64{x.inOff, x.outOff} {
		if err := put(off, int64(8*len(off))); err != nil {
			return written, err
		}
	}
	for _, lab := range [][]order.Rank{x.inLab, x.outLab} {
		if err := put(lab, int64(4*len(lab))); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("label: flushing index: %w", err)
	}
	return written, nil
}

// Read deserializes an index written by WriteTo.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic, n64, nIn, nOut uint64
	for _, p := range []*uint64{&magic, &n64, &nIn, &nOut} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("label: reading index header: %w", err)
		}
	}
	if magic != indexMagic {
		return nil, errors.New("label: not an index file (bad magic)")
	}
	if n64 > 1<<31 || nIn > 1<<40 || nOut > 1<<40 {
		return nil, fmt.Errorf("label: implausible index header n=%d", n64)
	}
	n := int(n64)
	ranks, err := readInt32s(br, int64(n))
	if err != nil {
		return nil, fmt.Errorf("label: reading rank permutation: %w", err)
	}
	ordRanks := make([]order.Rank, n)
	seen := make([]bool, n)
	for v, r := range ranks {
		if r < 0 || int(r) >= n || seen[r] {
			return nil, fmt.Errorf("label: corrupt rank %d for vertex %d", r, v)
		}
		seen[r] = true
		ordRanks[v] = order.Rank(r)
	}
	x := &Index{n: n}
	// Bounded chunk reads: corrupt headers fail at the first missing
	// chunk instead of forcing giant allocations.
	if x.inOff, err = readInt64s(br, n+1); err != nil {
		return nil, fmt.Errorf("label: reading offsets: %w", err)
	}
	if x.outOff, err = readInt64s(br, n+1); err != nil {
		return nil, fmt.Errorf("label: reading offsets: %w", err)
	}
	if x.inLab, err = readRanks(br, int64(nIn)); err != nil {
		return nil, fmt.Errorf("label: reading labels: %w", err)
	}
	if x.outLab, err = readRanks(br, int64(nOut)); err != nil {
		return nil, fmt.Errorf("label: reading labels: %w", err)
	}
	if x.inOff[n] != int64(nIn) || x.outOff[n] != int64(nOut) {
		return nil, errors.New("label: corrupt index (offset mismatch)")
	}
	for _, off := range [][]int64{x.inOff, x.outOff} {
		if off[0] != 0 {
			return nil, errors.New("label: corrupt index (bad first offset)")
		}
		for i := 1; i <= n; i++ {
			if off[i] < off[i-1] {
				return nil, errors.New("label: corrupt index (non-monotone offsets)")
			}
		}
	}
	for _, lab := range [][]order.Rank{x.inLab, x.outLab} {
		for _, r := range lab {
			if r < 0 || int(r) >= n {
				return nil, errors.New("label: corrupt index (rank out of range)")
			}
		}
	}
	x.ord = order.FromRanks(ordRanks)
	return x, nil
}

// chunkElems bounds single allocations while reading untrusted sizes.
const chunkElems = 1 << 16

func readInt64s(r io.Reader, count int) ([]int64, error) {
	out := make([]int64, 0, min(count, chunkElems))
	for len(out) < count {
		chunk := make([]int64, min(count-len(out), chunkElems))
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt32s(r io.Reader, count int64) ([]int32, error) {
	out := make([]int32, 0, min(count, chunkElems))
	for int64(len(out)) < count {
		chunk := make([]int32, min(count-int64(len(out)), chunkElems))
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readRanks(r io.Reader, count int64) ([]order.Rank, error) {
	raw, err := readInt32s(r, count)
	if err != nil {
		return nil, err
	}
	out := make([]order.Rank, len(raw))
	for i, v := range raw {
		out[i] = order.Rank(v)
	}
	return out, nil
}

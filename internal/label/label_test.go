package label

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/order"
)

func sortIDs(vs []graph.VertexID) []graph.VertexID {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// TestTrimmedBFSPaperExample reproduces Example 8 / Fig. 3: the
// v3-sourced trimmed BFS. The example's prose assumes the subscript
// order ord(v1) > ord(v2) > ... > ord(v11) (the exact degree formula
// swaps v3/v4, which changes this intermediate set but not the final
// index), so that order is pinned explicitly here.
func TestTrimmedBFSPaperExample(t *testing.T) {
	g := graph.PaperExample()
	ranks := make([]order.Rank, g.NumVertices())
	for v := range ranks {
		ranks[v] = order.Rank(v)
	}
	ord := order.FromRanks(ranks)
	s := NewScratch(g.NumVertices())
	low, hig := TrimmedBFS(g, ord, 2 /* v3 */, s, nil, nil)
	wantLow := []graph.VertexID{2, 3, 9, 5, 10} // v3, v4, v10, v6, v11
	wantHig := []graph.VertexID{0, 1}           // v1, v2
	if got := sortIDs(low); len(got) != len(wantLow) {
		t.Fatalf("BFS_low(v3) = %v", got)
	} else {
		for i, w := range sortIDs(append([]graph.VertexID(nil), wantLow...)) {
			if got[i] != w {
				t.Fatalf("BFS_low(v3) = %v, want %v", got, wantLow)
			}
		}
	}
	if got := sortIDs(hig); len(got) != 2 || got[0] != wantHig[0] || got[1] != wantHig[1] {
		t.Fatalf("BFS_hig(v3) = %v, want %v", hig, wantHig)
	}
	if low[0] != 2 {
		t.Errorf("BFS_low must start with the source, got %v", low)
	}
}

// TestTrimmedBFSProperties quick-checks Algorithm 2's contract on
// random graphs: BFS_low(v) = vertices reachable through strictly
// lower-order interiors; BFS_hig(v) = higher-order vertices adjacent
// to that region.
func TestTrimmedBFSProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		var edges []graph.Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(rng.Intn(n)),
				V: graph.VertexID(rng.Intn(n)),
			})
		}
		g := graph.FromEdges(n, edges)
		ord := order.Compute(g)
		s := NewScratch(n)
		for v := graph.VertexID(0); int(v) < n; v++ {
			low, hig := TrimmedBFS(g, ord, v, s, nil, nil)
			want := naiveTrimmed(g, ord, v)
			if !sameSet(low, want) {
				t.Fatalf("BFS_low(%d) = %v, want %v", v, sortIDs(low), sortIDs(want))
			}
			// hig ⊆ DES_hig(v) and disjoint from low.
			inLow := map[graph.VertexID]bool{}
			for _, w := range low {
				inLow[w] = true
			}
			for _, u := range hig {
				if inLow[u] {
					t.Fatalf("hig vertex %d also in low", u)
				}
				if !ord.Higher(u, v) {
					t.Fatalf("hig vertex %d is not higher-order than %d", u, v)
				}
			}
			// Deduplicated.
			seen := map[graph.VertexID]bool{}
			for _, u := range hig {
				if seen[u] {
					t.Fatalf("hig contains %d twice", u)
				}
				seen[u] = true
			}
		}
	}
}

// naiveTrimmed recomputes BFS_low by brute force: w is in BFS_low(v)
// iff a path v→w exists whose non-source vertices are all lower order
// than v.
func naiveTrimmed(g *graph.Digraph, ord *order.Ordering, v graph.VertexID) []graph.VertexID {
	low := []graph.VertexID{v}
	visited := map[graph.VertexID]bool{v: true}
	queue := []graph.VertexID{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(u) {
			if visited[w] || !ord.Higher(v, w) {
				continue
			}
			visited[w] = true
			low = append(low, w)
			queue = append(queue, w)
		}
	}
	return low
}

func sameSet(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[graph.VertexID]int{}
	for _, v := range a {
		m[v]++
	}
	for _, v := range b {
		m[v]--
	}
	for _, c := range m {
		if c != 0 {
			return false
		}
	}
	return true
}

// TestTrimmedBFSVisitAgrees checks the callback variant against the
// materializing one.
func TestTrimmedBFSVisitAgrees(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	s1, s2 := NewScratch(g.NumVertices()), NewScratch(g.NumVertices())
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		low, hig := TrimmedBFS(g, ord, v, s1, nil, nil)
		var low2, hig2 []graph.VertexID
		TrimmedBFSVisit(g, ord, v, s2,
			func(w graph.VertexID) { low2 = append(low2, w) },
			func(w graph.VertexID) { hig2 = append(hig2, w) })
		if !sameSet(low, low2) || !sameSet(hig, hig2) {
			t.Fatalf("v%d: visit variant disagrees", v)
		}
	}
}

// TestScratchEpochWrap forces the epoch counter to wrap and checks
// the lazy reset keeps results correct.
func TestScratchEpochWrap(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ord := order.Compute(g)
	s := NewScratch(3)
	s.epoch = -3 // three calls from wrapping
	for i := 0; i < 8; i++ {
		low, _ := TrimmedBFS(g, ord, 2, s, nil, nil)
		if len(low) == 0 || low[0] != 2 {
			t.Fatalf("iteration %d: low = %v", i, low)
		}
	}
}

func buildSmallIndex(t *testing.T) (*Index, *order.Ordering) {
	t.Helper()
	ord := order.FromRanks([]order.Rank{0, 1, 2})
	b := NewBuilder(ord)
	b.AddIn(1, 0)
	b.AddIn(1, 1)
	b.AddIn(2, 0)
	b.AddOut(0, 0)
	b.AddOut(1, 1)
	b.AddOut(2, 2)
	b.AddIn(0, 0)
	b.AddOut(2, 0)
	return b.Finalize(), ord
}

func TestIndexAccessors(t *testing.T) {
	x, _ := buildSmallIndex(t)
	if x.NumVertices() != 3 {
		t.Errorf("NumVertices = %d", x.NumVertices())
	}
	if got := x.InLabels(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("InLabels(1) = %v", got)
	}
	if x.Entries() != 8 {
		t.Errorf("Entries = %d, want 8", x.Entries())
	}
	if x.MaxLabelSize() != 2 {
		t.Errorf("MaxLabelSize = %d, want 2", x.MaxLabelSize())
	}
	if x.AvgLabelSize() != 8.0/6.0 {
		t.Errorf("AvgLabelSize = %f", x.AvgLabelSize())
	}
	if x.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	// Reachability through the shared rank 0: out(2) ∩ in(1) = {0}.
	if !x.Reachable(2, 1) {
		t.Error("q(2,1) should hold via rank 0")
	}
	if x.Reachable(1, 0) {
		t.Error("q(1,0) should not hold")
	}
}

func TestIndexEqualAndDiff(t *testing.T) {
	a, ord := buildSmallIndex(t)
	b, _ := buildSmallIndex(t)
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Error("identical indexes should compare equal")
	}
	c := NewBuilder(ord)
	c.AddIn(1, 0)
	d := c.Finalize()
	if a.Equal(d) {
		t.Error("different indexes compare equal")
	}
	if a.Diff(d) == "" {
		t.Error("Diff should describe the difference")
	}
}

func TestFromBackwardMatchesBuilder(t *testing.T) {
	ord := order.FromRanks([]order.Rank{1, 0, 2})
	// Backward sets: rank 0 (vertex 1) labels {0, 2} in, {1} out;
	// rank 1 (vertex 0) labels {0} in; rank 2 labels nothing.
	backIn := [][]graph.VertexID{{0, 2}, {0}, {}}
	backOut := [][]graph.VertexID{{1}, {}, {}}
	x := FromBackward(ord, backIn, backOut)

	b := NewBuilder(ord)
	b.AddIn(0, 0)
	b.AddIn(2, 0)
	b.AddIn(0, 1)
	b.AddOut(1, 0)
	y := b.Finalize()
	if !x.Equal(y) {
		t.Fatalf("FromBackward differs from Builder: %s", x.Diff(y))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	x, _ := buildSmallIndex(t)
	var buf bytes.Buffer
	nBytes, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nBytes != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", nBytes, buf.Len())
	}
	y, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(y) {
		t.Fatalf("round trip changed the index: %s", x.Diff(y))
	}
	if y.Ordering().RankOf(0) != x.Ordering().RankOf(0) {
		t.Error("ordering lost in round trip")
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	x, _ := buildSmallIndex(t)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected error for garbage")
	}
	truncated := good[:len(good)-3]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Error("expected error for truncated input")
	}
	// Corrupt the rank permutation (duplicate rank).
	bad := append([]byte(nil), good...)
	copy(bad[32:36], bad[36:40])
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for corrupt rank permutation")
	}
}

// TestReachableMatchesSetIntersection quick-checks the sorted merge
// against a map-based intersection.
func TestReachableMatchesSetIntersection(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		ord := order.FromRanks([]order.Rank{0, 1})
		b := NewBuilder(ord)
		am := map[order.Rank]bool{}
		for _, r := range aRaw {
			b.AddOut(0, order.Rank(r))
			am[order.Rank(r)] = true
		}
		overlap := false
		for _, r := range bRaw {
			b.AddIn(1, order.Rank(r))
			if am[order.Rank(r)] {
				overlap = true
			}
		}
		x := b.Finalize()
		return x.Reachable(0, 1) == overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package label

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/order"
)

// randomIndex builds an index with random (sorted, duplicate-free)
// label lists through the Builder, alongside the raw per-vertex lists.
func randomIndex(t *testing.T, n int, seed int64) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ranks := make([]order.Rank, n)
	for i := range ranks {
		ranks[i] = order.Rank(i)
	}
	rng.Shuffle(n, func(i, j int) { ranks[i], ranks[j] = ranks[j], ranks[i] })
	b := NewBuilder(order.FromRanks(ranks))
	for v := 0; v < n; v++ {
		for r := 0; r < n; r++ {
			if rng.Intn(4) == 0 {
				b.AddIn(graph.VertexID(v), order.Rank(r))
			}
			if rng.Intn(4) == 0 {
				b.AddOut(graph.VertexID(v), order.Rank(r))
			}
		}
	}
	return b.Finalize()
}

// TestFreezeThawRoundTrip: Thaw∘Freeze is the identity on label sets,
// and the re-frozen index is byte-identical to the original.
func TestFreezeThawRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		x := randomIndex(t, 40, seed)
		refrozen := x.Thaw().Freeze()
		if !x.Equal(refrozen) {
			t.Fatalf("seed %d: Thaw().Freeze() diverged: %s", seed, x.Diff(refrozen))
		}
	}
}

// TestFlatMatchesSliceLayout: the flat Index and the slice-layout
// Lists answer every pair identically — the layouts differ only in
// memory shape, never in answers.
func TestFlatMatchesSliceLayout(t *testing.T) {
	for _, seed := range []int64{7, 8} {
		x := randomIndex(t, 48, seed)
		l := x.Thaw()
		for s := 0; s < 48; s++ {
			for d := 0; d < 48; d++ {
				sv, tv := graph.VertexID(s), graph.VertexID(d)
				if got, want := x.Reachable(sv, tv), l.Reachable(sv, tv); got != want {
					t.Fatalf("seed %d: flat(%d,%d)=%v, slice says %v", seed, s, d, got, want)
				}
			}
		}
	}
}

// TestGallopIntersects pits the galloping kernel against the linear
// merge on skewed random lists, including the boundary shapes the
// exponential probe has to get right.
func TestGallopIntersects(t *testing.T) {
	linear := func(a, b []order.Rank) bool {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				return true
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return false
	}
	sortedSample := func(rng *rand.Rand, max, k int) []order.Rank {
		seen := map[int]bool{}
		var out []order.Rank
		for len(out) < k {
			r := rng.Intn(max)
			if !seen[r] {
				seen[r] = true
				out = append(out, order.Rank(r))
			}
		}
		sortRanks(out)
		return out
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		short := sortedSample(rng, 10000, 1+rng.Intn(4))
		long := sortedSample(rng, 10000, 1+rng.Intn(400))
		if got, want := gallopIntersects(short, long), linear(short, long); got != want {
			t.Fatalf("gallop(%v, %v) = %v, linear merge says %v", short, long, got, want)
		}
		if got, want := intersects(short, long), linear(short, long); got != want {
			t.Fatalf("intersects(%v, %v) = %v, linear merge says %v", short, long, got, want)
		}
	}
	// Boundary shapes.
	if gallopIntersects([]order.Rank{5}, []order.Rank{5}) != true {
		t.Error("single-element equality missed")
	}
	if gallopIntersects([]order.Rank{9}, []order.Rank{1, 2, 3}) != false {
		t.Error("past-the-end probe must miss")
	}
	if gallopIntersects([]order.Rank{0, 9999}, []order.Rank{9999}) != true {
		t.Error("match at the long list's last element missed")
	}
}

// TestReachableBatch: batch answers equal per-pair answers, in caller
// order, with duplicate and repeated-source pairs mixed in.
func TestReachableBatch(t *testing.T) {
	x := randomIndex(t, 32, 11)
	rng := rand.New(rand.NewSource(12))
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{S: graph.VertexID(rng.Intn(32)), T: graph.VertexID(rng.Intn(32))}
		if i > 0 && rng.Intn(5) == 0 {
			pairs[i] = pairs[rng.Intn(i)] // inject duplicates
		}
	}
	got := x.ReachableBatch(pairs)
	if len(got) != len(pairs) {
		t.Fatalf("batch returned %d answers for %d pairs", len(got), len(pairs))
	}
	for i, p := range pairs {
		if want := x.Reachable(p.S, p.T); got[i] != want {
			t.Fatalf("pair %d (%d,%d): batch=%v single=%v", i, p.S, p.T, got[i], want)
		}
	}
	if len(x.ReachableBatch(nil)) != 0 {
		t.Error("empty batch must return an empty answer slice")
	}
}

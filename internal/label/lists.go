package label

import (
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/order"
)

// Lists is the slice layout of a reachability index: one independently
// allocated rank slice per vertex and direction. It is the natural
// shape while labels are being accumulated (the Builder works in it)
// and the historical serving layout, kept as the reference the flat
// Index is checked against — Lists.Reachable runs the plain §II-A
// linear merge over the two per-vertex slices with no layout tricks.
//
// For serving, Freeze converts to the read-optimized flat Index: one
// contiguous rank array plus CSR-style offsets per direction, so a
// query touches two offset words and two dense array ranges instead of
// chasing per-vertex slice headers across the heap. Freeze and Thaw
// are exact inverses on the label sets, so the two layouts answer
// every query identically.
type Lists struct {
	n   int
	ord *order.Ordering
	in  [][]order.Rank
	out [][]order.Rank
}

// NewLists wraps per-vertex label lists (aliased, not copied) into the
// slice layout. Each list must already be sorted by rank.
func NewLists(ord *order.Ordering, in, out [][]order.Rank) *Lists {
	l := &Lists{n: ord.N(), ord: ord, in: in, out: out}
	for v := 0; v < l.n; v++ {
		invariant.Sorted("label: NewLists in-list", in[v])
		invariant.Sorted("label: NewLists out-list", out[v])
	}
	return l
}

// NumVertices returns the number of vertices the label sets cover.
func (l *Lists) NumVertices() int { return l.n }

// Ordering returns the vertex order the labels were built under.
func (l *Lists) Ordering() *order.Ordering { return l.ord }

// InLabels returns L_in(v) as a rank-sorted read-only slice.
func (l *Lists) InLabels(v graph.VertexID) []order.Rank { return l.in[v] }

// OutLabels returns L_out(v) as a rank-sorted read-only slice.
func (l *Lists) OutLabels(v graph.VertexID) []order.Rank { return l.out[v] }

// Reachable answers q(s, t) by the plain linear merge of L_out(s) and
// L_in(t). This is the reference (pre-flat) query path: no galloping,
// no layout assumptions beyond sortedness.
func (l *Lists) Reachable(s, t graph.VertexID) bool {
	a, b := l.out[s], l.in[t]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Freeze assembles the read-optimized flat Index from the slice
// layout: labels are packed into one contiguous array per direction
// with vertex offsets alongside, in vertex order. The label sets are
// copied, so the Lists may be mutated or dropped afterwards; the
// frozen Index is immutable from here on (which is what lets the
// serving layer cache query answers without any invalidation — see
// DESIGN.md §10).
func (l *Lists) Freeze() *Index {
	x := &Index{
		n:      l.n,
		ord:    l.ord,
		inOff:  make([]int64, l.n+1),
		outOff: make([]int64, l.n+1),
	}
	var inTotal, outTotal int64
	for v := 0; v < l.n; v++ {
		inTotal += int64(len(l.in[v]))
		outTotal += int64(len(l.out[v]))
	}
	x.inLab = make([]order.Rank, 0, inTotal)
	x.outLab = make([]order.Rank, 0, outTotal)
	for v := 0; v < l.n; v++ {
		invariant.Sorted("label: Freeze in-list", l.in[v])
		invariant.Sorted("label: Freeze out-list", l.out[v])
		x.inLab = append(x.inLab, l.in[v]...)
		x.outLab = append(x.outLab, l.out[v]...)
		x.inOff[v+1] = int64(len(x.inLab))
		x.outOff[v+1] = int64(len(x.outLab))
	}
	return x
}

// Thaw is the inverse of Freeze: it copies the flat arrays back into
// one independently allocated slice per vertex and direction. Tests
// and benchmarks use it to reconstruct the pre-flat layout from any
// built index.
func (x *Index) Thaw() *Lists {
	in := make([][]order.Rank, x.n)
	out := make([][]order.Rank, x.n)
	for v := 0; v < x.n; v++ {
		if lab := x.InLabels(graph.VertexID(v)); len(lab) > 0 {
			in[v] = append(make([]order.Rank, 0, len(lab)), lab...)
		}
		if lab := x.OutLabels(graph.VertexID(v)); len(lab) > 0 {
			out[v] = append(make([]order.Rank, 0, len(lab)), lab...)
		}
	}
	return &Lists{n: x.n, ord: x.ord, in: in, out: out}
}

package label

import (
	"sync"

	"repro/internal/graph"
)

// One-source sweeps: ReachableFrom and ReachableSetSize amortize the
// out-label load the way ReachableBatch amortizes sorting. A pairwise
// loop pays O(|L_out(s)| + |L_in(t)|) per target; the sweep marks
// L_out(s)'s ranks into an epoch-stamped scratch table once and then
// answers each target with a single scan of L_in(t) — the out side is
// read exactly once no matter how many targets follow.

// sweepScratch is the rank-mark table of one sweep, epoch-stamped so
// pool reuse costs no clearing: rank r is marked iff mark[r] == epoch.
type sweepScratch struct {
	mark  []int32
	epoch int32
}

// sweepPool recycles scratch tables across sweeps and goroutines. The
// tables are sized to the largest rank space seen; a sweep over a
// bigger index allocates afresh and the old table is dropped.
var sweepPool sync.Pool

// getSweep returns a scratch table covering n ranks with a fresh
// epoch. Callers must return it with sweepPool.Put when done.
func getSweep(n int) *sweepScratch {
	sc, _ := sweepPool.Get().(*sweepScratch)
	if sc == nil || len(sc.mark) < n {
		sc = &sweepScratch{mark: make([]int32, n)}
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: marks are stale, reset once
		clear(sc.mark)
		sc.epoch = 1
	}
	return sc
}

// markOut stamps every rank of L_out(s) into the scratch table.
func (x *Index) markOut(sc *sweepScratch, s graph.VertexID) {
	for _, r := range x.OutLabels(s) {
		sc.mark[r] = sc.epoch
	}
}

// hitIn reports whether any rank of L_in(t) is stamped — exactly the
// L_out(s) ∩ L_in(t) ≠ ∅ test against the marked source.
func (x *Index) hitIn(sc *sweepScratch, t graph.VertexID) bool {
	for _, r := range x.InLabels(t) {
		if sc.mark[r] == sc.epoch {
			return true
		}
	}
	return false
}

// ReachableFrom answers q(s, t) for every target, identically to
// calling Reachable(s, t) per target, in O(|L_out(s)| + Σ|L_in(t)|)
// for the whole sweep: L_out(s) is loaded once into the mark table and
// each target costs one scan of its in-label list.
func (x *Index) ReachableFrom(s graph.VertexID, targets []graph.VertexID) []bool {
	res := make([]bool, len(targets))
	if len(targets) == 0 {
		return res
	}
	sc := getSweep(x.n)
	defer sweepPool.Put(sc)
	x.markOut(sc, s)
	for i, t := range targets {
		res[i] = x.hitIn(sc, t)
	}
	return res
}

// ReachableSetSize returns |{t : q(s, t)}| over the whole ID space —
// the one-source sweep with counting instead of materialization. The
// answer equals the number of true bits ReachableFrom(s, allVertices)
// would return.
func (x *Index) ReachableSetSize(s graph.VertexID) int {
	sc := getSweep(x.n)
	defer sweepPool.Put(sc)
	x.markOut(sc, s)
	count := 0
	for t := graph.VertexID(0); int(t) < x.n; t++ {
		if x.hitIn(sc, t) {
			count++
		}
	}
	return count
}

// Budgeted sweeps. Capped labels make a bare mark-table miss
// inconclusive, so the sweep splits by the completeness of L_out(s):
//
//   - L_out(s) complete: a label hit is a sound true, a miss against a
//     complete L_in(t) is a sound false, and only targets whose
//     in-label overflowed fall back to the pruned BFS.
//   - L_out(s) overflowed: every miss would need a fallback, so the
//     whole sweep collapses into one unpruned forward BFS from s —
//     exact by construction and cheaper than per-target fallbacks.

// descendants runs one unpruned forward BFS from s over the retained
// graph, returning the scratch whose current epoch marks s and every
// vertex it reaches. The caller must Put the scratch back.
func (b *Budgeted) descendants(s graph.VertexID) *bfsScratch {
	sc := b.scratch.Get().(*bfsScratch)
	sc.epoch++
	if sc.epoch == 0 { // wrapped: marks are stale, reset once
		clear(sc.mark)
		sc.epoch = 1
	}
	sc.mark[s] = sc.epoch
	sc.queue = append(sc.queue[:0], s)
	for head := 0; head < len(sc.queue); head++ {
		for _, u := range b.g.OutNeighbors(sc.queue[head]) {
			if sc.mark[u] != sc.epoch {
				sc.mark[u] = sc.epoch
				sc.queue = append(sc.queue, u)
			}
		}
	}
	return sc
}

// ReachableFrom answers q(s, t) for every target, identically to
// calling Reachable(s, t) per target.
func (b *Budgeted) ReachableFrom(s graph.VertexID, targets []graph.VertexID) []bool {
	res := make([]bool, len(targets))
	if len(targets) == 0 {
		return res
	}
	if !b.outFull[s] {
		sc := b.descendants(s)
		defer b.scratch.Put(sc)
		for i, t := range targets {
			res[i] = sc.mark[t] == sc.epoch
		}
		return res
	}
	sc := getSweep(b.x.n)
	defer sweepPool.Put(sc)
	b.x.markOut(sc, s)
	for i, t := range targets {
		switch {
		case t == s:
			// Reflexivity before labels: s's own rank may be capped out.
			res[i] = true
		case b.x.hitIn(sc, t):
			res[i] = true
		case b.inFull[t]:
			res[i] = false
		default:
			res[i] = b.fallbackBFS(s, t)
		}
	}
	return res
}

// ReachableSetSize returns |{t : q(s, t)}|. One unpruned BFS from s is
// exact regardless of which lists overflowed and costs O(n + m) total,
// which beats a label sweep whose misses against overflowed in-labels
// would each need their own fallback.
func (b *Budgeted) ReachableSetSize(s graph.VertexID) int {
	sc := b.descendants(s)
	defer b.scratch.Put(sc)
	count := 0
	for v := range sc.mark {
		if sc.mark[v] == sc.epoch {
			count++
		}
	}
	return count
}

package label

import (
	"repro/internal/graph"
	"repro/internal/order"
)

// Trimmed BFS (Algorithm 2): a v-sourced BFS over out-edges that only
// expands through vertices of order lower than v. It returns
//
//	BFS_low(v): the visited vertices (all of order ≤ ord(v), v first),
//	BFS_hig(v): the higher-order vertices at which expansion blocked.
//
// Lemma 2: one call costs O(|V| + |E|); with a Scratch the per-call
// allocation is amortized away, which matters because every labeling
// algorithm performs n of these.

// Scratch holds the reusable state for repeated trimmed BFS calls.
// It is not safe for concurrent use; allocate one per goroutine.
type Scratch struct {
	mark  []int32 // epoch when the vertex was last visited or blocked
	block []int32 // epoch when the vertex was last recorded in BFS_hig
	epoch int32
	queue []graph.VertexID
}

// NewScratch returns a Scratch for graphs with n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		mark:  make([]int32, n),
		block: make([]int32, n),
		epoch: 0,
		queue: make([]graph.VertexID, 0, 256),
	}
}

func (s *Scratch) next() int32 {
	s.epoch++
	if s.epoch == 0 { // wrapped around: reset lazily
		for i := range s.mark {
			s.mark[i] = 0
			s.block[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// TrimmedBFS runs Algorithm 2 from v on g under ord, appending results
// to low and hig (both may be nil) and returning the extended slices.
// Vertices appear in low in BFS discovery order, so low[0] == v; hig
// is deduplicated.
func TrimmedBFS(g *graph.Digraph, ord *order.Ordering, v graph.VertexID, s *Scratch, low, hig []graph.VertexID) (outLow, outHig []graph.VertexID) {
	epoch := s.next()
	rv := ord.RankOf(v)
	s.queue = s.queue[:0]
	s.queue = append(s.queue, v)
	s.mark[v] = epoch
	low = append(low, v)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		for _, w := range g.OutNeighbors(u) {
			if s.mark[w] == epoch {
				continue
			}
			if ord.RankOf(w) > rv { // ord(w) < ord(v): keep expanding
				s.mark[w] = epoch
				s.queue = append(s.queue, w)
				low = append(low, w)
			} else if s.block[w] != epoch { // block expansion via w
				s.block[w] = epoch
				hig = append(hig, w)
			}
		}
	}
	return low, hig
}

// TrimmedBFSVisit is TrimmedBFS without materializing the result
// slices: visitLow is called for every BFS_low vertex (v included) and
// visitHig for every distinct blocking vertex. Either callback may be
// nil.
func TrimmedBFSVisit(g *graph.Digraph, ord *order.Ordering, v graph.VertexID, s *Scratch, visitLow, visitHig func(w graph.VertexID)) {
	epoch := s.next()
	rv := ord.RankOf(v)
	s.queue = s.queue[:0]
	s.queue = append(s.queue, v)
	s.mark[v] = epoch
	if visitLow != nil {
		visitLow(v)
	}
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		for _, w := range g.OutNeighbors(u) {
			if s.mark[w] == epoch {
				continue
			}
			if ord.RankOf(w) > rv {
				s.mark[w] = epoch
				s.queue = append(s.queue, w)
				if visitLow != nil {
					visitLow(w)
				}
			} else if s.block[w] != epoch {
				s.block[w] = epoch
				if visitHig != nil {
					visitHig(w)
				}
			}
		}
	}
}

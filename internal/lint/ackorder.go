package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AckOrder flags a durable-ack function that acknowledges before it
// syncs: an HTTP response write or a channel send lexically reachable
// before the first Sync()/Flush() in the same function. This is the
// WAL contract (DESIGN.md §12): a mutation is acknowledged only after
// fsync returns, so every acknowledged write survives a crash. An ack
// that precedes the sync reverses that — a crash in the window loses
// a write the client was told is durable.
//
// A function is in scope only when it has a sync point at all, found
// either as a direct Sync/Flush method call or inside a same-package
// callee (via the call-graph summaries). Error responses
// (http.Error, fail/error-named helpers) are failure reports, not
// acknowledgements, and are exempt. Ordering is lexical — a
// documented approximation of the CFG that matches how these
// functions are actually written (straight-line append → sync → ack).
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc:  "HTTP response or channel ack reachable before the Sync/Flush in a durable-ack function",
	Run:  runAckOrder,
}

func runAckOrder(pass *Pass) error {
	idx := buildIndex(pass)
	for _, f := range pass.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			checkAckOrder(pass, idx, body)
		})
	}
	return nil
}

type ackEvent struct {
	pos  token.Pos
	desc string
}

func checkAckOrder(pass *Pass, idx *pkgIndex, body *ast.BlockStmt) {
	firstSync := token.NoPos
	var acks []ackEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // literals are separate scopes with their own discipline
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			acks = append(acks, ackEvent{x.Pos(), "channel send"})
		case *ast.CallExpr:
			if p := syncPoint(pass, idx, x); p.IsValid() && (!firstSync.IsValid() || p < firstSync) {
				firstSync = p
			}
			if desc, ok := responseAck(pass, x); ok {
				acks = append(acks, ackEvent{x.Pos(), desc})
			}
		}
		return true
	})
	if !firstSync.IsValid() {
		return // not a durable-ack function; ordinary sends and writes are fine
	}
	for _, a := range acks {
		if a.pos < firstSync {
			pass.Reportf(a.pos,
				"%s before the first Sync/Flush (line %d): a crash in between loses a write the client was told is durable; sync first, then acknowledge",
				a.desc, pass.Fset.Position(firstSync).Line)
		}
	}
}

// syncPoint returns the position of call when it is a sync point: a
// direct Sync()/Flush() method call, or a same-package callee whose
// summary syncs.
func syncPoint(pass *Pass, idx *pkgIndex, call *ast.CallExpr) token.Pos {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !isPackageQualifier(pass, sel.X) {
		if sel.Sel.Name == "Sync" ||
			(sel.Sel.Name == "Flush" && !isHTTPFlusher(pass.TypeOf(sel.X))) {
			return call.Pos()
		}
	}
	if fn := staticCallee(pass, call); fn != nil && fn.Pkg() == pass.Pkg {
		if s := idx.summaries[fn]; s != nil && s.syncs {
			return call.Pos()
		}
	}
	return token.NoPos
}

// responseAck reports whether call acknowledges to a client: a
// Write/WriteHeader on an http.ResponseWriter, or a call that hands a
// ResponseWriter to a non-error helper (writeJSON and friends, found
// by argument type so renamed helpers are still caught).
func responseAck(pass *Pass, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Write" || sel.Sel.Name == "WriteHeader") && isResponseWriter(pass.TypeOf(sel.X)) {
			return "HTTP response " + sel.Sel.Name, true
		}
	}
	if isErrorResponder(call) {
		return "", false
	}
	for _, arg := range call.Args {
		if isResponseWriter(pass.TypeOf(arg)) {
			return "HTTP response via " + exprStringOr(call.Fun, "helper"), true
		}
	}
	return "", false
}

// isErrorResponder matches failure-reporting helpers by name:
// http.Error, h.fail, writeError, ... A failure report before the
// sync is the correct order — nothing was promised durable.
func isErrorResponder(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "error") || strings.Contains(lower, "fail")
}

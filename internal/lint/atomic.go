package lint

import (
	"go/ast"
	"go/types"
)

// AtomicHygiene flags a variable or struct field that is accessed
// through sync/atomic in one place and by a plain read or write in
// another, within the same package. Mixing the two races: the plain
// access is invisible to the atomic one, and the race detector only
// catches it when both paths actually interleave under test. The
// internal/obs counters avoid the hazard by construction
// (atomic.Int64 has no plain access path); this analyzer guards every
// site that still uses the function-style API on an ordinary field.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc:  "variable accessed both via sync/atomic and by plain read/write",
	Run:  runAtomicHygiene,
}

var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicHygiene(pass *Pass) error {
	// Pass 1: every object whose address feeds a sync/atomic call, with
	// the identifiers participating in those calls (excluded from pass 2).
	atomicObjs := map[types.Object]ast.Node{} // object -> one atomic call site
	atomicUses := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncName(pass.Info, call)
			if !ok || pkg != "sync/atomic" || !atomicFuncs[name] || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			obj, ids := addressedObject(pass, addr.X)
			if obj == nil {
				return true
			}
			atomicObjs[obj] = call
			for _, id := range ids {
				atomicUses[id] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other mention of those objects is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicUses[id] {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				return true
			}
			if site, tracked := atomicObjs[obj]; tracked && id.Pos() != obj.Pos() {
				where := pass.Fset.Position(site.Pos())
				pass.Reportf(id.Pos(), "%q is accessed with sync/atomic at %s:%d but plainly here: every access must go through sync/atomic", id.Name, where.Filename, where.Line)
			}
			return true
		})
	}
	return nil
}

// addressedObject resolves the variable or field object named by the
// operand of a unary & expression (x, s.f, s.f[i] is rejected), and
// returns the identifiers that make up the reference.
func addressedObject(pass *Pass, e ast.Expr) (types.Object, []*ast.Ident) {
	switch x := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(x), []*ast.Ident{x}
	case *ast.SelectorExpr:
		obj := pass.ObjectOf(x.Sel)
		if obj == nil {
			return nil, nil
		}
		var ids []*ast.Ident
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				ids = append(ids, id)
			}
			return true
		})
		return obj, ids
	case *ast.ParenExpr:
		return addressedObject(pass, x.X)
	}
	return nil, nil
}

package lint

import (
	"go/ast"
	"go/types"
)

// CopyLocks flags values containing a sync or sync/atomic type copied
// by value: assignments, range clauses, and call arguments. A copied
// Mutex guards nothing (the copy and the original lock
// independently), a copied WaitGroup splits the counter, and a copied
// atomic box forks the value the rest of the program is swapping.
// This overlaps `go vet`'s copylocks on purpose — vet runs as a
// cross-check in CI — but keeping the check in drlint means the
// //lint:ignore waiver discipline and the JSON artifact cover it too.
//
// Composite literals and function results are not flagged: the former
// construct a fresh value, the latter are already a copy made by the
// callee. Returns are out of scope (the three shapes named by the
// hazard class are assignment, range, and argument pass).
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "struct containing a sync.Mutex/WaitGroup (or atomic box) copied by value",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true // multi-value call/receive: results are not copies of a guarded original
				}
				for i, rhs := range x.Rhs {
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if lock := copiedLock(pass, rhs); lock != "" {
						pass.Reportf(rhs.Pos(),
							"assignment copies %s (in %s): the copy's lock state diverges from the original; use a pointer", lock, exprStringOr(rhs, "the value"))
					}
				}
			case *ast.ValueSpec:
				for i, v := range x.Values {
					if i < len(x.Names) && x.Names[i].Name == "_" {
						continue
					}
					if lock := copiedLock(pass, v); lock != "" {
						pass.Reportf(v.Pos(),
							"assignment copies %s (in %s): the copy's lock state diverges from the original; use a pointer", lock, exprStringOr(v, "the value"))
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if id, ok := x.Value.(*ast.Ident); ok && id.Name == "_" {
					return true
				}
				if lock := lockInType(pass.TypeOf(x.Value)); lock != "" {
					pass.Reportf(x.Value.Pos(),
						"range clause copies %s out of %s each iteration: lock the elements through a pointer or index instead", lock, exprStringOr(x.X, "the collection"))
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
						return true // len/cap/... do not copy their operand
					}
				}
				for _, arg := range x.Args {
					if lock := copiedLock(pass, arg); lock != "" {
						pass.Reportf(arg.Pos(),
							"argument %s passes %s by value to %s: the callee locks a private copy; pass a pointer", exprStringOr(arg, "value"), lock, exprStringOr(x.Fun, "the callee"))
					}
				}
			}
			return true
		})
	}
	return nil
}

// copiedLock reports the lock type inside e's type when evaluating e
// as a value copies an existing guarded object — an identifier,
// selector, index, or dereference. Fresh values (composite literals,
// call results) return "".
func copiedLock(pass *Pass, e ast.Expr) string {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return lockInType(pass.TypeOf(e))
	}
	return ""
}

// lockInType returns the name of the first sync/sync-atomic type
// found by value inside t ("sync.Mutex", "sync/atomic.Pointer",
// ...), or "". Pointers, slices, maps, channels, interfaces, and
// funcs are not traversed: sharing through them is the correct
// pattern, not a copy.
func lockInType(t types.Type) string {
	return lockInTypeRec(t, map[types.Type]bool{})
}

func lockInTypeRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				if _, isIface := n.Underlying().(*types.Interface); !isIface {
					return "sync/atomic." + obj.Name()
				}
			}
		}
		return lockInTypeRec(n.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInTypeRec(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInTypeRec(u.Elem(), seen)
	}
	return ""
}

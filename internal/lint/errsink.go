package lint

import (
	"go/ast"
)

// ErrSink flags discarded errors from Write/Encode/Flush-family calls:
// an expression statement that invokes a method returning an error and
// drops it on the floor. The serialization paths (snapshot codecs,
// result blobs, the Prometheus exposition writer) and the HTTP
// handlers are exactly where a swallowed short write corrupts an index
// or silently truncates a response. An explicit `_ =` assignment is
// treated as a deliberate, reviewed discard and left alone.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "discarded error from a Write/Encode/Flush call",
	Run:  runErrSink,
}

var errSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true, "Flush": true, "Close": false, // Close is errcheck territory, not serialization
}

func runErrSink(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !errSinkMethods[sel.Sel.Name] || isPackageQualifier(pass, sel.X) {
				return true
			}
			yes, unknown := returnsError(pass.Info, call)
			if !yes && !unknown {
				return true // method genuinely returns no error
			}
			pass.Reportf(st.Pos(), "error from %s.%s is discarded: handle it or assign to _ with a reason", exprStringOr(sel.X, "receiver"), sel.Sel.Name)
			return true
		})
	}
	return nil
}

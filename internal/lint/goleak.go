package lint

import (
	"go/ast"
)

// GoLeak flags a `go` statement whose goroutine has no join path: no
// WaitGroup.Done, no channel operation a spawner could observe, no
// select, no close. Such a goroutine can outlive its spawner
// silently — the Updater-refresher / server-drain hazard class: a
// background loop that keeps mutating state after Close() returned,
// or a worker that holds a connection past shutdown.
//
// The check is deliberately conservative. A goroutine running a
// function literal is judged by the literal's body plus its
// same-package callees (via the package call graph); a goroutine
// running a declared same-package function is judged by that
// function's transitive summary. Cross-package, interface, and
// func-value targets are unknowable without their source, so they are
// skipped, not flagged.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine with no join path (no WaitGroup.Done, channel op, select, or close)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	idx := buildIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				if goroutineJoins(pass, idx, fun.Body) {
					return true
				}
			default:
				fn := staticCallee(pass, g.Call)
				if fn == nil || fn.Pkg() != pass.Pkg {
					return true // unknown target: give it the benefit of the doubt
				}
				s := idx.summaries[fn]
				if s == nil || s.joins {
					return true
				}
			}
			pass.Reportf(g.Pos(),
				"goroutine has no join path (no WaitGroup.Done, channel operation, select, or close reachable from its body): it can outlive its spawner; hand it a WaitGroup, a stop channel, or a context")
			return true
		})
	}
	return nil
}

// goroutineJoins reports whether a goroutine running body can reach a
// join point, either directly or through a same-package callee.
func goroutineJoins(pass *Pass, idx *pkgIndex, body *ast.BlockStmt) bool {
	if directFacts(pass, body).joins {
		return true
	}
	for _, fn := range samePkgCallees(pass, body) {
		if s := idx.summaries[fn]; s != nil && s.joins {
			return true
		}
	}
	return false
}

package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// JSONDiagnostic is the machine-readable form of a finding, emitted
// by `drlint -json` and archived as a CI build artifact. Paths are
// module-root-relative with forward slashes so two runs of the same
// tree — different checkouts, different operating systems — produce
// byte-identical artifacts that diff cleanly.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONDiagnostics converts findings to their artifact form, making
// filenames relative to root. Files outside root (never the case for
// module findings) keep their absolute path rather than inventing a
// ../ escape.
func JSONDiagnostics(root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		out = append(out, JSONDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// MarshalJSONDiagnostics renders the artifact: an indented JSON array,
// `[]` (never `null`) when there are no findings, with a trailing
// newline so the file is a well-formed text file.
func MarshalJSONDiagnostics(root string, diags []Diagnostic) ([]byte, error) {
	data, err := json.MarshalIndent(JSONDiagnostics(root, diags), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

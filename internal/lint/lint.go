// Package lint is the repo's zero-dependency static-analysis
// framework: a miniature analogue of golang.org/x/tools/go/analysis
// built on the standard library's go/parser, go/types, and
// go/importer alone, so the module stays stdlib-only.
//
// The point of project-specific analyzers (rather than general
// linters) is the determinism contract of DRL/DRL_b: Theorems 2–4
// promise a distributed, concurrent build whose index is
// *byte-identical* to serial TOL's. That property is global and
// fragile — one unsorted map iteration feeding a label list, a wire
// encoder, or a Pregel outbox silently breaks it, and only a
// whole-index equality test much later would notice. The analyzers in
// this package (mapdet, lockheld, errsink, atomichygiene) encode the
// hazard classes reviewers would otherwise have to police by hand;
// cmd/drlint is the driver that runs them over the module.
//
// Deliberate violations — e.g. the randomized BFL baseline, which
// tolerates nondeterminism by design — are waived in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it (see suppress.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a type-checked package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore suppressions.
	Name string
	// Doc is a one-line description shown by `drlint -help`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the type-checker could not
// resolve it (analyzers degrade gracefully on partial information).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// All returns the catalogue of project analyzers in a stable order:
// the four determinism analyzers from the build tier, then the five
// concurrency-correctness analyzers guarding the serving/updating
// tier (DESIGN.md §13).
func All() []*Analyzer {
	return []*Analyzer{
		MapDet, LockHeld, ErrSink, AtomicHygiene,
		CopyLocks, TornLoad, GoLeak, WGMisuse, AckOrder,
	}
}

// ByName resolves analyzer names; the empty list means All.
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to a loaded package and returns
// the findings that survive //lint:ignore suppression, sorted by
// position. Malformed suppression comments are themselves reported.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden tests load a fixture package from testdata/src/<name>,
// run exactly one analyzer over it, and require a bidirectional match
// against the fixture's `// want "substring"` comments: every want
// must be satisfied by a diagnostic on its exact file:line, and every
// diagnostic must be claimed by a want. A fixture line with no want
// comment is therefore asserted clean — the false-positive guard is
// built into every case, not a separate test.

func TestMapDetGolden(t *testing.T)        { runGolden(t, MapDet, "mapdet") }
func TestLockHeldGolden(t *testing.T)      { runGolden(t, LockHeld, "lockheld") }
func TestErrSinkGolden(t *testing.T)       { runGolden(t, ErrSink, "errsink") }
func TestAtomicHygieneGolden(t *testing.T) { runGolden(t, AtomicHygiene, "atomichygiene") }
func TestCopyLocksGolden(t *testing.T)     { runGolden(t, CopyLocks, "copylocks") }
func TestTornLoadGolden(t *testing.T)      { runGolden(t, TornLoad, "tornload") }
func TestGoLeakGolden(t *testing.T)        { runGolden(t, GoLeak, "goleak") }
func TestWGMisuseGolden(t *testing.T)      { runGolden(t, WGMisuse, "wgmisuse") }
func TestAckOrderGolden(t *testing.T)      { runGolden(t, AckOrder, "ackorder") }

func runGolden(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	wants := collectWants(t, pkg)

	matched := map[int]bool{} // index into diags
	for loc, subs := range wants {
		for _, sub := range subs {
			ok := false
			for i, d := range diags {
				if matched[i] {
					continue
				}
				if lineKey(d) == loc && strings.Contains(d.Message, sub) {
					matched[i] = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: want diagnostic containing %q, got none", loc, sub)
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestSuppressions checks the //lint:ignore machinery end to end on
// the suppress fixture: the documented waiver silences its finding,
// the reason-less directive is itself reported and silences nothing,
// and a waiver naming a different analyzer (errsink, in scoped) does
// not touch mapdet's finding on the same line.
func TestSuppressions(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags, err := RunAnalyzers(pkg, []*Analyzer{MapDet})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(diags), renderDiags(diags))
	}
	var haveMalformed bool
	mapdet := 0
	for _, d := range diags {
		switch {
		case d.Analyzer == "drlint" && strings.Contains(d.Message, "malformed"):
			haveMalformed = true
		case d.Analyzer == "mapdet":
			mapdet++
		}
	}
	if !haveMalformed || mapdet != 2 {
		t.Fatalf("want one malformed-directive finding and two surviving mapdet findings (bad and scoped), got:\n%s", renderDiags(diags))
	}
}

// TestSuppressionScoping is the regression for per-analyzer waiver
// scope: the scoped fixture line triggers both mapdet and errsink,
// and its //lint:ignore names only errsink. The errsink finding must
// vanish while the mapdet finding on the very same line survives.
func TestSuppressionScoping(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags, err := RunAnalyzers(pkg, []*Analyzer{MapDet, ErrSink})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	var mapdetLine, errsinkLine int
	for _, d := range diags {
		if !strings.Contains(d.Message, "e.Encode") {
			continue
		}
		switch d.Analyzer {
		case "mapdet":
			mapdetLine = d.Pos.Line
		case "errsink":
			errsinkLine = d.Pos.Line
		}
	}
	if mapdetLine == 0 {
		t.Errorf("mapdet finding on the scoped e.Encode line was muted by an errsink-only waiver:\n%s", renderDiags(diags))
	}
	if errsinkLine != 0 {
		t.Errorf("errsink finding at line %d survived its own waiver:\n%s", errsinkLine, renderDiags(diags))
	}
}

// TestJSONDiagnostics covers the -json artifact contract: paths come
// out module-root-relative with forward slashes, fields round-trip
// through encoding/json, and an empty run marshals as [] rather than
// null so artifact diffs stay well-formed.
func TestJSONDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join("/mod", "internal", "wal", "wal.go"), Line: 42, Column: 7},
			Analyzer: "ackorder",
			Message:  "ack before sync",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/out.go", Line: 1, Column: 1},
			Analyzer: "mapdet",
			Message:  "outside the module",
		},
	}
	data, err := MarshalJSONDiagnostics("/mod", diags)
	if err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("artifact does not round-trip: %v\n%s", err, data)
	}
	want := []JSONDiagnostic{
		{File: "internal/wal/wal.go", Line: 42, Col: 7, Analyzer: "ackorder", Message: "ack before sync"},
		{File: "/elsewhere/out.go", Line: 1, Col: 1, Analyzer: "mapdet", Message: "outside the module"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d:\n%s", len(got), len(want), data)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	empty, err := MarshalJSONDiagnostics("/mod", nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("empty run marshals as %q, want []", empty)
	}
}

// TestByName covers analyzer selection for the -only flag.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"mapdet", "errsink"})
	if err != nil || len(got) != 2 || got[0] != MapDet || got[1] != ErrSink {
		t.Fatalf("ByName(mapdet,errsink) = %v, %v", got, err)
	}
	if all, err := ByName(nil); err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(nil) = %v, %v; want the full catalogue", all, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
}

// TestModuleIsClean runs the whole suite over the real module — the
// same run CI's lint job performs — and requires zero findings: every
// true positive is fixed or carries a documented waiver, and the
// analyzers raise no false positives on the codebase they guard.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module from source; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	// The source importer resolves module-internal imports relative to
	// the process working directory.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(cwd); err != nil {
			t.Errorf("restoring cwd: %v", err)
		}
	})

	pkgs, err := NewLoader().LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadModule found no packages")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("finding in clean module: %s", d)
		}
	}
}

// loadFixture parses and type-checks testdata/src/<name>. Fixtures
// import only the standard library, so they resolve from any working
// directory.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := NewLoader().LoadDir(dir, "testdata/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("LoadDir(%s) returned %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}

var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses `// want "sub" ["sub" ...]` comments into
// file:line -> expected message substrings.
func collectWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				loc := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRE.FindAllString(rest, -1) {
					sub, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", loc, q, err)
					}
					wants[loc] = append(wants[loc], sub)
				}
				if len(wants[loc]) == 0 {
					t.Fatalf("%s: want comment with no quoted substring", loc)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return wants
}

func lineKey(d Diagnostic) string {
	return fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

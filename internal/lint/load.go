package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked compilation unit: the
// ordinary files of a directory plus its in-package test files, or an
// external _test package as a separate unit.
type Package struct {
	Dir     string
	PkgPath string // import path ("repro/internal/drl"), "_test"-suffixed for external test packages
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds non-fatal type-check problems. Analysis runs on
	// whatever information was recovered, but the driver surfaces them
	// so a broken tree is never silently "clean".
	TypeErrors []error
}

// Loader parses and type-checks packages. Module-internal imports are
// resolved from source through the standard library's source importer,
// which requires the process working directory to be inside the
// module (cmd/drlint chdirs to the module root).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	ctxt build.Context
}

// NewLoader returns a loader with a fresh file set and source
// importer. One loader caches type-checked imports across LoadDir
// calls, so loading the whole module pays for each dependency once.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
		ctxt: build.Default,
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// ExpandPatterns resolves package patterns relative to the module
// root into package directories. Supported forms: "./...", "dir/...",
// and plain directory paths. Directories named testdata, hidden
// directories, and directories without buildable .go files are
// skipped.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "" {
			pat = root
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !rec {
			if hasGoFiles(pat) {
				add(pat)
			}
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the packages in one directory:
// the primary package (ordinary + in-package test files) and, when
// present, the external _test package. Files excluded by build
// constraints for the default configuration (e.g. the invariants tag)
// are skipped, matching what `go build` would compile.
func (l *Loader) LoadDir(dir, pkgPath string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := l.ctxt.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	// In-package test files join their package's unit; the _test
	// package (if any) stands alone.
	names := make([]string, 0, len(byPkg))
	for n := range byPkg {
		names = append(names, n)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		files := byPkg[name]
		sort.Slice(files, func(i, j int) bool {
			return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
		})
		path := pkgPath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		pkgs = append(pkgs, l.check(dir, path, name, files))
	}
	return pkgs, nil
}

func (l *Loader) check(dir, path, name string, files []*ast.File) *Package {
	pkg := &Package{Dir: dir, PkgPath: path, Name: name, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors already collected
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}

// LoadModule expands patterns against the module at root and loads
// every matched directory. The returned packages are sorted by import
// path.
func (l *Loader) LoadModule(root string, patterns []string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		ps, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

package lint

import (
	"go/ast"
	"go/token"
)

// LockHeld flags a sync.Mutex or sync.RWMutex held across a blocking
// operation: an RPC call, a channel send or receive, a select without
// a default case, time.Sleep, or a WaitGroup/Cond Wait. In the
// distributed transport a worker servicing Step under its mutex must
// never block on the network — the master's retry storm then piles up
// behind the lock and the cluster wedges (the classic Pregel-RPC
// deadlock). The check is lexical and intraprocedural: a Lock() opens
// a held region that ends at the matching Unlock() (or at function end
// when the unlock is deferred), and blocking operations inside the
// region are reported. Function literals only belong to the region
// when they are invoked in place; goroutine and deferred bodies run
// without the caller's lock and are skipped.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "mutex held across a blocking call (RPC, channel op, sleep, wait)",
	Run:  runLockHeld,
}

// heldRegion is one lexical span during which a mutex is held.
type heldRegion struct {
	mutex      string
	start, end token.Pos
}

func runLockHeld(pass *Pass) error {
	for _, f := range pass.Files {
		var walkFuncs func(n ast.Node) bool
		walkFuncs = func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkLockHeld(pass, d.Body)
				}
			case *ast.FuncLit:
				checkLockHeld(pass, d.Body)
			}
			return true
		}
		ast.Inspect(f, walkFuncs)
	}
	return nil
}

// lockCall classifies a statement-level call on a mutex; returns the
// rendered receiver and whether it (un)locks.
func lockCall(pass *Pass, call *ast.CallExpr) (recv string, lock, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	t := pass.TypeOf(sel.X)
	if !namedOrPtrTo(t, "sync", "Mutex") && !namedOrPtrTo(t, "sync", "RWMutex") {
		return "", false, false
	}
	recv = exprString(sel.X)
	if recv == "" {
		recv = "mutex"
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return recv, true, false
	case "Unlock", "RUnlock":
		return recv, false, true
	}
	return "", false, false
}

// checkLockHeld analyzes one function body in isolation (nested
// function literals are analyzed by their own invocation of this
// function and masked here).
func checkLockHeld(pass *Pass, body *ast.BlockStmt) {
	type event struct {
		pos      token.Pos
		mutex    string
		lock     bool // else unlock
		deferred bool
	}
	var events []event

	// Collect lock/unlock events in this body, skipping nested
	// FuncLits entirely (each gets its own checkLockHeld pass).
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if recv, lock, unlock := lockCall(pass, call); lock || unlock {
					events = append(events, event{pos: st.Pos(), mutex: recv, lock: lock})
				}
			}
		case *ast.DeferStmt:
			if recv, lock, unlock := lockCall(pass, st.Call); lock || unlock {
				events = append(events, event{pos: st.Pos(), mutex: recv, lock: lock, deferred: true})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}

	// Build held regions per mutex: Lock at L is released by the next
	// non-deferred Unlock of the same mutex after L, or held to the end
	// of the function when the unlock is deferred (or missing).
	var regions []heldRegion
	for i, ev := range events {
		if !ev.lock || ev.deferred {
			continue
		}
		end := body.End()
		for _, ev2 := range events[i+1:] {
			if !ev2.lock && !ev2.deferred && ev2.mutex == ev.mutex {
				end = ev2.pos
				break
			}
		}
		regions = append(regions, heldRegion{mutex: ev.mutex, start: ev.pos, end: end})
	}
	if len(regions) == 0 {
		return
	}

	held := func(pos token.Pos) (string, bool) {
		for _, r := range regions {
			if r.start < pos && pos < r.end {
				return r.mutex, true
			}
		}
		return "", false
	}
	report := func(pos token.Pos, what string) {
		if mu, ok := held(pos); ok {
			pass.Reportf(pos, "%s while holding %q: a blocked goroutine wedges every contender of the lock", what, mu)
		}
	}

	// Scan for blocking operations, skipping FuncLit bodies unless the
	// literal is invoked in place.
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // only reachable when not immediately invoked (see CallExpr case)
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the lock.
				ast.Inspect(lit.Body, scan)
			}
			if isPkgFunc(pass.Info, x, "time", "Sleep") {
				report(x.Pos(), "time.Sleep")
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && !isPackageQualifier(pass, sel.X) {
				switch sel.Sel.Name {
				case "Call":
					report(x.Pos(), "blocking RPC call "+exprStringOr(sel.X, "client")+".Call")
				case "Wait":
					t := pass.TypeOf(sel.X)
					if namedOrPtrTo(t, "sync", "WaitGroup") || namedOrPtrTo(t, "sync", "Cond") {
						report(x.Pos(), exprStringOr(sel.X, "waiter")+".Wait")
					}
				}
			}
		case *ast.SendStmt:
			report(x.Pos(), "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(x.Pos(), "select without default")
			}
			// The comm clauses' channel ops belong to the select (do
			// not double-report); still scan the clause bodies.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, scan)
					}
				}
			}
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			// The spawned/deferred body does not run under this lock;
			// but the call's argument expressions are evaluated now.
			var call *ast.CallExpr
			switch y := x.(type) {
			case *ast.GoStmt:
				call = y.Call
			case *ast.DeferStmt:
				call = y.Call
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, scan)
			}
			return false
		}
		return true
	}
	ast.Inspect(body, scan)
}

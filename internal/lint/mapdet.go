package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDet flags map iterations whose loop body performs an
// order-sensitive effect: appending to a slice that outlives the loop,
// writing to an encoder/writer, or sending a Pregel message. Go
// randomizes map iteration order, so any such loop emits its effects
// in a different order on every run — the exact hazard class that
// breaks the byte-identical-to-TOL guarantee (Theorems 2–4).
//
// The canonical safe pattern — collect the keys, sort, then range the
// sorted slice — is recognized: an append whose target is later passed
// to a sort call in the same function is not flagged, and neither is a
// per-key write like m[k] = append(m[k], ...) whose destination is
// indexed by the loop key itself (each key's slot is independent of
// visit order).
var MapDet = &Analyzer{
	Name: "mapdet",
	Doc:  "order-sensitive effect (append/encode/send) inside a map iteration",
	Run:  runMapDet,
}

// Method names that write to an encoder, writer, or wire buffer.
var mapdetWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Flush": true,
}

// fmt helpers that stream into a writer.
var mapdetFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapDet(pass *Pass) error {
	seen := map[string]bool{} // dedupe pos+message across nested map ranges
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			fnBody := enclosingFuncBody(f, rs.Pos())
			checkMapRange(pass, f, rs, fnBody, seen)
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function
// containing pos (for the sorted-afterwards check).
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch d := n.(type) {
		case *ast.FuncDecl:
			body = d.Body
		case *ast.FuncLit:
			body = d.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // innermost wins: Inspect descends outer-to-inner
		}
		return true
	})
	return best
}

func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt, fnBody *ast.BlockStmt, seen map[string]bool) {
	keyObj := rangeKeyObject(pass, rs)
	report := func(pos token.Pos, format string, args ...any) {
		d := pass.Fset.Position(pos)
		key := fmt.Sprintf("%s:%d:%d|%s", d.Filename, d.Line, d.Column, format)
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, format, args...)
	}
	mapName := exprString(rs.X)
	if mapName == "" {
		mapName = "map"
	}

	// A function literal in call position (invoked in place, or passed
	// as a callback argument) runs during the iteration and is part of
	// the loop body; one that escapes into a variable, field, or slice
	// runs later — typically after the collect-then-sort step — and is
	// not examined here.
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			invoked[lit] = true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !invoked[lit] {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppendLike(pass, call) || i >= len(x.Lhs) {
					continue
				}
				switch lhs := x.Lhs[i].(type) {
				case *ast.Ident:
					obj := pass.ObjectOf(lhs)
					if obj == nil || declaredWithin(obj, rs) {
						continue // loop-local accumulator dies with the iteration
					}
					if sortedAfterwards(pass, fnBody, rs, obj) {
						continue // collect-then-sort pattern
					}
					report(x.Pos(), "append to %q inside iteration over map %q: map order is random; sort the keys first or sort %q before use", lhs.Name, mapName, lhs.Name)
				case *ast.IndexExpr:
					if keyObj != nil && usesObject(pass, lhs.Index, keyObj) {
						continue // m[k] for the loop key: per-key slot, order-free
					}
					if baseDeclaredWithin(pass, lhs.X, rs) {
						continue
					}
					report(x.Pos(), "append through %q inside iteration over map %q: map order is random; the element order depends on it", exprStringOr(lhs, "indexed slice"), mapName)
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch {
				case sel.Sel.Name == "Send" || sel.Sel.Name == "Broadcast":
					report(x.Pos(), "%s.%s inside iteration over map %q: messages are emitted in random map order; iterate sorted keys instead", exprStringOr(sel.X, "worker"), sel.Sel.Name, mapName)
				case mapdetWriteMethods[sel.Sel.Name] && !isPackageQualifier(pass, sel.X):
					report(x.Pos(), "%s.%s inside iteration over map %q: bytes are written in random map order; iterate sorted keys instead", exprStringOr(sel.X, "writer"), sel.Sel.Name, mapName)
				}
			}
			if pkg, name, ok := pkgFuncName(pass.Info, x); ok && pkg == "fmt" && mapdetFmtFuncs[name] {
				report(x.Pos(), "fmt.%s inside iteration over map %q: output order is random; iterate sorted keys instead", name, mapName)
			}
		}
		return true
	})
}

// rangeKeyObject returns the object bound to the range key, or nil.
func rangeKeyObject(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

// isAppendLike matches the predeclared append plus the repo's
// accumulator helpers (appendU32, appendResult, ...): functions whose
// name starts with "append"/"Append" and that return a value the
// caller reassigns.
func isAppendLike(pass *Pass, call *ast.CallExpr) bool {
	if isBuiltinAppend(pass.Info, call) {
		return true
	}
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "append")
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

func baseDeclaredWithin(pass *Pass, e ast.Expr, node ast.Node) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			return obj != nil && declaredWithin(obj, node)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// usesObject reports whether e mentions obj.
func usesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfterwards reports whether obj is passed to a sort call
// anywhere in fn after the range loop begins — the collect-keys,
// sort, then iterate idiom.
func sortedAfterwards(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.Pos() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall matches sort.* and slices.Sort* from the standard
// library, plus local helpers whose name mentions "sort".
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if pkg, _, ok := pkgFuncName(pass.Info, call); ok {
		return pkg == "sort" || pkg == "slices"
	}
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// isPackageQualifier reports whether e names an imported package
// (so pkg.Write-style calls are not treated as method calls).
func isPackageQualifier(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pass.ObjectOf(id).(*types.PkgName)
	return isPkg
}

func exprStringOr(e ast.Expr, fallback string) string {
	if s := exprString(e); s != "" {
		return s
	}
	return fallback
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared whole-package pass behind the concurrency
// analyzers (tornload, goleak, ackorder): a lightweight intra-package
// call graph plus one summary per declared function, closed
// transitively over same-package static calls. The summaries stand in
// for a real CFG — they answer "does calling this function load that
// atomic / reach a join point / fsync a writer / write a response",
// which is exactly the fact the caller-side analyzers need one hop
// away. Cross-package, interface, and func-value callees are left
// unresolved on purpose: an unknown callee contributes nothing, so
// the analyzers stay conservative instead of guessing.

// funcSummary aggregates the concurrency-relevant facts of one
// declared function, including everything reachable through
// same-package static calls.
type funcSummary struct {
	// loads holds the atomic.Pointer/atomic.Value variables and fields
	// the function calls .Load() on.
	loads map[types.Object]bool
	// syncs: the function calls a Sync() or Flush() method (the
	// durable-write points ackorder gates on).
	syncs bool
	// joins: the function reaches a join point a spawner could use —
	// WaitGroup.Done, a channel operation, a select, or a close.
	joins bool
	// writesResponse: the function writes to (or hands off) an
	// http.ResponseWriter.
	writesResponse bool
}

// pkgIndex is the per-package analysis index: declared functions, the
// static call graph between them, and their transitive summaries.
type pkgIndex struct {
	decls     map[*types.Func]*ast.FuncDecl
	callees   map[*types.Func][]*types.Func
	summaries map[*types.Func]*funcSummary
}

// buildIndex computes the index for the pass's package. The fixpoint
// is order-independent (facts only accumulate), so map iteration
// order does not matter.
func buildIndex(pass *Pass) *pkgIndex {
	idx := &pkgIndex{
		decls:     map[*types.Func]*ast.FuncDecl{},
		callees:   map[*types.Func][]*types.Func{},
		summaries: map[*types.Func]*funcSummary{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			idx.decls[fn] = fd
			idx.summaries[fn] = directFacts(pass, fd.Body)
			idx.callees[fn] = samePkgCallees(pass, fd.Body)
		}
	}
	// Transitive closure: propagate callee facts into callers until
	// nothing changes. Cycles terminate because facts only grow.
	for changed := true; changed; {
		changed = false
		for fn, s := range idx.summaries {
			for _, callee := range idx.callees[fn] {
				cs := idx.summaries[callee]
				if cs == nil {
					continue
				}
				for obj := range cs.loads {
					if !s.loads[obj] {
						s.loads[obj] = true
						changed = true
					}
				}
				if cs.syncs && !s.syncs {
					s.syncs, changed = true, true
				}
				if cs.joins && !s.joins {
					s.joins, changed = true, true
				}
				if cs.writesResponse && !s.writesResponse {
					s.writesResponse, changed = true, true
				}
			}
		}
	}
	return idx
}

// directFacts scans one function body — nested literals included,
// since a literal the function builds usually runs on its behalf —
// for the facts funcSummary records.
func directFacts(pass *Pass, body *ast.BlockStmt) *funcSummary {
	s := &funcSummary{loads: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			s.joins = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.joins = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.joins = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					s.joins = true
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && !isPackageQualifier(pass, sel.X) {
				switch sel.Sel.Name {
				case "Done":
					if namedOrPtrTo(pass.TypeOf(sel.X), "sync", "WaitGroup") {
						s.joins = true
					}
				case "Sync", "Flush":
					// http.Flusher.Flush pushes response bytes to the
					// client — streaming, not durability.
					if !isHTTPFlusher(pass.TypeOf(sel.X)) {
						s.syncs = true
					}
				case "Load":
					if obj := atomicLoadTarget(pass, x); obj != nil {
						s.loads[obj] = true
					}
				case "Write", "WriteHeader":
					if isResponseWriter(pass.TypeOf(sel.X)) {
						s.writesResponse = true
					}
				}
			}
			for _, arg := range x.Args {
				if isResponseWriter(pass.TypeOf(arg)) {
					s.writesResponse = true
				}
			}
		}
		return true
	})
	return s
}

// samePkgCallees lists the package-local functions and methods body
// calls through static references. Duplicates are fine; the fixpoint
// is idempotent.
func samePkgCallees(pass *Pass, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pass, call); fn != nil && fn.Pkg() == pass.Pkg {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// staticCallee resolves call to the *types.Func it statically invokes:
// a plain function reference, a package-qualified function, or a
// concrete method. Func values and interface methods return the
// abstract object, which has no body in the index and therefore stays
// unresolved downstream.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// atomicLoadTarget returns the variable or field object behind an
// x.Load() call when x is a sync/atomic Pointer or Value, else nil.
func atomicLoadTarget(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return nil
	}
	if !isAtomicBox(pass.TypeOf(sel.X)) {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return pass.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel)
	}
	return nil
}

// isAtomicBox reports whether t (or *t) is sync/atomic's Pointer[T]
// or Value — the swap-able boxes whose repeated loads can observe two
// different epochs.
func isAtomicBox(t types.Type) bool {
	return namedOrPtrTo(t, "sync/atomic", "Pointer") || namedOrPtrTo(t, "sync/atomic", "Value")
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
// isHTTPFlusher reports whether t is net/http.Flusher. Its Flush
// pushes buffered response bytes toward the client — a streaming
// progress signal, not a durability point — so it must not qualify a
// function as durable-ack.
func isHTTPFlusher(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Flusher" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// receiverBase renders the receiver chain of a method call for event
// grouping: h.CacheStats() -> "h". Non-method calls return "".
func receiverBase(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return exprString(sel.X)
	}
	return ""
}

package lint

import (
	"strings"
)

// Suppression syntax:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or alone on the line directly above it.
// "all" waives every analyzer. The reason is mandatory — a waiver
// without a recorded justification is itself reported, so deliberate
// nondeterminism (the randomized BFL baseline, diagnostics output)
// stays documented in source.

const ignorePrefix = "//lint:ignore"

type suppression struct {
	analyzers map[string]bool // nil after a parse error
	reason    string
}

// collectSuppressions scans every comment in the package and returns
// file -> line -> suppression, where line is the line the suppression
// applies to (the comment's own line; applySuppressions also honors it
// one line below). Malformed directives are reported as diagnostics.
func collectSuppressions(pkg *Package, report func(Diagnostic)) map[string]map[int]suppression {
	out := map[string]map[int]suppression{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					report(Diagnostic{
						Pos:      pos,
						Analyzer: "drlint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				set := map[string]bool{}
				for _, n := range strings.Split(name, ",") {
					set[strings.TrimSpace(n)] = true
				}
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]suppression{}
				}
				out[pos.Filename][pos.Line] = suppression{analyzers: set, reason: reason}
			}
		}
	}
	return out
}

// applySuppressions filters diags through the package's //lint:ignore
// directives and appends diagnostics for malformed ones.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	var extra []Diagnostic
	sups := collectSuppressions(pkg, func(d Diagnostic) { extra = append(extra, d) })
	matches := func(d Diagnostic, line int) bool {
		s, ok := sups[d.Pos.Filename][line]
		if !ok {
			return false
		}
		return s.analyzers["all"] || s.analyzers[d.Analyzer]
	}
	kept := diags[:0]
	for _, d := range diags {
		if matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1) {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, extra...)
}

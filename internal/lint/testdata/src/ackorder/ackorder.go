// Package ackorder exercises the durable-ack analyzer: in a function
// that syncs a writer, no acknowledgement (channel send or HTTP
// response) may precede the first Sync/Flush — a crash in the window
// loses a write the client was told is durable.
package ackorder

import (
	"net/http"
	"os"
)

type record struct{ seq uint64 }

// ackThenSync acknowledges before fsync: the classic WAL inversion.
func ackThenSync(f *os.File, acks chan<- uint64, r record) error {
	acks <- r.seq // want "channel send before the first Sync/Flush"
	if _, err := f.Write([]byte{1}); err != nil {
		return err
	}
	return f.Sync()
}

// syncThenAck is the WAL discipline: durable first, visible second.
func syncThenAck(f *os.File, acks chan<- uint64, r record) error {
	if _, err := f.Write([]byte{1}); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	acks <- r.seq
	return nil
}

// respondEarly sends the HTTP 200 before the log hits disk.
func respondEarly(w http.ResponseWriter, f *os.File) {
	w.WriteHeader(http.StatusOK) // want "HTTP response WriteHeader before the first Sync/Flush"
	if err := f.Sync(); err != nil {
		return
	}
}

// respondAfter syncs first; the failure branch answers early, which
// is correct — http.Error reports, it does not acknowledge.
func respondAfter(w http.ResponseWriter, f *os.File) {
	if err := f.Sync(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// earlyFailure rejects bad input before ever touching the log: error
// responses are exempt wherever they appear.
func earlyFailure(w http.ResponseWriter, f *os.File, bad bool) {
	if bad {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	if err := f.Sync(); err != nil {
		return
	}
	w.WriteHeader(http.StatusOK)
}

// viaHelper: the sync hides inside a same-package callee; the early
// ack is still caught through its summary.
func viaHelper(f *os.File, acks chan<- uint64, r record) error {
	acks <- r.seq // want "channel send before the first Sync/Flush"
	return persist(f)
}

func persist(f *os.File) error { return f.Sync() }

// helperResponse: handing the ResponseWriter to a non-error helper
// before the sync is an ack too, caught by argument type.
func helperResponse(w http.ResponseWriter, f *os.File) {
	writeDoc(w) // want "HTTP response via writeDoc before the first Sync/Flush"
	if err := f.Sync(); err != nil {
		return
	}
}

func writeDoc(w http.ResponseWriter) {
	_, _ = w.Write([]byte("{}"))
}

// noSyncNoGate: a function without a sync point is not a durable-ack
// function; its sends are ordinary coordination.
func noSyncNoGate(acks chan<- uint64, r record) {
	acks <- r.seq
}

// streamingFlush pushes NDJSON lines with http.Flusher: that Flush is
// response streaming, not a durability sync, so the writes before it
// are not acknowledgements of durable state and nothing is flagged.
func streamingFlush(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	flusher, ok := w.(http.Flusher)
	if _, err := w.Write([]byte("{\"s\":1}\n")); err != nil {
		return
	}
	if ok {
		flusher.Flush()
	}
}

// streamingFlushThenSync mixes both: the real Sync makes the function
// durable-ack, and the response writes before it are flagged even
// though an http.Flusher flush sits earlier still.
func streamingFlushThenSync(w http.ResponseWriter, f *os.File) {
	w.WriteHeader(http.StatusOK) // want "HTTP response WriteHeader before the first Sync/Flush"
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
	if err := f.Sync(); err != nil {
		return
	}
}

// Package atomichygiene exercises the atomichygiene analyzer: mixing
// sync/atomic and plain access to one variable.
package atomichygiene

import "sync/atomic"

type counter struct {
	n    int64
	safe int64
}

// bump is the atomic path for both fields.
func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.safe, 1)
}

// read races bump: the plain load is invisible to the atomic adds.
func (c *counter) read() int64 {
	return c.n // want "\"n\" is accessed with sync/atomic"
}

// readSafe goes through sync/atomic everywhere: not a finding.
func (c *counter) readSafe() int64 {
	return atomic.LoadInt64(&c.safe)
}

var global int32

// bumpGlobal is the atomic path for the package-level var.
func bumpGlobal() {
	atomic.AddInt32(&global, 1)
}

// resetGlobal writes it plainly, racing bumpGlobal.
func resetGlobal() {
	global = 0 // want "\"global\" is accessed with sync/atomic"
}

// localMix mixes an atomic store with a plain increment on a local.
func localMix() int64 {
	var v int64
	atomic.StoreInt64(&v, 1)
	v++ // want "\"v\" is accessed with sync/atomic"
	return atomic.LoadInt64(&v)
}

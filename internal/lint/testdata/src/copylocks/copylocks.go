// Package copylocks exercises the lock-copy analyzer: a value
// containing a sync or sync/atomic type must move by pointer — a
// copied mutex guards nothing, a copied WaitGroup splits its counter,
// a copied atomic box forks the value being swapped.
package copylocks

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

var global guarded

var snapshot = global // want "assignment copies sync.Mutex"

// assign copies the struct and the mutex inside it.
func assign() int {
	cp := global // want "assignment copies sync.Mutex"
	return cp.n
}

// deref copies through a pointer: still a copy.
func deref(p *guarded) int {
	cp := *p // want "assignment copies sync.Mutex"
	return cp.n
}

// pointerCopy shares the guarded value: the correct pattern.
func pointerCopy(p *guarded) *guarded {
	q := p
	return q
}

// fresh constructs a new value; composite literals are not copies of
// a guarded original.
func fresh() int {
	g := guarded{n: 1}
	return g.n
}

func use(g guarded) int { return g.n }

// passByValue hands the lock to a callee by value.
func passByValue() int {
	return use(global) // want "passes sync.Mutex by value"
}

func usePtr(g *guarded) int { return g.n }

// passByPointer shares it instead.
func passByPointer() int {
	return usePtr(&global)
}

// ranger copies each element out of the slice, mutex included.
func ranger(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies sync.Mutex"
		total += g.n
	}
	return total
}

// rangeByIndex reaches the elements in place.
func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

type wrapper struct{ inner guarded }

// nested locks are found through any depth of embedding.
func nested(w *wrapper) int {
	cp := *w // want "assignment copies sync.Mutex"
	return cp.inner.n
}

func consume(wg sync.WaitGroup) {}

// splitCounter copies a WaitGroup into a callee: Done on the copy
// never releases the original's Wait.
func splitCounter(wg *sync.WaitGroup) {
	consume(*wg) // want "passes sync.WaitGroup by value"
}

type epochBox struct{ e atomic.Uint64 }

// atomicCopy forks the box the rest of the program is updating.
func atomicCopy(b *epochBox) uint64 {
	cp := *b // want "assignment copies sync/atomic.Uint64"
	return cp.e.Load()
}

// Package errsink exercises the errsink analyzer: discarded errors
// from Write/Encode/Flush-family calls.
package errsink

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
)

// dropWrite discards a Write error.
func dropWrite(buf *bytes.Buffer, b []byte) {
	buf.Write(b) // want "error from buf.Write is discarded"
}

// dropEncode discards an Encode error mid-serialization.
func dropEncode(enc *json.Encoder, v any) {
	enc.Encode(v) // want "error from enc.Encode is discarded"
}

// dropFlush discards the error that carries every buffered short write.
func dropFlush(w *bufio.Writer) {
	w.Flush() // want "error from w.Flush is discarded"
}

// dropWriteString discards a WriteString error.
func dropWriteString(w *bufio.Writer, s string) {
	w.WriteString(s) // want "error from w.WriteString is discarded"
}

// handled checks the error: not a finding.
func handled(buf *bytes.Buffer, b []byte) error {
	if _, err := buf.Write(b); err != nil {
		return err
	}
	return nil
}

// deliberate assigns to _ — a reviewed, documented discard.
func deliberate(w *bufio.Writer) {
	_ = w.Flush() // best-effort console output
}

// closeIsFine: Close is errcheck territory, not serialization.
func closeIsFine(f *os.File) {
	f.Close()
}

// Package goleak exercises the goroutine-leak analyzer: a `go`
// statement needs some join path — WaitGroup.Done, a channel
// operation, a select, or a close — or the goroutine can outlive its
// spawner undetected.
package goleak

import (
	"context"
	"sync"
)

func work() {}

// leak spawns a goroutine nothing ever joins.
func leak() {
	go func() { // want "no join path"
		work()
	}()
}

// joined hands the goroutine a WaitGroup.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// signaled sends a result the spawner receives.
func signaled() int {
	done := make(chan int, 1)
	go func() { done <- 1 }()
	return <-done
}

// stopped selects on a context's Done channel.
func stopped(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// closer signals completion by closing a channel.
func closer() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// runner's join point lives in the callee, found through the
// same-package call graph.
func runner(stop chan struct{}) {
	go loop(stop)
}

func loop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}

// viaHelper reaches the join through a helper called from the
// literal's body.
func viaHelper(stop chan struct{}) {
	go func() {
		loop(stop)
	}()
}

// leakyCallee: the same-package callee has no join path either.
func leakyCallee() {
	go spin() // want "no join path"
}

func spin() {
	for {
		work()
	}
}

// dynamic runs a func value: the target is unknowable, so the
// analyzer stays quiet rather than guessing.
func dynamic(f func()) {
	go f()
}

// Package lockheld exercises the lockheld analyzer: sync mutexes held
// across blocking operations.
package lockheld

import (
	"sync"
	"time"
)

type client struct{}

func (c *client) Call(method string, args, reply any) error { return nil }

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	cl client
}

// sleepUnderLock holds mu across a sleep.
func (s *state) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding \"s.mu\""
	s.mu.Unlock()
}

// sendUnderLock holds mu (via deferred unlock) across a channel send.
func (s *state) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "channel send while holding \"s.mu\""
}

// recvUnderLock holds the read lock across a receive.
func (s *state) recvUnderLock() int {
	s.rw.RLock()
	v := <-s.ch // want "channel receive while holding \"s.rw\""
	s.rw.RUnlock()
	return v
}

// rpcUnderLock holds mu across a blocking RPC round trip — the classic
// Pregel-transport wedge.
func (s *state) rpcUnderLock() {
	s.mu.Lock()
	_ = s.cl.Call("Worker.Step", nil, nil) // want "blocking RPC call s.cl.Call while holding \"s.mu\""
	s.mu.Unlock()
}

// waitUnderLock holds mu across a WaitGroup wait.
func (s *state) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want "s.wg.Wait while holding \"s.mu\""
	s.mu.Unlock()
}

// selectUnderLock holds mu across a select with no default case.
func (s *state) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding \"s.mu\""
	case v := <-s.ch:
		_ = v
	}
}

// afterUnlock blocks only after releasing the lock.
func (s *state) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// pollUnderLock uses a non-blocking select, which cannot wedge.
func (s *state) pollUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// goroutineBody spawns work that runs without the caller's lock.
func (s *state) goroutineBody() {
	s.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	s.mu.Unlock()
}

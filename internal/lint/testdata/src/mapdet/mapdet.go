// Package mapdet exercises the mapdet analyzer: order-sensitive
// effects inside map iterations. Lines marked `// want "..."` must
// produce a diagnostic whose message contains the quoted substring;
// all other lines must stay clean.
package mapdet

import (
	"bytes"
	"fmt"
	"sort"
)

type msg struct {
	Dst int
	Val int32
}

type worker struct{}

func (w *worker) Send(m msg)         {}
func (w *worker) Broadcast(b []byte) {}

// appendEscapes accumulates into a slice that outlives the loop and is
// never sorted: element order is the map's random visit order.
func appendEscapes(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want "append to \"out\" inside iteration over map \"m\""
	}
	return out
}

// collectThenSort is the canonical safe pattern: collect, sort, use.
func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// perKeySlot appends through the loop key: each key's slot is
// independent of visit order.
func perKeySlot(m map[int][]int, groups map[int][]int) {
	for k, vs := range m {
		groups[k] = append(groups[k], vs...)
	}
}

// indexNotKey appends through an index unrelated to the loop key, so
// bucket contents depend on visit order.
func indexNotKey(m map[int]int, buckets [][]int) {
	i := 0
	for _, v := range m {
		buckets[i%2] = append(buckets[i%2], v) // want "append through \"indexed slice\" inside iteration over map \"m\""
	}
}

// sendInLoop emits Pregel-style messages in map order.
func sendInLoop(w *worker, dirty map[int]int32) {
	for v, val := range dirty {
		w.Send(msg{Dst: v, Val: val}) // want "w.Send inside iteration over map \"dirty\""
	}
}

// broadcastInLoop emits a broadcast per key in map order.
func broadcastInLoop(w *worker, blobs map[int][]byte) {
	for _, b := range blobs {
		w.Broadcast(b) // want "w.Broadcast inside iteration over map \"blobs\""
	}
}

// encodeInLoop streams bytes in map order.
func encodeInLoop(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want "buf.WriteString inside iteration over map \"m\""
	}
	return buf.String()
}

// printInLoop writes formatted output in map order.
func printInLoop(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want "fmt.Fprintf inside iteration over map \"m\""
	}
}

// loopLocal accumulates into a slice that dies with each iteration, so
// nothing order-sensitive escapes.
func loopLocal(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// escapingClosure stores a literal that runs only after the loop (and
// after any sort the caller performs); its body is not part of the
// iteration.
func escapingClosure(m map[int]string) func() []string {
	var out []string
	var fn func()
	for k := range m {
		k := k
		fn = func() { out = append(out, m[k]) }
	}
	return func() []string {
		if fn != nil {
			fn()
		}
		return out
	}
}

// invokedClosure runs its literal in place: the append is part of the
// loop body.
func invokedClosure(m map[int]string) []string {
	var out []string
	for _, v := range m {
		func(s string) {
			out = append(out, s) // want "append to \"out\" inside iteration over map \"m\""
		}(v)
	}
	return out
}

// suppressed documents a deliberately order-free emission.
func suppressed(w *worker, dirty map[int]int32) {
	for v, val := range dirty {
		//lint:ignore mapdet fixture merges by commutative OR, order-free
		w.Send(msg{Dst: v, Val: val})
	}
}

// Package suppress exercises the //lint:ignore machinery: a
// well-formed waiver silences its line, a reason-less one is itself a
// finding and silences nothing. Checked programmatically (not via
// want comments) in TestSuppressions.
package suppress

type w struct{}

func (w) Send(v int) {}

// good waives with a documented reason: no finding.
func good(m map[int]int, wk w) {
	for k := range m {
		//lint:ignore mapdet fixture tolerates any order
		wk.Send(k)
	}
}

// bad omits the reason: the directive is malformed (one drlint
// finding) and the Send below stays flagged (one mapdet finding).
func bad(m map[int]int, wk w) {
	for k := range m {
		//lint:ignore mapdet
		wk.Send(k)
	}
}

type enc struct{}

func (enc) Encode(v int) error { return nil }

// scoped: one line triggers two analyzers (mapdet and errsink); the
// waiver names only errsink, so the mapdet finding must survive.
// Checked in TestSuppressionScoping.
func scoped(m map[int]int, e enc) {
	for k := range m {
		//lint:ignore errsink fixture discards the encode error on purpose
		e.Encode(k)
	}
}

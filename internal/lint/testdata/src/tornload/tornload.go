// Package tornload exercises the torn-snapshot analyzer: two
// observations of the same atomic box in one function — directly or
// through a same-package helper — straddle an epoch swap.
package tornload

import "sync/atomic"

type state struct{ epoch uint64 }

type handler struct {
	state atomic.Pointer[state]
	other atomic.Pointer[state]
}

// twoDirect loads the same field twice: the two epochs can differ.
func (h *handler) twoDirect() uint64 {
	a := h.state.Load().epoch
	b := h.state.Load().epoch // want "second load of the same atomic value"
	return a + b
}

// once is the blessed pattern: one snapshot, passed down.
func (h *handler) once() uint64 {
	st := h.state.Load()
	return st.epoch + use(st)
}

func use(st *state) uint64 { return st.epoch }

// distinctFields reads two different atomics: no shared box, no tear.
func (h *handler) distinctFields() uint64 {
	return h.state.Load().epoch + h.other.Load().epoch
}

// epoch is a helper whose single load is fine on its own.
func (h *handler) epoch() uint64 { return h.state.Load().epoch }

// viaCall holds a direct snapshot and then calls a helper that loads
// again — found through the call-graph summary.
func (h *handler) viaCall() uint64 {
	st := h.state.Load()
	return st.epoch + h.epoch() // want "second load of the same atomic value"
}

// helpersOnly samples twice through helpers with no direct load: each
// call took its own consistent snapshot, so nothing is torn.
func (h *handler) helpersOnly() uint64 { return h.epoch() + h.epoch() }

// twoReceivers loads the same field of two different handlers: the
// receiver chains differ, so the events are not merged.
func twoReceivers(a, b *handler) uint64 {
	return a.state.Load().epoch + b.state.Load().epoch
}

// litScope: the literal is its own scope with its own snapshot; the
// outer load does not pair with it.
func (h *handler) litScope() func() uint64 {
	st := h.state.Load()
	_ = st
	return func() uint64 { return h.state.Load().epoch }
}

type box struct{ v atomic.Value }

// valueTorn: atomic.Value is the same hazard as atomic.Pointer.
func (b *box) valueTorn() (any, any) {
	x := b.v.Load()
	y := b.v.Load() // want "second load of the same atomic value"
	return x, y
}

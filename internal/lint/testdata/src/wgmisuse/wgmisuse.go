// Package wgmisuse exercises the WaitGroup-misuse analyzer: Add must
// happen in the spawner before the go statement, never inside the
// goroutine it accounts for.
package wgmisuse

import "sync"

func work() {}

// addInside: the spawner can reach Wait before the goroutine has run
// Add, so Wait returns with the work still in flight.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "Add inside the spawned goroutine"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// doneWithoutAdd: Done fires with no Add anywhere before the go
// statement — the counter goes negative and panics.
func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done() // want "no matching wg.Add before the go statement"
		work()
	}()
	wg.Wait()
}

// good is the canonical shape: Add in the spawner, Done in the
// goroutine.
func good() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// ownWg: a goroutine may manage a WaitGroup it declares itself; only
// WaitGroups shared with the spawner are in scope.
func ownWg() {
	done := make(chan struct{})
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			work()
		}()
		inner.Wait()
		close(done)
	}()
	<-done
}

type pool struct{ wg sync.WaitGroup }

// fieldWg: a struct-field WaitGroup may be Add-ed far away (Start
// adds, the run loop Dones), so the Done check is out of scope.
func (p *pool) fieldWg() {
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// fieldAddInside: Add inside the goroutine is wrong regardless of
// where the WaitGroup lives.
func (p *pool) fieldAddInside() {
	go func() {
		p.wg.Add(1) // want "Add inside the spawned goroutine"
		defer p.wg.Done()
		work()
	}()
}

package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// TornLoad flags a function that observes the same atomic.Pointer or
// atomic.Value twice — two direct .Load() calls, or a direct load
// plus a same-package call that loads it again (found through the
// package call graph). The serving tier's whole consistency story is
// that one serveState{idx, cache, epoch} snapshot is loaded once and
// passed down; a second load can straddle an epoch swap and hand the
// caller a torn view (index from epoch N, cache or counters from
// N+1).
//
// Functions whose repeated observations are all indirect (two
// Epoch() calls, say) are not flagged: each helper took its own
// consistent snapshot, and the caller merely sampled twice. The
// hazard needs at least one direct load whose value the function is
// still holding when the second observation happens.
var TornLoad = &Analyzer{
	Name: "tornload",
	Doc:  "same atomic.Pointer/Value loaded twice in one function (torn snapshot)",
	Run:  runTornLoad,
}

// loadEvent is one observation of an atomic box within a function
// scope.
type loadEvent struct {
	pos    token.Pos
	direct bool
	desc   string // "h.state.Load()" or "h.CacheStats()"
}

func runTornLoad(pass *Pass) error {
	idx := buildIndex(pass)
	for _, f := range pass.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			checkTornLoads(pass, idx, body)
		})
	}
	return nil
}

// checkTornLoads analyzes one function scope. Nested function
// literals are masked — they are their own scopes with their own
// snapshots and get visited separately by funcScopes.
func checkTornLoads(pass *Pass, idx *pkgIndex, body *ast.BlockStmt) {
	type key struct {
		obj  any    // the atomic variable or field object
		base string // receiver chain, so a.state and b.state stay apart
	}
	events := map[key][]loadEvent{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := atomicLoadTarget(pass, call); obj != nil {
			sel := call.Fun.(*ast.SelectorExpr) // atomicLoadTarget guarantees the shape
			base := ""
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				base = exprString(inner.X)
			}
			events[key{obj, base}] = append(events[key{obj, base}], loadEvent{
				pos:    call.Pos(),
				direct: true,
				desc:   exprStringOr(sel.X, obj.Name()) + ".Load()",
			})
			return true
		}
		// An indirect observation: a same-package callee whose summary
		// says it loads the box. The receiver chain keys the group, so
		// h.CacheStats() collides with h.state.Load() but not with
		// other.CacheStats().
		if fn := staticCallee(pass, call); fn != nil && fn.Pkg() == pass.Pkg {
			if s := idx.summaries[fn]; s != nil {
				base := receiverBase(call)
				for obj := range s.loads {
					events[key{obj, base}] = append(events[key{obj, base}], loadEvent{
						pos:  call.Pos(),
						desc: exprStringOr(call.Fun, fn.Name()) + "()",
					})
				}
			}
		}
		return true
	})
	for _, evs := range events {
		if len(evs) < 2 {
			continue
		}
		anyDirect := false
		for _, e := range evs {
			anyDirect = anyDirect || e.direct
		}
		if !anyDirect {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		first, second := evs[0], evs[1]
		pass.Reportf(second.pos,
			"second load of the same atomic value in one function (%s here, %s at line %d): an epoch swap between the loads yields a torn snapshot; load once and pass the value down",
			second.desc, first.desc, pass.Fset.Position(first.pos).Line)
	}
	// The map above is keyed per atomic box; iteration order only
	// affects the order findings are appended, and RunAnalyzers sorts
	// all diagnostics by position before anything is printed.
}

package lint

import (
	"go/ast"
	"go/types"
)

// isPkgFunc reports whether call invokes the function pkgPath.name
// (e.g. "time".Sleep), resolving the package through the type-checker
// so local shadowing and import renaming are handled.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// pkgFuncName returns (pkgPath, funcName, true) when call is a
// qualified call into another package.
func pkgFuncName(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isBuiltinAppend reports whether call is the predeclared append.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// namedOrPtrTo unwraps a pointer and reports whether t is the named
// type pkgPath.name.
func namedOrPtrTo(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// returnsError reports whether call's result tuple ends in error. When
// the type-checker has no information for the call, unknown is true.
func returnsError(info *types.Info, call *ast.CallExpr) (yes, unknown bool) {
	t := info.TypeOf(call)
	if t == nil {
		return false, true
	}
	last := t
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false, false
		}
		last = tup.At(tup.Len() - 1).Type()
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil, false
}

// funcScopes yields every function body in the file together with the
// node that encloses it (FuncDecl or FuncLit), outermost first.
func funcScopes(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}

// exprString renders a (small) expression for use as a map key when
// comparing lock receivers: identifiers and selector chains come out
// as "a.b.c"; anything else returns "" (not comparable).
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return ""
}

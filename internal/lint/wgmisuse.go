package lint

import (
	"go/ast"
	"go/types"
)

// WGMisuse flags the two sync.WaitGroup patterns that race the
// spawner's Wait:
//
//  1. wg.Add inside the spawned goroutine — the spawner can reach
//     Wait before the goroutine has run Add, so Wait returns with the
//     work still in flight.
//  2. wg.Done in a spawned goroutine with no wg.Add before the `go`
//     statement in the same function — the counter can go negative
//     (panic) or, with Adds elsewhere, release someone else's Wait.
//
// Check 2 only applies to WaitGroups declared as locals of the
// spawning function: a struct-field WaitGroup may legitimately be
// Add-ed far away (Start adds, the run loop Dones), which is exactly
// the updater's shape, and lexical analysis cannot see that pairing.
var WGMisuse = &Analyzer{
	Name: "wgmisuse",
	Doc:  "WaitGroup.Add inside the spawned goroutine, or Done without a prior Add",
	Run:  runWGMisuse,
}

func runWGMisuse(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkSpawnedLit(pass, f, g, lit)
			return true
		})
	}
	return nil
}

func checkSpawnedLit(pass *Pass, f *ast.File, g *ast.GoStmt, lit *ast.FuncLit) {
	enclosing := enclosingFuncBody(f, g.Pos())
	// addedInside tracks WaitGroups the goroutine itself Adds to, so
	// check 2 does not re-flag the same root cause.
	addedInside := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested spawns are judged at their own go statement
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, name := waitGroupMethod(pass, call)
		if obj == nil {
			return true
		}
		switch name {
		case "Add":
			if declaredWithin(obj, lit) {
				return true // the goroutine's own WaitGroup, for its own spawns
			}
			addedInside[obj] = true
			pass.Reportf(call.Pos(),
				"%s.Add inside the spawned goroutine: the spawner can reach Wait before Add runs; call Add before the go statement", obj.Name())
		case "Done":
			if addedInside[obj] || declaredWithin(obj, lit) {
				return true
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() || enclosing == nil || !declaredWithin(obj, enclosing) {
				return true // non-local WaitGroup: the Add may live elsewhere
			}
			if hasAddBefore(pass, enclosing, obj, g) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.Done with no matching %s.Add before the go statement: the counter can go negative or release another Wait early", obj.Name(), obj.Name())
		}
		return true
	})
}

// waitGroupMethod matches wg.Add / wg.Done calls on a sync.WaitGroup
// and returns the object of the receiver's final identifier.
func waitGroupMethod(pass *Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Done") {
		return nil, ""
	}
	if !namedOrPtrTo(pass.TypeOf(sel.X), "sync", "WaitGroup") {
		return nil, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return pass.ObjectOf(x), sel.Sel.Name
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel), sel.Sel.Name
	}
	return nil, ""
}

// hasAddBefore reports whether body contains an Add on obj lexically
// before the go statement (loops make "before" approximate, but an
// Add anywhere earlier in the function is the pattern being checked
// for).
func hasAddBefore(pass *Pass, body *ast.BlockStmt, obj types.Object, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() >= g.Pos() {
			return true
		}
		o, name := waitGroupMethod(pass, call)
		if name == "Add" && o == obj {
			found = true
		}
		return true
	})
	return found
}

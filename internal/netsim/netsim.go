// Package netsim models the network cost of the simulated cluster.
//
// The paper evaluates on 32 physical machines connected by a
// commodity network; this reproduction runs the same partitioned
// workers inside one process. Message payloads still cross a real
// serialization boundary (see internal/pregel), but wire latency and
// bandwidth do not exist in-process, so they are modeled here and
// added to the measured communication time. The defaults approximate
// gigabit-class datacenter Ethernet; the model is deliberately simple
// (per-superstep barrier latency plus byte transfer time) because the
// experiments only depend on two effects it captures well:
//
//   - algorithms with many supersteps (distributed DFS in BFL^D) pay a
//     per-step latency that dwarfs everything else, and
//   - algorithms that move fewer bytes (DRL_b vs DRL) spend
//     proportionally less time in exchange.
package netsim

import "time"

// Model describes the simulated interconnect.
type Model struct {
	// BarrierLatency is charged once per superstep when more than one
	// worker participates: the cost of the BSP barrier plus message
	// round-trip start-up.
	BarrierLatency time.Duration
	// BytesPerSecond is the point-to-point bandwidth; remote bytes are
	// charged at this rate.
	BytesPerSecond int64
}

// Commodity returns the default model: 100µs per barrier,
// 1.25 GB/s (10 GbE) bandwidth.
func Commodity() Model {
	return Model{BarrierLatency: 100 * time.Microsecond, BytesPerSecond: 1_250_000_000}
}

// Zero returns a free network (used by tests and the multi-core
// configuration, where exchanges are shared-memory).
func Zero() Model { return Model{} }

// CheckpointCost returns the simulated time for one superstep
// checkpoint that moved ckptBytes of worker state to the master among
// p workers. A checkpoint is a barrier (every worker pauses at the
// snapshot point) plus a state transfer, so it is priced like an
// exchange of the same volume.
func (m Model) CheckpointCost(ckptBytes int64, p int) time.Duration {
	return m.ExchangeCost(ckptBytes, p)
}

// ExchangeCost returns the simulated time for one superstep exchange
// that moved remoteBytes across worker boundaries among p workers.
func (m Model) ExchangeCost(remoteBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	cost := m.BarrierLatency
	if m.BytesPerSecond > 0 {
		cost += time.Duration(float64(remoteBytes) / float64(m.BytesPerSecond) * float64(time.Second))
	}
	return cost
}

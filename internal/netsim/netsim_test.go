package netsim

import (
	"testing"
	"time"
)

func TestCommodityDefaults(t *testing.T) {
	m := Commodity()
	if m.BarrierLatency != 100*time.Microsecond {
		t.Errorf("barrier latency = %v", m.BarrierLatency)
	}
	if m.BytesPerSecond != 1_250_000_000 {
		t.Errorf("bandwidth = %d", m.BytesPerSecond)
	}
}

func TestExchangeCost(t *testing.T) {
	m := Commodity()
	if m.ExchangeCost(1<<20, 1) != 0 {
		t.Error("one worker never pays")
	}
	if got := m.ExchangeCost(0, 2); got != m.BarrierLatency {
		t.Errorf("empty exchange = %v, want barrier", got)
	}
	// 1.25 GB at 1.25 GB/s = 1 s plus barrier.
	got := m.ExchangeCost(1_250_000_000, 8)
	want := m.BarrierLatency + time.Second
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("cost = %v, want ~%v", got, want)
	}
}

func TestZeroModel(t *testing.T) {
	z := Zero()
	if z.ExchangeCost(1<<30, 32) != 0 {
		t.Error("zero model must be free")
	}
}

func TestZeroBandwidthMeansLatencyOnly(t *testing.T) {
	m := Model{BarrierLatency: time.Millisecond}
	if got := m.ExchangeCost(1<<30, 4); got != time.Millisecond {
		t.Errorf("latency-only model charged %v", got)
	}
}

func TestCheckpointCost(t *testing.T) {
	m := Commodity()
	if m.CheckpointCost(1<<20, 1) != 0 {
		t.Error("a single worker checkpoints for free (no wire)")
	}
	// A checkpoint is priced like an exchange of the same volume.
	if got, want := m.CheckpointCost(1<<20, 4), m.ExchangeCost(1<<20, 4); got != want {
		t.Errorf("checkpoint cost = %v, want exchange-equivalent %v", got, want)
	}
	if Zero().CheckpointCost(1<<30, 32) != 0 {
		t.Error("zero model must be free")
	}
}

package obs

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHistogram feeds arbitrary observation sequences to a histogram
// and checks its structural invariants: the count matches the number
// of observations, the bucket counts account for every observation,
// quantiles are monotone in q, and every quantile is one of the
// configured bounds.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := newHistogram([]float64{1e-6, 1e-3, 1, 1e3})
		n := 0
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
			n++
		}
		if got := h.Count(); got != int64(n) {
			t.Fatalf("count = %d, want %d", got, n)
		}
		var bucketTotal int64
		for i := range h.counts {
			bucketTotal += h.counts[i].Load()
		}
		if bucketTotal != int64(n) {
			t.Fatalf("buckets account for %d of %d observations", bucketTotal, n)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			qv := h.Quantile(q)
			if qv < prev {
				t.Fatalf("quantile not monotone: q=%g gave %g after %g", q, qv, prev)
			}
			prev = qv
			if n == 0 {
				if qv != 0 {
					t.Fatalf("empty histogram quantile = %g", qv)
				}
				continue
			}
			found := false
			for _, b := range h.bounds {
				if qv == b {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("quantile %g is not a bucket bound", qv)
			}
		}
	})
}

package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"
)

// Mount registers the observability endpoints on mux:
//
//	GET /metrics       → Prometheus text exposition of r
//	GET /trace         → JSON object {trace name: [StepTrace rows]}
//	    /debug/pprof/* → net/http/pprof profiles
//
// Works with a nil registry (the endpoints serve empty documents).
func Mount(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Mid-stream encode failures cannot become an http.Error (the
		// status line is already out); log-and-drop, as the query
		// server's writeJSON does.
		if err := json.NewEncoder(w).Encode(r.TraceSnapshot()); err != nil {
			log.Printf("obs: writing /trace response: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone http.Handler serving the Mount
// endpoints — what drcluster and drworker bind to a side port.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, r)
	return mux
}

// TraceSnapshot copies every registered trace's retained rows, keyed
// by trace name. The map is never nil.
func (r *Registry) TraceSnapshot() map[string][]StepTrace {
	out := map[string][]StepTrace{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	traces := make(map[string]*Trace, len(r.traces))
	for name, t := range r.traces {
		traces[name] = t
	}
	r.mu.Unlock()
	for name, t := range traces {
		out[name] = t.Steps()
	}
	return out
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("pregel_messages_total").Add(99)
	r.Trace("pregel").Record(StepTrace{Run: 1, Step: 0, Messages: 12,
		Workers: []WorkerStep{{Worker: 0, Active: true}}})

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if !strings.Contains(string(body), "pregel_messages_total 99") {
		t.Errorf("/metrics body:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var traces map[string][]StepTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rows := traces["pregel"]
	if len(rows) != 1 || rows[0].Messages != 12 || len(rows[0].Workers) != 1 {
		t.Errorf("/trace rows = %+v", rows)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

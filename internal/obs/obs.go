// Package obs is the repo's zero-dependency observability layer:
// named counters, gauges, and fixed-bucket latency histograms behind
// an atomic, race-safe registry, plus per-superstep trace recorders
// (trace.go) and an HTTP exposition surface (http.go) serving the
// Prometheus text format and net/http/pprof.
//
// The paper's headline claims are quantitative — labeling time,
// message volume per superstep, index size, query latency (§VI) — so
// every layer that produces such a number (the pregel engine, the RPC
// master, the DRL builders, the query server) records it here instead
// of keeping it in one-shot structs only.
//
// Nil-safety is part of the contract: a nil *Registry hands out nil
// metric handles, and every method on a nil handle is a no-op. Call
// sites therefore instrument unconditionally; plumbing a registry in
// is opt-in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations v <= bounds[i], plus an implicit
// +Inf bucket. Observations are lock-free.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBuckets is the default bucket layout for second-denominated
// latencies: 1µs to 10s, roughly logarithmic.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default layout for counts and byte sizes:
// powers of four from 1 to ~10^9.
var SizeBuckets = []float64{
	1, 4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return floatFrom(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the upper bound
// of the bucket holding it — an over-estimate by at most one bucket
// width, which is what fixed buckets can promise. Returns 0 with no
// observations; observations beyond the last bound report the last
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= target {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Registry is a named-metric namespace. All methods are safe for
// concurrent use; handles are get-or-create, so hot paths can resolve
// them once and then update lock-free. A nil *Registry is a valid
// no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	traces   map[string]*Trace
}

// Default is the process-wide registry the commands expose over HTTP.
var Default = New()

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		traces:   map[string]*Trace{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. The name may carry Prometheus labels inline, e.g.
// `http_requests_total{handler="reach"}`.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil bounds =
// LatencyBuckets). The bounds of an existing histogram win; histogram
// names must not carry labels.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Trace returns the superstep trace recorder registered under name,
// creating it with the default capacity on first use.
func (r *Registry) Trace(name string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[name]
	if !ok {
		t = NewTrace(0)
		r.traces[name] = t
	}
	return t
}

// CounterValue reads a counter without creating it (0 if absent).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// family strips inline labels: `a_total{x="y"}` → `a_total`.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), grouped by family and sorted for
// deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		fam, name string
		kind      string // "counter" | "gauge" | "histogram"
		write     func(io.Writer) error
	}
	r.mu.Lock()
	var all []series
	for name, c := range r.counters {
		name, c := name, c
		all = append(all, series{family(name), name, "counter", func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
			return err
		}})
	}
	for name, g := range r.gauges {
		name, g := name, g
		all = append(all, series{family(name), name, "gauge", func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
			return err
		}})
	}
	for name, h := range r.hists {
		name, h := name, h
		all = append(all, series{name, name, "histogram", func(w io.Writer) error {
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					name, strconv.FormatFloat(bound, 'g', -1, 64), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", name,
				strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
			return err
		}})
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].fam != all[j].fam {
			return all[i].fam < all[j].fam
		}
		return all[i].name < all[j].name
	})
	lastFam := ""
	for _, s := range all {
		if s.fam != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.fam, s.kind); err != nil {
				return err
			}
			lastFam = s.fam
		}
		if err := s.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Label renders one inline Prometheus label: Label("h", "handler",
// "reach") → `h{handler="reach"}`.
func Label(name, key, value string) string {
	return name + "{" + key + "=" + strconv.Quote(value) + "}"
}

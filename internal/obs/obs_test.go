package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("x_total") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	if r.CounterValue("x_total") != 42 || r.CounterValue("absent") != 0 {
		t.Error("CounterValue mismatch")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(1)
	r.Histogram("c", nil).Observe(1)
	r.Trace("d").Record(StepTrace{})
	if r.Counter("a").Value() != 0 || r.Trace("d").Total() != 0 {
		t.Error("nil registry leaked state")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil WritePrometheus = %q, %v", sb.String(), err)
	}
	if len(r.TraceSnapshot()) != 0 {
		t.Error("nil TraceSnapshot not empty")
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines;
// run under -race this is the registry's thread-safety proof, and the
// totals prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil).Observe(0.001)
				r.Trace("t").Record(StepTrace{Step: i})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	h := r.Histogram("h_seconds", nil)
	if h.Count() != workers*per {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.001) > 1e-6 {
		t.Errorf("hist sum = %g", h.Sum())
	}
	if r.Trace("t").Total() != workers*per {
		t.Errorf("trace total = %d", r.Trace("t").Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d", got)
	}
	// The 0.5-quantile of 8 observations lands in the bucket of the
	// 4th: values {0.5,1.5,1.5,3,...} → cum counts {1,3,6,...}, so
	// bucket le=4.
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("q50 = %g, want 4", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	// Observations past the last bound report the last bound.
	if got := h.Quantile(1); got != 8 {
		t.Errorf("q100 = %g, want 8", got)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("nil histogram not zero")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("pregel_messages_total").Add(42)
	r.Counter(Label("http_requests_total", "handler", "reach")).Add(3)
	r.Counter(Label("http_requests_total", "handler", "stats")).Add(1)
	r.Gauge("workers").Set(5)
	h := r.Histogram("query_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pregel_messages_total counter\npregel_messages_total 42\n",
		"http_requests_total{handler=\"reach\"} 3\n",
		"http_requests_total{handler=\"stats\"} 1\n",
		"# TYPE workers gauge\nworkers 5\n",
		"# TYPE query_seconds histogram\n",
		"query_seconds_bucket{le=\"0.001\"} 1\n",
		"query_seconds_bucket{le=\"0.01\"} 1\n",
		"query_seconds_bucket{le=\"+Inf\"} 2\n",
		"query_seconds_sum 0.5005\n",
		"query_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with several labeled series.
	if strings.Count(out, "# TYPE http_requests_total") != 1 {
		t.Errorf("family http_requests_total should have exactly one TYPE line:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Error("non-deterministic exposition output")
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(StepTrace{Step: i})
	}
	steps := tr.Steps()
	if len(steps) != 4 {
		t.Fatalf("retained %d rows, want 4", len(steps))
	}
	for i, s := range steps {
		if s.Step != 6+i {
			t.Errorf("row %d = step %d, want %d (oldest-first tail)", i, s.Step, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
}

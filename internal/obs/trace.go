package obs

import "sync"

// StepTrace is one per-superstep row of a run's execution trace — the
// observable shape of Fig. 5: who was active, how much was said, and
// how long the barrier took.
type StepTrace struct {
	// Run distinguishes engine runs sharing one worker set (the batch
	// algorithm runs once per batch).
	Run int `json:"run"`
	// Step is the superstep number within the run.
	Step int `json:"step"`
	// ActiveWorkers counts workers that did not vote to halt.
	ActiveWorkers int `json:"active_workers"`
	// Messages, BytesLocal, BytesRemote, and BcastBytes are this
	// step's exchange volume (deltas, not running totals).
	Messages    int64 `json:"messages"`
	BytesLocal  int64 `json:"bytes_local"`
	BytesRemote int64 `json:"bytes_remote"`
	BcastBytes  int64 `json:"bcast_bytes"`
	// Retries and Recoveries are the fault-handling activity charged
	// to this step (RPC master only; always zero in-process).
	Retries    int64 `json:"retries,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// ComputeNanos is the BSP makespan of the compute phase (slowest
	// worker); WallNanos additionally includes the measured exchange.
	ComputeNanos int64 `json:"compute_ns"`
	WallNanos    int64 `json:"wall_ns"`
	// Workers holds the per-worker breakdown.
	Workers []WorkerStep `json:"workers,omitempty"`
}

// WorkerStep is one worker's share of a superstep.
type WorkerStep struct {
	Worker int `json:"worker"`
	// ComputeNanos is this worker's compute-phase wall time.
	ComputeNanos int64 `json:"compute_ns"`
	// Active reports whether the worker voted to stay active.
	Active bool `json:"active"`
	// MsgsIn is the number of messages delivered to this worker at the
	// start of the step.
	MsgsIn int `json:"msgs_in"`
}

// DefaultTraceCap bounds how many superstep rows a Trace retains; the
// newest rows win (a long build keeps its tail, the part a live
// debugging session cares about).
const DefaultTraceCap = 4096

// Trace is a bounded, concurrency-safe recorder of superstep rows.
type Trace struct {
	mu    sync.Mutex
	cap   int
	ring  []StepTrace
	next  int   // ring write cursor once full
	total int64 // rows ever recorded
}

// NewTrace returns a recorder retaining the newest max rows
// (max <= 0 uses DefaultTraceCap).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Trace{cap: max}
}

// Record appends one superstep row, evicting the oldest at capacity.
func (t *Trace) Record(s StepTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % t.cap
}

// Steps returns the retained rows, oldest first.
func (t *Trace) Steps() []StepTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StepTrace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many rows were ever recorded (retained or
// evicted).
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Package order computes the total vertex order that drives every
// labeling algorithm in this repository.
//
// The paper defines ord(v) = (d_in(v)+1)·(d_out(v)+1) + ID(v)/(n+1):
// a degree product with the vertex ID as an ascending tie-breaker
// (§II-B). Because only comparisons between order values matter, the
// order is materialized as a rank permutation — rank 0 is the
// highest-order vertex — and every algorithm compares int32 ranks
// instead of floating-point order values.
package order

import (
	"sort"

	"repro/internal/graph"
)

// Rank is a position in the total order; rank 0 is the highest-order
// vertex (the first one TOL would label).
type Rank int32

// Ordering is a materialized total order over the vertices of a graph.
type Ordering struct {
	// rank[v] is the rank of vertex v.
	rank []Rank
	// vertex[r] is the vertex with rank r.
	vertex []graph.VertexID
	// key[v] is the degree product (d_in+1)(d_out+1) used to derive
	// the order, kept for diagnostics and the OrdValue accessor.
	key []int64
	n   int
}

// Compute derives the paper's degree-product ordering for g.
func Compute(g *graph.Digraph) *Ordering {
	n := g.NumVertices()
	o := &Ordering{
		rank:   make([]Rank, n),
		vertex: make([]graph.VertexID, n),
		key:    make([]int64, n),
		n:      n,
	}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		o.key[v] = int64(g.InDegree(id)+1) * int64(g.OutDegree(id)+1)
		o.vertex[v] = id
	}
	sort.SliceStable(o.vertex, func(i, j int) bool {
		vi, vj := o.vertex[i], o.vertex[j]
		if o.key[vi] != o.key[vj] {
			return o.key[vi] > o.key[vj]
		}
		// The +ID/(n+1) term makes the larger ID the higher order.
		return vi > vj
	})
	for r, v := range o.vertex {
		o.rank[v] = Rank(r)
	}
	return o
}

// FromRanks builds an Ordering from an explicit rank permutation,
// used by tests to force adversarial orders. It panics if ranks is not
// a permutation of 0..n-1.
func FromRanks(ranks []Rank) *Ordering {
	n := len(ranks)
	o := &Ordering{rank: make([]Rank, n), vertex: make([]graph.VertexID, n), n: n}
	seen := make([]bool, n)
	for v, r := range ranks {
		if r < 0 || int(r) >= n || seen[r] {
			panic("order: ranks is not a permutation")
		}
		seen[r] = true
		o.rank[v] = r
		o.vertex[r] = graph.VertexID(v)
	}
	return o
}

// N returns the number of vertices in the order.
func (o *Ordering) N() int { return o.n }

// RankOf returns the rank of vertex v.
func (o *Ordering) RankOf(v graph.VertexID) Rank { return o.rank[v] }

// VertexAt returns the vertex with rank r.
func (o *Ordering) VertexAt(r Rank) graph.VertexID { return o.vertex[r] }

// Higher reports whether ord(u) > ord(v).
func (o *Ordering) Higher(u, v graph.VertexID) bool { return o.rank[u] < o.rank[v] }

// OrdValue returns the paper's numeric ord(v) for display purposes
// (e.g. Example 3 reports ord(v1) = 12.08 on the running example).
func (o *Ordering) OrdValue(v graph.VertexID) float64 {
	if o.key == nil {
		return float64(o.n - int(o.rank[v]))
	}
	return float64(o.key[v]) + float64(v+1)/float64(o.n+1)
}

// Ranks returns the underlying vertex→rank slice. Callers must not
// modify it.
func (o *Ordering) Ranks() []Rank { return o.rank }

// Vertices returns the underlying rank→vertex slice. Callers must not
// modify it.
func (o *Ordering) Vertices() []graph.VertexID { return o.vertex }

package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestComputePaperExample(t *testing.T) {
	g := graph.PaperExample()
	o := Compute(g)
	// Example 3: ord(v1) = 12.08, ord(v10) = 2.83.
	if got := o.OrdValue(0); math.Abs(got-12.08) > 0.01 {
		t.Errorf("ord(v1) = %.2f, want 12.08", got)
	}
	if got := o.OrdValue(9); math.Abs(got-2.83) > 0.01 {
		t.Errorf("ord(v10) = %.2f, want 2.83", got)
	}
	// Example 4: v1 first, v2 second.
	if o.VertexAt(0) != 0 || o.VertexAt(1) != 1 {
		t.Errorf("top ranks = %d, %d; want v1, v2", o.VertexAt(0), o.VertexAt(1))
	}
	if !o.Higher(0, 9) {
		t.Error("ord(v1) should exceed ord(v10)")
	}
}

func TestTieBreakByID(t *testing.T) {
	// Two isolated vertices: identical degree products; the larger ID
	// wins (the +ID/(n+1) term).
	g := graph.FromEdges(2, nil)
	o := Compute(g)
	if o.RankOf(1) != 0 || o.RankOf(0) != 1 {
		t.Errorf("tie-break wrong: rank(v0)=%d rank(v1)=%d", o.RankOf(0), o.RankOf(1))
	}
}

func TestRankPermutation(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 30
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(raw[i] % n),
				V: graph.VertexID(raw[i+1] % n),
			})
		}
		g := graph.FromEdges(n, edges)
		o := Compute(g)
		seen := make([]bool, n)
		for v := graph.VertexID(0); int(v) < n; v++ {
			r := o.RankOf(v)
			if r < 0 || int(r) >= n || seen[r] {
				return false
			}
			seen[r] = true
			if o.VertexAt(r) != v {
				return false
			}
		}
		// Ranks must sort by descending OrdValue.
		for r := 1; r < n; r++ {
			if o.OrdValue(o.VertexAt(Rank(r-1))) <= o.OrdValue(o.VertexAt(Rank(r))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRanks(t *testing.T) {
	o := FromRanks([]Rank{2, 0, 1})
	if o.VertexAt(0) != 1 || o.VertexAt(1) != 2 || o.VertexAt(2) != 0 {
		t.Errorf("FromRanks wrong: %v", o.Vertices())
	}
	if !o.Higher(1, 0) {
		t.Error("vertex 1 (rank 0) should be higher than vertex 0 (rank 2)")
	}
}

func TestFromRanksRejectsNonPermutation(t *testing.T) {
	cases := [][]Rank{
		{0, 0, 1},  // duplicate
		{0, 1, 5},  // out of range
		{0, 1, -1}, // negative
	}
	for i, ranks := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			FromRanks(ranks)
		}()
	}
}

func TestHigherMatchesOrdValue(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(40)
		var edges []graph.Edge
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(rng.Intn(n)),
				V: graph.VertexID(rng.Intn(n)),
			})
		}
		g := graph.FromEdges(n, edges)
		o := Compute(g)
		for u := graph.VertexID(0); int(u) < n; u++ {
			for v := graph.VertexID(0); int(v) < n; v++ {
				if u == v {
					continue
				}
				if o.Higher(u, v) != (o.OrdValue(u) > o.OrdValue(v)) {
					t.Fatalf("Higher(%d,%d) disagrees with OrdValue", u, v)
				}
			}
		}
	}
}

package order

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects how the total order is derived. Every labeling
// algorithm is correct under any total order; the strategy only
// affects index size and build time. The paper (§II-B) uses the
// degree product because it is cheap and works well; the alternatives
// here back the ordering ablation in the benchmark harness.
type Strategy string

// The available strategies.
const (
	// StrategyDegreeProduct is the paper's ord(v) =
	// (d_in+1)(d_out+1) + ID/(n+1). The default.
	StrategyDegreeProduct Strategy = "degree-product"
	// StrategyDegreeSum orders by d_in + d_out.
	StrategyDegreeSum Strategy = "degree-sum"
	// StrategyOutDegree orders by d_out only.
	StrategyOutDegree Strategy = "out-degree"
	// StrategyID orders by vertex ID (descending, matching the ID
	// tie-break direction). A deliberately structure-blind baseline.
	StrategyID Strategy = "id"
	// StrategyRandom is a deterministic pseudo-random permutation —
	// the worst-case control of the ablation.
	StrategyRandom Strategy = "random"
)

// Strategies lists every available strategy.
func Strategies() []Strategy {
	return []Strategy{StrategyDegreeProduct, StrategyDegreeSum, StrategyOutDegree, StrategyID, StrategyRandom}
}

// ComputeStrategy derives the total order for g under the given
// strategy.
func ComputeStrategy(g *graph.Digraph, s Strategy) (*Ordering, error) {
	n := g.NumVertices()
	switch s {
	case StrategyDegreeProduct, "":
		return Compute(g), nil
	case StrategyDegreeSum:
		return computeByKey(g, func(v graph.VertexID) int64 {
			return int64(g.InDegree(v) + g.OutDegree(v))
		}), nil
	case StrategyOutDegree:
		return computeByKey(g, func(v graph.VertexID) int64 {
			return int64(g.OutDegree(v))
		}), nil
	case StrategyID:
		ranks := make([]Rank, n)
		for v := 0; v < n; v++ {
			ranks[v] = Rank(n - 1 - v)
		}
		return FromRanks(ranks), nil
	case StrategyRandom:
		return computeByKey(g, func(v graph.VertexID) int64 {
			return int64(splitmix(uint64(v)) >> 1)
		}), nil
	default:
		return nil, fmt.Errorf("order: unknown strategy %q", s)
	}
}

// computeByKey sorts descending by key, breaking ties upward by ID
// (the same tie-break direction as the paper's formula).
func computeByKey(g *graph.Digraph, key func(graph.VertexID) int64) *Ordering {
	n := g.NumVertices()
	o := &Ordering{
		rank:   make([]Rank, n),
		vertex: make([]graph.VertexID, n),
		key:    make([]int64, n),
		n:      n,
	}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		o.key[v] = key(id)
		o.vertex[v] = id
	}
	sort.SliceStable(o.vertex, func(i, j int) bool {
		vi, vj := o.vertex[i], o.vertex[j]
		if o.key[vi] != o.key[vj] {
			return o.key[vi] > o.key[vj]
		}
		return vi > vj
	})
	for r, v := range o.vertex {
		o.rank[v] = Rank(r)
	}
	return o
}

// splitmix is the splitmix64 mixer, used for the deterministic random
// permutation.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package order

import (
	"testing"

	"repro/internal/graph"
)

func TestComputeStrategyAll(t *testing.T) {
	g := graph.PaperExample()
	n := g.NumVertices()
	for _, s := range Strategies() {
		o, err := ComputeStrategy(g, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		seen := make([]bool, n)
		for v := graph.VertexID(0); int(v) < n; v++ {
			r := o.RankOf(v)
			if seen[r] {
				t.Fatalf("%s: duplicate rank %d", s, r)
			}
			seen[r] = true
			if o.VertexAt(r) != v {
				t.Fatalf("%s: rank table inconsistent", s)
			}
		}
	}
}

func TestComputeStrategySemantics(t *testing.T) {
	g := graph.PaperExample()
	// Default and empty string agree with Compute.
	def, err := ComputeStrategy(g, "")
	if err != nil {
		t.Fatal(err)
	}
	base := Compute(g)
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		if def.RankOf(v) != base.RankOf(v) {
			t.Fatal("empty strategy must match Compute")
		}
	}
	// ID order: vertex n-1 first.
	byID, err := ComputeStrategy(g, StrategyID)
	if err != nil {
		t.Fatal(err)
	}
	if byID.VertexAt(0) != 10 {
		t.Errorf("id strategy should rank v11 first, got %d", byID.VertexAt(0))
	}
	// Out-degree: v2 (out-degree 4) first.
	byOut, err := ComputeStrategy(g, StrategyOutDegree)
	if err != nil {
		t.Fatal(err)
	}
	if byOut.VertexAt(0) != 1 {
		t.Errorf("out-degree strategy should rank v2 first, got %d", byOut.VertexAt(0))
	}
	// Random is deterministic.
	r1, _ := ComputeStrategy(g, StrategyRandom)
	r2, _ := ComputeStrategy(g, StrategyRandom)
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		if r1.RankOf(v) != r2.RankOf(v) {
			t.Fatal("random strategy must be deterministic")
		}
	}
	if _, err := ComputeStrategy(g, "bogus"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

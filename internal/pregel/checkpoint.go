package pregel

import "errors"

// Superstep checkpointing. The BSP barrier is the natural consistency
// point: at a barrier every outbox has been drained into the master's
// routing state and every inbox has been consumed, so a worker's
// recoverable state is exactly its program state (Worker.State plus
// the program's replicated shared state). The master snapshots that
// state at run boundaries and every CheckpointEvery supersteps, and
// keeps the blobs plus its own routing state (pending packets and
// broadcasts) in memory. On a worker failure it re-dials, re-Inits,
// re-BeginRuns the replacement, restores every worker from the last
// checkpoint, and rewinds the superstep loop to the checkpoint
// barrier — delivery is replayed identically, so the index the job
// produces is bit-for-bit the one an undisturbed run produces.

// Snapshotter is an optional Program extension that enables superstep
// checkpointing over the RPC transport. Programs that do not
// implement it still get per-call retries, but a crashed worker
// aborts the run.
type Snapshotter interface {
	// EncodeState serializes every piece of recoverable state: the
	// persistent section first (state that survives engine runs, e.g.
	// accumulated batch labels), then the per-run section (visit
	// status, replicated broadcast state).
	EncodeState(w *Worker) ([]byte, error)
	// DecodeState rebuilds state from an EncodeState blob, replacing —
	// not merging with — whatever the program currently holds. When
	// sameRun is false the blob was taken at a previous run's boundary
	// and only the persistent section must be applied; the per-run
	// section is dead and the fresh run's state must stay empty.
	DecodeState(w *Worker, blob []byte, sameRun bool) error
}

// CheckpointReply carries one worker's state snapshot. Supported is
// false when the running program does not implement Snapshotter; the
// master then disables checkpointing for the job instead of failing.
type CheckpointReply struct {
	Supported bool
	Blob      []byte
}

// RestoreArgs rewinds a worker to a checkpointed barrier. Step is the
// next superstep the master will issue (so the worker's dedup cursor
// becomes Step-1); SameRun distinguishes an in-run rollback from a
// run-boundary restore onto a fresh program; Finished restores the
// post-FinishRun state used when recovering during Collect.
type RestoreArgs struct {
	Blob     []byte
	Step     int
	SameRun  bool
	Finished bool
}

// Checkpoint encodes the worker's recoverable state at the current
// barrier. Read-only, hence naturally idempotent under retry.
func (s *WorkerServer) Checkpoint(_ struct{}, reply *CheckpointReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: Checkpoint before BeginRun")
	}
	snap, ok := s.prog.(Snapshotter)
	if !ok {
		reply.Supported = false
		return nil
	}
	blob, err := snap.EncodeState(s.w)
	if err != nil {
		return err
	}
	reply.Supported = true
	reply.Blob = blob
	return nil
}

// Restore rewinds the worker to a checkpointed barrier. Idempotent:
// it installs absolute state, so a retried Restore lands in the same
// place.
func (s *WorkerServer) Restore(args RestoreArgs, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: Restore before BeginRun")
	}
	snap, ok := s.prog.(Snapshotter)
	if !ok {
		return errors.New("pregel: program does not support checkpointing")
	}
	if err := snap.DecodeState(s.w, args.Blob, args.SameRun); err != nil {
		return err
	}
	s.lastStep = args.Step - 1
	s.haveReply = false
	s.lastReply = StepReply{}
	s.finished = args.Finished
	return nil
}

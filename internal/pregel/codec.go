package pregel

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Message wire format, version 2 (see DESIGN.md §9 for the normative
// spec). One packet carries every message one sender worker addresses
// to one receiver worker in one superstep:
//
//	packet  := version(1) uvarint(count) record*
//	record  := uvarint(dstDelta) kind(1) svarint(val) svarint(val2)
//
// Records are sorted by destination vertex, so dstDelta (the gap to
// the previous record's Dst, starting from 0) is small and uvarint
// encodes it in one byte for almost every record. Val and Val2 are
// zigzag varints: the rank payloads of the labeling programs are
// small non-negative ints (1–2 bytes) and Val2 is almost always zero
// (1 byte), against the flat 13 bytes/record of format v1.
//
// Decoding is strict in every build, not just -tags=invariants: a
// version mismatch, a truncated record, a trailing ragged tail, or an
// out-of-range field is a hard error that both transports propagate
// to the caller. A corrupt packet means sender and receiver disagree
// about the wire — silently dropping the tail (what v1 did) corrupts
// the index instead of failing the build.

// wireVersion is the packet version byte. Bump it whenever the record
// layout changes; decoders reject everything else.
const wireVersion = 0x02

// maxPooledPacket bounds the capacity of buffers returned to the
// packet pool, so one huge superstep cannot pin its peak allocation
// for the rest of the process lifetime.
const maxPooledPacket = 1 << 20

// Combiner merges the messages addressed to one destination vertex
// before they are serialized — Pregel's classic message combiner. The
// codec calls it once per maximal run of equal-Dst records (after
// sorting the outbox by Dst) and encodes whatever it returns, so both
// the Messages metric and the wire bytes reflect the combined set.
//
// Contract: every returned message must keep the run's Dst, and the
// returned slice may alias the input (in-place filtering is fine).
// Combining must not change program semantics: it is only safe when
// the program treats its inbox as a set (DRL's seen-guarded rank
// messages are the motivating case — see DedupCombiner).
type Combiner func(msgs []Msg) []Msg

// CombinerProvider is an optional Program extension: a program whose
// message handling is idempotent registers a Combiner here and both
// transports apply it at encode time.
type CombinerProvider interface {
	MessageCombiner() Combiner
}

// DedupCombiner is the combiner the DRL programs register: it drops
// duplicate (Kind, Val, Val2) messages to the same destination vertex.
// DRL's receivers are seen-guarded (a duplicate visit message is
// skipped), so deduplication is semantics-preserving; it also sorts
// the run by (Kind, Val, Val2), which keeps the wire bytes
// deterministic regardless of outbox append order.
func DedupCombiner(msgs []Msg) []Msg {
	if len(msgs) < 2 {
		return msgs
	}
	sort.Slice(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Val != b.Val {
			return a.Val < b.Val
		}
		return a.Val2 < b.Val2
	})
	out := msgs[:1]
	for _, m := range msgs[1:] {
		if m != out[len(out)-1] {
			out = append(out, m)
		}
	}
	return out
}

// encodePacket serializes msgs into one wire packet appended to buf,
// returning the extended buffer and the number of records actually
// encoded (post-combining). msgs is sorted in place by Dst (stable, so
// same-destination messages keep their send order for programs without
// a combiner) and, when comb is non-nil, combined per equal-Dst run.
//
// A message with a negative Dst is rejected: it is not a vertex, and
// v1's unchecked uint32 casts would have put it on the wire anyway.
func encodePacket(buf []byte, msgs []Msg, comb Combiner) ([]byte, int, error) {
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].Dst < msgs[j].Dst })
	if comb != nil {
		k := 0
		for i := 0; i < len(msgs); {
			j := i + 1
			for j < len(msgs) && msgs[j].Dst == msgs[i].Dst {
				j++
			}
			dst := msgs[i].Dst
			run := comb(msgs[i:j])
			for _, m := range run {
				invariant.Assert(m.Dst == dst,
					"pregel: combiner moved a message from vertex %d to %d", dst, m.Dst)
			}
			k += copy(msgs[k:], run)
			i = j
		}
		msgs = msgs[:k]
	}

	buf = append(buf, wireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	prev := int64(0)
	for _, m := range msgs {
		d := int64(m.Dst)
		if d < 0 {
			return nil, 0, fmt.Errorf("pregel: message Dst %d out of range [0, %d]", m.Dst, math.MaxInt32)
		}
		buf = binary.AppendUvarint(buf, uint64(d-prev))
		prev = d
		buf = append(buf, m.Kind)
		buf = binary.AppendVarint(buf, int64(m.Val))
		buf = binary.AppendVarint(buf, int64(m.Val2))
	}
	return buf, len(msgs), nil
}

// decodePacket appends the packet's records to dst. Any structural
// defect — wrong version, bad count, truncated record, out-of-range
// field, or bytes left over after the declared records — is an error
// in every build.
func decodePacket(buf []byte, dst []Msg) ([]Msg, error) {
	if len(buf) == 0 {
		return dst, fmt.Errorf("pregel: empty message packet")
	}
	if buf[0] != wireVersion {
		return dst, fmt.Errorf("pregel: unsupported wire version 0x%02x (want 0x%02x)", buf[0], wireVersion)
	}
	rest := buf[1:]
	count, k := binary.Uvarint(rest)
	if k <= 0 {
		return dst, fmt.Errorf("pregel: corrupt packet: unreadable record count")
	}
	rest = rest[k:]
	// Each record is at least 4 bytes, so the count doubles as an
	// allocation guard against corrupt headers.
	if count > uint64(len(rest)) {
		return dst, fmt.Errorf("pregel: corrupt packet: %d records declared in %d payload bytes", count, len(rest))
	}
	if need := len(dst) + int(count); cap(dst) < need {
		grown := make([]Msg, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, k := binary.Uvarint(rest)
		if k <= 0 {
			return dst, fmt.Errorf("pregel: ragged packet: record %d/%d truncated in Dst delta", i, count)
		}
		rest = rest[k:]
		if delta > math.MaxInt32 || prev+int64(delta) > math.MaxInt32 {
			return dst, fmt.Errorf("pregel: corrupt packet: record %d Dst exceeds %d", i, math.MaxInt32)
		}
		prev += int64(delta)
		if len(rest) < 1 {
			return dst, fmt.Errorf("pregel: ragged packet: record %d/%d truncated before kind", i, count)
		}
		kind := rest[0]
		rest = rest[1:]
		val, k := binary.Varint(rest)
		if k <= 0 {
			return dst, fmt.Errorf("pregel: ragged packet: record %d/%d truncated in Val", i, count)
		}
		rest = rest[k:]
		if val < math.MinInt32 || val > math.MaxInt32 {
			return dst, fmt.Errorf("pregel: corrupt packet: record %d Val %d overflows int32", i, val)
		}
		val2, k := binary.Varint(rest)
		if k <= 0 {
			return dst, fmt.Errorf("pregel: ragged packet: record %d/%d truncated in Val2", i, count)
		}
		rest = rest[k:]
		if val2 < math.MinInt32 || val2 > math.MaxInt32 {
			return dst, fmt.Errorf("pregel: corrupt packet: record %d Val2 %d overflows int32", i, val2)
		}
		dst = append(dst, Msg{
			Dst:  graph.VertexID(prev),
			Kind: kind,
			Val:  int32(val),
			Val2: int32(val2),
		})
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("pregel: ragged packet: %d trailing bytes after %d records", len(rest), count)
	}
	return dst, nil
}

// packetRecords reads a packet's record count from its header without
// decoding the records — the master's superstep trace uses it to
// report per-worker delivery counts.
func packetRecords(buf []byte) (int, error) {
	if len(buf) == 0 || buf[0] != wireVersion {
		return 0, fmt.Errorf("pregel: not a v%d packet", wireVersion)
	}
	count, k := binary.Uvarint(buf[1:])
	if k <= 0 || count > uint64(len(buf)) {
		return 0, fmt.Errorf("pregel: corrupt packet header")
	}
	return int(count), nil
}

// packetBuf is a pooled encode buffer. The in-process exchange is the
// only place with a clean ownership window (encode → decode → barrier),
// so it is the only place that recycles; RPC reply buffers are owned
// by the net/rpc layer and the worker's duplicate-reply cache and must
// stay un-pooled.
type packetBuf struct{ b []byte }

var packetPool = sync.Pool{New: func() any { return new(packetBuf) }}

func getPacketBuf() *packetBuf { return packetPool.Get().(*packetBuf) }

func putPacketBuf(pb *packetBuf) {
	if cap(pb.b) > maxPooledPacket {
		return
	}
	pb.b = pb.b[:0]
	packetPool.Put(pb)
}

package pregel

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/graph"
)

// msgsFromBytes derives a message list from fuzz input, 13 bytes per
// message (the v1 record size, fittingly), with Dst masked non-negative
// so the encoder accepts every derived list.
func msgsFromBytes(data []byte) []Msg {
	var msgs []Msg
	for i := 0; i+13 <= len(data); i += 13 {
		msgs = append(msgs, Msg{
			Dst:  graph.VertexID(binary.LittleEndian.Uint32(data[i:]) & 0x7fffffff),
			Kind: data[i+4],
			Val:  int32(binary.LittleEndian.Uint32(data[i+5:])),
			Val2: int32(binary.LittleEndian.Uint32(data[i+9:])),
		})
	}
	return msgs
}

// FuzzPacketRoundTrip drives arbitrary message lists through the v2
// codec and checks, with and without the dedup combiner:
//
//  1. Round trip: decode(encode(msgs)) is the stable Dst-sort of msgs
//     (or its per-destination dedup under the combiner).
//  2. Canonical form: re-encoding the decoded list reproduces the
//     packet byte for byte — the property the golden fixture and the
//     cross-transport metric parity lean on.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add(bytes.Repeat([]byte{7}, 26), true)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 3, 0, 0, 0, 0x80, 0xff, 0xff, 0xff, 0xff}, false)
	f.Fuzz(func(t *testing.T, data []byte, combine bool) {
		msgs := msgsFromBytes(data)
		orig := append([]Msg(nil), msgs...)
		var comb Combiner
		if combine {
			comb = DedupCombiner
		}
		buf, n, err := encodePacket(nil, msgs, comb)
		if err != nil {
			t.Fatalf("encode rejected in-range messages: %v", err)
		}
		out, err := decodePacket(buf, nil)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(out) != n {
			t.Fatalf("decoded %d records, encoder reported %d", len(out), n)
		}

		if !combine {
			want := append([]Msg(nil), orig...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].Dst < want[j].Dst })
			if len(out) != len(want) {
				t.Fatalf("round trip changed length: %d in, %d out", len(want), len(out))
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, out[i], want[i])
				}
			}
		} else {
			// The combined output must be exactly the set of distinct
			// messages, with no duplicates surviving.
			set := map[Msg]struct{}{}
			for _, m := range orig {
				set[m] = struct{}{}
			}
			if len(out) != len(set) {
				t.Fatalf("dedup kept %d records, want %d distinct", len(out), len(set))
			}
			seen := map[Msg]struct{}{}
			for _, m := range out {
				if _, dup := seen[m]; dup {
					t.Fatalf("duplicate survived the combiner: %+v", m)
				}
				seen[m] = struct{}{}
				if _, ok := set[m]; !ok {
					t.Fatalf("combiner fabricated %+v", m)
				}
			}
		}

		buf2, n2, err := encodePacket(nil, append([]Msg(nil), out...), comb)
		if err != nil || n2 != n {
			t.Fatalf("re-encode: n=%d err=%v", n2, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatal("re-encoding the decoded packet is not byte-identical")
		}
	})
}

// FuzzPacketDecodeArbitrary feeds raw bytes to the decoder: it must
// reject or accept without panicking, and anything it accepts must
// re-encode to a decode-equivalent packet (the decoder never fabricates
// records the encoder cannot reproduce). Byte identity with the input
// is not required — varints have non-minimal spellings — but the
// re-encoding must be a fixed point.
func FuzzPacketDecodeArbitrary(f *testing.F) {
	f.Add([]byte{wireVersion, 0x00})
	f.Add(append([]byte(nil), goldenPacket...))
	f.Add([]byte{0x01, 0x00})
	f.Add([]byte{wireVersion, 0x02, 0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := decodePacket(data, nil)
		if err != nil {
			return // rejected cleanly
		}
		buf, n, err := encodePacket(nil, append([]Msg(nil), out...), nil)
		if err != nil {
			t.Fatalf("encoder rejected records the decoder accepted: %v", err)
		}
		if n != len(out) {
			t.Fatalf("re-encoded %d of %d records", n, len(out))
		}
		out2, err := decodePacket(buf, nil)
		if err != nil {
			t.Fatalf("decoder rejected its own re-encoding: %v", err)
		}
		if len(out2) != len(out) {
			t.Fatalf("fixed point broken: %d then %d records", len(out), len(out2))
		}
		for i := range out {
			if out[i] != out2[i] {
				t.Fatalf("record %d drifted: %+v then %+v", i, out[i], out2[i])
			}
		}
		buf2, _, err := encodePacket(nil, out2, nil)
		if err != nil || !bytes.Equal(buf, buf2) {
			t.Fatal("second re-encoding is not byte-identical")
		}
	})
}

package pregel

import (
	"bytes"
	"net/rpc"
	"strings"
	"testing"

	"repro/internal/graph"
)

// goldenMsgs and goldenPacket pin the v2 wire format: version byte,
// uvarint record count, then per record the uvarint Dst delta (records
// sorted by Dst), the kind byte, and zigzag-varint Val and Val2. Any
// codec change that alters these bytes must bump wireVersion.
var goldenMsgs = []Msg{
	{Dst: 7, Kind: 1, Val: 5},
	{Dst: 3, Kind: 0, Val: -2, Val2: 1},
	{Dst: 7, Kind: 2, Val: 300, Val2: -1},
}

var goldenPacket = []byte{
	0x02,       // version
	0x03,       // 3 records
	0x03,       // Dst 3 (delta 3)
	0x00,       // kind 0
	0x03,       // Val -2 (zigzag)
	0x02,       // Val2 1 (zigzag)
	0x04,       // Dst 7 (delta 4)
	0x01,       // kind 1
	0x0a,       // Val 5 (zigzag)
	0x00,       // Val2 0
	0x00,       // Dst 7 (delta 0)
	0x02,       // kind 2
	0xd8, 0x04, // Val 300 (zigzag 600, two bytes)
	0x01, // Val2 -1 (zigzag)
}

func TestPacketGoldenBytes(t *testing.T) {
	in := append([]Msg(nil), goldenMsgs...)
	buf, n, err := encodePacket(nil, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(goldenMsgs) {
		t.Fatalf("encoded %d records, want %d", n, len(goldenMsgs))
	}
	if !bytes.Equal(buf, goldenPacket) {
		t.Fatalf("wire bytes drifted from the golden fixture:\n got %#v\nwant %#v", buf, goldenPacket)
	}
	out, err := decodePacket(goldenPacket, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Msg{goldenMsgs[1], goldenMsgs[0], goldenMsgs[2]} // sorted by Dst, stable
	if len(out) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

// TestDecodeRejectsRaggedTail is the regression test for the v1 silent
// drop: a packet whose byte count does not match its declared records
// must be a hard error, never a partially-decoded inbox.
func TestDecodeRejectsRaggedTail(t *testing.T) {
	// Trailing garbage after the declared records.
	ragged := append(append([]byte(nil), goldenPacket...), 0x55)
	if _, err := decodePacket(ragged, nil); err == nil {
		t.Error("trailing bytes after the last record must be an error")
	}
	// Every proper prefix is a truncation of some record (or of the
	// header) and must also fail.
	for cut := 2; cut < len(goldenPacket); cut++ {
		if _, err := decodePacket(goldenPacket[:cut], nil); err == nil {
			t.Errorf("truncation to %d bytes silently accepted", cut)
		}
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	if _, err := decodePacket(nil, nil); err == nil {
		t.Error("empty packet must be an error")
	}
	if _, err := decodePacket([]byte{0x01, 0x00}, nil); err == nil {
		t.Error("v1 version byte must be rejected")
	}
	// Record count larger than the remaining payload could ever hold.
	if _, err := decodePacket([]byte{wireVersion, 0xff, 0xff, 0x03}, nil); err == nil {
		t.Error("absurd record count must be rejected before allocating")
	}
}

// TestCodecBoundaryValues covers the full int32 range the v1 format
// silently truncated through unchecked uint32 casts.
func TestCodecBoundaryValues(t *testing.T) {
	in := []Msg{
		{Dst: 0, Kind: 0, Val: -2147483648, Val2: 2147483647},
		{Dst: 2147483647, Kind: 255, Val: 2147483647, Val2: -2147483648},
	}
	want := append([]Msg(nil), in...)
	buf, n, err := encodePacket(nil, in, nil)
	if err != nil || n != 2 {
		t.Fatalf("encode: n=%d err=%v", n, err)
	}
	out, err := decodePacket(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, out[i], want[i])
		}
	}
	// A negative Dst is not a vertex; the encoder must refuse it
	// instead of wrapping it through a uint32 cast like v1 did.
	if _, _, err := encodePacket(nil, []Msg{{Dst: -1}}, nil); err == nil {
		t.Error("negative Dst must be an encode error")
	}
}

func TestDedupCombiner(t *testing.T) {
	one := []Msg{{Dst: 4, Kind: 1, Val: 9}}
	if got := DedupCombiner(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("single message changed: %+v", got)
	}
	run := []Msg{
		{Dst: 4, Kind: 1, Val: 9},
		{Dst: 4, Kind: 0, Val: 9},
		{Dst: 4, Kind: 1, Val: 9},
		{Dst: 4, Kind: 1, Val: 9, Val2: 1},
		{Dst: 4, Kind: 0, Val: 9},
	}
	got := DedupCombiner(run)
	want := []Msg{
		{Dst: 4, Kind: 0, Val: 9},
		{Dst: 4, Kind: 1, Val: 9},
		{Dst: 4, Kind: 1, Val: 9, Val2: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d messages, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("message %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// dupSendProgram sends every edge message 4 times in step 0.
type dupSendProgram struct{}

func (p *dupSendProgram) Superstep(w *Worker, step int) (bool, error) {
	if step != 0 {
		return false, nil
	}
	w.OwnedVertices(func(v graph.VertexID) {
		for _, nb := range w.Graph.OutNeighbors(v) {
			for k := 0; k < 4; k++ {
				w.Send(Msg{Dst: nb, Val: int32(v)})
			}
		}
	})
	return false, nil
}

func (p *dupSendProgram) Finish(w *Worker) error { return nil }

// dupSendCombined is the same program with a registered combiner.
type dupSendCombined struct{ dupSendProgram }

func (p *dupSendCombined) MessageCombiner() Combiner { return DedupCombiner }

// TestCombinerReducesWireTraffic: with the dedup combiner registered,
// both the Messages metric and the wire bytes must reflect the
// combined (4×-smaller) record set.
func TestCombinerReducesWireTraffic(t *testing.T) {
	g := ring(16)
	plain, err := New(g, Config{Workers: 4}).Run(&dupSendProgram{})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := New(g, Config{Workers: 4}).Run(&dupSendCombined{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Messages != 64 {
		t.Errorf("plain run sent %d records, want 64 (16 edges × 4)", plain.Messages)
	}
	if combined.Messages != 16 {
		t.Errorf("combined run sent %d records, want 16", combined.Messages)
	}
	if combined.BytesRemote >= plain.BytesRemote {
		t.Errorf("combiner did not shrink remote bytes: %d vs %d", combined.BytesRemote, plain.BytesRemote)
	}
}

// bcastCaptureProgram records each worker's BcastIn slice header so the
// test can probe aliasing after the run.
type bcastCaptureProgram struct {
	views [][][]byte
}

func (p *bcastCaptureProgram) Superstep(w *Worker, step int) (bool, error) {
	if step == 0 {
		w.Broadcast([]byte{byte(w.ID)})
		return true, nil
	}
	if step == 1 {
		p.views[w.ID] = w.BcastIn
	}
	return false, nil
}

func (p *bcastCaptureProgram) Finish(w *Worker) error { return nil }

// TestBcastInPerWorkerIsolation is the regression test for the shared
// bcasts slice: every worker must get its own BcastIn slice header, so
// a program clearing or reordering its own inbox slice cannot corrupt
// a sibling worker's view.
func TestBcastInPerWorkerIsolation(t *testing.T) {
	const p = 3
	prog := &bcastCaptureProgram{views: make([][][]byte, p)}
	if _, err := New(ring(9), Config{Workers: p}).Run(prog); err != nil {
		t.Fatal(err)
	}
	for i, view := range prog.views {
		if len(view) != p {
			t.Fatalf("worker %d saw %d blobs, want %d", i, len(view), p)
		}
	}
	// Mutate worker 0's slice; worker 1's view must be untouched.
	prog.views[0][0] = nil
	prog.views[0][1], prog.views[0][2] = prog.views[0][2], prog.views[0][1]
	for j, blob := range prog.views[1] {
		if len(blob) != 1 || blob[0] != byte(j) {
			t.Fatalf("worker 1's BcastIn aliased worker 0's: slot %d = %v", j, blob)
		}
	}
}

// TestRPCStepRejectsCorruptPacket: a corrupt inbox packet must surface
// as a permanent Step error through the RPC transport, and must not
// advance the worker's superstep state.
func TestRPCStepRejectsCorruptPacket(t *testing.T) {
	addr := startWorker(t)
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call(RPCServiceName+".Init", InitArgs{WorkerID: 0, NumWorkers: 1, GraphPath: graphFile(t)}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(RPCServiceName+".BeginRun", BeginRunArgs{Program: "test-noop"}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	var sr StepReply
	err = c.Call(RPCServiceName+".Step", StepArgs{Step: 0, Packets: [][]byte{{0x7f, 0x01}}}, &sr)
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("bad-version packet: got %v, want a wire-version error", err)
	}
	ragged := append(append([]byte(nil), goldenPacket...), 0xee)
	err = c.Call(RPCServiceName+".Step", StepArgs{Step: 0, Packets: [][]byte{ragged}}, &sr)
	if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("ragged packet: got %v, want a ragged-tail error", err)
	}
	// The failed deliveries must not have consumed step 0.
	good, _, err := encodePacket(nil, []Msg{{Dst: 1, Val: 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call(RPCServiceName+".Step", StepArgs{Step: 0, Packets: [][]byte{good}}, &sr); err != nil {
		t.Fatalf("step 0 retry after corrupt packets: %v", err)
	}
}

// xProgram exercises messages (with duplicates for the combiner) and a
// broadcast, identically under both transports.
type xProgram struct{}

func (p *xProgram) Superstep(w *Worker, step int) (bool, error) {
	if step != 0 {
		return false, nil
	}
	w.Broadcast([]byte{0xa0, byte(w.ID)})
	w.OwnedVertices(func(v graph.VertexID) {
		for _, nb := range w.Graph.OutNeighbors(v) {
			w.Send(Msg{Dst: nb, Val: int32(v)})
			w.Send(Msg{Dst: nb, Val: int32(v)}) // duplicate: combined away
		}
	})
	return false, nil
}

func (p *xProgram) Finish(w *Worker) error    { return nil }
func (p *xProgram) MessageCombiner() Combiner { return DedupCombiner }

func init() {
	RegisterRPC("test-x", RPCFactory{
		New: func(params map[string]string, w *Worker) (Program, error) {
			return &xProgram{}, nil
		},
	})
}

// TestCrossTransportMetricsMatch: the in-process engine and the RPC
// master serialize with the same codec and must therefore account the
// same Messages, BytesLocal, BytesRemote, and BcastBytes for the same
// program on the same graph.
func TestCrossTransportMetricsMatch(t *testing.T) {
	path := graphFile(t)
	g, err := graph.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	engMet, err := New(g, Config{Workers: p}).Run(&xProgram{})
	if err != nil {
		t.Fatal(err)
	}

	addrs := []string{startWorker(t), startWorker(t)}
	m, err := DialCluster(addrs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Run("test-x", nil, 0); err != nil {
		t.Fatal(err)
	}

	if m.Metrics.Messages != engMet.Messages {
		t.Errorf("Messages: rpc %d, in-process %d", m.Metrics.Messages, engMet.Messages)
	}
	if m.Metrics.BytesLocal != engMet.BytesLocal {
		t.Errorf("BytesLocal: rpc %d, in-process %d", m.Metrics.BytesLocal, engMet.BytesLocal)
	}
	if m.Metrics.BytesRemote != engMet.BytesRemote {
		t.Errorf("BytesRemote: rpc %d, in-process %d", m.Metrics.BytesRemote, engMet.BytesRemote)
	}
	if m.Metrics.BcastBytes != engMet.BcastBytes {
		t.Errorf("BcastBytes: rpc %d, in-process %d", m.Metrics.BcastBytes, engMet.BcastBytes)
	}
	if m.Metrics.Supersteps != engMet.Supersteps {
		t.Errorf("Supersteps: rpc %d, in-process %d", m.Metrics.Supersteps, engMet.Supersteps)
	}
}

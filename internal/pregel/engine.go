package pregel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Engine runs vertex-centric programs over a fixed worker set. The
// worker set (and any per-worker program state hung off Worker.State)
// survives across Run calls, which is how the batch algorithm executes
// one engine run per batch while accumulating labels.
type Engine struct {
	cfg     Config
	g       *graph.Digraph
	workers []*Worker
	runs    int // Run invocations, numbering trace rows across batches
}

// New creates an engine over g with cfg.Workers partitions.
func New(g *graph.Digraph, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	e := &Engine{cfg: cfg, g: g}
	for i := 0; i < cfg.Workers; i++ {
		e.workers = append(e.workers, &Worker{
			ID:     i,
			P:      cfg.Workers,
			Graph:  g,
			outbox: make([][]Msg, cfg.Workers),
		})
	}
	return e
}

// Workers returns the engine's worker set, e.g. for a program driver
// to install or collect per-worker state.
func (e *Engine) Workers() []*Worker { return e.workers }

// Run executes the program until quiescence and returns the cost
// metrics of this run.
func (e *Engine) Run(p Program) (Metrics, error) {
	var met Metrics
	maxSteps := e.cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 4*e.g.NumVertices() + 64
	}
	e.runs++
	var comb Combiner
	if cp, ok := p.(CombinerProvider); ok {
		comb = cp.MessageCombiner()
	}
	reg := e.cfg.Obs
	trace := reg.Trace("pregel")
	cSteps := reg.Counter("pregel_supersteps_total")
	cMsgs := reg.Counter("pregel_messages_total")
	cBytesLocal := reg.Counter("pregel_bytes_local_total")
	cBytesRemote := reg.Counter("pregel_bytes_remote_total")
	cBcastBytes := reg.Counter("pregel_bcast_bytes_total")
	hStep := reg.Histogram("pregel_superstep_seconds", nil)
	reg.Gauge("pregel_workers").Set(int64(len(e.workers)))
	for step := 0; ; step++ {
		if step > maxSteps {
			return met, fmt.Errorf("pregel: no quiescence after %d supersteps", maxSteps)
		}
		if canceled(e.cfg.Cancel) {
			return met, ErrCanceled
		}
		if ps, ok := p.(PreStepper); ok {
			if err := ps.PreStep(e.workers, step); err != nil {
				return met, err
			}
		}

		// Compute phase. The BSP makespan of the step is the slowest
		// worker. Workers run as parallel goroutines when real cores
		// are available; on a single core they run sequentially so
		// that each worker's measured duration reflects its own work
		// (P interleaved goroutines on one core would all measure the
		// whole step). Either way the simulated cluster is P
		// single-thread nodes, the paper's configuration.
		durations := make([]time.Duration, len(e.workers))
		actives := make([]bool, len(e.workers))
		errs := make([]error, len(e.workers))
		if runtime.GOMAXPROCS(0) > 1 && len(e.workers) > 1 {
			var wg sync.WaitGroup
			for i, w := range e.workers {
				wg.Add(1)
				go func(i int, w *Worker) {
					defer wg.Done()
					start := time.Now()
					actives[i], errs[i] = p.Superstep(w, step)
					durations[i] = time.Since(start)
				}(i, w)
			}
			wg.Wait()
		} else {
			for i, w := range e.workers {
				start := time.Now()
				actives[i], errs[i] = p.Superstep(w, step)
				durations[i] = time.Since(start)
			}
		}
		for _, err := range errs {
			if err != nil {
				return met, err
			}
		}
		var slowest time.Duration
		anyActive := false
		nActive := 0
		for i := range e.workers {
			if durations[i] > slowest {
				slowest = durations[i]
			}
			anyActive = anyActive || actives[i]
			if actives[i] {
				nActive++
			}
		}
		met.ComputeTime += slowest
		met.Supersteps++

		// Per-superstep trace row: the inboxes still hold what this
		// step consumed, and the exchange below tells us what it said.
		var row obs.StepTrace
		if trace != nil {
			row = obs.StepTrace{
				Run:           e.runs,
				Step:          step,
				ActiveWorkers: nActive,
				ComputeNanos:  slowest.Nanoseconds(),
				Workers:       make([]obs.WorkerStep, len(e.workers)),
			}
			for i, w := range e.workers {
				row.Workers[i] = obs.WorkerStep{
					Worker:       i,
					ComputeNanos: durations[i].Nanoseconds(),
					Active:       actives[i],
					MsgsIn:       len(w.Inbox),
				}
			}
		}
		preMsgs, preLocal := met.Messages, met.BytesLocal
		preRemote, preBcast := met.BytesRemote, met.BcastBytes

		// Exchange phase.
		exStart := time.Now()
		delivered, err := e.exchange(&met, comb)
		if err != nil {
			return met, err
		}
		exDur := time.Since(exStart)
		met.CommTime += exDur
		met.SimNetTime += e.cfg.Net.ExchangeCost(stepRemoteBytes(&met), len(e.workers))

		cSteps.Inc()
		cMsgs.Add(met.Messages - preMsgs)
		cBytesLocal.Add(met.BytesLocal - preLocal)
		cBytesRemote.Add(met.BytesRemote - preRemote)
		cBcastBytes.Add(met.BcastBytes - preBcast)
		hStep.Observe((slowest + exDur).Seconds())
		if trace != nil {
			row.Messages = met.Messages - preMsgs
			row.BytesLocal = met.BytesLocal - preLocal
			row.BytesRemote = met.BytesRemote - preRemote
			row.BcastBytes = met.BcastBytes - preBcast
			row.WallNanos = (slowest + exDur).Nanoseconds()
			trace.Record(row)
		}

		if !delivered && !anyActive {
			break
		}
	}
	for _, w := range e.workers {
		if err := p.Finish(w); err != nil {
			return met, err
		}
	}
	return met, nil
}

// stepRemoteBytes tracks the delta of remote bytes for the current
// step so the netsim model is charged per superstep.
func stepRemoteBytes(m *Metrics) int64 {
	delta := m.BytesRemote - m.prevRemote
	m.prevRemote = m.BytesRemote
	return delta
}

// exchange serializes every outbox, moves the bytes, and decodes them
// into the destination inboxes. It reports whether anything was
// delivered; a codec error (a corrupt or misaligned packet) aborts the
// run in every build.
func (e *Engine) exchange(met *Metrics, comb Combiner) (bool, error) {
	p := len(e.workers)
	// Gather broadcast blobs: every blob reaches all P workers.
	var bcasts [][]byte
	for _, w := range e.workers {
		for _, blob := range w.bcast {
			bcasts = append(bcasts, blob)
			met.BcastBytes += int64(len(blob))
			met.BytesRemote += int64(len(blob)) * int64(p-1)
		}
		w.bcast = nil
	}

	// Encode per (src,dst) pair into pooled buffers. Messages to the
	// local worker are serialized too — MPI packs buffers even for self
	// sends — but their bytes are counted as local. Messages are counted
	// post-combining: the metric is what actually crosses the wire.
	packets := make([][]*packetBuf, p) // packets[dst] = list of encoded bufs
	for i := range packets {
		packets[i] = make([]*packetBuf, 0, p)
	}
	release := func() {
		for _, pks := range packets {
			for _, pb := range pks {
				putPacketBuf(pb)
			}
		}
	}
	delivered := false
	for _, w := range e.workers {
		for dst, msgs := range w.outbox {
			if len(msgs) == 0 {
				continue
			}
			delivered = true
			pb := getPacketBuf()
			var n int
			var err error
			pb.b, n, err = encodePacket(pb.b, msgs, comb)
			if err != nil {
				putPacketBuf(pb)
				release()
				return false, fmt.Errorf("pregel: worker %d encoding for worker %d: %w", w.ID, dst, err)
			}
			met.Messages += int64(n)
			if dst == w.ID {
				met.BytesLocal += int64(len(pb.b))
			} else {
				met.BytesRemote += int64(len(pb.b))
			}
			packets[dst] = append(packets[dst], pb)
			w.outbox[dst] = msgs[:0]
		}
	}

	// Decode at the receivers, in parallel. Every worker gets its own
	// BcastIn slice header: the blobs are shared (they are read-only by
	// contract) but a program reordering or clearing its own inbox slice
	// must not corrupt a sibling's view.
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i, w := range e.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			w.Inbox = w.Inbox[:0]
			for _, pb := range packets[i] {
				w.Inbox, errs[i] = decodePacket(pb.b, w.Inbox)
				if errs[i] != nil {
					errs[i] = fmt.Errorf("pregel: worker %d decoding inbox: %w", i, errs[i])
					return
				}
			}
			w.BcastIn = append(w.BcastIn[:0], bcasts...)
		}(i, w)
	}
	wg.Wait()
	release()
	if err := errors.Join(errs...); err != nil {
		return false, err
	}
	return delivered || len(bcasts) > 0, nil
}

func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

package pregel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultTransport decorates an inner Transport with deterministic,
// seeded failures: call drops (the request never reaches the worker),
// lost replies (the call executes but the response is discarded),
// delays (exercising the master's per-call deadline), and a one-shot
// crash after which every call fails until the master re-dials. It is
// the test double for real network weather — the master cannot tell
// an injected fault from a genuine one.
type FaultTransport struct {
	// OnCrash, if set, runs once when the crash point is reached —
	// harnesses use it to stand up a replacement worker. It is called
	// without the transport lock held.
	OnCrash func()

	inner Transport
	plan  FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	calls   int
	crashed bool
	stats   FaultStats
}

// FaultPlan configures a FaultTransport. All probabilities are per
// call and drawn from a rand.Rand seeded with Seed, so a fixed plan
// yields a fixed per-connection fault schedule.
type FaultPlan struct {
	Seed int64
	// DropProb drops the call before it reaches the worker.
	DropProb float64
	// LostReplyProb lets the call execute on the worker but discards
	// the reply — the dangerous half of at-most-once delivery.
	LostReplyProb float64
	// DelayProb stalls the call by Delay before forwarding it.
	DelayProb float64
	Delay     time.Duration
	// CrashAtCall, when positive, fails every call from the Nth
	// onwards (1-based) as if the worker process died. One-shot: a
	// fresh transport from the Dialer is healthy again.
	CrashAtCall int
}

// FaultStats counts the faults a FaultTransport injected.
type FaultStats struct {
	Calls       int
	Drops       int
	LostReplies int
	Delays      int
	Crashes     int
}

// Injected fault sentinels, matched with errors.Is. Both classify as
// transient on the master side (they are not rpc.ServerError).
var (
	ErrInjectedDrop  = errors.New("pregel: injected fault: call dropped")
	ErrInjectedCrash = errors.New("pregel: injected fault: worker crashed")
)

// NewFaultTransport wraps inner with the given plan.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	return &FaultTransport{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Call injects the planned faults around inner.Call. Exactly three
// random draws happen per call regardless of outcome, so the fault
// schedule depends only on the call sequence, not on which faults
// fired earlier.
func (t *FaultTransport) Call(serviceMethod string, args any, reply any) error {
	t.mu.Lock()
	if t.crashed {
		t.mu.Unlock()
		return fmt.Errorf("%s: %w", serviceMethod, ErrInjectedCrash)
	}
	t.calls++
	t.stats.Calls++
	call := t.calls
	drop := t.rng.Float64() < t.plan.DropProb
	lost := t.rng.Float64() < t.plan.LostReplyProb
	delay := time.Duration(0)
	if t.rng.Float64() < t.plan.DelayProb {
		delay = t.plan.Delay
	}
	if t.plan.CrashAtCall > 0 && call >= t.plan.CrashAtCall {
		t.crashed = true
		t.stats.Crashes++
		onCrash := t.OnCrash
		t.mu.Unlock()
		if onCrash != nil {
			onCrash()
		}
		return fmt.Errorf("%s (call %d): %w", serviceMethod, call, ErrInjectedCrash)
	}
	if drop {
		t.stats.Drops++
	} else if lost {
		t.stats.LostReplies++
	}
	if delay > 0 {
		t.stats.Delays++
	}
	t.mu.Unlock()

	if drop {
		return fmt.Errorf("%s (call %d): %w", serviceMethod, call, ErrInjectedDrop)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	err := t.inner.Call(serviceMethod, args, reply)
	if err == nil && lost {
		return fmt.Errorf("%s (call %d): reply lost: %w", serviceMethod, call, ErrInjectedDrop)
	}
	return err
}

// Close closes the inner transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// Crashed reports whether the crash point has been reached.
func (t *FaultTransport) Crashed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crashed
}

// Stats returns a snapshot of the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

package pregel

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Failure-path coverage for the RPC transport: injected drops,
// timeouts, dead workers, retry exhaustion, and connection cleanup.

func init() {
	RegisterRPC("test-slow", RPCFactory{
		New: func(params map[string]string, w *Worker) (Program, error) {
			return &slowProgram{}, nil
		},
		Collect: func(w *Worker) ([]byte, error) { return []byte{byte(w.ID)}, nil },
	})
}

// slowProgram stalls its first superstep long past the per-call
// deadline, exercising timeout + retry + worker-side deduplication.
type slowProgram struct{}

func (p *slowProgram) Superstep(w *Worker, step int) (bool, error) {
	if step == 0 {
		time.Sleep(150 * time.Millisecond)
	}
	return false, nil
}
func (p *slowProgram) Finish(w *Worker) error { return nil }

func startWorkerOpts(t *testing.T, opts WorkerOptions) string {
	t.Helper()
	ready := make(chan string, 1)
	go func() {
		if err := ServeWorkerOpts("127.0.0.1:0", ready, opts); err != nil {
			t.Log(err)
		}
	}()
	return <-ready
}

// stubTransport wraps a real connection and simulates the worker's
// process dying right after a chosen method returns: every later call
// fails at the transport layer.
type stubTransport struct {
	inner    Transport
	dieAfter string // method suffix after which the connection "dies"
	closeErr error

	mu     sync.Mutex
	dead   bool
	closed bool
}

func (s *stubTransport) Call(method string, args, reply any) error {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return fmt.Errorf("stub: connection reset by peer")
	}
	s.mu.Unlock()
	err := s.inner.Call(method, args, reply)
	if s.dieAfter != "" && strings.HasSuffix(method, "."+s.dieAfter) {
		s.mu.Lock()
		s.dead = true
		s.mu.Unlock()
	}
	return err
}

func (s *stubTransport) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.inner != nil {
		s.inner.Close()
	}
	return s.closeErr
}

func (s *stubTransport) wasClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// fastRetry keeps test retries snappy and deterministic.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		CallTimeout: 2 * time.Second,
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// countingInner counts calls without any real connection.
type countingInner struct{ calls int }

func (c *countingInner) Call(method string, args, reply any) error {
	c.calls++
	return nil
}
func (c *countingInner) Close() error { return nil }

func TestFaultTransportDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 0.3, LostReplyProb: 0.2, CrashAtCall: 40}
	outcomes := func() []string {
		ft := NewFaultTransport(&countingInner{}, plan)
		var out []string
		for i := 0; i < 50; i++ {
			err := ft.Call("Svc.M", struct{}{}, &struct{}{})
			switch {
			case err == nil:
				out = append(out, "ok")
			case errors.Is(err, ErrInjectedCrash):
				out = append(out, "crash")
			case errors.Is(err, ErrInjectedDrop):
				out = append(out, "drop")
			default:
				out = append(out, "other")
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d: %s vs %s", i, a[i], b[i])
		}
	}
	if !strings.Contains(strings.Join(a, ","), "drop") {
		t.Error("expected at least one injected drop")
	}
	if a[len(a)-1] != "crash" {
		t.Errorf("calls past the crash point should fail, got %s", a[len(a)-1])
	}
	ft := NewFaultTransport(&countingInner{}, plan)
	for i := 0; i < 45; i++ {
		ft.Call("Svc.M", struct{}{}, &struct{}{})
	}
	if !ft.Crashed() {
		t.Error("transport should report crashed")
	}
	if st := ft.Stats(); st.Crashes != 1 || st.Drops == 0 {
		t.Errorf("unexpected fault stats: %+v", st)
	}
}

// TestMasterRetriesTransientDrops runs a full job through transports
// that drop a third of all calls; the retry layer must absorb every
// one of them.
func TestMasterRetriesTransientDrops(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t)}
	seed := int64(0)
	dial := func(addr string) (Transport, error) {
		inner, err := DialRPC(addr)
		if err != nil {
			return nil, err
		}
		seed++
		return NewFaultTransport(inner, FaultPlan{Seed: seed, DropProb: 0.3}), nil
	}
	m, err := DialClusterOpts(addrs, graphFile(t), MasterConfig{Retry: fastRetry(), Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Run("test-noop", nil, 0); err != nil {
		t.Fatal(err)
	}
	blobs, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 || blobs[0][0] != 0 || blobs[1][0] != 1 {
		t.Errorf("collect blobs wrong: %v", blobs)
	}
	if m.Metrics.Retries == 0 {
		t.Error("expected retried calls with a 30%% drop rate")
	}
}

// TestMasterStepTimeout times out a superstep that outlives the
// per-call deadline; the retried Step must hit the worker's dedup
// cache instead of recomputing, and the run must still succeed.
func TestMasterStepTimeout(t *testing.T) {
	var executed atomic.Int64
	addr := startWorkerOpts(t, WorkerOptions{
		StepHook: func(int) { executed.Add(1) },
	})
	pol := fastRetry()
	pol.CallTimeout = 40 * time.Millisecond
	pol.MaxAttempts = 12
	pol.BaseBackoff = 10 * time.Millisecond
	pol.MaxBackoff = 20 * time.Millisecond
	m, err := DialClusterOpts([]string{addr}, graphFile(t), MasterConfig{Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Run("test-slow", nil, 0); err != nil {
		t.Fatalf("run with a slow first superstep: %v", err)
	}
	if m.Metrics.Retries == 0 {
		t.Error("expected timeout-driven retries")
	}
	if n := executed.Load(); n != 1 {
		t.Errorf("superstep executed %d times on the worker, dedup should keep it at 1", n)
	}
}

// TestMasterRetryExhaustion kills a worker right after BeginRun; with
// recovery disabled the master must surface a wrapped
// retries-exhausted error naming the worker.
func TestMasterRetryExhaustion(t *testing.T) {
	addrs := []string{startWorker(t)}
	dial := func(addr string) (Transport, error) {
		inner, err := DialRPC(addr)
		if err != nil {
			return nil, err
		}
		return &stubTransport{inner: inner, dieAfter: "BeginRun"}, nil
	}
	pol := fastRetry()
	pol.MaxAttempts = 3
	pol.MaxRecoveries = -1 // disable recovery: surface the raw failure
	m, err := DialClusterOpts(addrs, graphFile(t), MasterConfig{Retry: pol, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run("test-noop", nil, 0)
	if err == nil {
		t.Fatal("run against a dead worker should fail")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("want ErrRetriesExhausted in chain, got: %v", err)
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Errorf("error should name the failed worker: %v", err)
	}
}

// TestMasterNoSnapshotterNoRecovery: a crashed worker running a
// program without Snapshotter support cannot be recovered — the
// master must say so rather than loop.
func TestMasterNoSnapshotterNoRecovery(t *testing.T) {
	addrs := []string{startWorker(t)}
	dial := func(addr string) (Transport, error) {
		inner, err := DialRPC(addr)
		if err != nil {
			return nil, err
		}
		// Die after the step-0 Checkpoint: the master has learned the
		// program cannot snapshot, then loses the worker.
		return &stubTransport{inner: inner, dieAfter: "Checkpoint"}, nil
	}
	pol := fastRetry()
	pol.MaxAttempts = 2
	m, err := DialClusterOpts(addrs, graphFile(t), MasterConfig{Retry: pol, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run("test-noop", nil, 0)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, ErrNoRecovery) {
		t.Errorf("want ErrNoRecovery (noop program has no Snapshotter), got: %v", err)
	}
}

// TestMasterCloseErrors: Close must report per-connection close
// failures instead of swallowing them.
func TestMasterCloseErrors(t *testing.T) {
	sentinel := errors.New("close exploded")
	addrs := []string{startWorker(t)}
	dial := func(addr string) (Transport, error) {
		inner, err := DialRPC(addr)
		if err != nil {
			return nil, err
		}
		return &stubTransport{inner: inner, closeErr: sentinel}, nil
	}
	m, err := DialClusterOpts(addrs, graphFile(t), MasterConfig{Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); !errors.Is(err, sentinel) {
		t.Errorf("Close should surface the transport error, got %v", err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close should be a no-op, got %v", err)
	}
}

// TestDialClusterClosesOnFailure: when a later dial (or Init) fails,
// every already-opened connection must be closed.
func TestDialClusterClosesOnFailure(t *testing.T) {
	good := startWorker(t)
	var opened []*stubTransport
	dial := func(addr string) (Transport, error) {
		if addr == "bad" {
			return nil, errors.New("no route to host")
		}
		inner, err := DialRPC(addr)
		if err != nil {
			return nil, err
		}
		st := &stubTransport{inner: inner}
		opened = append(opened, st)
		return st, nil
	}
	if _, err := DialClusterOpts([]string{good, "bad"}, graphFile(t), MasterConfig{Dial: dial}); err == nil {
		t.Fatal("dialing a bad address should fail")
	}
	if len(opened) != 1 || !opened[0].wasClosed() {
		t.Errorf("already-dialed connection leaked (opened=%d)", len(opened))
	}

	// Same contract when Init fails after all dials succeeded.
	opened = nil
	addrs := []string{startWorker(t), startWorker(t)}
	pol := fastRetry()
	pol.MaxAttempts = 1
	if _, err := DialClusterOpts(addrs, "/nonexistent-graph", MasterConfig{Retry: pol, Dial: dial}); err == nil {
		t.Fatal("Init with a bad graph path should fail")
	}
	for i, st := range opened {
		if !st.wasClosed() {
			t.Errorf("connection %d leaked after Init failure", i)
		}
	}
}

// TestWorkerStepDedupAndOutOfSync drives the worker protocol raw:
// a duplicate Step must replay the cached reply, a skipped step must
// fail with the out-of-sync sentinel, and BeginRun/FinishRun must be
// idempotent per run.
func TestWorkerStepDedupAndOutOfSync(t *testing.T) {
	addr := startWorker(t)
	c, err := DialRPC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustCall := func(method string, args any, reply any) {
		t.Helper()
		if err := c.Call(RPCServiceName+"."+method, args, reply); err != nil {
			t.Fatal(err)
		}
	}
	mustCall("Init", InitArgs{WorkerID: 0, NumWorkers: 1, GraphPath: graphFile(t)}, &struct{}{})
	mustCall("BeginRun", BeginRunArgs{RunID: 1, Program: "test-noop"}, &struct{}{})
	var r1, r2 StepReply
	mustCall("Step", StepArgs{Step: 0}, &r1)
	mustCall("Step", StepArgs{Step: 0}, &r2) // duplicate: cached replay
	if r1.Active != r2.Active || r1.ComputeNanos != r2.ComputeNanos {
		t.Errorf("duplicate step reply differs: %+v vs %+v", r1, r2)
	}
	var r3 StepReply
	err = c.Call(RPCServiceName+".Step", StepArgs{Step: 5}, &r3)
	if err == nil || !isOutOfSync(err) {
		t.Errorf("skipped step should be out-of-sync, got %v", err)
	}
	// Duplicate BeginRun for the same run is a no-op (dedup cursor intact).
	mustCall("BeginRun", BeginRunArgs{RunID: 1, Program: "test-noop"}, &struct{}{})
	var r4 StepReply
	mustCall("Step", StepArgs{Step: 1}, &r4)
	// FinishRun twice: idempotent.
	mustCall("FinishRun", struct{}{}, &struct{}{})
	mustCall("FinishRun", struct{}{}, &struct{}{})
}

// TestCheckpointProtocolErrors covers the checkpoint RPCs' ordering
// and capability errors.
func TestCheckpointProtocolErrors(t *testing.T) {
	addr := startWorker(t)
	c, err := DialRPC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var cr CheckpointReply
	if err := c.Call(RPCServiceName+".Checkpoint", struct{}{}, &cr); err == nil {
		t.Error("Checkpoint before BeginRun should fail")
	}
	if err := c.Call(RPCServiceName+".Restore", RestoreArgs{}, &struct{}{}); err == nil {
		t.Error("Restore before BeginRun should fail")
	}
	if err := c.Call(RPCServiceName+".Init", InitArgs{WorkerID: 0, NumWorkers: 1, GraphPath: graphFile(t)}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(RPCServiceName+".BeginRun", BeginRunArgs{RunID: 1, Program: "test-noop"}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(RPCServiceName+".Checkpoint", struct{}{}, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Supported {
		t.Error("noop program should not support checkpointing")
	}
	if err := c.Call(RPCServiceName+".Restore", RestoreArgs{}, &struct{}{}); err == nil {
		t.Error("Restore for a Snapshotter-less program should fail")
	}
}

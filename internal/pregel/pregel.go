// Package pregel is the vertex-centric bulk-synchronous-parallel
// system the paper's distributed algorithms run on (§II-C).
//
// A graph is partitioned across P workers by vertex ID (v mod P, the
// mapping the paper uses). Computation proceeds in supersteps: every
// worker runs the program's Superstep against the messages delivered
// in the previous step, producing new messages and optional broadcast
// blobs; the engine then performs the exchange. The run terminates
// when a superstep produces no messages, no broadcasts, and every
// worker has voted to halt.
//
// Messages destined for another worker are serialized into flat byte
// buffers and decoded at the receiver, so the communication cost the
// engine measures includes real encode/copy/decode work; wire latency
// and bandwidth for the simulated cluster are added from a
// netsim.Model. Workers run as goroutines in-process by default; a
// net/rpc transport for genuinely separate worker processes lives in
// rpc.go and is exercised by cmd/drworker and cmd/drcluster.
package pregel

import (
	"errors"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// ErrCanceled is returned when a run is aborted through Config.Cancel.
var ErrCanceled = errors.New("pregel: run canceled")

// Msg is the message record exchanged between vertices. The
// interpretation of Kind, Val, and Val2 is up to the program: the
// labeling programs put a vertex rank in Val and a direction flag in
// Kind; the distributed-DFS token of BFL carries the sender in Val
// and a running counter in Val2. On the wire a Msg is a variable-size
// delta+varint record (see codec.go and DESIGN.md §9), not a fixed
// 13-byte struct dump.
type Msg struct {
	Dst  graph.VertexID
	Kind uint8
	Val  int32
	Val2 int32
}

// Config configures an engine.
type Config struct {
	// Workers is the number of computation nodes P (default 1).
	Workers int
	// Net is the simulated interconnect (zero value = free network).
	Net netsim.Model
	// Cancel aborts the run when closed.
	Cancel <-chan struct{}
	// MaxSupersteps aborts a run that fails to quiesce (a program
	// bug). 0 means the default of 4·|V|+64, which suits the BFS-style
	// programs; the token-passing DFS of BFL^D sets its own bound.
	MaxSupersteps int
	// Obs receives runtime counters ("pregel_*") and the per-superstep
	// trace recorder named "pregel" (see internal/obs). nil disables
	// observability at zero cost.
	Obs *obs.Registry
}

// Program is a distributed vertex-centric computation. One Program
// value is instantiated per worker via NewState; Superstep is invoked
// once per worker per superstep, concurrently across workers.
type Program interface {
	// Superstep processes w.Inbox and w.BcastIn and emits messages and
	// broadcasts through w. Returning active=false is the worker's
	// vote to halt; the vote is revoked automatically when the worker
	// receives messages in a later step.
	Superstep(w *Worker, step int) (active bool, err error)
	// Finish runs after the final superstep on every worker (the
	// paper's "only run after the final super-step" block).
	Finish(w *Worker) error
}

// PreStepper is an optional Program extension. PreStep runs
// single-threaded before each superstep's parallel compute phase,
// after broadcasts have been delivered. Programs use it to apply the
// broadcast blobs to replicated state exactly once: in a physical
// cluster every worker would hold its own copy of the replica, but
// in-process one shared copy is semantically identical (broadcast
// bytes are still charged per receiving worker) and avoids multiplying
// memory by P.
type PreStepper interface {
	PreStep(workers []*Worker, step int) error
}

// Worker is one computation node: a partition of the vertices plus
// the exchange endpoints the program uses during a superstep.
type Worker struct {
	// ID is the worker index in [0, P).
	ID int
	// P is the number of workers.
	P int
	// Graph is the (read-only) graph; the worker owns the vertices v
	// with v mod P == ID and must only write state for those.
	Graph *graph.Digraph
	// State is program-owned per-worker state, set up lazily by the
	// program on the first superstep.
	State any

	// Inbox holds the messages delivered to this worker's vertices in
	// the previous exchange. Within each sender's packet the messages
	// arrive sorted by destination vertex (the codec's delta encoding
	// sorts them); across senders the packets are concatenated in
	// worker order. Programs must not depend on any finer ordering.
	Inbox []Msg
	// BcastIn holds the broadcast blobs published by all workers
	// (including this one) in the previous exchange. The slice header is
	// owned by this worker, but the blobs themselves are shared and
	// read-only by contract.
	BcastIn [][]byte

	outbox [][]Msg // per-destination-worker staging
	bcast  [][]byte
}

// Owns reports whether this worker owns vertex v.
func (w *Worker) Owns(v graph.VertexID) bool { return int(v)%w.P == w.ID }

// OwnerOf returns the worker index owning vertex v.
func (w *Worker) OwnerOf(v graph.VertexID) int { return int(v) % w.P }

// OwnedVertices calls fn for every vertex this worker owns.
func (w *Worker) OwnedVertices(fn func(v graph.VertexID)) {
	n := graph.VertexID(w.Graph.NumVertices())
	for v := graph.VertexID(w.ID); v < n; v += graph.VertexID(w.P) {
		fn(v)
	}
}

// Send queues a message for delivery in the next superstep. The
// Messages metric counts what survives the program's combiner (if
// any), not raw Send calls.
func (w *Worker) Send(m Msg) {
	d := w.OwnerOf(m.Dst)
	w.outbox[d] = append(w.outbox[d], m)
}

// Broadcast publishes a blob to every worker (delivered next
// superstep, including back to the sender). The engine counts
// len(blob) × (P−1) remote bytes for it.
func (w *Worker) Broadcast(blob []byte) {
	if len(blob) == 0 {
		return
	}
	w.bcast = append(w.bcast, blob)
}

// Metrics aggregates the cost of a run, split the way Fig. 5 reports
// it: computation vs communication.
type Metrics struct {
	Supersteps  int
	ComputeTime time.Duration // max across workers, summed over steps
	CommTime    time.Duration // measured exchange (serialize+copy+decode)
	SimNetTime  time.Duration // modeled wire latency + bandwidth
	Messages    int64
	BytesLocal  int64 // bytes that stayed on the owning worker
	BytesRemote int64 // bytes that crossed worker boundaries
	BcastBytes  int64

	// Fault-handling counters, populated by the RPC master (always
	// zero for the in-process engine): retried calls, checkpoint
	// restores after worker failures, checkpoints taken, bytes moved
	// by checkpoints, and the superstep of the newest checkpoint.
	Retries            int64
	Recoveries         int64
	Checkpoints        int64
	CheckpointBytes    int64
	LastCheckpointStep int

	// prevRemote is internal bookkeeping for per-step netsim charging.
	prevRemote int64
}

// TotalComm returns measured plus simulated communication time.
func (m *Metrics) TotalComm() time.Duration { return m.CommTime + m.SimNetTime }

// Total returns the full modeled index time.
func (m *Metrics) Total() time.Duration { return m.ComputeTime + m.CommTime + m.SimNetTime }

// Add accumulates other into m (used when an algorithm performs
// several engine runs, e.g. one per batch).
func (m *Metrics) Add(other Metrics) {
	m.Supersteps += other.Supersteps
	m.ComputeTime += other.ComputeTime
	m.CommTime += other.CommTime
	m.SimNetTime += other.SimNetTime
	m.Messages += other.Messages
	m.BytesLocal += other.BytesLocal
	m.BytesRemote += other.BytesRemote
	m.BcastBytes += other.BcastBytes
	m.Retries += other.Retries
	m.Recoveries += other.Recoveries
	m.Checkpoints += other.Checkpoints
	m.CheckpointBytes += other.CheckpointBytes
	if other.Checkpoints > 0 {
		m.LastCheckpointStep = other.LastCheckpointStep
	}
}

package pregel

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
)

// floodProgram computes min-label propagation (connected components
// over out-edges): every vertex adopts the smallest vertex ID that
// reaches it. A classic vertex-centric kernel, used here to exercise
// the engine.
type floodProgram struct{}

type floodState struct {
	best map[graph.VertexID]int32
}

func (p *floodProgram) Superstep(w *Worker, step int) (bool, error) {
	if step == 0 {
		st := &floodState{best: make(map[graph.VertexID]int32)}
		w.State = st
		w.OwnedVertices(func(v graph.VertexID) {
			st.best[v] = int32(v)
			for _, nb := range w.Graph.OutNeighbors(v) {
				w.Send(Msg{Dst: nb, Val: int32(v)})
			}
		})
		return true, nil
	}
	st := w.State.(*floodState)
	for _, m := range w.Inbox {
		if m.Val < st.best[m.Dst] {
			st.best[m.Dst] = m.Val
			for _, nb := range w.Graph.OutNeighbors(m.Dst) {
				w.Send(Msg{Dst: nb, Val: m.Val})
			}
		}
	}
	return len(w.Inbox) > 0, nil
}

func (p *floodProgram) Finish(w *Worker) error { return nil }

func floodResult(e *Engine, n int) []int32 {
	out := make([]int32, n)
	for _, w := range e.Workers() {
		st := w.State.(*floodState)
		for v, b := range st.best {
			out[v] = b
		}
	}
	return out
}

func ring(n int) *graph.Digraph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)})
	}
	return graph.FromEdges(n, edges)
}

// TestFloodDeterministicAcrossWorkers: the kernel's result must not
// depend on the partition count.
func TestFloodDeterministicAcrossWorkers(t *testing.T) {
	g := ring(37)
	var want []int32
	for _, p := range []int{1, 2, 5, 8} {
		e := New(g, Config{Workers: p})
		if _, err := e.Run(&floodProgram{}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got := floodResult(e, 37)
		for v, b := range got {
			if b != 0 {
				t.Fatalf("p=%d: vertex %d got min %d, want 0 (ring)", p, v, b)
			}
		}
		if want == nil {
			want = got
		}
	}
}

// TestMetricsAccounting checks messages, bytes, and superstep counts
// on a known workload.
func TestMetricsAccounting(t *testing.T) {
	// A ring plus two same-parity chords, so that with two workers
	// (even/odd partition) both local and remote traffic exists.
	edges := ring(10).Edges(nil)
	edges = append(edges, graph.Edge{U: 0, V: 2}, graph.Edge{U: 2, V: 4})
	g := graph.FromEdges(10, edges)
	e := New(g, Config{Workers: 2, Net: netsim.Commodity()})
	met, err := e.Run(&floodProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if met.Supersteps < 10 {
		t.Errorf("ring of 10 needs ≥ 10 supersteps, got %d", met.Supersteps)
	}
	if met.Messages == 0 || met.BytesRemote == 0 || met.BytesLocal == 0 {
		t.Errorf("metrics incomplete: %+v", met)
	}
	if met.SimNetTime == 0 {
		t.Error("commodity model should charge simulated time")
	}
	if met.Total() < met.TotalComm() {
		t.Error("Total must include communication")
	}
	// One worker: everything is local and the network is free.
	e1 := New(g, Config{Workers: 1, Net: netsim.Commodity()})
	met1, err := e1.Run(&floodProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if met1.BytesRemote != 0 {
		t.Errorf("P=1 should have no remote bytes, got %d", met1.BytesRemote)
	}
	if met1.SimNetTime != 0 {
		t.Errorf("P=1 should pay no simulated latency, got %v", met1.SimNetTime)
	}
}

// broadcastProgram publishes one blob per worker in step 0 and counts
// arrivals in step 1.
type broadcastProgram struct {
	got []int // per worker: blobs seen
}

func (p *broadcastProgram) Superstep(w *Worker, step int) (bool, error) {
	if step == 0 {
		w.Broadcast([]byte{byte(w.ID)})
		return true, nil
	}
	if step == 1 {
		p.got[w.ID] = len(w.BcastIn)
	}
	return false, nil
}

func (p *broadcastProgram) Finish(w *Worker) error { return nil }

func TestBroadcastReachesEveryWorker(t *testing.T) {
	g := ring(8)
	const p = 4
	e := New(g, Config{Workers: p})
	prog := &broadcastProgram{got: make([]int, p)}
	met, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range prog.got {
		if n != p {
			t.Errorf("worker %d saw %d blobs, want %d", i, n, p)
		}
	}
	if met.BcastBytes != p {
		t.Errorf("BcastBytes = %d, want %d", met.BcastBytes, p)
	}
}

// errProgram fails on a chosen step.
type errProgram struct{ failStep int }

func (p *errProgram) Superstep(w *Worker, step int) (bool, error) {
	if step == p.failStep && w.ID == 0 {
		return false, errors.New("boom")
	}
	w.OwnedVertices(func(v graph.VertexID) {
		if step == 0 {
			for _, nb := range w.Graph.OutNeighbors(v) {
				w.Send(Msg{Dst: nb})
			}
		}
	})
	return step == 0, nil
}

func (p *errProgram) Finish(w *Worker) error { return nil }

func TestProgramErrorPropagates(t *testing.T) {
	e := New(ring(6), Config{Workers: 2})
	if _, err := e.Run(&errProgram{failStep: 1}); err == nil || err.Error() != "boom" {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestCancel(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	e := New(ring(6), Config{Workers: 2, Cancel: cancel})
	if _, err := e.Run(&floodProgram{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// spinProgram never quiesces.
type spinProgram struct{}

func (p *spinProgram) Superstep(w *Worker, step int) (bool, error) {
	if w.ID == 0 {
		w.Send(Msg{Dst: 0, Val: int32(step)})
	}
	return true, nil
}
func (p *spinProgram) Finish(w *Worker) error { return nil }

func TestMaxSuperstepsGuard(t *testing.T) {
	e := New(ring(4), Config{Workers: 1, MaxSupersteps: 10})
	if _, err := e.Run(&spinProgram{}); err == nil {
		t.Fatal("expected non-quiescence error")
	}
}

// TestMsgCodecRoundTrip quick-checks the wire encoding.
func TestMsgCodecRoundTrip(t *testing.T) {
	f := func(dst uint32, kind uint8, val, val2 int32) bool {
		in := []Msg{{Dst: graph.VertexID(dst & 0x7fffffff), Kind: kind, Val: val, Val2: val2}}
		want := in[0]
		buf, n, err := encodePacket(nil, in, nil)
		if err != nil || n != 1 {
			return false
		}
		out, err := decodePacket(buf, nil)
		return err == nil && len(out) == 1 && out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnership(t *testing.T) {
	e := New(ring(10), Config{Workers: 3})
	seen := map[graph.VertexID]int{}
	for _, w := range e.Workers() {
		w.OwnedVertices(func(v graph.VertexID) {
			seen[v]++
			if !w.Owns(v) {
				t.Errorf("worker %d does not own %d", w.ID, v)
			}
			if w.OwnerOf(v) != w.ID {
				t.Errorf("OwnerOf(%d) = %d, want %d", v, w.OwnerOf(v), w.ID)
			}
		})
	}
	if len(seen) != 10 {
		t.Fatalf("partition covers %d vertices, want 10", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("vertex %d owned %d times", v, c)
		}
	}
}

func TestNetsimModel(t *testing.T) {
	m := netsim.Commodity()
	if m.ExchangeCost(0, 1) != 0 {
		t.Error("single worker must be free")
	}
	base := m.ExchangeCost(0, 4)
	if base != m.BarrierLatency {
		t.Errorf("zero-byte exchange = %v, want barrier latency", base)
	}
	withBytes := m.ExchangeCost(1_250_000_000, 4) // one second of bandwidth
	if withBytes < base+900*time.Millisecond {
		t.Errorf("bandwidth not charged: %v", withBytes)
	}
	if netsim.Zero().ExchangeCost(1<<30, 8) != 0 {
		t.Error("zero model should be free")
	}
}

package pregel

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// RPC transport: the same vertex-centric programs running as genuinely
// separate worker processes connected over TCP (net/rpc), instead of
// goroutines in one address space. A master process drives the
// superstep loop: it calls Step on every worker, routes the returned
// packets, and stops at quiescence. cmd/drworker hosts the worker
// service; cmd/drcluster and the integration tests host the master.
//
// Programs are instantiated inside each worker process from a
// registered factory (the master only sends the program name and
// parameters), so each process holds its own replica state — the
// in-process PreStep sharing trick does not and need not apply.

// RPCServiceName is the registered net/rpc service name.
const RPCServiceName = "DRLWorker"

// RPCFactory creates a program instance and a result collector inside
// a worker process. Collect encodes whatever the program's Finish left
// in the worker state; the master concatenates the blobs.
type RPCFactory struct {
	// New creates the program for one engine run. It is called once
	// per run (the batch algorithm runs once per batch) with the
	// run's parameters; worker state persists across runs.
	New func(params map[string]string, w *Worker) (Program, error)
	// Collect encodes the worker's final results after the last run.
	Collect func(w *Worker) ([]byte, error)
}

var (
	rpcRegistry = map[string]RPCFactory{}
	rpcMu       sync.Mutex
)

// RegisterRPC registers a program factory under a name. Intended to be
// called from init functions of program packages.
func RegisterRPC(name string, f RPCFactory) {
	rpcMu.Lock()
	defer rpcMu.Unlock()
	rpcRegistry[name] = f
}

func lookupRPC(name string) (RPCFactory, error) {
	rpcMu.Lock()
	defer rpcMu.Unlock()
	f, ok := rpcRegistry[name]
	if !ok {
		return RPCFactory{}, fmt.Errorf("pregel: no RPC program %q registered", name)
	}
	return f, nil
}

// InitArgs configures a worker process for a job.
type InitArgs struct {
	WorkerID   int
	NumWorkers int
	// GraphPath is loaded by the worker itself: in a real deployment
	// every node reads its partition from shared storage.
	GraphPath string
}

// BeginRunArgs starts one engine run (e.g. one batch).
type BeginRunArgs struct {
	Program string
	Params  map[string]string
}

// StepArgs carries one superstep's inputs to a worker.
type StepArgs struct {
	Step    int
	Packets [][]byte // encoded Msg buffers destined to this worker
	Bcasts  [][]byte // all broadcasts from the previous step
}

// StepReply carries the worker's outputs.
type StepReply struct {
	Active       bool
	Out          map[int][]byte // destination worker -> encoded messages
	Bcasts       [][]byte
	ComputeNanos int64
}

// CollectReply returns the worker's encoded results.
type CollectReply struct {
	Blob []byte
}

// WorkerServer is the net/rpc service hosting one partition.
type WorkerServer struct {
	mu      sync.Mutex
	w       *Worker
	factory RPCFactory
	prog    Program
}

// NewWorkerServer returns an empty worker service; Init must be called
// over RPC before anything else.
func NewWorkerServer() *WorkerServer { return &WorkerServer{} }

// Init loads the graph and prepares the partition.
func (s *WorkerServer) Init(args InitArgs, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := graph.LoadFile(args.GraphPath)
	if err != nil {
		return fmt.Errorf("worker %d: loading graph: %w", args.WorkerID, err)
	}
	s.w = &Worker{
		ID:     args.WorkerID,
		P:      args.NumWorkers,
		Graph:  g,
		outbox: make([][]Msg, args.NumWorkers),
	}
	return nil
}

// BeginRun instantiates the program for the next engine run.
func (s *WorkerServer) BeginRun(args BeginRunArgs, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("pregel: BeginRun before Init")
	}
	f, err := lookupRPC(args.Program)
	if err != nil {
		return err
	}
	s.factory = f
	s.prog, err = f.New(args.Params, s.w)
	return err
}

// Step runs one superstep on the local partition.
func (s *WorkerServer) Step(args StepArgs, reply *StepReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: Step before BeginRun")
	}
	w := s.w
	w.Inbox = w.Inbox[:0]
	for _, pk := range args.Packets {
		w.Inbox = decodeMsgs(pk, w.Inbox)
	}
	w.BcastIn = args.Bcasts

	start := time.Now()
	if ps, ok := s.prog.(PreStepper); ok {
		if err := ps.PreStep([]*Worker{w}, args.Step); err != nil {
			return err
		}
	}
	active, err := s.prog.Superstep(w, args.Step)
	if err != nil {
		return err
	}
	reply.ComputeNanos = time.Since(start).Nanoseconds()
	reply.Active = active
	reply.Out = make(map[int][]byte)
	for dst, msgs := range w.outbox {
		if len(msgs) == 0 {
			continue
		}
		reply.Out[dst] = encodeMsgs(msgs)
		w.outbox[dst] = msgs[:0]
	}
	w.msgsOut = 0
	reply.Bcasts = w.bcast
	w.bcast = nil
	return nil
}

// FinishRun runs the program's Finish (final-superstep block).
func (s *WorkerServer) FinishRun(_ struct{}, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: FinishRun before BeginRun")
	}
	return s.prog.Finish(s.w)
}

// Collect encodes the worker's final results.
func (s *WorkerServer) Collect(_ struct{}, reply *CollectReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.factory.Collect == nil {
		return errors.New("pregel: Collect without a finished run")
	}
	blob, err := s.factory.Collect(s.w)
	reply.Blob = blob
	return err
}

// ServeWorker listens on addr and serves the worker service until the
// listener fails. It returns the bound address through ready (useful
// with ":0") and blocks.
func ServeWorker(addr string, ready chan<- string) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCServiceName, NewWorkerServer()); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Master coordinates a cluster of RPC workers.
type Master struct {
	clients []*rpc.Client
	// Metrics accumulates across runs, like the in-process engine.
	Metrics Metrics
}

// DialCluster connects to the worker addresses and initializes each
// with its partition assignment.
func DialCluster(addrs []string, graphPath string) (*Master, error) {
	m := &Master{}
	for i, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("pregel: dialing worker %d at %s: %w", i, addr, err)
		}
		m.clients = append(m.clients, c)
	}
	for i, c := range m.clients {
		args := InitArgs{WorkerID: i, NumWorkers: len(m.clients), GraphPath: graphPath}
		if err := c.Call(RPCServiceName+".Init", args, &struct{}{}); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// Close drops the worker connections.
func (m *Master) Close() {
	for _, c := range m.clients {
		if c != nil {
			c.Close()
		}
	}
}

// Run drives one engine run of the named program to quiescence.
func (m *Master) Run(program string, params map[string]string, maxSteps int) error {
	p := len(m.clients)
	for _, c := range m.clients {
		if err := c.Call(RPCServiceName+".BeginRun", BeginRunArgs{Program: program, Params: params}, &struct{}{}); err != nil {
			return err
		}
	}
	pending := make([][][]byte, p) // packets destined to each worker
	var bcasts [][]byte
	if maxSteps <= 0 {
		maxSteps = 1 << 30
	}
	for step := 0; step < maxSteps; step++ {
		replies := make([]StepReply, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		exStart := time.Now()
		for i, c := range m.clients {
			wg.Add(1)
			go func(i int, c *rpc.Client) {
				defer wg.Done()
				args := StepArgs{Step: step, Packets: pending[i], Bcasts: bcasts}
				errs[i] = c.Call(RPCServiceName+".Step", args, &replies[i])
			}(i, c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		m.Metrics.Supersteps++
		m.Metrics.CommTime += time.Since(exStart) // includes RPC transfer
		var slowest time.Duration
		anyActive := false
		delivered := false
		next := make([][][]byte, p)
		bcasts = nil
		for i := range replies {
			r := &replies[i]
			if d := time.Duration(r.ComputeNanos); d > slowest {
				slowest = d
			}
			anyActive = anyActive || r.Active
			keys := make([]int, 0, len(r.Out))
			for dst := range r.Out {
				keys = append(keys, dst)
			}
			sort.Ints(keys)
			for _, dst := range keys {
				buf := r.Out[dst]
				delivered = true
				if dst == i {
					m.Metrics.BytesLocal += int64(len(buf))
				} else {
					m.Metrics.BytesRemote += int64(len(buf))
				}
				next[dst] = append(next[dst], buf)
			}
			for _, b := range r.Bcasts {
				bcasts = append(bcasts, b)
				m.Metrics.BcastBytes += int64(len(b))
				m.Metrics.BytesRemote += int64(len(b)) * int64(p-1)
			}
		}
		m.Metrics.ComputeTime += slowest
		m.Metrics.CommTime -= slowest // Step RPC time included compute; keep the split honest
		pending = next
		if !delivered && len(bcasts) == 0 && !anyActive {
			break
		}
	}
	for _, c := range m.clients {
		if err := c.Call(RPCServiceName+".FinishRun", struct{}{}, &struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// Collect gathers every worker's result blob.
func (m *Master) Collect() ([][]byte, error) {
	blobs := make([][]byte, len(m.clients))
	for i, c := range m.clients {
		var reply CollectReply
		if err := c.Call(RPCServiceName+".Collect", struct{}{}, &reply); err != nil {
			return nil, err
		}
		blobs[i] = reply.Blob
	}
	return blobs, nil
}

package pregel

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// RPC transport: the same vertex-centric programs running as genuinely
// separate worker processes connected over TCP (net/rpc), instead of
// goroutines in one address space. A master process drives the
// superstep loop: it calls Step on every worker, routes the returned
// packets, and stops at quiescence. cmd/drworker hosts the worker
// service; cmd/drcluster and the integration tests host the master.
//
// Programs are instantiated inside each worker process from a
// registered factory (the master only sends the program name and
// parameters), so each process holds its own replica state — the
// in-process PreStep sharing trick does not and need not apply.
//
// The transport assumes real network weather: every master→worker
// call runs under a per-attempt deadline with bounded exponential
// backoff + jitter retries (RetryPolicy), workers deduplicate
// repeated calls so a retried superstep never executes twice, and
// crashed workers are re-dialed and restored from the last superstep
// checkpoint (see checkpoint.go for the recovery model).

// RPCServiceName is the registered net/rpc service name.
const RPCServiceName = "DRLWorker"

// RPCFactory creates a program instance and a result collector inside
// a worker process. Collect encodes whatever the program's Finish left
// in the worker state; the master concatenates the blobs.
type RPCFactory struct {
	// New creates the program for one engine run. It is called once
	// per run (the batch algorithm runs once per batch) with the
	// run's parameters; worker state persists across runs.
	New func(params map[string]string, w *Worker) (Program, error)
	// Collect encodes the worker's final results after the last run.
	Collect func(w *Worker) ([]byte, error)
}

var (
	rpcRegistry = map[string]RPCFactory{}
	rpcMu       sync.Mutex
)

// RegisterRPC registers a program factory under a name. Intended to be
// called from init functions of program packages.
func RegisterRPC(name string, f RPCFactory) {
	rpcMu.Lock()
	defer rpcMu.Unlock()
	rpcRegistry[name] = f
}

func lookupRPC(name string) (RPCFactory, error) {
	rpcMu.Lock()
	defer rpcMu.Unlock()
	f, ok := rpcRegistry[name]
	if !ok {
		return RPCFactory{}, fmt.Errorf("pregel: no RPC program %q registered", name)
	}
	return f, nil
}

// InitArgs configures a worker process for a job.
type InitArgs struct {
	WorkerID   int
	NumWorkers int
	// GraphPath is loaded by the worker itself: in a real deployment
	// every node reads its partition from shared storage.
	GraphPath string
}

// BeginRunArgs starts one engine run (e.g. one batch). RunID makes
// the call idempotent: a retried or recovery-replayed BeginRun for a
// run the worker has already begun is a no-op.
type BeginRunArgs struct {
	RunID   int
	Program string
	Params  map[string]string
}

// StepArgs carries one superstep's inputs to a worker.
type StepArgs struct {
	Step    int
	Packets [][]byte // encoded Msg buffers destined to this worker
	Bcasts  [][]byte // all broadcasts from the previous step
}

// StepReply carries the worker's outputs.
type StepReply struct {
	Active       bool
	Out          map[int][]byte // destination worker -> encoded packet
	Bcasts       [][]byte
	ComputeNanos int64
	// MsgsOut is the number of records the worker put on the wire this
	// step (post-combining), so the master's Metrics.Messages matches
	// the in-process engine's exactly.
	MsgsOut int64
}

// CollectReply returns the worker's encoded results.
type CollectReply struct {
	Blob []byte
}

// WorkerServer is the net/rpc service hosting one partition.
//
// Delivery semantics: Step deduplicates on the superstep number — a
// retry of the step the worker just executed returns the cached reply
// without recomputing, and a step that is neither the cached one nor
// the next expected one fails with an out-of-sync error that makes
// the master restore from checkpoint. BeginRun deduplicates on RunID
// and FinishRun on a per-run flag, so every mutating call is
// effectively exactly-once under the master's at-least-once retries.
type WorkerServer struct {
	mu      sync.Mutex
	w       *Worker
	factory RPCFactory
	prog    Program
	comb    Combiner

	runID     int
	lastStep  int
	haveReply bool
	lastReply StepReply
	finished  bool

	stepCount int
	stepHook  func(completedSteps int)
	obs       *obs.Registry
}

// WorkerOptions tunes a worker service.
type WorkerOptions struct {
	// StepHook, if set, runs after every executed (non-deduplicated)
	// superstep with the total count so far. cmd/drworker uses it to
	// implement the -crash-after fault-injection flag.
	StepHook func(completedSteps int)
	// Obs receives the worker-side counters ("pregel_worker_*");
	// cmd/drworker exposes it on a local /metrics port. nil disables.
	Obs *obs.Registry
}

// NewWorkerServer returns an empty worker service; Init must be called
// over RPC before anything else.
func NewWorkerServer() *WorkerServer { return &WorkerServer{} }

// Init loads the graph and prepares the partition. Idempotent: a
// retried Init simply reloads.
func (s *WorkerServer) Init(args InitArgs, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := graph.LoadFile(args.GraphPath)
	if err != nil {
		return fmt.Errorf("worker %d: loading graph: %w", args.WorkerID, err)
	}
	s.w = &Worker{
		ID:     args.WorkerID,
		P:      args.NumWorkers,
		Graph:  g,
		outbox: make([][]Msg, args.NumWorkers),
	}
	s.factory = RPCFactory{}
	s.prog = nil
	s.comb = nil
	s.runID = 0
	s.lastStep = -1
	s.haveReply = false
	s.lastReply = StepReply{}
	s.finished = false
	return nil
}

// BeginRun instantiates the program for the next engine run.
func (s *WorkerServer) BeginRun(args BeginRunArgs, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("pregel: BeginRun before Init")
	}
	if args.RunID != 0 && args.RunID == s.runID && s.prog != nil {
		return nil // duplicate delivery of a run we already began
	}
	f, err := lookupRPC(args.Program)
	if err != nil {
		return err
	}
	prog, err := f.New(args.Params, s.w)
	if err != nil {
		return err
	}
	s.factory = f
	s.prog = prog
	s.comb = nil
	if cp, ok := prog.(CombinerProvider); ok {
		s.comb = cp.MessageCombiner()
	}
	s.runID = args.RunID
	s.lastStep = -1
	s.haveReply = false
	s.lastReply = StepReply{}
	s.finished = false
	return nil
}

// Step runs one superstep on the local partition.
func (s *WorkerServer) Step(args StepArgs, reply *StepReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: Step before BeginRun")
	}
	if s.haveReply && args.Step == s.lastStep {
		// Duplicate delivery (the previous reply was lost or timed
		// out): replay the cached reply instead of recomputing. The
		// cached maps are only read from here on, so sharing them with
		// a concurrent response encoder is safe.
		*reply = s.lastReply
		return nil
	}
	if args.Step != s.lastStep+1 {
		return fmt.Errorf("%s: got step %d, expected %d", outOfSyncMsg, args.Step, s.lastStep+1)
	}
	w := s.w
	w.Inbox = w.Inbox[:0]
	for _, pk := range args.Packets {
		var err error
		if w.Inbox, err = decodePacket(pk, w.Inbox); err != nil {
			// A corrupt packet is a protocol bug, not network weather:
			// surface it as a permanent application error.
			return fmt.Errorf("worker %d: step %d: %w", w.ID, args.Step, err)
		}
	}
	w.BcastIn = args.Bcasts

	start := time.Now()
	if ps, ok := s.prog.(PreStepper); ok {
		if err := ps.PreStep([]*Worker{w}, args.Step); err != nil {
			return err
		}
	}
	active, err := s.prog.Superstep(w, args.Step)
	if err != nil {
		return err
	}
	reply.ComputeNanos = time.Since(start).Nanoseconds()
	reply.Active = active
	reply.Out = make(map[int][]byte)
	for dst, msgs := range w.outbox {
		if len(msgs) == 0 {
			continue
		}
		// Fresh buffers, not pooled: the reply is retained by the
		// duplicate-delivery cache and serialized asynchronously by
		// net/rpc, so there is no safe recycle point worker-side.
		buf, n, err := encodePacket(nil, msgs, s.comb)
		if err != nil {
			return fmt.Errorf("worker %d: step %d: %w", w.ID, args.Step, err)
		}
		reply.Out[dst] = buf
		reply.MsgsOut += int64(n)
		w.outbox[dst] = msgs[:0]
	}
	reply.Bcasts = w.bcast
	w.bcast = nil

	s.lastStep = args.Step
	s.lastReply = *reply
	s.haveReply = true
	s.stepCount++
	s.obs.Counter("pregel_worker_steps_total").Inc()
	s.obs.Counter("pregel_worker_messages_out_total").Add(reply.MsgsOut)
	s.obs.Histogram("pregel_worker_step_seconds", nil).
		Observe(time.Duration(reply.ComputeNanos).Seconds())
	if s.stepHook != nil {
		s.stepHook(s.stepCount)
	}
	return nil
}

// FinishRun runs the program's Finish (final-superstep block).
// Idempotent per run.
func (s *WorkerServer) FinishRun(_ struct{}, _ *struct{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prog == nil {
		return errors.New("pregel: FinishRun before BeginRun")
	}
	if s.finished {
		return nil
	}
	if err := s.prog.Finish(s.w); err != nil {
		return err
	}
	s.finished = true
	return nil
}

// Collect encodes the worker's final results.
func (s *WorkerServer) Collect(_ struct{}, reply *CollectReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.factory.Collect == nil {
		return errors.New("pregel: Collect without a finished run")
	}
	blob, err := s.factory.Collect(s.w)
	reply.Blob = blob
	return err
}

// ServeWorker listens on addr and serves the worker service until the
// listener fails. It returns the bound address through ready (useful
// with ":0") and blocks.
func ServeWorker(addr string, ready chan<- string) error {
	return ServeWorkerOpts(addr, ready, WorkerOptions{})
}

// ServeWorkerOpts is ServeWorker with worker tuning options.
func ServeWorkerOpts(addr string, ready chan<- string, opts WorkerOptions) error {
	ws := NewWorkerServer()
	ws.stepHook = opts.StepHook
	ws.obs = opts.Obs
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCServiceName, ws); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// MasterConfig tunes the master's fault handling.
type MasterConfig struct {
	// Retry bounds per-call deadlines and retries (zero value: use
	// DefaultRetryPolicy).
	Retry RetryPolicy
	// CheckpointEvery snapshots worker state every k supersteps in
	// addition to the run-boundary checkpoints the master always
	// takes. 0 means run-boundary checkpoints only.
	CheckpointEvery int
	// Dial opens worker connections; nil means DialRPC. Recovery
	// re-invokes it for the failed worker's address.
	Dial Dialer
	// Net charges simulated wire time for checkpoint traffic (zero
	// value: free network), mirroring how the in-process engine
	// charges exchanges.
	Net netsim.Model
	// Obs receives the master-side counters ("pregel_*", including the
	// fault-handling family) and the per-superstep trace recorder
	// named "pregel" — the aggregation point for worker metrics, which
	// arrive piggybacked on StepReply. nil disables observability.
	Obs *obs.Registry
}

// checkpoint is one globally consistent barrier snapshot: the worker
// state blobs plus the master's routing state feeding the step it
// names.
type checkpoint struct {
	runID    int
	step     int        // next superstep after restore
	blobs    [][]byte   // per-worker Snapshotter state
	pending  [][][]byte // packets destined to each worker at that step
	bcasts   [][]byte
	finished bool // taken after FinishRun (Collect-time recovery)
}

// Master coordinates a cluster of RPC workers.
type Master struct {
	cfg        MasterConfig
	addrs      []string
	graphPath  string
	transports []Transport

	runID       int
	lastProgram string
	lastParams  map[string]string
	ckpt        *checkpoint
	ckptOff     bool // program lacks Snapshotter; recovery impossible
	recoveries  int

	rngMu   sync.Mutex
	rng     *rand.Rand
	statsMu sync.Mutex

	// Metrics accumulates across runs, like the in-process engine.
	Metrics Metrics
}

// DialCluster connects to the worker addresses with default fault
// handling and initializes each with its partition assignment.
func DialCluster(addrs []string, graphPath string) (*Master, error) {
	return DialClusterOpts(addrs, graphPath, MasterConfig{})
}

// DialClusterOpts is DialCluster with explicit fault-handling
// configuration.
func DialClusterOpts(addrs []string, graphPath string, cfg MasterConfig) (*Master, error) {
	cfg.Retry = cfg.Retry.normalized()
	if cfg.Dial == nil {
		cfg.Dial = DialRPC
	}
	m := &Master{
		cfg:       cfg,
		addrs:     append([]string(nil), addrs...),
		graphPath: graphPath,
		rng:       rand.New(rand.NewSource(cfg.Retry.JitterSeed)),
	}
	for i, addr := range addrs {
		t, err := cfg.Dial(addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("pregel: dialing worker %d at %s: %w", i, addr, err)
		}
		m.transports = append(m.transports, t)
	}
	for i := range m.transports {
		args := InitArgs{WorkerID: i, NumWorkers: len(m.transports), GraphPath: graphPath}
		if _, err := masterCall[struct{}](m, i, "Init", args); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// Close drops the worker connections and reports every close error.
func (m *Master) Close() error {
	var errs []error
	for i, t := range m.transports {
		if t == nil {
			continue
		}
		if err := t.Close(); err != nil && !errors.Is(err, rpc.ErrShutdown) {
			errs = append(errs, fmt.Errorf("pregel: closing worker %d: %w", i, err))
		}
		m.transports[i] = nil
	}
	return errors.Join(errs...)
}

// callOnce performs one attempt with the per-attempt deadline. The
// reply must be fresh per attempt: an abandoned (timed-out) call may
// still write into its reply when the response eventually lands.
func (m *Master) callOnce(t Transport, method string, args, reply any) error {
	timeout := m.cfg.Retry.CallTimeout
	if timeout <= 0 {
		return t.Call(method, args, reply)
	}
	done := make(chan error, 1)
	go func() { done <- t.Call(method, args, reply) }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("pregel: %s: %w", method, ErrCallTimeout)
	}
}

// masterCall performs a retried RPC to worker i. Transient errors
// (timeouts, drops, dead connections) are retried with exponential
// backoff + jitter; application errors surface immediately; exhausted
// retries and out-of-sync workers come back as a *workerFailure that
// the run loop recovers from via checkpoint restore.
func masterCall[T any](m *Master, i int, method string, args any) (*T, error) {
	pol := m.cfg.Retry
	full := RPCServiceName + "." + method
	var err error
	for attempt := 1; ; attempt++ {
		reply := new(T)
		err = m.callOnce(m.transports[i], full, args, reply)
		if err == nil {
			return reply, nil
		}
		if !isTransient(err) {
			if isOutOfSync(err) {
				return nil, &workerFailure{workers: []int{i}, err: err}
			}
			return nil, err
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		m.statsMu.Lock()
		m.Metrics.Retries++
		m.statsMu.Unlock()
		m.cfg.Obs.Counter("pregel_retries_total").Inc()
		if d := pol.backoff(attempt, m.rng, &m.rngMu); d > 0 {
			time.Sleep(d)
		}
	}
	return nil, &workerFailure{
		workers: []int{i},
		err:     fmt.Errorf("%s failed after %d attempts: %w: %w", method, pol.MaxAttempts, ErrRetriesExhausted, err),
	}
}

// takeCheckpoint snapshots every worker at the current barrier. step,
// pending, and bcasts describe the superstep the snapshot feeds. The
// stored pending/bcasts slices are adopted, not copied — the run loop
// never mutates a routing slice after handing it over.
func (m *Master) takeCheckpoint(step int, pending [][][]byte, bcasts [][]byte, finished bool) error {
	if m.ckptOff {
		return nil
	}
	p := len(m.transports)
	blobs := make([][]byte, p)
	var bytes int64
	for i := range m.transports {
		r, err := masterCall[CheckpointReply](m, i, "Checkpoint", struct{}{})
		if err != nil {
			return err
		}
		if !r.Supported {
			m.ckptOff = true
			return nil
		}
		blobs[i] = r.Blob
		bytes += int64(len(r.Blob))
	}
	m.ckpt = &checkpoint{
		runID:    m.runID,
		step:     step,
		blobs:    blobs,
		pending:  pending,
		bcasts:   bcasts,
		finished: finished,
	}
	m.Metrics.Checkpoints++
	m.Metrics.CheckpointBytes += bytes
	m.Metrics.LastCheckpointStep = step
	m.Metrics.SimNetTime += m.cfg.Net.CheckpointCost(bytes, p)
	m.cfg.Obs.Counter("pregel_checkpoints_total").Inc()
	m.cfg.Obs.Counter("pregel_checkpoint_bytes_total").Add(bytes)
	return nil
}

// recoverWorkers brings the cluster back to the last checkpoint after
// the listed workers failed: re-dial and re-Init each failed worker,
// re-BeginRun it, then restore every worker's state to the checkpoint
// barrier so the superstep loop can rewind and replay.
func (m *Master) recoverWorkers(failed []int, cause error) error {
	pol := m.cfg.Retry
	if m.recoveries >= pol.MaxRecoveries {
		return fmt.Errorf("pregel: giving up after %d recoveries: %w", m.recoveries, cause)
	}
	if m.ckptOff {
		return fmt.Errorf("%w (program has no Snapshotter): %v", ErrNoRecovery, cause)
	}
	m.recoveries++
	m.statsMu.Lock()
	m.Metrics.Recoveries++
	m.statsMu.Unlock()
	m.cfg.Obs.Counter("pregel_recoveries_total").Inc()

	redialed := map[int]bool{}
	for _, i := range failed {
		if redialed[i] {
			continue
		}
		redialed[i] = true
		if t := m.transports[i]; t != nil {
			t.Close()
		}
		t, err := m.redial(m.addrs[i])
		if err != nil {
			return fmt.Errorf("pregel: re-dialing worker %d at %s: %w (after %v)", i, m.addrs[i], err, cause)
		}
		m.transports[i] = t
		args := InitArgs{WorkerID: i, NumWorkers: len(m.transports), GraphPath: m.graphPath}
		if _, err := masterCall[struct{}](m, i, "Init", args); err != nil {
			return fmt.Errorf("pregel: re-initializing worker %d: %w", i, err)
		}
		if m.lastProgram != "" {
			bargs := BeginRunArgs{RunID: m.runID, Program: m.lastProgram, Params: m.lastParams}
			if _, err := masterCall[struct{}](m, i, "BeginRun", bargs); err != nil {
				return fmt.Errorf("pregel: re-starting run on worker %d: %w", i, err)
			}
		}
	}

	ck := m.ckpt
	if ck == nil {
		// Nothing has stepped yet (failure during the first run's
		// BeginRun phase): the re-begun workers are already consistent.
		return nil
	}
	sameRun := ck.runID == m.runID
	for i := range m.transports {
		args := RestoreArgs{Blob: ck.blobs[i], SameRun: sameRun}
		if sameRun {
			args.Step = ck.step
			args.Finished = ck.finished
		}
		if _, err := masterCall[struct{}](m, i, "Restore", args); err != nil {
			return fmt.Errorf("pregel: restoring worker %d from checkpoint: %w", i, err)
		}
	}
	return nil
}

// redial re-opens a worker connection with the retry policy's backoff
// (a restarting worker process needs a moment to rebind its port).
func (m *Master) redial(addr string) (Transport, error) {
	pol := m.cfg.Retry
	var err error
	for attempt := 1; ; attempt++ {
		var t Transport
		t, err = m.cfg.Dial(addr)
		if err == nil {
			return t, nil
		}
		if attempt >= pol.MaxAttempts {
			return nil, err
		}
		if d := pol.backoff(attempt, m.rng, &m.rngMu); d > 0 {
			time.Sleep(d)
		}
	}
}

// Run drives one engine run of the named program to quiescence,
// transparently retrying flaky calls and restoring from the last
// superstep checkpoint when a worker crashes.
func (m *Master) Run(program string, params map[string]string, maxSteps int) error {
	m.runID++
	m.lastProgram, m.lastParams = program, params
	if maxSteps <= 0 {
		maxSteps = 1 << 30
	}
	for {
		err := m.runAttempt(program, params, maxSteps)
		if err == nil {
			return nil
		}
		var wf *workerFailure
		if !errors.As(err, &wf) {
			return err
		}
		if rerr := m.recoverWorkers(wf.workers, err); rerr != nil {
			return rerr
		}
	}
}

// runAttempt executes the run from wherever the cluster currently
// stands: from scratch, or — after a recovery — from the last
// checkpoint of the current run.
func (m *Master) runAttempt(program string, params map[string]string, maxSteps int) error {
	p := len(m.transports)
	step := 0
	pending := make([][][]byte, p) // packets destined to each worker
	var bcasts [][]byte

	if ck := m.ckpt; ck != nil && ck.runID == m.runID {
		if ck.finished {
			return nil // the run completed before the failure
		}
		step = ck.step
		if ck.pending != nil {
			pending = ck.pending
		}
		bcasts = ck.bcasts
	} else {
		bargs := BeginRunArgs{RunID: m.runID, Program: program, Params: params}
		for i := range m.transports {
			if _, err := masterCall[struct{}](m, i, "BeginRun", bargs); err != nil {
				return err
			}
		}
		// Barrier-0 snapshot: captures state carried over from earlier
		// runs so any in-run failure can rewind at least to here.
		if err := m.takeCheckpoint(0, nil, nil, false); err != nil {
			return err
		}
	}

	reg := m.cfg.Obs
	trace := reg.Trace("pregel")
	cSteps := reg.Counter("pregel_supersteps_total")
	cMsgs := reg.Counter("pregel_messages_total")
	cBytesLocal := reg.Counter("pregel_bytes_local_total")
	cBytesRemote := reg.Counter("pregel_bytes_remote_total")
	cBcastBytes := reg.Counter("pregel_bcast_bytes_total")
	hStep := reg.Histogram("pregel_superstep_seconds", nil)
	reg.Gauge("pregel_workers").Set(int64(p))

	// Per-step scratch, reused across the loop to keep the routing
	// path's allocations flat. The routed packet buffers themselves are
	// owned by the gob-decoded replies (and possibly adopted by a
	// checkpoint), so they are not poolable here; only the bookkeeping
	// slices are.
	replies := make([]*StepReply, p)
	errs := make([]error, p)
	keys := make([]int, 0, p)
	for ; step < maxSteps; step++ {
		for i := range replies {
			replies[i], errs[i] = nil, nil
		}
		var wg sync.WaitGroup
		m.statsMu.Lock()
		preRetries := m.Metrics.Retries
		m.statsMu.Unlock()
		exStart := time.Now()
		for i := range m.transports {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				args := StepArgs{Step: step, Packets: pending[i], Bcasts: bcasts}
				replies[i], errs[i] = masterCall[StepReply](m, i, "Step", args)
			}(i)
		}
		wg.Wait()
		stepWall := time.Since(exStart)
		if err := mergeFailures(errs); err != nil {
			return err
		}
		m.Metrics.Supersteps++
		m.Metrics.CommTime += stepWall // includes RPC transfer
		var slowest time.Duration
		anyActive := false
		delivered := false
		var row obs.StepTrace
		if trace != nil {
			row = obs.StepTrace{
				Run:       m.runID,
				Step:      step,
				WallNanos: stepWall.Nanoseconds(),
				Workers:   make([]obs.WorkerStep, p),
			}
			m.statsMu.Lock()
			row.Retries = m.Metrics.Retries - preRetries
			m.statsMu.Unlock()
			for i := range pending {
				var inMsgs int
				for _, buf := range pending[i] {
					if n, err := packetRecords(buf); err == nil {
						inMsgs += n
					}
				}
				row.Workers[i] = obs.WorkerStep{Worker: i, MsgsIn: inMsgs}
			}
		}
		next := make([][][]byte, p)
		bcasts = nil
		for i, r := range replies {
			if d := time.Duration(r.ComputeNanos); d > slowest {
				slowest = d
			}
			anyActive = anyActive || r.Active
			m.Metrics.Messages += r.MsgsOut
			row.Messages += r.MsgsOut
			if r.Active {
				row.ActiveWorkers++
			}
			if trace != nil {
				row.Workers[i].ComputeNanos = r.ComputeNanos
				row.Workers[i].Active = r.Active
			}
			keys = keys[:0]
			for dst := range r.Out {
				keys = append(keys, dst)
			}
			sort.Ints(keys)
			for _, dst := range keys {
				buf := r.Out[dst]
				delivered = true
				if dst == i {
					m.Metrics.BytesLocal += int64(len(buf))
					row.BytesLocal += int64(len(buf))
				} else {
					m.Metrics.BytesRemote += int64(len(buf))
					row.BytesRemote += int64(len(buf))
				}
				next[dst] = append(next[dst], buf)
			}
			for _, b := range r.Bcasts {
				bcasts = append(bcasts, b)
				m.Metrics.BcastBytes += int64(len(b))
				row.BcastBytes += int64(len(b))
				m.Metrics.BytesRemote += int64(len(b)) * int64(p-1)
				row.BytesRemote += int64(len(b)) * int64(p-1)
			}
		}
		m.Metrics.ComputeTime += slowest
		m.Metrics.CommTime -= slowest // Step RPC time included compute; keep the split honest
		cSteps.Inc()
		cMsgs.Add(row.Messages)
		cBytesLocal.Add(row.BytesLocal)
		cBytesRemote.Add(row.BytesRemote)
		cBcastBytes.Add(row.BcastBytes)
		hStep.Observe(stepWall.Seconds())
		if trace != nil {
			row.ComputeNanos = slowest.Nanoseconds()
			trace.Record(row)
		}
		pending = next
		if !delivered && len(bcasts) == 0 && !anyActive {
			break
		}
		if k := m.cfg.CheckpointEvery; k > 0 && (step+1)%k == 0 {
			if err := m.takeCheckpoint(step+1, pending, bcasts, false); err != nil {
				return err
			}
		}
	}
	for i := range m.transports {
		if _, err := masterCall[struct{}](m, i, "FinishRun", struct{}{}); err != nil {
			return err
		}
	}
	// Post-finish snapshot: the run boundary the next run (or a
	// Collect-time recovery) restores from.
	return m.takeCheckpoint(step+1, nil, nil, true)
}

// Collect gathers every worker's result blob, recovering crashed
// workers from the post-finish checkpoint.
func (m *Master) Collect() ([][]byte, error) {
	for {
		blobs, err := m.collectAttempt()
		if err == nil {
			return blobs, nil
		}
		var wf *workerFailure
		if !errors.As(err, &wf) {
			return nil, err
		}
		if rerr := m.recoverWorkers(wf.workers, err); rerr != nil {
			return nil, rerr
		}
	}
}

func (m *Master) collectAttempt() ([][]byte, error) {
	blobs := make([][]byte, len(m.transports))
	for i := range m.transports {
		reply, err := masterCall[CollectReply](m, i, "Collect", struct{}{})
		if err != nil {
			return nil, err
		}
		blobs[i] = reply.Blob
	}
	return blobs, nil
}

// FaultCounters reports the master's fault-handling activity so far:
// retried calls, checkpoint-restore recoveries, checkpoints taken,
// and the superstep of the newest checkpoint.
func (m *Master) FaultCounters() (retries, recoveries, checkpoints int64, lastCheckpointStep int) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.Metrics.Retries, m.Metrics.Recoveries, m.Metrics.Checkpoints, m.Metrics.LastCheckpointStep
}

package pregel

import (
	"net/rpc"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// The positive RPC paths are exercised end-to-end from internal/drl
// (TestRPCClusterMatchesTOL); these tests cover the protocol's error
// handling and the registry.

func init() {
	RegisterRPC("test-noop", RPCFactory{
		New: func(params map[string]string, w *Worker) (Program, error) {
			return &noopProgram{}, nil
		},
		Collect: func(w *Worker) ([]byte, error) { return []byte{byte(w.ID)}, nil },
	})
}

type noopProgram struct{}

func (p *noopProgram) Superstep(w *Worker, step int) (bool, error) { return false, nil }
func (p *noopProgram) Finish(w *Worker) error                      { return nil }

func startWorker(t *testing.T) string {
	t.Helper()
	ready := make(chan string, 1)
	go func() {
		if err := ServeWorker("127.0.0.1:0", ready); err != nil {
			t.Log(err)
		}
	}()
	return <-ready
}

func graphFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, graph.PaperExample(), true); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRPCProtocolErrors(t *testing.T) {
	addr := startWorker(t)
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Calls out of order.
	if err := c.Call(RPCServiceName+".BeginRun", BeginRunArgs{Program: "test-noop"}, &struct{}{}); err == nil {
		t.Error("BeginRun before Init should fail")
	}
	var sr StepReply
	if err := c.Call(RPCServiceName+".Step", StepArgs{}, &sr); err == nil {
		t.Error("Step before BeginRun should fail")
	}
	if err := c.Call(RPCServiceName+".FinishRun", struct{}{}, &struct{}{}); err == nil {
		t.Error("FinishRun before BeginRun should fail")
	}
	var cr CollectReply
	if err := c.Call(RPCServiceName+".Collect", struct{}{}, &cr); err == nil {
		t.Error("Collect before a run should fail")
	}

	// Init with a missing graph file.
	err = c.Call(RPCServiceName+".Init", InitArgs{WorkerID: 0, NumWorkers: 1, GraphPath: "/nonexistent"}, &struct{}{})
	if err == nil {
		t.Error("Init with a bad path should fail")
	}

	// Proper init, then an unregistered program.
	if err := c.Call(RPCServiceName+".Init", InitArgs{WorkerID: 0, NumWorkers: 1, GraphPath: graphFile(t)}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	err = c.Call(RPCServiceName+".BeginRun", BeginRunArgs{Program: "does-not-exist"}, &struct{}{})
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown program should fail with a registry error, got %v", err)
	}
}

func TestRPCMasterFlow(t *testing.T) {
	addrs := []string{startWorker(t), startWorker(t)}
	m, err := DialCluster(addrs, graphFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Run("test-noop", nil, 0); err != nil {
		t.Fatal(err)
	}
	blobs, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 || blobs[0][0] != 0 || blobs[1][0] != 1 {
		t.Errorf("collect blobs wrong: %v", blobs)
	}
	if m.Metrics.Supersteps == 0 {
		t.Error("no supersteps recorded")
	}
}

func TestDialClusterBadAddress(t *testing.T) {
	if _, err := DialCluster([]string{"127.0.0.1:1"}, "x"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

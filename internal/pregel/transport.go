package pregel

import (
	"errors"
	"fmt"
	"math/rand"
	"net/rpc"
	"strings"
	"sync"
	"time"
)

// Transport abstracts one master↔worker connection so the retry,
// fault-injection, and checkpoint machinery is independent of the
// wire protocol. The production implementation is net/rpc over TCP
// (*rpc.Client satisfies the interface directly); tests substitute
// decorated or scripted transports.
type Transport interface {
	// Call performs one synchronous RPC. serviceMethod is the full
	// "Service.Method" name as in net/rpc.
	Call(serviceMethod string, args any, reply any) error
	Close() error
}

// Dialer opens a Transport to a worker address. The master re-invokes
// it during crash recovery, so implementations must tolerate being
// called for an address that already had a (now dead) connection.
type Dialer func(addr string) (Transport, error)

// DialRPC is the default Dialer: net/rpc over TCP.
func DialRPC(addr string) (Transport, error) {
	return rpc.Dial("tcp", addr)
}

// Sentinel errors for the fault-handling paths. Callers match them
// with errors.Is.
var (
	// ErrCallTimeout marks a per-attempt deadline expiry.
	ErrCallTimeout = errors.New("pregel: call timed out")
	// ErrRetriesExhausted wraps the last transient error after every
	// retry attempt failed.
	ErrRetriesExhausted = errors.New("pregel: retries exhausted")
	// ErrNoRecovery is returned when a worker failed permanently but
	// the run cannot be recovered (no checkpoint, or the program does
	// not implement Snapshotter).
	ErrNoRecovery = errors.New("pregel: worker failed and no recovery is possible")
)

// outOfSyncMsg prefixes worker-side errors that signal master/worker
// superstep disagreement. net/rpc flattens errors to strings, so the
// master matches the prefix; such errors trigger checkpoint recovery
// rather than plain retries.
const outOfSyncMsg = "pregel: worker out of sync"

func isOutOfSync(err error) bool {
	return err != nil && strings.Contains(err.Error(), outOfSyncMsg)
}

// isTransient reports whether err is worth retrying on the same
// connection: timeouts, dropped or injected failures, and transport
// breakage. Errors produced by the worker's handler arrive as
// rpc.ServerError and are permanent — they signify a program or
// protocol bug, not network weather (out-of-sync errors are handled
// separately via recovery).
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// RetryPolicy bounds the master's per-call fault handling. The zero
// value means "use DefaultRetryPolicy"; set a field negative to
// disable that mechanism explicitly.
type RetryPolicy struct {
	// CallTimeout is the per-attempt deadline. 0 picks the default;
	// negative disables deadlines.
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries per call (first attempt
	// included). 0 picks the default; negative means a single attempt.
	MaxAttempts int
	// BaseBackoff is the backoff before the second attempt; it doubles
	// per attempt (with jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the deterministic backoff jitter (tests).
	JitterSeed int64
	// MaxRecoveries bounds re-dial + checkpoint-restore cycles per
	// master. 0 picks the default; negative disables recovery.
	MaxRecoveries int
}

// DefaultRetryPolicy returns the production defaults: 30 s per call,
// 4 attempts with 50 ms–2 s exponential backoff, 4 recoveries.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		CallTimeout:   30 * time.Second,
		MaxAttempts:   4,
		BaseBackoff:   50 * time.Millisecond,
		MaxBackoff:    2 * time.Second,
		MaxRecoveries: 4,
	}
}

// normalized resolves the zero-value-means-default convention.
func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.CallTimeout == 0 {
		p.CallTimeout = def.CallTimeout
	} else if p.CallTimeout < 0 {
		p.CallTimeout = 0
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = def.MaxAttempts
	} else if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = def.BaseBackoff
	} else if p.BaseBackoff < 0 {
		p.BaseBackoff = 0
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.MaxRecoveries == 0 {
		p.MaxRecoveries = def.MaxRecoveries
	} else if p.MaxRecoveries < 0 {
		p.MaxRecoveries = 0
	}
	return p
}

// backoff returns the sleep before retry attempt+1 (attempt counts
// from 1): exponential with half-width jitter, capped at MaxBackoff.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand, mu *sync.Mutex) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	mu.Lock()
	j := rng.Int63n(half + 1)
	mu.Unlock()
	return time.Duration(half + j)
}

// workerFailure marks an error as recoverable by re-dialing the named
// workers and restoring the last checkpoint.
type workerFailure struct {
	workers []int
	err     error
}

func (e *workerFailure) Error() string {
	return fmt.Sprintf("pregel: worker(s) %v failed: %v", e.workers, e.err)
}

func (e *workerFailure) Unwrap() error { return e.err }

// mergeFailures folds per-worker errors into a single error: the
// first permanent (application) error wins; otherwise all recoverable
// failures are merged into one workerFailure.
func mergeFailures(errs []error) error {
	var merged *workerFailure
	for _, err := range errs {
		if err == nil {
			continue
		}
		var wf *workerFailure
		if !errors.As(err, &wf) {
			return err
		}
		if merged == nil {
			merged = &workerFailure{err: wf.err}
		}
		merged.workers = append(merged.workers, wf.workers...)
	}
	if merged == nil {
		return nil
	}
	return merged
}

// Package qcache is a sharded, lock-free, fixed-size cache for
// reachability query answers, sitting in front of the query server's
// merge kernel. It exists because serving traffic is heavily skewed —
// a zipfian population keeps re-asking the same hot (s, t) pairs — and
// because the index is immutable once frozen, so a cached answer can
// never go stale and the cache needs no invalidation path at all (see
// DESIGN.md §10).
//
// The structure is a power-of-two array of power-of-two shards, each
// shard a direct-mapped array of 64-bit slots. A slot packs the whole
// entry — source, target, answer, and an occupancy bit — into one
// uint64 that is read and written with a single atomic operation, so
// a reader can never observe a half-written (pair, answer) binding:
// it sees the old entry, the new entry, or empty. Collisions simply
// overwrite (direct-mapped, no chains, no eviction bookkeeping), which
// bounds memory exactly and keeps both paths to a handful of
// instructions.
package qcache

import (
	"math/bits"
	"sync/atomic"
)

// Slot packing: bit 0 = occupied, bit 1 = answer, bits 2..32 = target,
// bits 33..63 = source. VertexIDs are int32 and non-negative, so 31
// bits per vertex suffice and the occupied bit keeps every live entry
// nonzero (an all-zero word always means "empty slot").
const (
	occupiedBit = 1 << 0
	answerBit   = 1 << 1
	targetShift = 2
	sourceShift = 33
	vertexMask  = 1<<31 - 1
)

func pack(s, t int32, reachable bool) uint64 {
	w := uint64(s)<<sourceShift | uint64(t)<<targetShift | occupiedBit
	if reachable {
		w |= answerBit
	}
	return w
}

// hash mixes the packed pair (without the answer bits) into a
// well-distributed 64-bit value — splitmix64's finalizer, chosen so
// that the shard index (top bits) and slot index (low bits) of
// neighboring vertex pairs land far apart.
func hash(s, t int32) uint64 {
	z := uint64(s)<<32 | uint64(uint32(t))
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Cache is a sharded hot-pair cache. The zero value is not usable;
// call New. A nil *Cache is a valid no-op: Get always misses and Put
// does nothing, so call sites need no cache-enabled branches.
type Cache struct {
	shards    []shard
	shardMask uint64
	slotMask  uint64
	hits      atomic.Int64
	misses    atomic.Int64
}

type shard struct {
	slots []atomic.Uint64
}

// New returns a cache holding about capacity entries across nShards
// shards. Both values are rounded up to powers of two; capacity is at
// least one slot per shard. New(0, n) and a nil cache both disable
// caching.
func New(capacity, nShards int) *Cache {
	if capacity <= 0 {
		return nil
	}
	if nShards < 1 {
		nShards = 1
	}
	nShards = ceilPow2(nShards)
	perShard := ceilPow2((capacity + nShards - 1) / nShards)
	c := &Cache{
		shards:    make([]shard, nShards),
		shardMask: uint64(nShards - 1),
		slotMask:  uint64(perShard - 1),
	}
	for i := range c.shards {
		c.shards[i].slots = make([]atomic.Uint64, perShard)
	}
	return c
}

func ceilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

// slot locates the one slot the pair may live in: top hash bits pick
// the shard, low bits the slot within it.
func (c *Cache) slot(s, t int32) *atomic.Uint64 {
	h := hash(s, t)
	sh := &c.shards[(h>>32)&c.shardMask]
	return &sh.slots[h&c.slotMask]
}

// Get returns the cached answer for (s, t) and whether one was
// present, counting the lookup as a hit or miss.
func (c *Cache) Get(s, t int32) (reachable, ok bool) {
	if c == nil {
		return false, false
	}
	w := c.slot(s, t).Load()
	if w&occupiedBit == 0 || (w>>sourceShift)&vertexMask != uint64(s) || (w>>targetShift)&vertexMask != uint64(t) {
		c.misses.Add(1)
		return false, false
	}
	c.hits.Add(1)
	return w&answerBit != 0, true
}

// Put records the answer for (s, t), overwriting whatever pair shared
// the slot. Answers are immutable per pair (the index never changes),
// so racing Puts for the same pair write the same word.
func (c *Cache) Put(s, t int32, reachable bool) {
	if c == nil {
		return
	}
	c.slot(s, t).Store(pack(s, t, reachable))
}

// Hits returns the number of Get calls answered from the cache.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the number of Get calls not answered from the cache.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Capacity returns the total number of slots (0 for a nil cache).
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return len(c.shards) * int(c.slotMask+1)
}

// Shards returns the shard count (0 for a nil cache).
func (c *Cache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

package qcache

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBasicPutGet(t *testing.T) {
	c := New(1024, 8)
	if _, ok := c.Get(3, 17); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put(3, 17, true)
	c.Put(5, 9, false)
	if r, ok := c.Get(3, 17); !ok || !r {
		t.Fatalf("Get(3,17) = %v,%v after Put(true)", r, ok)
	}
	if r, ok := c.Get(5, 9); !ok || r {
		t.Fatalf("Get(5,9) = %v,%v after Put(false)", r, ok)
	}
	// (t, s) is a different pair than (s, t).
	if _, ok := c.Get(17, 3); ok {
		t.Fatal("reversed pair must not hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestZeroPairDistinctFromEmpty(t *testing.T) {
	c := New(64, 1)
	if _, ok := c.Get(0, 0); ok {
		t.Fatal("(0,0) must miss in an empty cache")
	}
	c.Put(0, 0, false)
	if r, ok := c.Get(0, 0); !ok || r {
		t.Fatalf("Get(0,0) = %v,%v after Put(false)", r, ok)
	}
}

func TestRounding(t *testing.T) {
	c := New(1000, 7)
	if c.Shards() != 8 {
		t.Errorf("Shards() = %d, want 8", c.Shards())
	}
	if c.Capacity() != 8*128 {
		t.Errorf("Capacity() = %d, want %d (7 shards→8, 125/shard→128)", c.Capacity(), 8*128)
	}
	if New(0, 4) != nil {
		t.Error("New(0, …) must return the nil no-op cache")
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	c.Put(1, 2, true)
	if _, ok := c.Get(1, 2); ok {
		t.Error("nil cache must always miss")
	}
	if c.Hits() != 0 || c.Misses() != 0 || c.Capacity() != 0 || c.Shards() != 0 {
		t.Error("nil cache counters must read zero")
	}
}

// TestNoWrongAnswers: under collisions (tiny cache, huge key space) a
// Get may miss, but a hit must always return the answer that was Put
// for exactly that pair. Answers are derived from the pair so any
// cross-pair contamination is detectable.
func TestNoWrongAnswers(t *testing.T) {
	c := New(256, 4)
	answer := func(s, u int32) bool { return (s^u)&1 == 0 }
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		s, u := rng.Int31n(1<<20), rng.Int31n(1<<20)
		if r, ok := c.Get(s, u); ok && r != answer(s, u) {
			t.Fatalf("Get(%d,%d) returned %v, Put stored %v", s, u, r, answer(s, u))
		}
		c.Put(s, u, answer(s, u))
		if r, ok := c.Get(s, u); ok && r != answer(s, u) {
			t.Fatalf("read-back Get(%d,%d) = %v, want %v", s, u, r, answer(s, u))
		}
	}
	if c.Hits() == 0 {
		t.Error("expected some hits over 100k skewed lookups")
	}
}

// TestConcurrent hammers one cache from many goroutines (run under
// -race by make check). Correctness bar: hits never return a wrong
// answer and hits+misses equals the number of Gets.
func TestConcurrent(t *testing.T) {
	c := New(4096, 16)
	answer := func(s, u int32) bool { return (3*s+u)%7 == 0 }
	const workers, each = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				s, u := rng.Int31n(2000), rng.Int31n(2000)
				if r, ok := c.Get(s, u); ok && r != answer(s, u) {
					t.Errorf("Get(%d,%d) = %v, want %v", s, u, r, answer(s, u))
					return
				}
				c.Put(s, u, answer(s, u))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := c.Hits() + c.Misses(); got != workers*each {
		t.Errorf("hits+misses = %d, want %d", got, workers*each)
	}
}

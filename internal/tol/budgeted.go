package tol

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// BuildBudgeted runs TOL with every per-vertex label list capped at
// budget entries per direction — the memory-bounded mode for graphs
// whose full 2-hop cover does not fit. The rounds are identical to
// Build; the only change is at the append: when the pruning rule asks
// for an entry a full list cannot take, the entry is dropped and the
// list is marked incomplete. Dropping never invalidates stored
// entries (they remain factual reachability witnesses), and later
// rounds keep running their pruning tests against the capped lists,
// which can only add entries full TOL would have pruned — also
// factual. See label.Budgeted for why this keeps both query
// directions sound.
//
// The returned index retains g for fallback queries.
func BuildBudgeted(g *graph.Digraph, ord *order.Ordering, budget int, cancel <-chan struct{}) (*label.Budgeted, error) {
	if budget < 1 {
		return nil, fmt.Errorf("tol: label budget %d must be at least 1", budget)
	}
	n := g.NumVertices()
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)
	inFull := make([]bool, n)
	outFull := make([]bool, n)
	for v := range inFull {
		inFull[v], outFull[v] = true, true
	}

	fw := label.NewScratch(n)
	bw := label.NewScratch(n)
	inv := g.Inverse()
	var des, anc []graph.VertexID

	for r := order.Rank(0); int(r) < n; r++ {
		if r%256 == 0 && cancel != nil {
			select {
			case <-cancel:
				return nil, ErrCanceled
			default:
			}
		}
		v := ord.VertexAt(r)
		des, _ = label.TrimmedBFS(g, ord, v, fw, des[:0], nil)
		anc, _ = label.TrimmedBFS(inv, ord, v, bw, anc[:0], nil)
		for _, w := range des {
			if disjoint(out[v], in[w]) {
				if len(in[w]) < budget {
					in[w] = append(in[w], r)
				} else {
					// A needed entry was refused: from here on a miss
					// in L_in(w) proves nothing.
					inFull[w] = false
				}
			}
		}
		for _, w := range anc {
			if disjoint(in[v], out[w]) {
				if len(out[w]) < budget {
					out[w] = append(out[w], r)
				} else {
					outFull[w] = false
				}
			}
		}
	}
	x := label.FromLists(ord, in, out)
	return label.NewBudgeted(x, g, budget, inFull, outFull), nil
}

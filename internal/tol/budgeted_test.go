package tol

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

func randomDigraph(n, m int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)),
			V: graph.VertexID(rng.Intn(n)),
		})
	}
	return graph.FromEdges(n, edges)
}

// TestBudgetedMatchesBFSOracle is the central correctness pin of the
// memory-bounded mode: for every budget — including budget 1, where
// almost every list overflows and nearly all queries take the guarded
// BFS fallback — every pair must answer exactly as an online BFS.
func TestBudgetedMatchesBFSOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Digraph
	}{
		{"paper", graph.PaperExample()},
		{"sparse", randomDigraph(60, 75, 1)},
		{"dense", randomDigraph(40, 400, 2)},
		{"cyclic", randomDigraph(30, 120, 3)},
		{"dag-ish", randomDigraph(80, 100, 4)},
	}
	for _, tc := range graphs {
		ord := order.Compute(tc.g)
		full := Build(tc.g, ord)
		for _, budget := range []int{1, 2, 3, 8, 1 << 20} {
			t.Run(fmt.Sprintf("%s/b%d", tc.name, budget), func(t *testing.T) {
				b, err := BuildBudgeted(tc.g, ord, budget, nil)
				if err != nil {
					t.Fatalf("BuildBudgeted: %v", err)
				}
				n := tc.g.NumVertices()
				if budget >= n {
					// An effectively unbounded budget must reproduce the
					// full TOL index exactly and overflow nowhere.
					if d := full.Diff(b.Index()); d != "" {
						t.Fatalf("unbounded budget diverged from TOL: %s", d)
					}
					in, out := b.Overflowed()
					if in != 0 || out != 0 {
						t.Fatalf("unbounded budget overflowed: in=%d out=%d", in, out)
					}
				}
				if got := b.Index().MaxLabelSize(); got > budget {
					t.Fatalf("MaxLabelSize = %d exceeds budget %d", got, budget)
				}
				for s := graph.VertexID(0); int(s) < n; s++ {
					for u := graph.VertexID(0); int(u) < n; u++ {
						want := graph.Reachable(tc.g, s, u)
						if got := b.Reachable(s, u); got != want {
							t.Fatalf("q(%d,%d) = %v, want %v (budget %d)", s, u, got, want, budget)
						}
					}
				}
			})
		}
	}
}

func TestBudgetedBatchMatchesSingle(t *testing.T) {
	g := randomDigraph(50, 200, 9)
	b, err := BuildBudgeted(g, order.Compute(g), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	batch := make([]label.Pair, 0, 300)
	for i := 0; i < 300; i++ {
		batch = append(batch, label.Pair{
			S: graph.VertexID(rng.Intn(50)), T: graph.VertexID(rng.Intn(50)),
		})
	}
	got := b.ReachableBatch(batch)
	for i, p := range batch {
		if want := b.Reachable(p.S, p.T); got[i] != want {
			t.Fatalf("batch[%d] q(%d,%d) = %v, want %v", i, p.S, p.T, got[i], want)
		}
	}
}

func TestBudgetedRejectsBadBudget(t *testing.T) {
	g := graph.PaperExample()
	for _, budget := range []int{0, -3} {
		if _, err := BuildBudgeted(g, order.Compute(g), budget, nil); err == nil {
			t.Errorf("budget %d accepted", budget)
		}
	}
}

func TestBudgetedConcurrentQueries(t *testing.T) {
	// The fallback-BFS scratch is pooled; hammer it from multiple
	// goroutines (run with -race in CI) against precomputed answers.
	g := randomDigraph(40, 150, 11)
	ord := order.Compute(g)
	b, err := BuildBudgeted(g, ord, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	want := make([]bool, n*n)
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			want[s*n+u] = graph.Reachable(g, graph.VertexID(s), graph.VertexID(u))
		}
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 4000; i++ {
				s, u := rng.Intn(n), rng.Intn(n)
				if got := b.Reachable(graph.VertexID(s), graph.VertexID(u)); got != want[s*n+u] {
					done <- fmt.Errorf("worker %d: q(%d,%d) = %v, want %v", w, s, u, got, want[s*n+u])
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package tol

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Dynamic maintenance. The TOL line of work (Zhu et al., SIGMOD 2014)
// maintains the index under edge updates instead of rebuilding; the
// paper reproduced here treats *distributed* dynamic maintenance as
// future work (§II-B Remark) but depends on TOL-the-system, so the
// centralized maintenance lives here as part of the substrate.
//
// The implementation exploits the fixed-point characterization that
// also drives the static algorithms (Lemma 1): under a fixed total
// order,
//
//	x ∈ L_in(y)  ⇔  x→y  ∧  L_out(x)|<r ∩ L_in(y)|<r = ∅,
//
// where |<r restricts to ranks above x's rank r. Inserting or
// deleting an edge (u,v) can only change walks that traverse it, so
// only pairs (x, y) with x ∈ ANC(u) and y ∈ DES(v) can change
// membership — in either label direction. DynamicIndex re-evaluates
// exactly those pairs in increasing rank order, which keeps the
// characterization's precondition (all higher-rank labels final)
// intact. The result is bit-identical to a fresh TOL build under the
// same order, which the tests verify exhaustively.
//
// The adjacency is maintained incrementally as sorted neighbor lists
// — an update costs O(deg) for the graph edit plus the localized
// repair sweep, never a full CSR rebuild. Only the rebuild fallback
// (an update whose affected sets cover most of the graph, where the
// incremental sweep would cost more than a fresh build) materializes
// a Digraph, and UpdateStats reports how often each path ran so a
// serving tier can export both as counters.
//
// As in the original TOL, the total order is frozen at construction:
// updates change degrees but not ranks. Queries remain exact; only
// label sizes may drift from the degree heuristic's optimum until a
// Rebuild.

// DynamicIndex is a reachability index that supports edge insertions
// and deletions.
type DynamicIndex struct {
	n int
	m int64
	// outAdj[v], inAdj[v]: sorted neighbor lists, maintained in place.
	outAdj, inAdj [][]graph.VertexID
	ord           *order.Ordering
	// in[y], out[y]: rank-sorted label lists.
	in, out [][]order.Rank

	stats UpdateStats
}

// UpdateStats counts how the maintainer absorbed updates: Repairs is
// the number of localized incremental sweeps, Rebuilds the number of
// full-build fallbacks (updates whose affected sets covered most of
// the graph). No-op updates (inserting a present edge, deleting a
// missing one) count in neither.
type UpdateStats struct {
	Repairs  int64
	Rebuilds int64
}

// NewDynamic builds a dynamic index over g with the degree-product
// order of the initial graph.
func NewDynamic(g *graph.Digraph) *DynamicIndex {
	ord := order.Compute(g)
	n := g.NumVertices()
	idx := Build(g, ord)
	d := &DynamicIndex{
		n:      n,
		m:      g.NumEdges(),
		outAdj: make([][]graph.VertexID, n),
		inAdj:  make([][]graph.VertexID, n),
		ord:    ord,
		in:     make([][]order.Rank, n),
		out:    make([][]order.Rank, n),
	}
	for v := graph.VertexID(0); int(v) < n; v++ {
		d.outAdj[v] = append([]graph.VertexID(nil), g.OutNeighbors(v)...)
		d.inAdj[v] = append([]graph.VertexID(nil), g.InNeighbors(v)...)
		d.in[v] = append([]order.Rank(nil), idx.InLabels(v)...)
		d.out[v] = append([]order.Rank(nil), idx.OutLabels(v)...)
	}
	return d
}

// Graph materializes the current graph as an immutable Digraph. The
// adjacency is maintained incrementally, so this costs a full CSR
// construction — call it for inspection and oracles, not per update.
func (d *DynamicIndex) Graph() *graph.Digraph {
	return graph.FromEdges(d.n, d.edges())
}

func (d *DynamicIndex) edges() []graph.Edge {
	edges := make([]graph.Edge, 0, d.m)
	for u := graph.VertexID(0); int(u) < d.n; u++ {
		for _, v := range d.outAdj[u] {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return edges
}

// NumVertices returns the (fixed) vertex count.
func (d *DynamicIndex) NumVertices() int { return d.n }

// NumEdges returns the current number of distinct directed edges.
func (d *DynamicIndex) NumEdges() int64 { return d.m }

// UpdateStats reports the repair/rebuild tally so far.
func (d *DynamicIndex) UpdateStats() UpdateStats { return d.stats }

// Ordering returns the frozen total order.
func (d *DynamicIndex) Ordering() *order.Ordering { return d.ord }

// Reachable answers q(s, t) from the maintained labels.
func (d *DynamicIndex) Reachable(s, t graph.VertexID) bool {
	a, b := d.out[s], d.in[t]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Snapshot materializes the current labels as an immutable Index.
func (d *DynamicIndex) Snapshot() *label.Index {
	return label.FromLists(d.ord, d.in, d.out)
}

// InsertEdge adds the directed edge (u, v) and repairs the labels.
// Inserting an existing edge is a no-op.
func (d *DynamicIndex) InsertEdge(u, v graph.VertexID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if contains(d.outAdj[u], v) {
		return nil
	}
	d.outAdj[u] = sortedInsert(d.outAdj[u], v)
	d.inAdj[v] = sortedInsert(d.inAdj[v], u)
	d.m++
	d.repair(u, v)
	return nil
}

// DeleteEdge removes the directed edge (u, v) and repairs the labels.
// Deleting a missing edge is a no-op.
func (d *DynamicIndex) DeleteEdge(u, v graph.VertexID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if !contains(d.outAdj[u], v) {
		return nil
	}
	d.outAdj[u] = sortedRemove(d.outAdj[u], v)
	d.inAdj[v] = sortedRemove(d.inAdj[v], u)
	d.m--
	d.repair(u, v)
	return nil
}

func (d *DynamicIndex) check(u, v graph.VertexID) error {
	if int(u) >= d.n || u < 0 || int(v) >= d.n || v < 0 {
		return fmt.Errorf("tol: edge (%d,%d) out of range for %d vertices", u, v, d.n)
	}
	return nil
}

// bfsFrom runs a BFS over the adjacency in adj starting at src,
// additionally traversing extra.U → extra.V as if present (for
// deletions, whose removed edge's old walks must still be
// considered), and reports every reached vertex including src.
func (d *DynamicIndex) bfsFrom(adj [][]graph.VertexID, src graph.VertexID, extra graph.Edge, visit func(graph.VertexID)) {
	seen := make([]bool, d.n)
	queue := []graph.VertexID{src}
	seen[src] = true
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		visit(w)
		push := func(x graph.VertexID) {
			if !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
		for _, x := range adj[w] {
			push(x)
		}
		if w == extra.U {
			push(extra.V)
		}
	}
}

// repair re-evaluates label membership for every pair that an update
// of edge (u, v) can affect: sources A = ANC(u), targets D = DES(v),
// both in the *union* of the old and new graphs (computed on the new
// adjacency plus the updated edge; for a deletion the old-graph sets
// are recovered by traversing the deleted edge as if present, and
// re-evaluating a pair that did not change is harmless, so the sets
// are taken generously).
func (d *DynamicIndex) repair(u, v graph.VertexID) {
	n := d.n
	var anc, des []graph.VertexID
	d.bfsFrom(d.inAdj, u, graph.Edge{U: v, V: u}, func(w graph.VertexID) { anc = append(anc, w) })
	d.bfsFrom(d.outAdj, v, graph.Edge{U: u, V: v}, func(w graph.VertexID) { des = append(des, w) })

	// The incremental sweep costs O(|A|·|D|·Δ) pair tests plus
	// min(|A|,|D|) BFS traversals: a bargain for localized updates
	// (DAG-like regions, or growth workloads where one side is a
	// handful of vertices) but worse than a fresh build when the
	// update touches a giant SCC or both affected sets span the
	// graph. Fall back to the rebuild in those regimes — the order
	// stays frozen either way, so the resulting labels are identical.
	bfsSide := len(anc)
	if len(des) < bfsSide {
		bfsSide = len(des)
	}
	if int64(len(anc))*int64(len(des)) > 8*(int64(n)+d.m) ||
		int64(bfsSide) > max(int64(n)/64, 32) {
		d.stats.Rebuilds++
		idx := Build(d.Graph(), d.ord)
		for w := graph.VertexID(0); int(w) < n; w++ {
			d.in[w] = append(d.in[w][:0], idx.InLabels(w)...)
			d.out[w] = append(d.out[w][:0], idx.OutLabels(w)...)
		}
		return
	}
	d.stats.Repairs++

	inA := make([]bool, n)
	for _, x := range anc {
		inA[x] = true
	}
	inD := make([]bool, n)
	for _, y := range des {
		inD[y] = true
	}

	// Fresh A×D reachability over the new graph (exact even for
	// deletions, where the old index cannot answer reach'). One
	// relation serves both label directions — "x reaches y" read from
	// a source x ∈ A is the same fact as "y is reached by x" read
	// from a target y ∈ D — so BFS from whichever side is smaller:
	// forward from each x ∈ A recording hits in D, or backward from
	// each y ∈ D recording hits in A.
	none := graph.Edge{U: -1, V: -1}
	reach := make(map[graph.VertexID]map[graph.VertexID]bool, bfsSide)
	var reachAD func(x, y graph.VertexID) bool
	if len(anc) <= len(des) {
		for _, x := range anc {
			m := make(map[graph.VertexID]bool)
			d.bfsFrom(d.outAdj, x, none, func(w graph.VertexID) {
				if inD[w] {
					m[w] = true
				}
			})
			reach[x] = m
		}
		reachAD = func(x, y graph.VertexID) bool { return reach[x][y] }
	} else {
		for _, y := range des {
			m := make(map[graph.VertexID]bool)
			d.bfsFrom(d.inAdj, y, none, func(w graph.VertexID) {
				if inA[w] {
					m[w] = true
				}
			})
			reach[y] = m
		}
		reachAD = func(x, y graph.VertexID) bool { return reach[y][x] }
	}

	// Rank-ascending sweep: at rank r the labels below r are final.
	ranks := make([]order.Rank, 0, len(anc)+len(des))
	for _, x := range anc {
		ranks = append(ranks, d.ord.RankOf(x))
	}
	for _, y := range des {
		if !inA[y] { // avoid double-processing vertices in both sets
			ranks = append(ranks, d.ord.RankOf(y))
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	for _, r := range ranks {
		x := d.ord.VertexAt(r)
		if inA[x] {
			// x labels in-direction targets in D.
			for _, y := range des {
				want := reachAD(x, y) && disjointBelow(d.out[x], d.in[y], r)
				d.in[y] = setMembership(d.in[y], r, want)
			}
		}
		if inD[x] {
			// x labels out-direction targets in A.
			for _, w := range anc {
				want := reachAD(w, x) && disjointBelow(d.out[w], d.in[x], r)
				d.out[w] = setMembership(d.out[w], r, want)
			}
		}
	}
}

// disjointBelow mirrors drl's refinement test: no common rank < bound.
func disjointBelow(a, b []order.Rank, bound order.Rank) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i] < bound && b[j] < bound {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// setMembership inserts or removes rank r in a sorted list.
func setMembership(list []order.Rank, r order.Rank, want bool) []order.Rank {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= r })
	present := i < len(list) && list[i] == r
	switch {
	case want && !present:
		list = append(list, 0)
		copy(list[i+1:], list[i:])
		list[i] = r
	case !want && present:
		list = append(list[:i], list[i+1:]...)
	}
	return list
}

func sortedInsert(vs []graph.VertexID, v graph.VertexID) []graph.VertexID {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	return vs
}

func sortedRemove(vs []graph.VertexID, v graph.VertexID) []graph.VertexID {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	if i < len(vs) && vs[i] == v {
		vs = append(vs[:i], vs[i+1:]...)
	}
	return vs
}

func contains(vs []graph.VertexID, v graph.VertexID) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	return i < len(vs) && vs[i] == v
}

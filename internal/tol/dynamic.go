package tol

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// Dynamic maintenance. The TOL line of work (Zhu et al., SIGMOD 2014)
// maintains the index under edge updates instead of rebuilding; the
// paper reproduced here treats *distributed* dynamic maintenance as
// future work (§II-B Remark) but depends on TOL-the-system, so the
// centralized maintenance lives here as part of the substrate.
//
// The implementation exploits the fixed-point characterization that
// also drives the static algorithms (Lemma 1): under a fixed total
// order,
//
//	x ∈ L_in(y)  ⇔  x→y  ∧  L_out(x)|<r ∩ L_in(y)|<r = ∅,
//
// where |<r restricts to ranks above x's rank r. Inserting or
// deleting an edge (u,v) can only change walks that traverse it, so
// only pairs (x, y) with x ∈ ANC(u) and y ∈ DES(v) can change
// membership — in either label direction. DynamicIndex re-evaluates
// exactly those pairs in increasing rank order, which keeps the
// characterization's precondition (all higher-rank labels final)
// intact. The result is bit-identical to a fresh TOL build under the
// same order, which the tests verify exhaustively.
//
// As in the original TOL, the total order is frozen at construction:
// updates change degrees but not ranks. Queries remain exact; only
// label sizes may drift from the degree heuristic's optimum until a
// Rebuild.

// DynamicIndex is a reachability index that supports edge insertions
// and deletions.
type DynamicIndex struct {
	cur *graph.Digraph
	ord *order.Ordering
	// in[y], out[y]: rank-sorted label lists.
	in, out [][]order.Rank
}

// NewDynamic builds a dynamic index over g with the degree-product
// order of the initial graph.
func NewDynamic(g *graph.Digraph) *DynamicIndex {
	ord := order.Compute(g)
	n := g.NumVertices()
	idx := Build(g, ord)
	d := &DynamicIndex{
		cur: g,
		ord: ord,
		in:  make([][]order.Rank, n),
		out: make([][]order.Rank, n),
	}
	for v := graph.VertexID(0); int(v) < n; v++ {
		d.in[v] = append([]order.Rank(nil), idx.InLabels(v)...)
		d.out[v] = append([]order.Rank(nil), idx.OutLabels(v)...)
	}
	return d
}

// Graph returns the current graph.
func (d *DynamicIndex) Graph() *graph.Digraph { return d.cur }

// Reachable answers q(s, t) from the maintained labels.
func (d *DynamicIndex) Reachable(s, t graph.VertexID) bool {
	a, b := d.out[s], d.in[t]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Snapshot materializes the current labels as an immutable Index.
func (d *DynamicIndex) Snapshot() *label.Index {
	return label.FromLists(d.ord, d.in, d.out)
}

// InsertEdge adds the directed edge (u, v) and repairs the labels.
// Inserting an existing edge is a no-op.
func (d *DynamicIndex) InsertEdge(u, v graph.VertexID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if contains(d.cur.OutNeighbors(u), v) {
		return nil
	}
	edges := d.cur.Edges(nil)
	edges = append(edges, graph.Edge{U: u, V: v})
	d.cur = graph.FromEdges(d.cur.NumVertices(), edges)
	d.repair(u, v)
	return nil
}

// DeleteEdge removes the directed edge (u, v) and repairs the labels.
// Deleting a missing edge is a no-op.
func (d *DynamicIndex) DeleteEdge(u, v graph.VertexID) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	if !contains(d.cur.OutNeighbors(u), v) {
		return nil
	}
	old := d.cur.Edges(nil)
	edges := old[:0]
	removed := false
	for _, e := range old {
		if !removed && e.U == u && e.V == v {
			removed = true
			continue
		}
		edges = append(edges, e)
	}
	d.cur = graph.FromEdges(d.cur.NumVertices(), edges)
	d.repair(u, v)
	return nil
}

func (d *DynamicIndex) check(u, v graph.VertexID) error {
	n := d.cur.NumVertices()
	if int(u) >= n || u < 0 || int(v) >= n || v < 0 {
		return fmt.Errorf("tol: edge (%d,%d) out of range for %d vertices", u, v, n)
	}
	return nil
}

// repair re-evaluates label membership for every pair that an update
// of edge (u, v) can affect: sources A = ANC(u), targets D = DES(v),
// both in the *union* of the old and new graphs (computed on the new
// graph plus the endpoints; for a deletion the old-graph sets are
// supersets, and re-evaluating a pair that did not change is
// harmless, so the sets are taken generously).
func (d *DynamicIndex) repair(u, v graph.VertexID) {
	n := d.cur.NumVertices()
	// Affected sets on the new graph; for deletions the broken pairs
	// are those that could reach through (u,v) before, which is still
	// ANC(u) × DES(v) on the old graph — ANC/DES only shrink, but any
	// pair that left the sets can no longer have changed membership
	// unless it used the edge, in which case it is still in
	// ANC(u) × DES(v) of the *new* graph union {u} × {v} closure...
	// To stay safely conservative both computations run on the graph
	// that contains the edge: for insertion that is the new graph,
	// for deletion the sets are augmented with the old labels' view
	// by also traversing the deleted edge.
	anc := markSet(d.cur.Inverse(), u, n, graph.Edge{U: v, V: u})
	des := markSet(d.cur, v, n, graph.Edge{U: u, V: v})

	// The incremental sweep costs O(|A|·|D|·Δ + |A|·|E|): a bargain
	// for localized updates (DAG-like regions) but worse than a fresh
	// build when the update touches a giant SCC. Fall back to the
	// rebuild in that regime — the order stays frozen either way, so
	// the resulting labels are identical.
	if int64(len(anc))*int64(len(des)) > 8*(int64(n)+d.cur.NumEdges()) {
		idx := Build(d.cur, d.ord)
		for w := graph.VertexID(0); int(w) < n; w++ {
			d.in[w] = append(d.in[w][:0], idx.InLabels(w)...)
			d.out[w] = append(d.out[w][:0], idx.OutLabels(w)...)
		}
		return
	}

	inA := make([]bool, n)
	for _, x := range anc {
		inA[x] = true
	}
	inD := make([]bool, n)
	for _, y := range des {
		inD[y] = true
	}

	// Fresh reachability from every affected source over the new
	// graph, restricted to targets in D (one BFS per source; exact
	// for deletions, where the old index cannot answer reach').
	reachD := make(map[graph.VertexID]map[graph.VertexID]bool, len(anc))
	for _, x := range anc {
		m := make(map[graph.VertexID]bool)
		graph.BFS(d.cur, x, func(w graph.VertexID) bool {
			if inD[w] {
				m[w] = true
			}
			return true
		})
		reachD[x] = m
	}
	// And reachability *to* every affected target from sources in A,
	// for the out-label direction (x ∈ D as the labeling vertex,
	// w ∈ A as the labeled one: does w reach x?).
	reachA := make(map[graph.VertexID]map[graph.VertexID]bool, len(des))
	inv := d.cur.Inverse()
	for _, y := range des {
		m := make(map[graph.VertexID]bool)
		graph.BFS(inv, y, func(w graph.VertexID) bool {
			if inA[w] {
				m[w] = true
			}
			return true
		})
		reachA[y] = m
	}

	// Rank-ascending sweep: at rank r the labels below r are final.
	ranks := make([]order.Rank, 0, len(anc)+len(des))
	for _, x := range anc {
		ranks = append(ranks, d.ord.RankOf(x))
	}
	for _, y := range des {
		if !inA[y] { // avoid double-processing vertices in both sets
			ranks = append(ranks, d.ord.RankOf(y))
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	for _, r := range ranks {
		x := d.ord.VertexAt(r)
		if inA[x] {
			// x labels in-direction targets in D.
			for _, y := range des {
				want := reachD[x][y] && disjointBelow(d.out[x], d.in[y], r)
				d.in[y] = setMembership(d.in[y], r, want)
			}
		}
		if inD[x] {
			// x labels out-direction targets in A.
			for _, w := range anc {
				want := reachA[x][w] && disjointBelow(d.out[w], d.in[x], r)
				d.out[w] = setMembership(d.out[w], r, want)
			}
		}
	}
}

// markSet collects the BFS closure of src over dir, additionally
// traversing extra (the updated edge) as if present — this makes the
// affected sets valid for deletions, where the removed edge's old
// walks must still be considered.
func markSet(dir *graph.Digraph, src graph.VertexID, n int, extra graph.Edge) []graph.VertexID {
	seen := make([]bool, n)
	queue := []graph.VertexID{src}
	seen[src] = true
	var out []graph.VertexID
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		out = append(out, w)
		push := func(x graph.VertexID) {
			if !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
		for _, x := range dir.OutNeighbors(w) {
			push(x)
		}
		if w == extra.U {
			push(extra.V)
		}
	}
	return out
}

// disjointBelow mirrors drl's refinement test: no common rank < bound.
func disjointBelow(a, b []order.Rank, bound order.Rank) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) && a[i] < bound && b[j] < bound {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// setMembership inserts or removes rank r in a sorted list.
func setMembership(list []order.Rank, r order.Rank, want bool) []order.Rank {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= r })
	present := i < len(list) && list[i] == r
	switch {
	case want && !present:
		list = append(list, 0)
		copy(list[i+1:], list[i:])
		list[i] = r
	case !want && present:
		list = append(list[:i], list[i+1:]...)
	}
	return list
}

func contains(vs []graph.VertexID, v graph.VertexID) bool {
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= v })
	return i < len(vs) && vs[i] == v
}

package tol

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestDynamicMatchesRebuild applies random edge insertions and
// deletions and verifies after every update that the maintained
// labels are bit-identical to a from-scratch TOL build over the
// current graph under the frozen order.
func TestDynamicMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		n := 12 + rng.Intn(18)
		var edges []graph.Edge
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(rng.Intn(n)),
				V: graph.VertexID(rng.Intn(n)),
			})
		}
		g := graph.FromEdges(n, edges)
		d := NewDynamic(g)

		for op := 0; op < 40; op++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			var err error
			if rng.Intn(2) == 0 {
				err = d.InsertEdge(u, v)
			} else {
				err = d.DeleteEdge(u, v)
			}
			if err != nil {
				t.Fatal(err)
			}
			want := Build(d.Graph(), d.ord)
			got := d.Snapshot()
			if !want.Equal(got) {
				t.Fatalf("trial %d op %d: labels diverged after update (%d,%d): %s",
					trial, op, u, v, want.Diff(got))
			}
		}
	}
}

// TestDynamicQueries checks the maintained index against the BFS
// oracle across a mutation sequence on the paper example.
func TestDynamicQueries(t *testing.T) {
	d := NewDynamic(graph.PaperExample())
	ops := []struct {
		insert bool
		u, v   graph.VertexID
	}{
		{true, 9, 0},  // v10 → v1: v10 suddenly reaches almost everything
		{false, 1, 0}, // remove v2 → v1
		{false, 5, 1}, // remove v6 → v2: breaks the big cycle
		{true, 8, 3},  // v9 → v4
		{false, 0, 7}, // remove v1 → v8
	}
	for _, op := range ops {
		var err error
		if op.insert {
			err = d.InsertEdge(op.u, op.v)
		} else {
			err = d.DeleteEdge(op.u, op.v)
		}
		if err != nil {
			t.Fatal(err)
		}
		g := d.Graph()
		for s := graph.VertexID(0); int(s) < 11; s++ {
			for x := graph.VertexID(0); int(x) < 11; x++ {
				want := graph.Reachable(g, s, x)
				if got := d.Reachable(s, x); got != want {
					t.Fatalf("after op %+v: q(%d,%d) = %v, want %v", op, s, x, got, want)
				}
			}
		}
	}
}

// TestDynamicNoOps: inserting an existing edge or deleting a missing
// one leaves the index untouched.
func TestDynamicNoOps(t *testing.T) {
	g := graph.PaperExample()
	d := NewDynamic(g)
	before := d.Snapshot()
	if err := d.InsertEdge(1, 0); err != nil { // v2 → v1 exists
		t.Fatal(err)
	}
	if err := d.DeleteEdge(0, 1); err != nil { // v1 → v2 does not exist
		t.Fatal(err)
	}
	if !before.Equal(d.Snapshot()) {
		t.Fatal("no-op updates changed the index")
	}
	if d.Graph().NumEdges() != 15 {
		t.Fatalf("edge count changed: %d", d.Graph().NumEdges())
	}
}

func TestDynamicRangeErrors(t *testing.T) {
	d := NewDynamic(graph.PaperExample())
	if err := d.InsertEdge(0, 42); err == nil {
		t.Error("expected range error on insert")
	}
	if err := d.DeleteEdge(-1, 0); err == nil {
		t.Error("expected range error on delete")
	}
}

// TestDynamicInsertDeleteRoundTrip: deleting a freshly inserted edge
// restores the original index exactly.
func TestDynamicInsertDeleteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.PaperExample()
	d := NewDynamic(g)
	before := d.Snapshot()
	for i := 0; i < 25; i++ {
		u := graph.VertexID(rng.Intn(11))
		v := graph.VertexID(rng.Intn(11))
		if contains(g.OutNeighbors(u), v) {
			continue
		}
		if err := d.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if err := d.DeleteEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if !before.Equal(d.Snapshot()) {
			t.Fatalf("insert+delete of (%d,%d) did not round-trip: %s",
				u, v, before.Diff(d.Snapshot()))
		}
	}
}

// TestDynamicEdgeCases covers the update inputs that don't appear in
// the random suites: self-loops, duplicate inserts, deleting an edge
// that was never inserted, and mixing these with real updates.
func TestDynamicEdgeCases(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	d := NewDynamic(g)
	check := func(step string) {
		t.Helper()
		cur := d.Graph()
		want := Build(cur, d.ord)
		if got := d.Snapshot(); !want.Equal(got) {
			t.Fatalf("%s: labels diverged: %s", step, want.Diff(got))
		}
		for s := graph.VertexID(0); int(s) < 6; s++ {
			for x := graph.VertexID(0); int(x) < 6; x++ {
				if got, want := d.Reachable(s, x), graph.Reachable(cur, s, x); got != want {
					t.Fatalf("%s: q(%d,%d) = %v, want %v", step, s, x, got, want)
				}
			}
		}
	}

	// Self-loop insert: reachability is reflexive already, so labels
	// must still match a fresh build of the graph-with-loop.
	if err := d.InsertEdge(2, 2); err != nil {
		t.Fatal(err)
	}
	check("insert self-loop (2,2)")
	// Duplicate insert of the self-loop and of a plain edge: no-ops.
	before := d.Snapshot()
	m := d.NumEdges()
	if err := d.InsertEdge(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !before.Equal(d.Snapshot()) || d.NumEdges() != m {
		t.Fatal("duplicate inserts changed the index")
	}
	// Delete of a never-inserted edge, including a missing self-loop.
	if err := d.DeleteEdge(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteEdge(4, 4); err != nil {
		t.Fatal(err)
	}
	if !before.Equal(d.Snapshot()) || d.NumEdges() != m {
		t.Fatal("deletes of missing edges changed the index")
	}
	// Self-loop delete round-trips.
	if err := d.DeleteEdge(2, 2); err != nil {
		t.Fatal(err)
	}
	check("delete self-loop (2,2)")
	// Self-loop on an isolated vertex.
	if err := d.InsertEdge(5, 5); err != nil {
		t.Fatal(err)
	}
	check("insert self-loop on isolated vertex")
	// None of the above were no-ops counted as repairs beyond the real
	// updates: 3 effective updates so far.
	if s := d.UpdateStats(); s.Repairs+s.Rebuilds != 3 {
		t.Fatalf("update stats %+v, want 3 effective updates", s)
	}
}

// TestDynamicChainsAcrossThreshold builds and breaks a long chain so
// single updates swing between the localized-repair and the
// rebuild-fallback regime, checking exactness on both sides.
func TestDynamicChainsAcrossThreshold(t *testing.T) {
	// Two long paths; bridging them makes ANC×DES ≈ (n/2)² which
	// overwhelms 8·(n+m) and must take the rebuild path, while leaf
	// updates stay in the repair path.
	const half = 60
	var edges []graph.Edge
	for i := 0; i < half-1; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)})
		edges = append(edges, graph.Edge{U: graph.VertexID(half + i), V: graph.VertexID(half + i + 1)})
	}
	d := NewDynamic(graph.FromEdges(2*half, edges))

	check := func(step string) {
		t.Helper()
		want := Build(d.Graph(), d.ord)
		if got := d.Snapshot(); !want.Equal(got) {
			t.Fatalf("%s: labels diverged: %s", step, want.Diff(got))
		}
	}

	// Local update: a skip-edge from the chain head has ANC = {head},
	// so the affected product stays tiny and must repair in place.
	if err := d.InsertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	check("skip-edge insert")
	if err := d.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	check("skip-edge delete")
	if d.UpdateStats().Rebuilds != 0 {
		t.Fatalf("chain-local updates took the rebuild path: %+v", d.UpdateStats())
	}

	// Bridge the chains end-to-start: ANC(tail₁)=chain 1, DES(head₂)=
	// chain 2, product ≈ 3600 > 8·(120+119) ≈ 1912 → rebuild.
	if err := d.InsertEdge(half-1, half); err != nil {
		t.Fatal(err)
	}
	check("bridge chains")
	if got := d.UpdateStats().Rebuilds; got != 1 {
		t.Fatalf("bridge insert: rebuilds = %d, want 1", got)
	}
	if !d.Reachable(0, 2*half-1) {
		t.Fatal("bridge did not connect the chains")
	}

	// Break the bridge: same affected sets, rebuild again.
	if err := d.DeleteEdge(half-1, half); err != nil {
		t.Fatal(err)
	}
	check("break bridge")
	if got := d.UpdateStats().Rebuilds; got != 2 {
		t.Fatalf("bridge delete: rebuilds = %d, want 2", got)
	}
	if d.Reachable(0, 2*half-1) {
		t.Fatal("stale reachability across the removed bridge")
	}
}

// TestDynamicRebuildThreshold is the regression test for the public
// doc promise that an update touching most of the graph falls back to
// a rebuild: it pins the threshold inequality itself.
func TestDynamicRebuildThreshold(t *testing.T) {
	const half = 60
	var edges []graph.Edge
	for i := 0; i < half-1; i++ {
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)})
		edges = append(edges, graph.Edge{U: graph.VertexID(half + i), V: graph.VertexID(half + i + 1)})
	}
	d := NewDynamic(graph.FromEdges(2*half, edges))
	n, m := int64(d.NumVertices()), d.NumEdges()
	// The bridge's affected sets are exactly the two chains.
	anc, des := int64(half), int64(half)
	if anc*des <= 8*(n+m+1) {
		t.Fatalf("test graph no longer crosses the threshold: %d ≤ %d", anc*des, 8*(n+m+1))
	}
	if err := d.InsertEdge(half-1, half); err != nil {
		t.Fatal(err)
	}
	if s := d.UpdateStats(); s.Rebuilds != 1 || s.Repairs != 0 {
		t.Fatalf("threshold did not trigger the rebuild fallback: %+v", s)
	}
	want := Build(d.Graph(), d.ord)
	if got := d.Snapshot(); !want.Equal(got) {
		t.Fatalf("rebuild fallback produced different labels: %s", want.Diff(got))
	}
}

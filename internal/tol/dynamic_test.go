package tol

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestDynamicMatchesRebuild applies random edge insertions and
// deletions and verifies after every update that the maintained
// labels are bit-identical to a from-scratch TOL build over the
// current graph under the frozen order.
func TestDynamicMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		n := 12 + rng.Intn(18)
		var edges []graph.Edge
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(rng.Intn(n)),
				V: graph.VertexID(rng.Intn(n)),
			})
		}
		g := graph.FromEdges(n, edges)
		d := NewDynamic(g)

		for op := 0; op < 40; op++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			var err error
			if rng.Intn(2) == 0 {
				err = d.InsertEdge(u, v)
			} else {
				err = d.DeleteEdge(u, v)
			}
			if err != nil {
				t.Fatal(err)
			}
			want := Build(d.Graph(), d.ord)
			got := d.Snapshot()
			if !want.Equal(got) {
				t.Fatalf("trial %d op %d: labels diverged after update (%d,%d): %s",
					trial, op, u, v, want.Diff(got))
			}
		}
	}
}

// TestDynamicQueries checks the maintained index against the BFS
// oracle across a mutation sequence on the paper example.
func TestDynamicQueries(t *testing.T) {
	d := NewDynamic(graph.PaperExample())
	ops := []struct {
		insert bool
		u, v   graph.VertexID
	}{
		{true, 9, 0},  // v10 → v1: v10 suddenly reaches almost everything
		{false, 1, 0}, // remove v2 → v1
		{false, 5, 1}, // remove v6 → v2: breaks the big cycle
		{true, 8, 3},  // v9 → v4
		{false, 0, 7}, // remove v1 → v8
	}
	for _, op := range ops {
		var err error
		if op.insert {
			err = d.InsertEdge(op.u, op.v)
		} else {
			err = d.DeleteEdge(op.u, op.v)
		}
		if err != nil {
			t.Fatal(err)
		}
		g := d.Graph()
		for s := graph.VertexID(0); int(s) < 11; s++ {
			for x := graph.VertexID(0); int(x) < 11; x++ {
				want := graph.Reachable(g, s, x)
				if got := d.Reachable(s, x); got != want {
					t.Fatalf("after op %+v: q(%d,%d) = %v, want %v", op, s, x, got, want)
				}
			}
		}
	}
}

// TestDynamicNoOps: inserting an existing edge or deleting a missing
// one leaves the index untouched.
func TestDynamicNoOps(t *testing.T) {
	g := graph.PaperExample()
	d := NewDynamic(g)
	before := d.Snapshot()
	if err := d.InsertEdge(1, 0); err != nil { // v2 → v1 exists
		t.Fatal(err)
	}
	if err := d.DeleteEdge(0, 1); err != nil { // v1 → v2 does not exist
		t.Fatal(err)
	}
	if !before.Equal(d.Snapshot()) {
		t.Fatal("no-op updates changed the index")
	}
	if d.Graph().NumEdges() != 15 {
		t.Fatalf("edge count changed: %d", d.Graph().NumEdges())
	}
}

func TestDynamicRangeErrors(t *testing.T) {
	d := NewDynamic(graph.PaperExample())
	if err := d.InsertEdge(0, 42); err == nil {
		t.Error("expected range error on insert")
	}
	if err := d.DeleteEdge(-1, 0); err == nil {
		t.Error("expected range error on delete")
	}
}

// TestDynamicInsertDeleteRoundTrip: deleting a freshly inserted edge
// restores the original index exactly.
func TestDynamicInsertDeleteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.PaperExample()
	d := NewDynamic(g)
	before := d.Snapshot()
	for i := 0; i < 25; i++ {
		u := graph.VertexID(rng.Intn(11))
		v := graph.VertexID(rng.Intn(11))
		if contains(g.OutNeighbors(u), v) {
			continue
		}
		if err := d.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if err := d.DeleteEdge(u, v); err != nil {
			t.Fatal(err)
		}
		if !before.Equal(d.Snapshot()) {
			t.Fatalf("insert+delete of (%d,%d) did not round-trip: %s",
				u, v, before.Diff(d.Snapshot()))
		}
	}
}

// Package tol implements Total Order Labeling (Algorithm 1 of the
// paper; Zhu et al., SIGMOD 2014), the serial state-of-the-art
// index-only method the distributed algorithms must reproduce exactly.
//
// TOL labels vertices in decreasing total order. In round i it finds
// the descendants and ancestors of the round's vertex v_i in the
// residual graph G_i (G with all previously-labeled vertices removed)
// and adds v_i to the label sets of those that pass the pruning
// operation. Two implementation facts keep this linear-ish in
// practice:
//
//   - The BFS over the residual graph G_i never materializes G_i: it
//     is exactly the trimmed BFS of Algorithm 2, which blocks at
//     vertices of order higher than v_i (all of which were removed in
//     earlier rounds).
//   - Labels are appended in round order, so every label list stays
//     sorted by rank and the pruning test L_out(v) ∩ L_in(w) = ∅ is a
//     linear merge.
package tol

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// ErrCanceled is returned when a build is aborted through a cancel
// channel (the experiment harness's cut-off timer).
var ErrCanceled = errors.New("tol: labeling canceled")

// Build runs TOL on g under ord and returns the index. The graph may
// be cyclic (§II-C); pass order.Compute(g) for the paper's
// degree-product order.
func Build(g *graph.Digraph, ord *order.Ordering) *label.Index {
	idx, _ := BuildCancelable(g, ord, nil)
	return idx
}

// BuildCancelable is Build with a cancellation channel, checked once
// per labeling round.
func BuildCancelable(g *graph.Digraph, ord *order.Ordering, cancel <-chan struct{}) (*label.Index, error) {
	n := g.NumVertices()
	in := make([][]order.Rank, n)
	out := make([][]order.Rank, n)

	fw := label.NewScratch(n)
	bw := label.NewScratch(n)
	inv := g.Inverse()
	var des, anc []graph.VertexID

	for r := order.Rank(0); int(r) < n; r++ {
		if r%256 == 0 && cancel != nil {
			select {
			case <-cancel:
				return nil, ErrCanceled
			default:
			}
		}
		v := ord.VertexAt(r)
		des, _ = label.TrimmedBFS(g, ord, v, fw, des[:0], nil)
		anc, _ = label.TrimmedBFS(inv, ord, v, bw, anc[:0], nil)
		// Pruning operation (lines 7-12). Both tests read the label
		// state of rounds < r only; same-round additions are all of
		// rank r and can never produce an intersection because the
		// opposite side still holds ranks < r at test time.
		for _, w := range des {
			if disjoint(out[v], in[w]) {
				in[w] = append(in[w], r)
			}
		}
		for _, w := range anc {
			if disjoint(in[v], out[w]) {
				out[w] = append(out[w], r)
			}
		}
	}
	return label.FromLists(ord, in, out), nil
}

// BuildDefault runs TOL under the paper's degree-product order.
func BuildDefault(g *graph.Digraph) *label.Index {
	return Build(g, order.Compute(g))
}

// disjoint reports whether two rank-sorted label lists have an empty
// intersection. Entries of the current round's rank may be present on
// one side only, so they never match (see Build).
func disjoint(a, b []order.Rank) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return false
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return true
}

package tol

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/order"
)

// labelVertices translates a rank-based label list back to 1-based
// paper vertex numbers for comparison against Tables II/III.
func labelVertices(ord *order.Ordering, ranks []order.Rank) []int {
	out := make([]int, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, int(ord.VertexAt(r))+1)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperExampleTableII verifies that TOL on the Fig. 1 graph
// reproduces the index of Table II exactly.
func TestPaperExampleTableII(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	idx := Build(g, ord)

	wantIn := [][]int{
		{1}, {2}, {2}, {2}, {1}, {2}, {1}, {1, 8}, {1, 8, 9}, {2, 10}, {2, 11},
	}
	wantOut := [][]int{
		{1}, {1, 2}, {1, 2}, {1, 2}, {1}, {1, 2}, {1}, {8}, {9}, {10}, {11},
	}
	for v := 0; v < 11; v++ {
		gotIn := labelVertices(ord, idx.InLabels(graph.VertexID(v)))
		gotOut := labelVertices(ord, idx.OutLabels(graph.VertexID(v)))
		if !equalInts(gotIn, wantIn[v]) {
			t.Errorf("L_in(v%d) = %v, want %v", v+1, gotIn, wantIn[v])
		}
		if !equalInts(gotOut, wantOut[v]) {
			t.Errorf("L_out(v%d) = %v, want %v", v+1, gotOut, wantOut[v])
		}
	}
}

// TestPaperExampleOrder verifies the ord values of Example 3.
func TestPaperExampleOrder(t *testing.T) {
	g := graph.PaperExample()
	ord := order.Compute(g)
	if got := ord.OrdValue(0); got < 12.08-0.01 || got > 12.08+0.01 {
		t.Errorf("ord(v1) = %.2f, want 12.08", got)
	}
	if got := ord.OrdValue(9); got < 2.83-0.01 || got > 2.83+0.01 {
		t.Errorf("ord(v10) = %.2f, want 2.83", got)
	}
	if ord.RankOf(0) != 0 {
		t.Errorf("v1 should have the highest order, rank = %d", ord.RankOf(0))
	}
	if ord.RankOf(1) != 1 {
		t.Errorf("v2 should have the second highest order, rank = %d", ord.RankOf(1))
	}
}

// TestCoverConstraint checks Definition 3 on the example graph: the
// index answers exactly the BFS ground truth for every vertex pair.
func TestCoverConstraint(t *testing.T) {
	g := graph.PaperExample()
	idx := BuildDefault(g)
	checkCover(t, g, idx)
}

func checkCover(t *testing.T, g *graph.Digraph, idx *label.Index) {
	t.Helper()
	n := g.NumVertices()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			want := graph.Reachable(g, graph.VertexID(s), graph.VertexID(d))
			got := idx.Reachable(graph.VertexID(s), graph.VertexID(d))
			if got != want {
				t.Fatalf("q(%d,%d) = %v, want %v", s, d, got, want)
			}
		}
	}
}

package wal

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzWALRoundTrip drives arbitrary records through the frame codec:
// decode(encode(rec)) must reproduce the record, and re-encoding the
// decoded record must be byte-identical — the property recovery and
// replay determinism lean on (PR-4 strict-decode standard).
func FuzzWALRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), true, int32(0), int32(0))
	f.Add(uint64(7), uint64(9), false, int32(123456), int32(1<<30))
	f.Add(uint64(1<<40), uint64(1<<40)+3, true, int32(1), int32(2))
	f.Fuzz(func(t *testing.T, prevSeq, seq uint64, insert bool, u, v int32) {
		op := OpDelete
		if insert {
			op = OpInsert
		}
		rec := Record{Seq: seq, Op: op, U: graph.VertexID(u), V: graph.VertexID(v)}
		buf, err := AppendRecord(nil, prevSeq, rec)
		if seq <= prevSeq || u < 0 || v < 0 {
			if err == nil {
				t.Fatalf("encoder accepted invalid record %+v after seq %d", rec, prevSeq)
			}
			return
		}
		if err != nil {
			t.Fatalf("encoder rejected valid record %+v: %v", rec, err)
		}
		got, n, err := DecodeRecord(buf, prevSeq)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decoded %d of %d bytes", n, len(buf))
		}
		if got != rec {
			t.Fatalf("round trip drifted: %+v → %+v", rec, got)
		}
		buf2, err := AppendRecord(nil, prevSeq, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatal("re-encoding the decoded record is not byte-identical")
		}
		// A frame is position-independent given prevSeq: appending onto
		// a non-empty buffer encodes the same bytes.
		pre := []byte{0xde, 0xad}
		buf3, err := AppendRecord(append([]byte(nil), pre...), prevSeq, rec)
		if err != nil || !bytes.Equal(buf3[len(pre):], buf) {
			t.Fatalf("appending onto a prefix changed the frame (err=%v)", err)
		}
	})
}

// FuzzWALDecodeArbitrary feeds raw bytes to the frame decoder: it
// must reject or accept without panicking, and anything it accepts
// must re-encode to exactly the bytes it consumed — the decoder never
// mis-parses truncated, corrupt, or non-canonical input into a
// plausible-looking record.
func FuzzWALDecodeArbitrary(f *testing.F) {
	valid, _ := AppendRecord(nil, 4, Record{Seq: 5, Op: OpInsert, U: 3, V: 17})
	f.Add(valid, uint64(4))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0x04, 0x01, 0x01, 0x00, 0x00}, uint64(0))
	f.Add(bytes.Repeat([]byte{0xff}, 40), uint64(9))
	f.Fuzz(func(t *testing.T, data []byte, prevSeq uint64) {
		rec, n, err := DecodeRecord(data, prevSeq)
		if err != nil {
			return // rejected cleanly
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted frame with consumed=%d of %d bytes", n, len(data))
		}
		if rec.Seq <= prevSeq {
			t.Fatalf("decoder produced non-advancing seq %d after %d", rec.Seq, prevSeq)
		}
		if rec.Op != OpInsert && rec.Op != OpDelete {
			t.Fatalf("decoder produced unknown op %d", byte(rec.Op))
		}
		if rec.U < 0 || rec.V < 0 {
			t.Fatalf("decoder produced negative vertex %+v", rec)
		}
		buf, err := AppendRecord(nil, prevSeq, rec)
		if err != nil {
			t.Fatalf("encoder rejected record the decoder accepted: %v", err)
		}
		if !bytes.Equal(buf, data[:n]) {
			t.Fatalf("accepted frame is not canonical: consumed %x, re-encoded %x", data[:n], buf)
		}
	})
}

// Package wal is the durable write-ahead edge log of the serving
// tier's mutation path (DESIGN.md §12): POST /edges appends here
// first, the background refresher folds the log into the dynamic
// index in batches, and after a crash the log replays into a fresh
// index — an acknowledged write is never lost.
//
// File format, version 1 (delta+varint in the house style of the
// Pregel message codec, internal/pregel/codec.go):
//
//	file    := header record*
//	header  := "RLWAL" version(1)
//	record  := uvarint(payloadLen) payload crc32(payload, IEEE, LE)
//	payload := uvarint(seqDelta) op(1) uvarint(u) uvarint(v)
//
// Sequence numbers are assigned densely from 1 and stored as the
// delta to the previous record's seq, so a well-formed log encodes
// each delta in one byte. Decoding is strict: an unknown version, a
// zero seq delta, an op outside {insert, delete}, a vertex beyond
// int32, an oversized or truncated frame, or a CRC mismatch is a hard
// error — a corrupt record is never silently skipped or mis-parsed.
// The one sanctioned repair is at Open: a torn tail (the suffix after
// the last valid record, which a mid-append crash leaves behind) is
// truncated away and reported, the standard WAL recovery contract.
//
// Append is group-committed: each call buffers its record under the
// append lock and then joins the earliest fsync that covers it, so N
// concurrent appenders pay ~one fsync instead of N. Append returns
// only after its record is durable.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/graph"
)

// Op is the mutation kind of one record.
type Op byte

// The record kinds. Values are part of the on-disk format.
const (
	OpInsert Op = 1
	OpDelete Op = 2
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Record is one durable edge mutation.
type Record struct {
	Seq  uint64 // dense, starting at 1
	Op   Op
	U, V graph.VertexID
}

// header is the 6-byte file prologue: magic plus format version.
var header = []byte{'R', 'L', 'W', 'A', 'L', 0x01}

// maxPayload bounds one record's payload: a maximal payload is
// uvarint64(10) + op(1) + 2×uvarint32(5) = 21 bytes, so anything
// larger is corrupt and rejected before allocation.
const maxPayload = 32

// checkpointEvery is the record interval of the sparse seq→offset
// index built during Open and extended by Append, which lets Replay
// seek near its starting seq instead of scanning the whole file.
const checkpointEvery = 4096

// AppendRecord encodes r (whose Seq must exceed prevSeq) onto buf.
// The frame is self-contained given prevSeq, so a reader that knows
// the previous seq can decode it with DecodeRecord.
func AppendRecord(buf []byte, prevSeq uint64, r Record) ([]byte, error) {
	if r.Seq <= prevSeq {
		return buf, fmt.Errorf("wal: seq %d not above previous %d", r.Seq, prevSeq)
	}
	if r.Op != OpInsert && r.Op != OpDelete {
		return buf, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	if r.U < 0 || r.V < 0 {
		return buf, fmt.Errorf("wal: negative vertex in edge (%d,%d)", r.U, r.V)
	}
	var payload [maxPayload]byte
	p := binary.PutUvarint(payload[:], r.Seq-prevSeq)
	payload[p] = byte(r.Op)
	p++
	p += binary.PutUvarint(payload[p:], uint64(r.U))
	p += binary.PutUvarint(payload[p:], uint64(r.V))
	buf = binary.AppendUvarint(buf, uint64(p))
	buf = append(buf, payload[:p]...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload[:p])), nil
}

// DecodeRecord decodes one frame from the front of buf, given the seq
// of the preceding record. It returns the record and the number of
// bytes consumed. Every structural defect — truncation, an oversized
// frame, a CRC mismatch, a zero seq delta, an unknown op, a vertex
// overflowing int32, or a payload with trailing bytes — is an error;
// a successful decode re-encodes to exactly the consumed bytes.
func DecodeRecord(buf []byte, prevSeq uint64) (Record, int, error) {
	plen, k := binary.Uvarint(buf)
	if k <= 0 {
		return Record{}, 0, fmt.Errorf("wal: truncated frame length")
	}
	if plen == 0 || plen > maxPayload {
		return Record{}, 0, fmt.Errorf("wal: frame payload of %d bytes out of range (1..%d)", plen, maxPayload)
	}
	if uint64(len(buf)-k) < plen+4 {
		return Record{}, 0, fmt.Errorf("wal: truncated frame: %d payload+crc bytes declared, %d available", plen+4, len(buf)-k)
	}
	payload := buf[k : k+int(plen)]
	wantCRC := binary.LittleEndian.Uint32(buf[k+int(plen):])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch: computed %08x, stored %08x", got, wantCRC)
	}
	delta, p := binary.Uvarint(payload)
	if p <= 0 {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: unreadable seq delta")
	}
	if delta == 0 {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: zero seq delta")
	}
	if delta > math.MaxUint64-prevSeq {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: seq delta %d overflows", delta)
	}
	if p >= len(payload) {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: truncated before op")
	}
	op := Op(payload[p])
	p++
	if op != OpInsert && op != OpDelete {
		return Record{}, 0, fmt.Errorf("wal: unknown op %d", byte(op))
	}
	u, n := binary.Uvarint(payload[p:])
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: truncated in U")
	}
	p += n
	v, n := binary.Uvarint(payload[p:])
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: truncated in V")
	}
	p += n
	if p != len(payload) {
		return Record{}, 0, fmt.Errorf("wal: corrupt payload: %d trailing bytes", len(payload)-p)
	}
	if u > math.MaxInt32 || v > math.MaxInt32 {
		return Record{}, 0, fmt.Errorf("wal: vertex out of int32 range in edge (%d,%d)", u, v)
	}
	rec := Record{
		Seq: prevSeq + delta,
		Op:  op,
		U:   graph.VertexID(u),
		V:   graph.VertexID(v),
	}
	// A minimal encoder must reproduce the frame byte-for-byte; a frame
	// that decodes but used an overlong varint would break replay
	// determinism, so it is rejected as corrupt too.
	reenc, err := AppendRecord(nil, prevSeq, rec)
	if err != nil {
		return Record{}, 0, err
	}
	consumed := k + int(plen) + 4
	if len(reenc) != consumed || string(reenc) != string(buf[:consumed]) {
		return Record{}, 0, fmt.Errorf("wal: non-canonical frame encoding")
	}
	return rec, consumed, nil
}

// checkpoint is one sparse replay index entry: the record with seq
// Seq ends at byte offset Off (so decoding resumes there with
// prevSeq = Seq).
type checkpoint struct {
	Seq uint64
	Off int64
}

// Log is a durable, append-only edge log.
type Log struct {
	path string
	f    *os.File

	// mu guards seq assignment and the file write, keeping records in
	// seq order on disk.
	mu      sync.Mutex
	lastSeq uint64
	size    int64 // bytes written (durable or not)
	count   uint64
	cps     []checkpoint
	encBuf  []byte

	// syncMu serializes fsync; syncedSeq is the group-commit frontier.
	syncMu    sync.Mutex
	syncedSeq uint64

	torn int64 // bytes truncated during recovery
}

// Open opens (creating if absent) the log at path and recovers it:
// the file is scanned, every valid record indexed, and a torn tail —
// bytes after the last valid record — truncated away. Records before
// the tear are never touched; corruption inside them is a hard error.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{path: path, f: f}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover scans the file, validates the header and every record, and
// truncates a torn tail.
func (l *Log) recover() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", l.path, err)
	}
	if len(data) == 0 {
		if _, err := l.f.Write(header); err != nil {
			return fmt.Errorf("wal: writing header: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing header: %w", err)
		}
		l.size = int64(len(header))
		return nil
	}
	if len(data) < len(header) || string(data[:5]) != "RLWAL" {
		return fmt.Errorf("wal: %s is not a write-ahead edge log", l.path)
	}
	if data[5] != header[5] {
		return fmt.Errorf("wal: %s: unsupported format version 0x%02x (want 0x%02x)", l.path, data[5], header[5])
	}
	off := int64(len(header))
	prev := uint64(0)
	for off < int64(len(data)) {
		rec, n, err := DecodeRecord(data[off:], prev)
		if err != nil {
			// Everything after the last valid record is a torn tail: a
			// crash mid-append can only damage the suffix, because
			// records are written in order and acknowledged after fsync.
			l.torn = int64(len(data)) - off
			break
		}
		off += int64(n)
		prev = rec.Seq
		l.count++
		if l.count%checkpointEvery == 0 {
			l.cps = append(l.cps, checkpoint{Seq: prev, Off: off})
		}
	}
	l.lastSeq = prev
	l.syncedSeq = prev
	l.size = off
	if l.torn > 0 {
		if err := l.f.Truncate(off); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing truncation: %w", err)
		}
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking past recovered records: %w", err)
	}
	return nil
}

// TornBytes reports how many trailing bytes recovery discarded (0 for
// a cleanly closed log).
func (l *Log) TornBytes() int64 { return l.torn }

// LastSeq returns the highest assigned sequence number (recovered or
// appended). Appends in flight may not be durable yet; SyncedSeq is
// the durability frontier.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// SyncedSeq returns the highest sequence number known durable.
func (l *Log) SyncedSeq() uint64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncedSeq
}

// Count returns the number of records in the log.
func (l *Log) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Append assigns the next sequence number to the edge mutation,
// writes it, and returns once the record is durable (fsynced). Calls
// from concurrent goroutines are batched into shared fsyncs.
func (l *Log) Append(op Op, u, v graph.VertexID) (uint64, error) {
	l.mu.Lock()
	seq := l.lastSeq + 1
	buf, err := AppendRecord(l.encBuf[:0], l.lastSeq, Record{Seq: seq, Op: op, U: u, V: v})
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.encBuf = buf
	if _, err := l.f.Write(buf); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	l.lastSeq = seq
	l.size += int64(len(buf))
	l.count++
	if l.count%checkpointEvery == 0 {
		l.cps = append(l.cps, checkpoint{Seq: seq, Off: l.size})
	}
	l.mu.Unlock()
	return seq, l.syncThrough(seq)
}

// syncThrough blocks until every record up to seq is fsynced. The
// first caller through the lock syncs on behalf of everyone whose
// record is already written — group commit.
func (l *Log) syncThrough(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq >= seq {
		return nil
	}
	l.mu.Lock()
	frontier := l.lastSeq
	l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncedSeq = frontier
	return nil
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	frontier := l.lastSeq
	l.mu.Unlock()
	return l.syncThrough(frontier)
}

// Replay streams every record with seq > fromSeq, in order, through
// fn; fn returning an error stops the replay and propagates. It reads
// through an independent file handle and may run while appends
// continue, but only records appended before the call are guaranteed
// to be seen. A decode failure inside the replayed range is a hard
// error — recovery at Open already removed the only legitimate
// damage.
func (l *Log) Replay(fromSeq uint64, fn func(Record) error) error {
	l.mu.Lock()
	end := l.size
	start := checkpoint{Seq: 0, Off: int64(len(header))}
	for _, cp := range l.cps {
		if cp.Seq <= fromSeq {
			start = cp
		} else {
			break
		}
	}
	l.mu.Unlock()

	f, err := os.Open(l.path)
	if err != nil {
		return fmt.Errorf("wal: opening for replay: %w", err)
	}
	defer f.Close()
	data := make([]byte, end-start.Off)
	if _, err := f.ReadAt(data, start.Off); err != nil {
		return fmt.Errorf("wal: reading replay range: %w", err)
	}
	off := 0
	prev := start.Seq
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:], prev)
		if err != nil {
			return fmt.Errorf("wal: replay at byte %d: %w", start.Off+int64(off), err)
		}
		off += n
		prev = rec.Seq
		if rec.Seq > fromSeq {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "edges.wal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Seq: 1, Op: OpInsert, U: 3, V: 17},
		{Seq: 2, Op: OpDelete, U: 0, V: 0},
		{Seq: 3, Op: OpInsert, U: 1 << 20, V: 42},
	}
	for _, r := range want {
		seq, err := l.Append(r.Op, r.U, r.V)
		if err != nil {
			t.Fatal(err)
		}
		if seq != r.Seq {
			t.Fatalf("append assigned seq %d, want %d", seq, r.Seq)
		}
	}
	if l.LastSeq() != 3 || l.SyncedSeq() != 3 || l.Count() != 3 {
		t.Fatalf("last=%d synced=%d count=%d, want 3/3/3", l.LastSeq(), l.SyncedSeq(), l.Count())
	}
	var got []Record
	if err := l.Replay(0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Replay from an offset skips the prefix.
	got = nil
	if err := l.Replay(2, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[2] {
		t.Fatalf("replay from seq 2: got %+v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery restores the frontier with nothing torn.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 3 || l2.TornBytes() != 0 {
		t.Fatalf("reopen: last=%d torn=%d", l2.LastSeq(), l2.TornBytes())
	}
	seq, err := l2.Append(OpDelete, 3, 17)
	if err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(OpInsert, graph.VertexID(i), graph.VertexID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A mid-append crash leaves any prefix of the final record; every
	// such prefix must recover to 4 records with the tail gone.
	whole := len(data)
	rec5 := encodedLen(t, 4, Record{Seq: 5, Op: OpInsert, U: 4, V: 5})
	for cut := whole - rec5 + 1; cut < whole; cut++ {
		torn := append([]byte(nil), data[:cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if l2.LastSeq() != 4 {
			t.Fatalf("cut at %d: recovered to seq %d, want 4", cut, l2.LastSeq())
		}
		if want := int64(cut - (whole - rec5)); l2.TornBytes() != want {
			t.Fatalf("cut at %d: torn=%d, want %d", cut, l2.TornBytes(), want)
		}
		// The file itself is truncated back to the valid prefix, and
		// appending continues from the recovered frontier.
		if seq, err := l2.Append(OpDelete, 9, 9); err != nil || seq != 5 {
			t.Fatalf("cut at %d: append after recovery: seq=%d err=%v", cut, seq, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// encodedLen returns the frame size of rec after prevSeq.
func encodedLen(t *testing.T, prevSeq uint64, rec Record) int {
	t.Helper()
	buf, err := AppendRecord(nil, prevSeq, rec)
	if err != nil {
		t.Fatal(err)
	}
	return len(buf)
}

func TestCorruptionRejected(t *testing.T) {
	rec := Record{Seq: 1, Op: OpInsert, U: 7, V: 9}
	frame, err := AppendRecord(nil, 0, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got, n, err := DecodeRecord(frame, 0); err != nil || n != len(frame) || got != rec {
		t.Fatalf("clean decode: %+v %d %v", got, n, err)
	}
	// Flip each byte in turn: every corruption must be rejected, never
	// mis-parsed into a different record.
	for i := range frame {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			bad := append([]byte(nil), frame...)
			bad[i] ^= flip
			if bytes.Equal(bad, frame) {
				continue
			}
			got, n, err := DecodeRecord(bad, 0)
			if err == nil && (got != rec || n != len(frame)) {
				t.Fatalf("byte %d ^ %#x: mis-parsed to %+v (n=%d)", i, flip, got, n)
			}
			// err == nil with identical record would mean the CRC did not
			// cover that byte — only possible if the flip produced an
			// equivalent frame, which the canonical-encoding check forbids.
			if err == nil {
				t.Fatalf("byte %d ^ %#x: corrupt frame accepted", i, flip)
			}
		}
	}
	// Truncations of a valid frame are all rejected.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut], 0); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestBadOpenRejected(t *testing.T) {
	dir := t.TempDir()
	notWal := filepath.Join(dir, "not.wal")
	if err := os.WriteFile(notWal, []byte("hello world, definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(notWal); err == nil {
		t.Fatal("foreign file accepted as WAL")
	}
	badVer := filepath.Join(dir, "ver.wal")
	h := append([]byte(nil), header...)
	h[5] = 0x7f
	if err := os.WriteFile(badVer, h, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badVer); err == nil {
		t.Fatal("future-version WAL accepted")
	}
}

func TestAppendRejectsBadRecords(t *testing.T) {
	l, err := Open(tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Op(9), 1, 2); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := l.Append(OpInsert, -1, 2); err == nil {
		t.Error("negative vertex accepted")
	}
	if l.LastSeq() != 0 {
		t.Errorf("rejected appends advanced the frontier to %d", l.LastSeq())
	}
}

// TestConcurrentAppends: group commit must keep seqs dense and unique
// under concurrent appenders, and replay sees all of them in order.
func TestConcurrentAppends(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < each; i++ {
				op := OpInsert
				if rng.Intn(2) == 0 {
					op = OpDelete
				}
				seq, err := l.Append(op, graph.VertexID(rng.Intn(100)), graph.VertexID(rng.Intn(100)))
				if err != nil {
					t.Error(err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	if l.LastSeq() != writers*each || l.SyncedSeq() != writers*each {
		t.Fatalf("frontier %d/%d, want %d", l.LastSeq(), l.SyncedSeq(), writers*each)
	}
	seen := make(map[uint64]bool)
	for _, ws := range seqs {
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("seq %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	var prev uint64
	if err := l.Replay(0, func(r Record) error {
		if r.Seq != prev+1 {
			t.Fatalf("replay gap: %d after %d", r.Seq, prev)
		}
		prev = r.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if prev != writers*each {
		t.Fatalf("replayed through %d, want %d", prev, writers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointedReplay drives the log past several checkpoint
// intervals and confirms replay-from-offset returns exactly the
// suffix.
func TestCheckpointedReplay(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	total := 2*checkpointEvery + 37
	for i := 0; i < total; i++ {
		if _, err := l.Append(OpInsert, graph.VertexID(i%311), graph.VertexID((i+1)%311)); err != nil {
			t.Fatal(err)
		}
	}
	from := uint64(checkpointEvery + 11)
	var got []uint64
	if err := l.Replay(from, func(r Record) error { got = append(got, r.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != total-int(from) {
		t.Fatalf("replay from %d returned %d records, want %d", from, len(got), total-int(from))
	}
	if got[0] != from+1 || got[len(got)-1] != uint64(total) {
		t.Fatalf("replay range [%d, %d], want [%d, %d]", got[0], got[len(got)-1], from+1, total)
	}
}

package reachlab

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// Metamorphic query properties: relations that must hold between a
// reachability index's own answers, with no oracle in sight. They
// complement oracle_test.go — the BFS oracle checks answers against
// the graph, these check the index against itself, so a bug that
// corrupted both the index and the oracle's graph view identically
// would still trip them.

// randomDAG samples m forward edges (u < v) over n vertices: acyclic
// by construction, so reachability is a strict partial order plus
// reflexivity — exactly the shape the transitivity property needs.
func randomDAG(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		edges = append(edges, Edge{From: VertexID(u), To: VertexID(v)})
	}
	return NewGraph(n, edges)
}

// metamorphicVariants is every construction method, mirroring
// oracle_test.go.
func metamorphicVariants() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"tol", Options{Method: MethodTOL}},
		{"drl-basic", Options{Method: MethodDRLBasic, Workers: 3}},
		{"drl", Options{Method: MethodDRL, Workers: 3}},
		{"drl-batch", Options{Method: MethodDRLBatch, Workers: 4}},
		{"drl-shared", Options{Method: MethodDRLShared, Workers: 4}},
	}
}

// TestMetamorphicQueryProperties: on seeded random DAGs, every build
// method must produce an index that is reflexive (reach(v,v)),
// transitive (reach(s,t) ∧ reach(t,u) ⇒ reach(s,u)), and whose flat
// layout answers every sampled pair exactly like the slice layout
// reconstructed from it — with the re-frozen index byte-identical.
func TestMetamorphicQueryProperties(t *testing.T) {
	seeds := []int64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const n = 60
	for _, seed := range seeds {
		g := randomDAG(n, 150, seed)
		for _, v := range metamorphicVariants() {
			idx, err := Build(context.Background(), g, v.opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}

			// Reflexivity: every vertex reaches itself.
			for w := 0; w < n; w++ {
				if !idx.Reachable(VertexID(w), VertexID(w)) {
					t.Fatalf("seed %d %s: reach(%d,%d) = false", seed, v.name, w, w)
				}
			}

			// Transitivity over sampled triples.
			rng := rand.New(rand.NewSource(seed * 31))
			checked := 0
			for trial := 0; trial < 4000; trial++ {
				s := VertexID(rng.Intn(n))
				mid := VertexID(rng.Intn(n))
				u := VertexID(rng.Intn(n))
				if idx.Reachable(s, mid) && idx.Reachable(mid, u) {
					checked++
					if !idx.Reachable(s, u) {
						t.Fatalf("seed %d %s: reach(%d,%d) and reach(%d,%d) but not reach(%d,%d)",
							seed, v.name, s, mid, mid, u, s, u)
					}
				}
			}
			if checked == 0 {
				t.Fatalf("seed %d %s: no transitive triples sampled; graph too sparse for the property to bite", seed, v.name)
			}

			// Flat vs. slice layout equality on every pair of a sampled
			// row set, plus byte-identical refreeze.
			lists := idx.LabelIndex().Thaw()
			for trial := 0; trial < 2000; trial++ {
				s := VertexID(rng.Intn(n))
				u := VertexID(rng.Intn(n))
				if flat, slice := idx.Reachable(s, u), lists.Reachable(s, u); flat != slice {
					t.Fatalf("seed %d %s: flat(%d,%d)=%v but slice layout says %v",
						seed, v.name, s, u, flat, slice)
				}
			}
			if refrozen := lists.Freeze(); !idx.LabelIndex().Equal(refrozen) {
				t.Fatalf("seed %d %s: refrozen index diverged: %s",
					seed, v.name, idx.LabelIndex().Diff(refrozen))
			}
		}
	}
}

// TestMetamorphicSwapPreservesRefreeze: the byte-identical-to-TOL
// guarantee must survive the serving layer's hot swap. For every
// build method: serialize the index, read it back, Swap it into a
// live QueryHandler, and check that (a) the handler's served answers
// are unchanged pair-for-pair, and (b) the swapped-in index still
// re-freezes byte-identically — i.e. the WriteTo → ReadIndex → Swap
// path neither reorders nor perturbs a single label.
func TestMetamorphicSwapPreservesRefreeze(t *testing.T) {
	g := randomDAG(60, 150, 24)
	rng := rand.New(rand.NewSource(77))
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{S: VertexID(rng.Intn(60)), T: VertexID(rng.Intn(60))}
	}
	for _, v := range metamorphicVariants() {
		idx, err := Build(context.Background(), g, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		h := NewQueryHandlerOpts(idx, ServeOptions{Obs: NewMetricsRegistry(), CachePairs: 128})
		before := h.Index().ReachableBatch(pairs)

		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatalf("%s: serialize: %v", v.name, err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", v.name, err)
		}
		if e := h.Swap(loaded); e != 2 {
			t.Fatalf("%s: swap returned epoch %d, want 2", v.name, e)
		}

		after := h.Index().ReachableBatch(pairs)
		for i := range pairs {
			if before[i] != after[i] {
				t.Fatalf("%s: pair (%d,%d) flipped %v → %v across the swap",
					v.name, pairs[i].S, pairs[i].T, before[i], after[i])
			}
		}
		// Refreeze byte-identity on the index now being served.
		served := h.Index().LabelIndex()
		if refrozen := served.Thaw().Freeze(); !served.Equal(refrozen) {
			t.Fatalf("%s: post-swap refreeze diverged: %s", v.name, served.Diff(refrozen))
		}
		// And the swapped-in index is still byte-identical to the
		// original build.
		if !idx.LabelIndex().Equal(served) {
			t.Fatalf("%s: served index diverged from the build: %s",
				v.name, idx.LabelIndex().Diff(served))
		}
	}
}

// TestMetamorphicBatchEquality: ReachableBatch must agree with
// Reachable pair-for-pair on every method, including the condensed
// index whose component table the batch path has to map through.
func TestMetamorphicBatchEquality(t *testing.T) {
	variants := metamorphicVariants()
	variants = append(variants, struct {
		name string
		opts Options
	}{"tol-condensed", Options{Method: MethodTOL, CondenseSCC: true}})

	// A cyclic graph makes the condensed variant's component table
	// nontrivial.
	g := randomCyclicGraph(80, 260, 5)
	rng := rand.New(rand.NewSource(6))
	pairs := make([]Pair, 700)
	for i := range pairs {
		pairs[i] = Pair{S: VertexID(rng.Intn(80)), T: VertexID(rng.Intn(80))}
	}
	for _, v := range variants {
		idx, err := Build(context.Background(), g, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := idx.ReachableBatch(pairs)
		for i, p := range pairs {
			if want := idx.Reachable(p.S, p.T); got[i] != want {
				t.Fatalf("%s: batch pair %d (%d,%d) = %v, single query says %v",
					v.name, i, p.S, p.T, got[i], want)
			}
		}
	}
}

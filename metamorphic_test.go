package reachlab

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"testing"
)

// Metamorphic query properties: relations that must hold between a
// reachability index's own answers, with no oracle in sight. They
// complement oracle_test.go — the BFS oracle checks answers against
// the graph, these check the index against itself, so a bug that
// corrupted both the index and the oracle's graph view identically
// would still trip them.

// randomDAG samples m forward edges (u < v) over n vertices: acyclic
// by construction, so reachability is a strict partial order plus
// reflexivity — exactly the shape the transitivity property needs.
func randomDAG(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		edges = append(edges, Edge{From: VertexID(u), To: VertexID(v)})
	}
	return NewGraph(n, edges)
}

// metamorphicVariants is every construction method, mirroring
// oracle_test.go.
func metamorphicVariants() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"tol", Options{Method: MethodTOL}},
		{"drl-basic", Options{Method: MethodDRLBasic, Workers: 3}},
		{"drl", Options{Method: MethodDRL, Workers: 3}},
		{"drl-batch", Options{Method: MethodDRLBatch, Workers: 4}},
		{"drl-shared", Options{Method: MethodDRLShared, Workers: 4}},
	}
}

// TestMetamorphicQueryProperties: on seeded random DAGs, every build
// method must produce an index that is reflexive (reach(v,v)),
// transitive (reach(s,t) ∧ reach(t,u) ⇒ reach(s,u)), and whose flat
// layout answers every sampled pair exactly like the slice layout
// reconstructed from it — with the re-frozen index byte-identical.
func TestMetamorphicQueryProperties(t *testing.T) {
	seeds := []int64{21, 22, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const n = 60
	for _, seed := range seeds {
		g := randomDAG(n, 150, seed)
		for _, v := range metamorphicVariants() {
			idx, err := Build(context.Background(), g, v.opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}

			// Reflexivity: every vertex reaches itself.
			for w := 0; w < n; w++ {
				if !idx.Reachable(VertexID(w), VertexID(w)) {
					t.Fatalf("seed %d %s: reach(%d,%d) = false", seed, v.name, w, w)
				}
			}

			// Transitivity over sampled triples.
			rng := rand.New(rand.NewSource(seed * 31))
			checked := 0
			for trial := 0; trial < 4000; trial++ {
				s := VertexID(rng.Intn(n))
				mid := VertexID(rng.Intn(n))
				u := VertexID(rng.Intn(n))
				if idx.Reachable(s, mid) && idx.Reachable(mid, u) {
					checked++
					if !idx.Reachable(s, u) {
						t.Fatalf("seed %d %s: reach(%d,%d) and reach(%d,%d) but not reach(%d,%d)",
							seed, v.name, s, mid, mid, u, s, u)
					}
				}
			}
			if checked == 0 {
				t.Fatalf("seed %d %s: no transitive triples sampled; graph too sparse for the property to bite", seed, v.name)
			}

			// Flat vs. slice layout equality on every pair of a sampled
			// row set, plus byte-identical refreeze.
			lists := idx.LabelIndex().Thaw()
			for trial := 0; trial < 2000; trial++ {
				s := VertexID(rng.Intn(n))
				u := VertexID(rng.Intn(n))
				if flat, slice := idx.Reachable(s, u), lists.Reachable(s, u); flat != slice {
					t.Fatalf("seed %d %s: flat(%d,%d)=%v but slice layout says %v",
						seed, v.name, s, u, flat, slice)
				}
			}
			if refrozen := lists.Freeze(); !idx.LabelIndex().Equal(refrozen) {
				t.Fatalf("seed %d %s: refrozen index diverged: %s",
					seed, v.name, idx.LabelIndex().Diff(refrozen))
			}
		}
	}
}

// TestMetamorphicSwapPreservesRefreeze: the byte-identical-to-TOL
// guarantee must survive the serving layer's hot swap. For every
// build method: serialize the index, read it back, Swap it into a
// live QueryHandler, and check that (a) the handler's served answers
// are unchanged pair-for-pair, and (b) the swapped-in index still
// re-freezes byte-identically — i.e. the WriteTo → ReadIndex → Swap
// path neither reorders nor perturbs a single label.
func TestMetamorphicSwapPreservesRefreeze(t *testing.T) {
	g := randomDAG(60, 150, 24)
	rng := rand.New(rand.NewSource(77))
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{S: VertexID(rng.Intn(60)), T: VertexID(rng.Intn(60))}
	}
	for _, v := range metamorphicVariants() {
		idx, err := Build(context.Background(), g, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		h := NewQueryHandlerOpts(idx, ServeOptions{Obs: NewMetricsRegistry(), CachePairs: 128})
		before := h.Index().ReachableBatch(pairs)

		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatalf("%s: serialize: %v", v.name, err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", v.name, err)
		}
		if e := h.Swap(loaded); e != 2 {
			t.Fatalf("%s: swap returned epoch %d, want 2", v.name, e)
		}

		after := h.Index().ReachableBatch(pairs)
		for i := range pairs {
			if before[i] != after[i] {
				t.Fatalf("%s: pair (%d,%d) flipped %v → %v across the swap",
					v.name, pairs[i].S, pairs[i].T, before[i], after[i])
			}
		}
		// Refreeze byte-identity on the index now being served.
		served := h.Index().LabelIndex()
		if refrozen := served.Thaw().Freeze(); !served.Equal(refrozen) {
			t.Fatalf("%s: post-swap refreeze diverged: %s", v.name, served.Diff(refrozen))
		}
		// And the swapped-in index is still byte-identical to the
		// original build.
		if !idx.LabelIndex().Equal(served) {
			t.Fatalf("%s: served index diverged from the build: %s",
				v.name, idx.LabelIndex().Diff(served))
		}
	}
}

// TestMetamorphicBatchEquality: ReachableBatch must agree with
// Reachable pair-for-pair on every method, including the condensed
// index whose component table the batch path has to map through.
func TestMetamorphicBatchEquality(t *testing.T) {
	variants := metamorphicVariants()
	variants = append(variants, struct {
		name string
		opts Options
	}{"tol-condensed", Options{Method: MethodTOL, CondenseSCC: true}})

	// A cyclic graph makes the condensed variant's component table
	// nontrivial.
	g := randomCyclicGraph(80, 260, 5)
	rng := rand.New(rand.NewSource(6))
	pairs := make([]Pair, 700)
	for i := range pairs {
		pairs[i] = Pair{S: VertexID(rng.Intn(80)), T: VertexID(rng.Intn(80))}
	}
	for _, v := range variants {
		idx, err := Build(context.Background(), g, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := idx.ReachableBatch(pairs)
		for i, p := range pairs {
			if want := idx.Reachable(p.S, p.T); got[i] != want {
				t.Fatalf("%s: batch pair %d (%d,%d) = %v, single query says %v",
					v.name, i, p.S, p.T, got[i], want)
			}
		}
	}
}

// TestMetamorphicDynamicMatchesStaticBuilds: after an arbitrary
// insert/delete sequence, the dynamic maintainer must answer exactly
// like a fresh static build of the mutated graph — for every build
// method. The mutated edge set is tracked independently of the
// maintainer, so a bookkeeping bug in its adjacency cannot hide by
// feeding the static builds its own corrupted graph.
func TestMetamorphicDynamicMatchesStaticBuilds(t *testing.T) {
	seeds := []int64{31, 32}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const n, ops = 60, 40
	for _, seed := range seeds {
		g := randomDAG(n, 120, seed)
		dyn, err := NewDynamicIndex(g)
		if err != nil {
			t.Fatal(err)
		}
		have := make(map[[2]VertexID]bool)
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(VertexID(u)) {
				have[[2]VertexID{VertexID(u), v}] = true
			}
		}
		rng := rand.New(rand.NewSource(seed * 97))
		for k := 0; k < ops; k++ {
			if rng.Intn(2) == 0 || len(have) == 0 {
				// Insert an arbitrary pair — backward edges welcome, a
				// DAG plus cycles is the harder regime.
				u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
				if u == v {
					continue
				}
				if err := dyn.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
				have[[2]VertexID{u, v}] = true
			} else {
				all := make([][2]VertexID, 0, len(have))
				for e := range have {
					all = append(all, e)
				}
				sort.Slice(all, func(i, j int) bool {
					return all[i][0] < all[j][0] || (all[i][0] == all[j][0] && all[i][1] < all[j][1])
				})
				e := all[rng.Intn(len(all))]
				if err := dyn.DeleteEdge(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
				delete(have, e)
			}
		}
		if s := dyn.UpdateStats(); s.Repairs+s.Rebuilds == 0 {
			t.Fatalf("seed %d: no effective updates applied", seed)
		}
		edges := make([]Edge, 0, len(have))
		for e := range have {
			edges = append(edges, Edge{From: e[0], To: e[1]})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		mg := NewGraph(n, edges)
		for _, v := range metamorphicVariants() {
			idx, err := Build(context.Background(), mg, v.opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			for s := 0; s < n; s++ {
				for u := 0; u < n; u++ {
					if got, want := dyn.Reachable(VertexID(s), VertexID(u)), idx.Reachable(VertexID(s), VertexID(u)); got != want {
						t.Fatalf("seed %d %s: after %d updates reach(%d,%d): dynamic %v, fresh build %v",
							seed, v.name, ops, s, u, got, want)
					}
				}
			}
		}
	}
}

// TestMetamorphicDynamicRoundTrip: inserting a batch of fresh edges
// and then deleting them (in a different order) must return the
// maintainer to byte-identical labels — the canonical-label guarantee
// under the frozen order, not merely answer equivalence.
func TestMetamorphicDynamicRoundTrip(t *testing.T) {
	const n = 60
	g := randomDAG(n, 120, 33)
	dyn, err := NewDynamicIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	base := make(map[[2]VertexID]bool)
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			base[[2]VertexID{VertexID(u), v}] = true
		}
	}
	before := dyn.Snapshot()

	rng := rand.New(rand.NewSource(34))
	var added [][2]VertexID
	for len(added) < 12 {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		// Fresh and reachability-changing, so the mid-sequence labels
		// provably differ and the round-trip assertion has teeth.
		if u == v || base[[2]VertexID{u, v}] || dyn.Reachable(u, v) {
			continue
		}
		if err := dyn.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added = append(added, [2]VertexID{u, v})
	}
	mid := dyn.Snapshot()
	if before.LabelIndex().Equal(mid.LabelIndex()) {
		t.Fatal("inserts did not change the labels; round-trip check is vacuous")
	}
	rng.Shuffle(len(added), func(i, j int) { added[i], added[j] = added[j], added[i] })
	for _, e := range added {
		if err := dyn.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	after := dyn.Snapshot()
	if !before.LabelIndex().Equal(after.LabelIndex()) {
		t.Fatalf("insert-then-delete round trip diverged: %s",
			before.LabelIndex().Diff(after.LabelIndex()))
	}
}

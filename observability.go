package reachlab

import (
	"net/http"

	"repro/internal/obs"
)

// MetricsRegistry collects counters, gauges, latency histograms, and
// per-superstep traces from every layer that is handed one: the pregel
// engine and RPC master ("pregel_*" series plus the "pregel" trace),
// the DRL builders ("drl_*"), and the query server ("reachlab_*").
// The zero-dependency implementation lives in internal/obs; this alias
// is the public handle so callers can plumb one registry through
// Options, ClusterOptions, and NewQueryHandlerObs, then expose it with
// MountObservability.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns a fresh, empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// DefaultMetrics returns the process-wide default registry, used by
// NewQueryHandler and the cmd/ binaries.
func DefaultMetrics() *MetricsRegistry { return obs.Default }

// MountObservability registers the observability endpoints on mux:
// GET /metrics (Prometheus text format), GET /trace (JSON superstep
// traces), and the net/http/pprof profiling handlers under
// /debug/pprof/.
func MountObservability(mux *http.ServeMux, reg *MetricsRegistry) {
	obs.Mount(mux, reg)
}

package reachlab

import (
	"bytes"
	"context"
	"testing"
)

// TestOrderStrategiesAllCorrect: any total order yields a correct
// index; only the size varies.
func TestOrderStrategiesAllCorrect(t *testing.T) {
	g, err := GenerateGraph("web", 400, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, strat := range []string{"", "degree-product", "degree-sum", "out-degree", "id", "random"} {
		idx, err := Build(context.Background(), g, Options{Order: strat, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for s := VertexID(0); s < 60; s++ {
			for d := VertexID(340); d < 400; d++ {
				if idx.Reachable(s, d) != g.ReachableBFS(s, d) {
					t.Fatalf("%s: wrong answer for (%d,%d)", strat, s, d)
				}
			}
		}
		sizes[strat] = idx.Stats().Entries
	}
	if sizes["degree-product"] > sizes["random"] {
		t.Errorf("degree-product (%d entries) should beat random order (%d entries)",
			sizes["degree-product"], sizes["random"])
	}
	if _, err := Build(context.Background(), g, Options{Order: "nope"}); err == nil {
		t.Error("unknown order strategy should fail")
	}
}

// TestCondenseSCC: the condensed index answers like the raw one and
// is smaller on cyclic graphs.
func TestCondenseSCC(t *testing.T) {
	g, err := GenerateGraph("social", 1500, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Build(context.Background(), g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := Build(context.Background(), g, Options{Workers: 2, CondenseSCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumVertices() != g.NumVertices() {
		t.Errorf("condensed index must still cover %d vertices, got %d",
			g.NumVertices(), cond.NumVertices())
	}
	for s := VertexID(0); s < 80; s++ {
		for d := VertexID(1400); d < 1500; d++ {
			if raw.Reachable(s, d) != cond.Reachable(s, d) {
				t.Fatalf("condensed index disagrees on (%d,%d)", s, d)
			}
		}
	}
	if cond.Stats().Entries >= raw.Stats().Entries {
		t.Errorf("condensation should shrink the label count on a social graph: %d vs %d",
			cond.Stats().Entries, raw.Stats().Entries)
	}
}

// TestCondensedIndexRoundTrip: the envelope carries the component
// table through serialization.
func TestCondensedIndexRoundTrip(t *testing.T) {
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{CondenseSCC: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := VertexID(0); s < 11; s++ {
		for d := VertexID(0); d < 11; d++ {
			want := g.ReachableBFS(s, d)
			if got.Reachable(s, d) != want {
				t.Fatalf("loaded condensed index wrong on (%d,%d)", s, d)
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("garbage garbage garbage"))); err == nil {
		t.Error("expected error for garbage input")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

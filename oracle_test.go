package reachlab

import (
	"context"
	"math/rand"
	"testing"
)

// randomCyclicGraph samples m uniform directed edges over n vertices.
// At these densities the graph always contains directed cycles (and so
// nontrivial SCCs), which is what makes it a worthwhile oracle target:
// cycles exercise both the label pruning and, with CondenseSCC, the
// component-table query path.
func randomCyclicGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{
			From: VertexID(rng.Intn(n)),
			To:   VertexID(rng.Intn(n)),
		})
	}
	return NewGraph(n, edges)
}

// TestReachableMatchesBFSOracle is the randomized query-equivalence
// property: for seeded random cyclic digraphs, every construction
// method (and the SCC-condensed variant) must answer ~1000 query pairs
// exactly as the index-free BFS oracle does.
func TestReachableMatchesBFSOracle(t *testing.T) {
	type variant struct {
		name string
		opts Options
	}
	variants := []variant{
		{"tol", Options{Method: MethodTOL}},
		{"drl", Options{Method: MethodDRL, Workers: 3}},
		{"drl-batch", Options{Method: MethodDRLBatch, Workers: 4}},
		{"drl-shared", Options{Method: MethodDRLShared, Workers: 4}},
		{"tol-condensed", Options{Method: MethodTOL, CondenseSCC: true}},
		{"drl-batch-condensed", Options{Method: MethodDRLBatch, Workers: 4, CondenseSCC: true}},
	}
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const queries = 1000
	for _, seed := range seeds {
		g := randomCyclicGraph(70, 240, seed)
		for _, v := range variants {
			idx, err := Build(context.Background(), g, v.opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			rng := rand.New(rand.NewSource(seed * 1000))
			bad := 0
			for q := 0; q < queries; q++ {
				s := VertexID(rng.Intn(g.NumVertices()))
				d := VertexID(rng.Intn(g.NumVertices()))
				got := idx.Reachable(s, d)
				want := g.ReachableBFS(s, d)
				if got != want {
					if bad < 5 {
						t.Errorf("seed %d %s: Reachable(%d,%d) = %v, BFS oracle says %v",
							seed, v.name, s, d, got, want)
					}
					bad++
				}
			}
			if bad > 0 {
				t.Fatalf("seed %d %s: %d/%d queries disagree with the oracle",
					seed, v.name, bad, queries)
			}
		}
	}
}

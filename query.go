package reachlab

import (
	"errors"
	"fmt"
	"slices"
)

// Rich queries over the frozen index: witness-path reconstruction,
// one-source sweeps, and reachable-set cardinality. The boolean
// queries (ReachableFrom, ReachableSetSize) answer from the labels
// alone; WitnessPath additionally needs the graph, which full builds
// do not retain — AttachGraph supplies it.

// ErrNoGraph is returned by WitnessPath when the index has no graph
// to walk: the boolean answer needs only labels, but an actual path
// is read off the edges.
var ErrNoGraph = errors.New("reachlab: index has no attached graph (use AttachGraph)")

// AttachGraph attaches the indexed graph so WitnessPath can
// reconstruct actual paths. The graph must be the one the index was
// built from (same vertex space; for a condensed index, the original
// pre-condensation graph). Builds attach it automatically; an index
// loaded with ReadIndex starts without one.
func (x *Index) AttachGraph(g *Graph) error {
	if g == nil {
		return errors.New("reachlab: nil graph")
	}
	if g.NumVertices() != x.NumVertices() {
		return fmt.Errorf("reachlab: graph has %d vertices, index covers %d",
			g.NumVertices(), x.NumVertices())
	}
	x.g = g.d
	return nil
}

// HasGraph reports whether WitnessPath can answer.
func (x *Index) HasGraph() bool { return x.g != nil }

// WitnessPath returns an actual s→t vertex path, or nil when t is not
// reachable from s. The search is a guided BFS: a frontier vertex's
// neighbor w is expanded only if Reachable(w, t) — the label
// intersection prunes every branch that cannot reach t. Since every
// vertex on every s→t path reaches t, all s→t paths survive the
// pruning, so the BFS still finds a shortest path; the pruning only
// removes dead branches. For a condensed index Reachable maps through
// the component table, so the walk transparently threads through SCCs
// of the original graph.
//
// The path is positions s..t inclusive; s == t yields [s]. The only
// errors are ErrNoGraph and an attached graph that contradicts the
// index (reachable by labels, no path by edges).
func (x *Index) WitnessPath(s, t VertexID) ([]VertexID, error) {
	if x.g == nil {
		return nil, ErrNoGraph
	}
	if s == t {
		return []VertexID{s}, nil
	}
	if !x.Reachable(s, t) {
		return nil, nil
	}
	// parent doubles as the visited set: -1 unvisited, -2 pruned (its
	// label test failed once; never re-test it from another parent).
	parent := make([]int32, x.g.NumVertices())
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = int32(s)
	queue := append(make([]VertexID, 0, 64), s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range x.g.OutNeighbors(v) {
			if parent[w] != -1 {
				continue
			}
			if w == t {
				path := []VertexID{t, v}
				for u := v; u != s; {
					u = VertexID(parent[u])
					path = append(path, u)
				}
				slices.Reverse(path)
				return path, nil
			}
			if !x.Reachable(w, t) {
				parent[w] = -2
				continue
			}
			parent[w] = int32(v)
			queue = append(queue, w)
		}
	}
	return nil, fmt.Errorf("reachlab: index says %d reaches %d but the attached graph has no path (graph/index mismatch)", s, t)
}

// ReachableFrom answers q(s, t) for every target, identically to
// calling Reachable per target, but loading L_out(s) once for the
// whole sweep (see label.Index.ReachableFrom).
func (x *Index) ReachableFrom(s VertexID, targets []VertexID) []bool {
	if x.comp == nil {
		if x.bidx != nil {
			return x.bidx.ReachableFrom(s, targets)
		}
		return x.idx.ReachableFrom(s, targets)
	}
	// Condensed index: map endpoints through the component table;
	// same-component targets are reachable without consulting labels.
	cs := VertexID(x.comp[s])
	res := make([]bool, len(targets))
	sub := make([]VertexID, 0, len(targets))
	subPos := make([]int, 0, len(targets))
	for i, t := range targets {
		ct := VertexID(x.comp[t])
		if ct == cs {
			res[i] = true
			continue
		}
		sub = append(sub, ct)
		subPos = append(subPos, i)
	}
	inner := x.idx.ReachableFrom
	if x.bidx != nil {
		inner = x.bidx.ReachableFrom
	}
	for k, ans := range inner(cs, sub) {
		res[subPos[k]] = ans
	}
	return res
}

// ReachableSetSize returns |{t : q(s, t)}| over the original vertex
// space — for a condensed index each component hit is weighted by the
// number of original vertices it contains.
func (x *Index) ReachableSetSize(s VertexID) int {
	if x.comp == nil {
		if x.bidx != nil {
			return x.bidx.ReachableSetSize(s)
		}
		return x.idx.ReachableSetSize(s)
	}
	cs := VertexID(x.comp[s])
	all := make([]VertexID, x.idx.NumVertices())
	for i := range all {
		all[i] = VertexID(i)
	}
	inner := x.idx.ReachableFrom
	if x.bidx != nil {
		inner = x.bidx.ReachableFrom
	}
	var total int64
	for c, ok := range inner(cs, all) {
		if ok {
			total += x.compSize[c]
		}
	}
	return int(total)
}
